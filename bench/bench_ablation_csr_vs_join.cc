/// Ablation for §6.3/§8.4.2: why the PageRank *operator* beats the
/// ITERATE SQL formulation — the temporary CSR index with dense ids makes
/// every neighbor-rank access one array read, while the relational plan
/// rebuilds and probes hash tables every iteration ("its runtime is
/// dominated by building and probing hash tables").
///
/// Reported: total runtime, per-iteration time, and the operator's
/// one-off CSR build cost (measured as max_iterations=0).

#include "bench/bench_util.h"
#include "bench_support/workloads.h"
#include "graph/ldbc_generator.h"

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const int64_t iterations = 20;

  std::printf("=== Ablation (§6.3): CSR operator vs relational joins ===\n");
  std::printf("scale=%s; damping=0.85, i=%lld\n\n", scale.name,
              static_cast<long long>(iterations));
  PrintHeader({"graph", "CSR total [s]", "CSR build [s]", "CSR per-iter [s]",
               "join total [s]", "join per-iter [s]", "speedup"});

  for (const LdbcScale& ldbc : PaperLdbcScales()) {
    size_t vertices = ldbc.vertices / scale.divisor;
    GeneratedGraph graph = GenerateSocialGraph(vertices, ldbc.avg_degree, 42);
    Engine engine;
    if (!workloads::RegisterGraph(&engine.catalog(), "edges", graph).ok()) {
      return 1;
    }
    (void)engine.Execute("CREATE TABLE deg (src INTEGER, cnt INTEGER)");
    (void)engine.Execute("INSERT INTO deg " +
                         workloads::DegreeTableSql("edges"));

    double op_total = TimeQuery(
        engine,
        workloads::PageRankOperatorSql("edges", 0.85, 0.0, iterations));
    double op_build = TimeQuery(
        engine, workloads::PageRankOperatorSql("edges", 0.85, 0.0, 0));
    double join_total = TimeQuery(
        engine, workloads::PageRankIterateSql("edges", "deg",
                                              graph.num_vertices, 0.85,
                                              iterations));

    PrintCell(Human(graph.num_vertices) + "v/" + Human(graph.num_edges) + "e");
    PrintSeconds(op_total);
    PrintSeconds(op_build);
    PrintSeconds((op_total - op_build) / static_cast<double>(iterations));
    PrintSeconds(join_total);
    PrintSeconds(join_total / static_cast<double>(iterations));
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", join_total / op_total);
    PrintCell(speedup);
    EndRow();
    std::fflush(stdout);
  }
  return 0;
}
