/// Ablation for §5.1: ITERATE vs recursive CTE — runtime and peak
/// materialized tuple footprint as the iteration count grows. The paper's
/// claim: the CTE's relation grows to n·i tuples while ITERATE keeps 2·n,
/// which also shows up as lower runtime ("as the intermediate results
/// become smaller, less data has to be read and processed").

#include "bench/bench_util.h"
#include "bench_support/workloads.h"

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const size_t n = 400000 / scale.divisor * 10;  // state rows

  std::printf("=== Ablation (§5.1): ITERATE vs recursive CTE ===\n");
  std::printf("scale=%s; state relation of %s tuples, trivial step; "
              "peak tuples = live intermediate state\n\n",
              scale.name, Human(n).c_str());
  PrintHeader({"iterations", "ITERATE [s]", "ITERATE peak", "CTE [s]",
               "CTE peak", "peak ratio"});

  Engine engine;
  {
    auto t = engine.catalog().CreateTable(
        "seed", Schema({Field("v", DataType::kBigInt)}));
    if (!t.ok()) return 1;
    std::vector<int64_t> vals(n);
    for (size_t i = 0; i < n; ++i) vals[i] = static_cast<int64_t>(i);
    (void)(*t)->SetColumn(0, Column::FromBigInts(std::move(vals)));
  }

  for (int iters : {2, 5, 10, 20, 40}) {
    std::string iterate_sql =
        "SELECT count(*) FROM ITERATE((SELECT v, 0 i FROM seed), "
        "(SELECT v + 1 v, i + 1 i FROM iterate), "
        "(SELECT 1 FROM iterate WHERE i >= " + std::to_string(iters) +
        ")) s";
    std::string cte_sql =
        "WITH RECURSIVE s (v, i) AS ((SELECT v, 0 FROM seed) UNION ALL "
        "(SELECT v + 1, i + 1 FROM s WHERE i < " + std::to_string(iters) +
        ")) SELECT count(*) FROM s WHERE i = " + std::to_string(iters);

    ExecStats iterate_stats, cte_stats;
    double iterate_s = TimeQuery(engine, iterate_sql, &iterate_stats);
    double cte_s = TimeQuery(engine, cte_sql, &cte_stats);

    PrintCell(std::to_string(iters));
    PrintSeconds(iterate_s);
    PrintCell(Human(iterate_stats.peak_bound_tuples));
    PrintSeconds(cte_s);
    PrintCell(Human(cte_stats.peak_bound_tuples));
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(cte_stats.peak_bound_tuples) /
                      static_cast<double>(iterate_stats.peak_bound_tuples));
    PrintCell(ratio);
    EndRow();
    std::fflush(stdout);
  }
  return 0;
}
