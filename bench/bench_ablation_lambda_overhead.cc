/// Ablation for §7: lambda-parameterized operators vs the hard-coded
/// default. The paper's claim: "because all code is compiled together, no
/// virtual function calls are involved" — the user lambda should cost at
/// most a small constant over the built-in metric, and a *different*
/// lambda (L1 / weighted) should cost about the same as L2.

#include "bench/bench_util.h"
#include "bench_support/workloads.h"

namespace {

/// Manhattan-distance lambda body over d dims.
std::string L1Body(size_t d) {
  std::string out;
  for (size_t j = 1; j <= d; ++j) {
    if (j > 1) out += " + ";
    out += "abs(a.x" + std::to_string(j) + " - b.x" + std::to_string(j) + ")";
  }
  return out;
}

/// Coordinate-weighted squared distance (first dim counts 4x).
std::string WeightedBody(size_t d) {
  std::string out = "4.0 * (a.x1 - b.x1)^2";
  for (size_t j = 2; j <= d; ++j) {
    out += " + (a.x" + std::to_string(j) + " - b.x" + std::to_string(j) +
           ")^2";
  }
  return out;
}

std::string NoLambdaSql(const std::string& data, const std::string& centers,
                        size_t d, int64_t iters) {
  return "SELECT * FROM KMEANS((SELECT " + soda::workloads::FeatureList(d) +
         " FROM " + data + "), (SELECT " + soda::workloads::FeatureList(d) +
         " FROM " + centers + "), " + std::to_string(iters) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const size_t n = 4000000 / scale.divisor;
  const size_t k = 5;
  const int64_t iters = 3;

  std::printf("=== Ablation (§7): lambda distance vs built-in metric ===\n");
  std::printf("scale=%s; n=%s, k=%zu, i=%lld; seconds\n\n", scale.name,
              Human(n).c_str(), k, static_cast<long long>(iters));
  PrintHeader({"dimensions", "built-in L2", "lambda L2", "lambda L1",
               "lambda weighted", "lambda/builtin"});

  for (size_t d : {3, 10, 25}) {
    Engine engine;
    auto data =
        workloads::GenerateVectorTable(&engine.catalog(), "data", n, d, d);
    if (!data.ok()) return 1;
    auto centers = workloads::SampleInitialCenters(&engine.catalog(),
                                                   "centers", **data, k, 3);
    if (!centers.ok()) return 1;

    double builtin = TimeQuery(engine, NoLambdaSql("data", "centers", d, iters));
    double lambda_l2 = TimeQuery(
        engine, workloads::KMeansOperatorSql("data", "centers", d, iters));
    double lambda_l1 = TimeQuery(
        engine,
        workloads::KMeansOperatorSql("data", "centers", d, iters, L1Body(d)));
    double lambda_w = TimeQuery(
        engine, workloads::KMeansOperatorSql("data", "centers", d, iters,
                                             WeightedBody(d)));

    PrintCell(std::to_string(d));
    PrintSeconds(builtin);
    PrintSeconds(lambda_l2);
    PrintSeconds(lambda_l1);
    PrintSeconds(lambda_w);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", lambda_l2 / builtin);
    PrintCell(ratio);
    EndRow();
    std::fflush(stdout);
  }
  return 0;
}
