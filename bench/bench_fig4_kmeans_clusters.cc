/// Figure 4 (right): k-Means runtime vs number of clusters.
/// Paper sweep: k ∈ {3, 5, 10, 25, 50}, n=4M, d=10, i=3.

#include "bench/kmeans_bench_common.h"

int main(int argc, char** argv) {
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const size_t n = 4000000 / scale.heavy_divisor;
  std::printf("=== Figure 4 (right): k-Means, varying #clusters ===\n");
  std::printf("scale=%s; n=%s, d=10, i=3; seconds\n\n", scale.name,
              Human(n).c_str());
  PrintKMeansHeader("clusters");

  for (size_t k : {3, 5, 10, 25, 50}) {
    RunKMeansRow(std::to_string(k), {n, 10, k});
  }
  return 0;
}
