/// Figure 4 (middle): k-Means runtime vs number of dimensions.
/// Paper sweep: d ∈ {3, 5, 10, 25, 50}, n=4M, k=5, i=3.

#include "bench/kmeans_bench_common.h"

int main(int argc, char** argv) {
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const size_t n = 4000000 / scale.heavy_divisor;
  std::printf("=== Figure 4 (middle): k-Means, varying #dimensions ===\n");
  std::printf("scale=%s; n=%s, k=5, i=3; seconds\n\n", scale.name,
              Human(n).c_str());
  PrintKMeansHeader("dimensions");

  for (size_t d : {3, 5, 10, 25, 50}) {
    RunKMeansRow(std::to_string(d), {n, d, 5});
  }
  return 0;
}
