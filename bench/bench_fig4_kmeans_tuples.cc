/// Figure 4 (left): k-Means runtime vs number of tuples.
/// Paper sweep: n ∈ {160k, 800k, 4M, 20M, 100M, 500M}, d=10, k=5, i=3.

#include "bench/kmeans_bench_common.h"

int main(int argc, char** argv) {
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  std::printf("=== Figure 4 (left): k-Means, varying #tuples ===\n");
  std::printf("scale=%s (paper sizes / %zu); d=10, k=5, i=3; seconds\n\n",
              scale.name, scale.heavy_divisor);
  PrintKMeansHeader("tuples");

  const size_t paper_n[] = {160000, 800000, 4000000, 20000000, 100000000,
                            500000000};
  for (size_t n : paper_n) {
    size_t scaled = n / scale.heavy_divisor;
    RunKMeansRow(Human(scaled), {scaled, 10, 5});
  }
  return 0;
}
