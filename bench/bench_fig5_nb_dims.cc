/// Figure 5 (right): Naive Bayes training runtime vs number of dimensions.
/// Paper sweep: d ∈ {3, 5, 10, 25, 50}, n=4M.

#include "bench/nb_bench_common.h"

int main(int argc, char** argv) {
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const size_t n = 4000000 / scale.heavy_divisor;
  std::printf("=== Figure 5 (right): Naive Bayes training, varying #dimensions ===\n");
  std::printf("scale=%s; n=%s, labels={0,1}; seconds\n\n", scale.name,
              Human(n).c_str());
  PrintNbHeader("dimensions");

  for (size_t d : {3, 5, 10, 25, 50}) {
    RunNbRow(std::to_string(d), n, d);
  }
  return 0;
}
