/// Figure 5 (middle): Naive Bayes training runtime vs number of tuples.
/// Paper sweep: n ∈ {160k ... 500M}, d=10, two uniform labels.

#include "bench/nb_bench_common.h"

int main(int argc, char** argv) {
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  std::printf("=== Figure 5 (middle): Naive Bayes training, varying #tuples ===\n");
  std::printf("scale=%s; d=10, labels={0,1}; seconds\n\n", scale.name);
  PrintNbHeader("tuples");

  const size_t paper_n[] = {160000, 800000, 4000000, 20000000, 100000000,
                            500000000};
  for (size_t n : paper_n) {
    size_t scaled = n / scale.heavy_divisor;
    RunNbRow(Human(scaled), scaled, 10);
  }
  return 0;
}
