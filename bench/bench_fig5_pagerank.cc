/// Figure 5 (left): PageRank runtime on LDBC-SNB-like social graphs.
/// Paper: damping 0.85, ε=0, 45 fixed iterations; graphs of
/// 11k/452k, 73k/4.6M, 499k/46M vertices/edges (scaled per --scale).
/// Paper headline: the operator (temporary CSR, §6.3) is far faster than
/// SQL variants (hash joins) and 92x faster than Spark.

#include "bench/bench_util.h"
#include "bench_support/workloads.h"
#include "contenders/contender.h"
#include "graph/ldbc_generator.h"

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);
  const double damping = 0.85;
  const int64_t iterations = 45;

  std::printf("=== Figure 5 (left): PageRank on LDBC-like graphs ===\n");
  std::printf("scale=%s; damping=0.85, eps=0, i=45; seconds\n\n", scale.name);
  PrintHeader({"graph", "HyPer Operator", "HyPer Iterate", "HyPer SQL",
               "Spark(sim)", "MATLAB(sim)", "MADlib(sim)"});

  for (const LdbcScale& ldbc : PaperLdbcScales()) {
    size_t vertices = ldbc.vertices / scale.divisor;
    GeneratedGraph graph =
        GenerateSocialGraph(vertices, ldbc.avg_degree, /*seed=*/42);

    Engine engine;
    if (!workloads::RegisterGraph(&engine.catalog(), "edges", graph).ok()) {
      return 1;
    }
    // Materialized out-degree helper for the SQL variants (DESIGN.md: soda
    // has no scalar subqueries, so deg and 1/N are provided explicitly).
    (void)engine.Execute("CREATE TABLE deg (src INTEGER, cnt INTEGER)");
    (void)engine.Execute("INSERT INTO deg " +
                         workloads::DegreeTableSql("edges"));

    std::string label = Human(graph.num_vertices) + "v/" +
                        Human(graph.num_edges) + "e";
    PrintCell(label);
    PrintSeconds(TimeQuery(
        engine, workloads::PageRankOperatorSql("edges", damping, 0.0,
                                               iterations)));
    PrintSeconds(TimeQuery(
        engine, workloads::PageRankIterateSql("edges", "deg",
                                              graph.num_vertices, damping,
                                              iterations)));
    PrintSeconds(TimeQuery(
        engine, workloads::PageRankRecursiveCteSql("edges", "deg",
                                                   graph.num_vertices,
                                                   damping, iterations)));

    auto edges_table = engine.catalog().GetTable("edges");
    if (!edges_table.ok()) return 1;
    auto spark = MakeRddEngine();
    PrintSeconds(TimeCall(
        [&] { return spark->PageRank(**edges_table, damping, iterations); }));
    auto matlab = MakeSingleThreadedEngine();
    PrintSeconds(TimeCall(
        [&] { return matlab->PageRank(**edges_table, damping, iterations); }));
    auto madlib = MakeUdfEngine();
    PrintSeconds(TimeCall(
        [&] { return madlib->PageRank(**edges_table, damping, iterations); }));
    EndRow();
    std::fflush(stdout);
  }
  return 0;
}
