/// \file bench_join_agg.cc
/// Before/after harness for PR 4's parallel pipeline breakers: join build
/// (serial row-at-a-time vs. morsel-parallel CAS publication), join probe
/// (per-row hash + per-cell materialization vs. chunk-hashed selection
/// vectors + bulk gather), and hash aggregation (per-row consume + serial
/// merge vs. vectorized consume + radix-partitioned parallel merge).
///
/// The "legacy" variants are faithful replicas of the pre-PR code paths
/// (see git history of exec/hash_join.cc and exec/aggregate.cc): per-cell
/// type dispatch through a switch, the linear `h*31 + cell` combiner, and
/// row-at-a-time AppendFrom materialization. Keeping them here — instead
/// of benchmarking against a checkout — keeps the comparison honest under
/// identical compilers/flags and alive as the new code evolves.
///
/// `--json=PATH` additionally writes machine-readable results (consumed
/// by tools/bench_report.sh).

#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/hash_kernels.h"
#include "sql/logical_plan.h"
#include "util/parallel.h"
#include "storage/data_chunk.h"
#include "storage/table.h"

namespace soda::bench {
namespace {

// --- Legacy replicas (pre-PR paths) ----------------------------------------

/// Pre-PR per-cell hash: type dispatch + validity branch per call.
uint64_t LegacyHashCell(const Column& col, size_t row) {
  if (col.IsNull(row)) return 0x9E3779B97F4A7C15ULL;
  switch (col.type()) {
    case DataType::kBool:
    case DataType::kBigInt:
      return MixHash(static_cast<uint64_t>(col.GetBigInt(row)));
    default:
      return 0;  // benchmark keys are BIGINT
  }
}

/// Pre-PR row hash: linear `h*31 + cell` fold.
uint64_t LegacyRowHash(const Table& t, const std::vector<size_t>& keys,
                       size_t row) {
  uint64_t h = kHashSeed;
  for (size_t k : keys) h = h * 31 + LegacyHashCell(t.column(k), row);
  return h;
}

struct LegacyJoinTable {
  std::vector<uint32_t> head, next;
  std::vector<uint64_t> hashes;
  uint64_t mask = 0;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
};

/// Pre-PR JoinHashTable::Build: serial, one row-hash and one chain insert
/// at a time.
LegacyJoinTable LegacyBuild(const Table& build,
                            const std::vector<size_t>& keys) {
  LegacyJoinTable t;
  const size_t n = build.num_rows();
  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  t.mask = buckets - 1;
  t.head.assign(buckets, LegacyJoinTable::kInvalid);
  t.next.assign(n, LegacyJoinTable::kInvalid);
  t.hashes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = LegacyRowHash(build, keys, i);
    t.hashes[i] = h;
    uint64_t slot = h & t.mask;
    t.next[i] = t.head[slot];
    t.head[slot] = static_cast<uint32_t>(i);
  }
  return t;
}

/// Pre-PR probe: per-row hash, chain walk, per-cell AppendFrom.
size_t LegacyProbe(const LegacyJoinTable& t, const Table& build,
                   const Table& probe, const std::vector<size_t>& build_keys,
                   const std::vector<size_t>& probe_keys,
                   const Schema& out_schema) {
  size_t out_rows = 0;
  DataChunk out(out_schema);
  const size_t left_cols = probe.num_columns();
  for (size_t row = 0; row < probe.num_rows(); ++row) {
    uint64_t h = LegacyRowHash(probe, probe_keys, row);
    for (uint32_t i = t.head[h & t.mask]; i != LegacyJoinTable::kInvalid;
         i = t.next[i]) {
      if (t.hashes[i] != h) continue;
      bool equal = true;
      for (size_t c = 0; c < build_keys.size(); ++c) {
        if (!CellsEqual(probe.column(probe_keys[c]), row,
                        build.column(build_keys[c]), i)) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      for (size_t c = 0; c < left_cols; ++c) {
        out.column(c).AppendFrom(probe.column(c), row);
      }
      for (size_t c = 0; c < build.num_columns(); ++c) {
        out.column(left_cols + c).AppendFrom(build.column(c), i);
      }
      if (out.num_rows() >= kChunkCapacity) {
        out_rows += out.num_rows();
        out = DataChunk(out_schema);
      }
    }
  }
  return out_rows + out.num_rows();
}

/// Pre-PR aggregation state: the exact field set and update/merge logic
/// of the old AggState (notably double-typed min/max — the source of the
/// BIGINT precision bug this PR fixed).
struct LegacyAggState {
  int64_t count = 0;
  int64_t isum = 0;
  double sum = 0;
  double sumsq = 0;
  double min = 0;
  double max = 0;
  void UpdateNumeric(double v, int64_t iv) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    isum += iv;
    sum += v;
    sumsq += v * v;
  }
  void Merge(const LegacyAggState& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    count += o.count;
    isum += o.isum;
    sum += o.sum;
    sumsq += o.sumsq;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
};

/// Pre-PR per-worker group table: single-BIGINT-key fast path through an
/// unordered_map, keys materialized into a Column on insert, group-major
/// state array (num_specs states per group) — as in the old GroupTable.
struct LegacyGroupTable {
  explicit LegacyGroupTable(size_t num_specs)
      : keys(DataType::kBigInt), num_specs(num_specs) {}
  Column keys;
  std::vector<LegacyAggState> states;
  std::unordered_map<int64_t, uint32_t> int_index;
  size_t num_specs;
  size_t NumGroups() const { return states.size() / num_specs; }
  uint32_t FindOrCreateInt(int64_t key, const Column& col, size_t row) {
    auto [it, inserted] =
        int_index.emplace(key, static_cast<uint32_t>(NumGroups()));
    if (inserted) {
      keys.AppendFrom(col, row);
      states.resize(states.size() + num_specs);
    }
    return it->second;
  }
};

/// Pre-PR consume, replicated from the old AggregateSink::Consume: per
/// row, a FindOrCreate and one per-spec update loop with the arg column
/// re-read per spec. Specs are count(*)/sum/min/max on `val_col`.
void LegacyAggConsume(LegacyGroupTable& local, const DataChunk& chunk,
                      size_t key_col, size_t val_col) {
  const Column& keys = chunk.column(key_col);
  const Column& arg = chunk.column(val_col);
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    size_t g = local.FindOrCreateInt(keys.GetBigInt(row), keys, row);
    LegacyAggState* states = &local.states[g * local.num_specs];
    for (size_t s = 0; s < local.num_specs; ++s) {
      if (s == 0) {  // count(*)
        states[s].count++;
        continue;
      }
      if (arg.IsNull(row)) continue;
      double v = arg.GetNumeric(row);
      int64_t iv = arg.GetBigInt(row);
      states[s].UpdateNumeric(v, iv);
    }
  }
}

/// Pre-PR finalize, replicated from the old AggregateSink::Finalize:
/// serial merge into the first table (per-group linear key hash through
/// the per-cell dispatch, map lookup, per-spec Merge), then row-at-a-time
/// materialization via AppendFrom/AppendBigInt.
Table LegacyAggFinalize(std::vector<LegacyGroupTable> locals,
                        const Schema& out_schema) {
  LegacyGroupTable& merged = locals[0];
  for (size_t w = 1; w < locals.size(); ++w) {
    LegacyGroupTable& src = locals[w];
    const size_t groups = src.NumGroups();
    for (size_t g = 0; g < groups; ++g) {
      // The old merge computed the combined hash before taking the
      // int-key fast path; keep that (wasted) work for fidelity.
      uint64_t hash = kHashSeed * 31 + LegacyHashCell(src.keys, g);
      (void)hash;
      size_t target =
          merged.FindOrCreateInt(src.keys.GetBigInt(g), src.keys, g);
      for (size_t s = 0; s < merged.num_specs; ++s) {
        merged.states[target * merged.num_specs + s].Merge(
            src.states[g * merged.num_specs + s]);
      }
    }
  }
  Table out("out", out_schema);
  const size_t groups = merged.NumGroups();
  for (size_t g = 0; g < groups; ++g) {
    out.column(0).AppendFrom(merged.keys, g);
    const LegacyAggState* states = &merged.states[g * merged.num_specs];
    out.column(1).AppendBigInt(states[0].count);                     // count
    out.column(2).AppendBigInt(states[1].isum);                      // sum
    out.column(3).AppendBigInt(static_cast<int64_t>(states[2].min));  // min
    out.column(4).AppendBigInt(static_cast<int64_t>(states[3].max));  // max
  }
  return out;
}

/// Pre-PR generic (multi-key) group table: hash -> candidate-group chain
/// with per-cell verify, keys materialized row-at-a-time — as in the old
/// GroupTable::FindOrCreate. Specs fixed to count(*)/sum as in the
/// harness's multi-key case.
struct LegacyMultiKeyTable {
  LegacyMultiKeyTable()
      : keys("keys", Schema({Field("k1", DataType::kBigInt),
                             Field("k2", DataType::kBigInt)})) {}
  Table keys;  ///< like the old GroupTable: keys live in a Table
  std::vector<LegacyAggState> states;  // 2 specs per group
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  size_t NumGroups() const { return states.size() / 2; }
  // Old GroupCellsEqual: NULLs group together, then the type-dispatched
  // cell comparison.
  static bool CellsGroupEqual(const Column& a, size_t ra, const Column& b,
                              size_t rb) {
    bool na = a.IsNull(ra), nb = b.IsNull(rb);
    if (na || nb) return na && nb;
    return CellsEqual(a, ra, b, rb);
  }
  uint32_t FindOrCreate(uint64_t hash, const std::vector<const Column*>& cols,
                        size_t row) {
    auto& bucket = index[hash];
    for (uint32_t g : bucket) {
      bool equal = true;
      for (size_t c = 0; c < cols.size(); ++c) {
        if (!CellsGroupEqual(*cols[c], row, keys.column(c), g)) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    uint32_t g = static_cast<uint32_t>(NumGroups());
    for (size_t c = 0; c < cols.size(); ++c) {
      keys.column(c).AppendFrom(*cols[c], row);
    }
    states.resize(states.size() + 2);
    bucket.push_back(g);
    return g;
  }
};

/// Pre-PR multi-key consume: per row, the linear `h*31 + HashCell` fold
/// through per-cell dispatch, then the chain lookup. The spec loop looked
/// the argument column up from the chunk per row and ran the full
/// all-fields state update.
void LegacyMultiKeyConsume(LegacyMultiKeyTable& local, const DataChunk& chunk,
                           size_t val_col) {
  std::vector<const Column*> key_cols{&chunk.column(0), &chunk.column(1)};
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    uint64_t hash = kHashSeed;
    hash = hash * 31 + LegacyHashCell(*key_cols[0], row);
    hash = hash * 31 + LegacyHashCell(*key_cols[1], row);
    size_t g = local.FindOrCreate(hash, key_cols, row);
    LegacyAggState* states = &local.states[g * 2];
    states[0].count++;  // count(*)
    const Column& arg = chunk.column(val_col);
    if (!arg.IsNull(row)) {
      states[1].UpdateNumeric(arg.GetNumeric(row), arg.GetBigInt(row));
    }
  }
}

// --- Harness ----------------------------------------------------------------

TablePtr MakeTable(const std::string& name,
                   const std::vector<std::string>& cols,
                   std::vector<std::vector<int64_t>> data) {
  std::vector<Field> fields;
  for (const auto& c : cols) fields.emplace_back(c, DataType::kBigInt);
  auto t = std::make_shared<Table>(name, Schema(std::move(fields)));
  for (size_t i = 0; i < data.size(); ++i) {
    Status st = t->SetColumn(i, Column::FromBigInts(std::move(data[i])));
    if (!st.ok()) std::exit(1);
  }
  return t;
}

struct JsonWriter {
  std::vector<std::pair<std::string, double>> entries;
  void Add(const std::string& name, double seconds) {
    entries.emplace_back(name, seconds);
  }
};

}  // namespace
}  // namespace soda::bench

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;

  // The parallel paths need a real pool; 8 workers unless the caller
  // already set SODA_THREADS (must happen before first pool use).
  setenv("SODA_THREADS", "8", /*overwrite=*/0);

  Scale scale = ParseScale(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t B = 8'000'000 / scale.divisor;   // build side rows
  const size_t P = 16'000'000 / scale.divisor;  // probe side rows
  const size_t G = std::max<size_t>(1024, P / 64);  // aggregate groups
  std::printf("bench_join_agg scale=%s build=%s probe=%s groups=%s "
              "threads=%s\n\n",
              scale.name, Human(B).c_str(), Human(P).c_str(),
              Human(G).c_str(), getenv("SODA_THREADS"));

  // Unique build keys (each probe row matches exactly once); values kept
  // small so sums stay exact.
  std::vector<int64_t> bk(B), bw(B), pk(P), pv(P);
  for (size_t i = 0; i < B; ++i) {
    bk[i] = static_cast<int64_t>(i);
    bw[i] = static_cast<int64_t>(i % 997);
  }
  for (size_t i = 0; i < P; ++i) {
    pk[i] = static_cast<int64_t>(i % B);
    pv[i] = static_cast<int64_t>(i % 991);
  }
  TablePtr build =
      MakeTable("build", {"k", "w"}, {std::move(bk), std::move(bw)});
  TablePtr probe =
      MakeTable("probe", {"k", "v"}, {std::move(pk), std::move(pv)});

  JsonWriter json;
  PrintHeader({"case", "legacy_s", "new_s", "speedup"});

  auto report = [&](const char* name, double legacy, double now) {
    PrintCell(name);
    PrintSeconds(legacy);
    PrintSeconds(now);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", legacy / now);
    PrintCell(buf);
    EndRow();
    json.Add(std::string(name) + ".legacy", legacy);
    json.Add(std::string(name) + ".new", now);
  };

  const std::vector<size_t> key0 = {0};

  // --- Join build: serial row-at-a-time vs. morsel-parallel CAS ---------
  {
    double legacy = 1e300, now = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t1;
      LegacyJoinTable lt = LegacyBuild(*build, key0);
      legacy = std::min(legacy, t1.ElapsedSeconds());
      if (lt.head.empty()) std::exit(1);

      Timer t2;
      auto ht = JoinHashTable::Build(build, key0);
      now = std::min(now, t2.ElapsedSeconds());
      if (!ht.ok()) std::exit(1);
    }
    report("join_build", legacy, now);
  }

  // --- Join probe: per-row hash + AppendFrom vs. chunk hash + gather ----
  {
    Schema out_schema({Field("pk", DataType::kBigInt),
                       Field("pv", DataType::kBigInt),
                       Field("bk", DataType::kBigInt),
                       Field("bw", DataType::kBigInt)});
    LegacyJoinTable lt = LegacyBuild(*build, key0);
    auto ht_r = JoinHashTable::Build(build, key0);
    if (!ht_r.ok()) std::exit(1);
    std::shared_ptr<const JoinHashTable> ht = ht_r.ValueOrDie();

    double legacy = 1e300, now = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t1;
      size_t rows1 = LegacyProbe(lt, *build, *probe, key0, key0, out_schema);
      legacy = std::min(legacy, t1.ElapsedSeconds());

      HashJoinProbeTransform transform(ht, key0, out_schema);
      size_t rows2 = 0;
      auto emit = [&rows2](DataChunk& c) {
        rows2 += c.num_rows();
        return Status::OK();
      };
      Timer t2;
      // Feed the probe side in executor-sized chunks, as the pipeline does.
      for (size_t begin = 0; begin < probe->num_rows();
           begin += kChunkCapacity) {
        const size_t len =
            std::min(kChunkCapacity, probe->num_rows() - begin);
        DataChunk chunk(probe->schema());
        for (size_t c = 0; c < probe->num_columns(); ++c) {
          chunk.column(c).AppendSlice(probe->column(c), begin, len);
        }
        if (!transform.Apply(chunk, emit).ok()) std::exit(1);
      }
      now = std::min(now, t2.ElapsedSeconds());
      if (rows1 != probe->num_rows() || rows2 != probe->num_rows()) {
        std::fprintf(stderr, "probe row mismatch: %zu vs %zu\n", rows1,
                     rows2);
        std::exit(1);
      }
    }
    report("join_probe", legacy, now);
  }

  // --- Aggregate: per-row consume + serial merge vs. the AggregateSink
  // (vectorized consume, radix-partitioned parallel merge, fragment
  // materialization). Both sides are driven at the operator level from
  // the same table — no SQL parse/scan overhead on either.
  {
    std::vector<int64_t> gk(P), gv(P);
    for (size_t i = 0; i < P; ++i) {
      gk[i] = static_cast<int64_t>(i % G);
      gv[i] = static_cast<int64_t>(i % 983);
    }
    TablePtr agg = MakeTable("agg", {"g", "v"}, {std::move(gk), std::move(gv)});

    // SELECT g, count(*), sum(v), min(v), max(v) ... GROUP BY g, as the
    // binder would lower it.
    auto child = std::make_unique<PlanNode>(PlanKind::kScan);
    child->schema = agg->schema();
    PlanNode plan(PlanKind::kAggregate);
    plan.children.push_back(std::move(child));
    plan.num_group_cols = 1;
    plan.aggregates = {{"count", -1, DataType::kBigInt},
                       {"sum", 1, DataType::kBigInt},
                       {"min", 1, DataType::kBigInt},
                       {"max", 1, DataType::kBigInt}};
    plan.schema = Schema({Field("g", DataType::kBigInt),
                          Field("cnt", DataType::kBigInt),
                          Field("sum", DataType::kBigInt),
                          Field("min", DataType::kBigInt),
                          Field("max", DataType::kBigInt)});

    // Pre-slice the input into executor-sized chunks outside the timers —
    // chunk production belongs to the scan, not the operator under test.
    std::vector<DataChunk> chunks;
    for (size_t begin = 0; begin < agg->num_rows(); begin += kChunkCapacity) {
      const size_t len = std::min(kChunkCapacity, agg->num_rows() - begin);
      DataChunk chunk(agg->schema());
      for (size_t c = 0; c < agg->num_columns(); ++c) {
        chunk.column(c).AppendSlice(agg->column(c), begin, len);
      }
      chunks.push_back(std::move(chunk));
    }

    // Both sides consume the same chunk stream with the same morsel-order
    // worker rotation (16384 rows = 8 chunks per morsel).
    const size_t workers = NumWorkers();
    auto worker_of = [workers](size_t chunk_index) {
      return (chunk_index / 8) % workers;
    };

    double l_consume = 1e300, l_finalize = 1e300, n_consume = 1e300,
           n_finalize = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t1;
      std::vector<LegacyGroupTable> locals(workers, LegacyGroupTable(4));
      for (size_t i = 0; i < chunks.size(); ++i) {
        LegacyAggConsume(locals[worker_of(i)], chunks[i], 0, 1);
      }
      double lc = t1.ElapsedSeconds();
      Timer t2;
      Table out = LegacyAggFinalize(std::move(locals), plan.schema);
      double lf = t2.ElapsedSeconds();
      if (out.num_rows() != G) std::exit(1);

      auto sink = MakeAggregateSink(plan);
      Timer t3;
      SinkContext sctx;
      for (size_t i = 0; i < chunks.size(); ++i) {
        sctx.worker_id = worker_of(i);
        if (!sink->Consume(chunks[i], sctx).ok()) std::exit(1);
      }
      double nc = t3.ElapsedSeconds();
      Timer t4;
      if (!sink->Finalize().ok()) std::exit(1);
      double nf = t4.ElapsedSeconds();
      if (sink->result()->num_rows() != G) std::exit(1);

      l_consume = std::min(l_consume, lc);
      l_finalize = std::min(l_finalize, lf);
      n_consume = std::min(n_consume, nc);
      n_finalize = std::min(n_finalize, nf);
    }
    report("agg_consume", l_consume, n_consume);
    report("agg_finalize", l_finalize, n_finalize);
    report("agg_total", l_consume + l_finalize, n_consume + n_finalize);
  }

  // --- Multi-key aggregate: GROUP BY (k1, k2) routes both sides through
  // their generic paths, where the hashing change itself is visible —
  // legacy folds `h*31 + HashCell` per cell per row, the new path hashes
  // whole chunks with the columnar kernels.
  {
    std::vector<int64_t> k1(P), k2(P), v(P);
    for (size_t i = 0; i < P; ++i) {
      k1[i] = static_cast<int64_t>(i % 256);
      k2[i] = static_cast<int64_t>((i / 7) % (G / 128));
      v[i] = static_cast<int64_t>(i % 983);
    }
    TablePtr agg =
        MakeTable("agg2", {"k1", "k2", "v"},
                  {std::move(k1), std::move(k2), std::move(v)});

    auto child = std::make_unique<PlanNode>(PlanKind::kScan);
    child->schema = agg->schema();
    PlanNode plan(PlanKind::kAggregate);
    plan.children.push_back(std::move(child));
    plan.num_group_cols = 2;
    plan.aggregates = {{"count", -1, DataType::kBigInt},
                       {"sum", 2, DataType::kBigInt}};
    plan.schema = Schema({Field("k1", DataType::kBigInt),
                          Field("k2", DataType::kBigInt),
                          Field("cnt", DataType::kBigInt),
                          Field("sum", DataType::kBigInt)});

    std::vector<DataChunk> chunks;
    for (size_t begin = 0; begin < agg->num_rows(); begin += kChunkCapacity) {
      const size_t len = std::min(kChunkCapacity, agg->num_rows() - begin);
      DataChunk chunk(agg->schema());
      for (size_t c = 0; c < agg->num_columns(); ++c) {
        chunk.column(c).AppendSlice(agg->column(c), begin, len);
      }
      chunks.push_back(std::move(chunk));
    }
    const size_t workers = NumWorkers();

    double legacy = 1e300, now = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t1;
      std::vector<LegacyMultiKeyTable> locals(workers);
      for (size_t i = 0; i < chunks.size(); ++i) {
        LegacyMultiKeyConsume(locals[(i / 8) % workers], chunks[i], 2);
      }
      // Pre-PR finalize: serial per-group rehash + merge into the first
      // local, then row-at-a-time materialization.
      LegacyMultiKeyTable& merged = locals[0];
      for (size_t w = 1; w < locals.size(); ++w) {
        LegacyMultiKeyTable& src = locals[w];
        std::vector<const Column*> src_cols{&src.keys.column(0),
                                            &src.keys.column(1)};
        for (uint32_t g = 0; g < src.NumGroups(); ++g) {
          uint64_t hash = kHashSeed;
          hash = hash * 31 + LegacyHashCell(*src_cols[0], g);
          hash = hash * 31 + LegacyHashCell(*src_cols[1], g);
          uint32_t target = merged.FindOrCreate(hash, src_cols, g);
          merged.states[target * 2].Merge(src.states[g * 2]);
          merged.states[target * 2 + 1].Merge(src.states[g * 2 + 1]);
        }
      }
      Table lout("out", plan.schema);
      for (uint32_t g = 0; g < merged.NumGroups(); ++g) {
        lout.column(0).AppendFrom(merged.keys.column(0), g);
        lout.column(1).AppendFrom(merged.keys.column(1), g);
        lout.column(2).AppendBigInt(merged.states[g * 2].count);
        lout.column(3).AppendBigInt(merged.states[g * 2 + 1].isum);
      }
      legacy = std::min(legacy, t1.ElapsedSeconds());
      if (lout.num_rows() == 0) std::exit(1);

      auto sink = MakeAggregateSink(plan);
      Timer t2;
      SinkContext sctx;
      for (size_t i = 0; i < chunks.size(); ++i) {
        sctx.worker_id = (i / 8) % workers;
        if (!sink->Consume(chunks[i], sctx).ok()) std::exit(1);
      }
      if (!sink->Finalize().ok()) std::exit(1);
      now = std::min(now, t2.ElapsedSeconds());
      size_t lgroups = 0;
      for (const auto& l : locals) lgroups += l.NumGroups();
      if (sink->result()->num_rows() == 0 || lgroups == 0) std::exit(1);
    }
    report("agg_multikey", legacy, now);
  }

  if (json_path) {
    std::ofstream out(json_path);
    out << "{\"bench\": \"bench_join_agg\", \"scale\": \"" << scale.name
        << "\", \"threads\": " << getenv("SODA_THREADS")
        << ", \"build_rows\": " << B << ", \"probe_rows\": " << P
        << ", \"groups\": " << G << ", \"results\": {";
    for (size_t i = 0; i < json.entries.size(); ++i) {
      if (i) out << ", ";
      out << "\"" << json.entries[i].first << "\": " << json.entries[i].second;
    }
    out << "}}\n";
  }
  return 0;
}
