/// Microbenchmarks (google-benchmark) for the performance-critical kernels
/// the paper's design decisions rest on: compiled lambda evaluation vs a
/// hard-coded metric (§7), CSR construction with re-labeling (§6.3),
/// vectorized expression evaluation, and the parallel aggregation merge.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "expr/evaluator.h"
#include "expr/lambda_kernel.h"
#include "graph/csr.h"
#include "graph/ldbc_generator.h"
#include "storage/data_chunk.h"
#include "storage/table.h"
#include "util/parallel.h"
#include "util/query_guard.h"
#include "util/rng.h"

namespace soda {
namespace {

ExprPtr SquaredL2Body(size_t d) {
  ExprPtr sum;
  for (size_t j = 0; j < d; ++j) {
    auto diff = Expression::Binary(
        BinaryOp::kSub, Expression::ColumnRef(j, DataType::kDouble, "a"),
        Expression::ColumnRef(d + j, DataType::kDouble, "b"),
        DataType::kDouble);
    auto sq = Expression::Binary(BinaryOp::kPow, std::move(diff),
                                 Expression::Literal(Value::BigInt(2)),
                                 DataType::kDouble);
    sum = sum ? Expression::Binary(BinaryOp::kAdd, std::move(sum),
                                   std::move(sq), DataType::kDouble)
              : std::move(sq);
  }
  return sum;
}

void BM_HardcodedL2(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> a(d), b(d);
  for (size_t j = 0; j < d; ++j) {
    a[j] = rng.NextDouble();
    b[j] = rng.NextDouble();
  }
  for (auto _ : state) {
    double acc = 0;
    for (size_t j = 0; j < d; ++j) {
      double diff = a[j] - b[j];
      acc += diff * diff;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_HardcodedL2)->Arg(3)->Arg(10)->Arg(50);

void BM_LambdaKernelL2(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto kernel = LambdaKernel::Compile(*SquaredL2Body(d), d);
  Rng rng(1);
  std::vector<double> a(d), b(d);
  for (size_t j = 0; j < d; ++j) {
    a[j] = rng.NextDouble();
    b[j] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->Eval(a.data(), b.data()));
  }
}
BENCHMARK(BM_LambdaKernelL2)->Arg(3)->Arg(10)->Arg(50);

void BM_CsrBuild(benchmark::State& state) {
  const size_t vertices = static_cast<size_t>(state.range(0));
  GeneratedGraph g = GenerateSocialGraph(vertices, 16, 7);
  for (auto _ : state) {
    auto csr = CsrBuilder::Build(g.src, g.dst);
    benchmark::DoNotOptimize(csr->num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_VectorizedExpression(benchmark::State& state) {
  const size_t rows = kChunkCapacity;
  Rng rng(3);
  std::vector<double> x(rows), y(rows);
  for (size_t i = 0; i < rows; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  DataChunk chunk;
  chunk.AddColumn(Column::FromDoubles(std::move(x)));
  chunk.AddColumn(Column::FromDoubles(std::move(y)));
  // (x - y)^2 + (y - x)^2
  auto expr = Expression::Binary(
      BinaryOp::kAdd,
      Expression::Binary(
          BinaryOp::kPow,
          Expression::Binary(BinaryOp::kSub,
                             Expression::ColumnRef(0, DataType::kDouble, "x"),
                             Expression::ColumnRef(1, DataType::kDouble, "y"),
                             DataType::kDouble),
          Expression::Literal(Value::BigInt(2)), DataType::kDouble),
      Expression::Binary(
          BinaryOp::kPow,
          Expression::Binary(BinaryOp::kSub,
                             Expression::ColumnRef(1, DataType::kDouble, "y"),
                             Expression::ColumnRef(0, DataType::kDouble, "x"),
                             DataType::kDouble),
          Expression::Literal(Value::BigInt(2)), DataType::kDouble),
      DataType::kDouble);
  for (auto _ : state) {
    Column out;
    Status st = EvaluateExpression(*expr, chunk, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_VectorizedExpression);

void BM_ChunkScan(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<double> vals(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) vals[i] = rng.NextDouble();
  Table t("t", Schema({Field("x", DataType::kDouble)}));
  (void)t.SetColumn(0, Column::FromDoubles(std::move(vals)));
  for (auto _ : state) {
    DataChunk chunk;
    double sum = 0;
    for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
      t.ScanSlice(offset, kChunkCapacity, &chunk);
      const double* data = chunk.column(0).F64Data();
      for (size_t i = 0; i < chunk.num_rows(); ++i) sum += data[i];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChunkScan);

/// Cost of the resource governor on the hot loop: an unguarded ParallelFor
/// sum over 10M tuples vs the guard-aware overload that probes the
/// cancel/deadline/fault state once per morsel. The probe is one relaxed
/// atomic load plus a steady-clock read every morsel (16K tuples), so the
/// two should stay within ~2% of each other.
constexpr size_t kScanTuples = 10'000'000;

std::vector<int64_t> MakeScanInput() {
  std::vector<int64_t> data(kScanTuples);
  Rng rng(7);
  for (auto& v : data) v = static_cast<int64_t>(rng.Next() & 0xffff);
  return data;
}

void BM_ParallelForScan(benchmark::State& state) {
  const std::vector<int64_t> data = MakeScanInput();
  for (auto _ : state) {
    std::atomic<int64_t> sum{0};
    ParallelFor(data.size(), [&](size_t begin, size_t end, size_t) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += data[i];
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScanTuples));
}
BENCHMARK(BM_ParallelForScan)->Unit(benchmark::kMillisecond);

void BM_GuardedParallelForScan(benchmark::State& state) {
  const std::vector<int64_t> data = MakeScanInput();
  // No timeout, no budget: pure probe overhead.
  QueryGuard guard(QueryLimits{}, nullptr);
  for (auto _ : state) {
    std::atomic<int64_t> sum{0};
    Status st =
        ParallelFor(&guard, data.size(), [&](size_t begin, size_t end, size_t) {
          int64_t local = 0;
          for (size_t i = begin; i < end; ++i) local += data[i];
          sum.fetch_add(local, std::memory_order_relaxed);
        });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kScanTuples));
}
BENCHMARK(BM_GuardedParallelForScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace soda

BENCHMARK_MAIN();
