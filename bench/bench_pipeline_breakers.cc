/// \file bench_pipeline_breakers.cc
/// Materialized vs pipelined breakers over a wide scan.
///
/// The physical-plan scheduler streams chunks through limit and union-all
/// instead of materializing every intermediate relation. Each row pits the
/// pipelined query against a query shaped like the old interpreter's work:
///
///   limit_bounded    full materialization of the scan vs LIMIT 10 with a
///                    bounded scan (touches O(k) rows).
///   limit_filtered   full filtered materialization vs LIMIT 10 with
///                    cross-worker early exit on the sink's done() flag.
///   union_all        union plus an extra full copy of the result (the old
///                    per-node materialization) vs streaming both branches
///                    into one shared sink.
///
/// Acceptance: the pipelined column must never be slower.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/engine.h"

namespace soda::bench {
namespace {

int Run(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv);
  const size_t target = 16777216 / scale.divisor;  // paper: 16M rows

  Engine engine;
  if (!engine.Execute("CREATE TABLE big (a BIGINT, b BIGINT)").ok()) return 1;
  std::string seed = "INSERT INTO big VALUES ";
  for (int i = 0; i < 16; ++i) {
    if (i) seed += ", ";
    seed += "(" + std::to_string(i) + ", " + std::to_string(100 - i) + ")";
  }
  (void)TimeQuery(engine, seed);
  size_t rows = 16;
  while (rows < target) {
    (void)TimeQuery(engine, "INSERT INTO big SELECT a, b FROM big");
    rows *= 2;
  }

  std::printf("pipeline breakers: scale=%s rows=%s\n", scale.name,
              Human(rows).c_str());
  PrintHeader({"case", "materialized_s", "pipelined_s", "speedup"});

  struct Case {
    const char* name;
    std::string materialized;
    std::string pipelined;
  };
  const Case cases[] = {
      {"limit_bounded", "SELECT a FROM big", "SELECT a FROM big LIMIT 10"},
      {"limit_filtered", "SELECT a FROM big WHERE a >= 0",
       "SELECT a FROM big WHERE a >= 0 LIMIT 10"},
      {"union_all",
       "SELECT a FROM (SELECT a FROM big UNION ALL SELECT a FROM big) u",
       "SELECT a FROM big UNION ALL SELECT a FROM big"},
  };
  for (const Case& c : cases) {
    // Warm both shapes once so neither pays first-touch costs.
    (void)TimeQuery(engine, c.pipelined);
    (void)TimeQuery(engine, c.materialized);
    double mat = TimeQuery(engine, c.materialized);
    double pipe = TimeQuery(engine, c.pipelined);
    PrintCell(c.name);
    PrintSeconds(mat);
    PrintSeconds(pipe);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", pipe > 0 ? mat / pipe : 0.0);
    PrintCell(buf);
    EndRow();
  }
  return 0;
}

}  // namespace
}  // namespace soda::bench

int main(int argc, char** argv) { return soda::bench::Run(argc, argv); }
