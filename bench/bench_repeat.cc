/// \file bench_repeat.cc
/// Cold-vs-warm harness for PR 9's repeated-traffic caches: the plan
/// cache (ad-hoc statement memoization), the join hash-table recycler
/// (build-fragment reuse), and PREPARE/EXECUTE (no lex/parse/bind/
/// optimize on re-execution).
///
/// Each case runs the *same* statement stream twice through one engine:
///
///   cold  — every cache cleared before every iteration, so each run
///           pays the full first-execution cost (the pre-PR behavior);
///   warm  — caches left alone, so repeated traffic reuses plans and
///           completed hash-table builds.
///
/// Reuse is proven, not assumed: the warm pass records the hit-counter
/// deltas (plan_cache hits, ht_cache hits) and the harness exits loudly
/// if a warm pass did not actually hit its cache on every iteration.
///
/// `--json=PATH` additionally writes machine-readable results (consumed
/// by tools/bench_report.sh).

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "storage/table.h"
#include "types/value.h"

namespace soda::bench {
namespace {

/// Registers a two-BIGINT-column table directly with the catalog (bulk
/// loading through INSERT text would swamp the numbers we care about).
void RegisterTable(Engine& engine, const std::string& name,
                   const std::string& c0, std::vector<int64_t> v0,
                   const std::string& c1, std::vector<int64_t> v1) {
  auto table = std::make_shared<Table>(
      name, Schema({Field(c0, DataType::kBigInt),
                    Field(c1, DataType::kBigInt)}));
  if (!table->SetColumn(0, Column::FromBigInts(std::move(v0))).ok() ||
      !table->SetColumn(1, Column::FromBigInts(std::move(v1))).ok() ||
      !engine.catalog().RegisterTable(std::move(table)).ok()) {
    std::fprintf(stderr, "bench_repeat: table registration failed\n");
    std::exit(1);
  }
}

/// An ad-hoc statement whose cost is dominated by lex/parse/bind/optimize
/// rather than by data volume: a long disjunctive predicate over an empty
/// table, so the measured difference is purely statement handling. This
/// is the dashboard-query shape the plan cache targets.
std::string PointQuery(const std::string& extra_predicate) {
  std::string sql = "SELECT count(*), sum(v), min(v), max(v) FROM small "
                    "WHERE (";
  for (int i = 0; i < 192; ++i) {
    if (i) sql += " OR ";
    sql += "k = " + std::to_string(i * 3);
  }
  sql += ")";
  if (!extra_predicate.empty()) sql += " AND " + extra_predicate;
  return sql;
}

void ClearAll(Engine& engine) {
  engine.plan_cache().Clear();
  engine.ht_recycler().EvictAll();
}

struct JsonWriter {
  std::vector<std::pair<std::string, double>> entries;
  void Add(const std::string& name, double v) { entries.emplace_back(name, v); }
};

}  // namespace
}  // namespace soda::bench

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;

  Scale scale = ParseScale(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t B = 2'000'000 / scale.divisor;  // fact rows behind the build
  const size_t G = 512;                        // aggregate groups
  const size_t P = 1024;                       // probe rows
  const int kAdHocIters = 200;                 // plan-cache / prepared reps
  const int kJoinIters = 10;                   // recycler reps
  std::printf("bench_repeat scale=%s fact=%s groups=%zu probe=%zu\n\n",
              scale.name, Human(B).c_str(), G, P);

  Engine engine;
  {
    RegisterTable(engine, "small", "k", {}, "v", {});
    std::vector<int64_t> bg(B), bv(B), pg(P), pv(P);
    for (size_t i = 0; i < B; ++i) {
      bg[i] = static_cast<int64_t>(i % G);
      bv[i] = static_cast<int64_t>(i % 997);
    }
    for (size_t i = 0; i < P; ++i) {
      pg[i] = static_cast<int64_t>(i % G);
      pv[i] = static_cast<int64_t>(i);
    }
    RegisterTable(engine, "big", "g", std::move(bg), "v", std::move(bv));
    RegisterTable(engine, "probe", "g", std::move(pg), "pv", std::move(pv));
  }

  JsonWriter json;
  PrintHeader({"case", "cold_s", "warm_s", "speedup", "warm hits"});

  auto report = [&](const char* name, double cold, double warm,
                    int64_t hits, int64_t expected_hits) {
    if (hits < expected_hits) {
      std::fprintf(stderr,
                   "bench_repeat: %s warm pass hit the cache %lld/%lld "
                   "times — reuse broken, numbers meaningless\n",
                   name, static_cast<long long>(hits),
                   static_cast<long long>(expected_hits));
      std::exit(1);
    }
    PrintCell(name);
    PrintSeconds(cold);
    PrintSeconds(warm);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", cold / warm);
    PrintCell(buf);
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(hits));
    PrintCell(buf);
    EndRow();
    json.Add(std::string(name) + ".cold", cold);
    json.Add(std::string(name) + ".warm", warm);
    json.Add(std::string(name) + ".speedup", cold / warm);
    json.Add(std::string(name) + ".warm_hits", static_cast<double>(hits));
  };

  // --- Plan cache: the same ad-hoc SELECT, over and over ----------------
  {
    const std::string sql = PointQuery("");
    ClearAll(engine);
    double cold = 0;
    for (int i = 0; i < kAdHocIters; ++i) {
      engine.plan_cache().Clear();
      cold += TimeQuery(engine, sql);
    }
    TimeQuery(engine, sql);  // populate
    int64_t hits0 = engine.plan_cache().stats().hits;
    double warm = 0;
    for (int i = 0; i < kAdHocIters; ++i) warm += TimeQuery(engine, sql);
    report("plan_cache", cold, warm,
           engine.plan_cache().stats().hits - hits0, kAdHocIters);
  }

  // --- Hash-table recycler: a join whose build side is an expensive
  // derived aggregate. Cold re-aggregates the fact table on every run;
  // warm recycles the completed hash table and only probes. -------------
  {
    const std::string sql =
        "SELECT p.g, d.s FROM probe p JOIN "
        "(SELECT g, sum(v) AS s, count(*) AS c FROM big GROUP BY g) d "
        "ON p.g = d.g";
    double cold = 0;
    for (int i = 0; i < kJoinIters; ++i) {
      ClearAll(engine);
      cold += TimeQuery(engine, sql);
    }
    TimeQuery(engine, sql);  // populate both caches
    int64_t hits0 = engine.ht_recycler().stats().hits;
    double warm = 0;
    for (int i = 0; i < kJoinIters; ++i) warm += TimeQuery(engine, sql);
    report("ht_recycle", cold, warm,
           engine.ht_recycler().stats().hits - hits0, kJoinIters);
  }

  // --- PREPARE/EXECUTE vs. re-sending full SQL text. The argument varies
  // per iteration, so the cold side is honest ad-hoc traffic (a different
  // statement each time — the plan cache could not have served it) and
  // the warm side exercises parameter substitution, not plan memoization.
  {
    auto prep = engine.Execute("PREPARE q (BIGINT) AS " + PointQuery("v > $1"));
    if (!prep.ok()) {
      std::fprintf(stderr, "PREPARE failed: %s\n",
                   prep.status().ToString().c_str());
      return 1;
    }
    ClearAll(engine);
    double cold = 0;
    for (int i = 0; i < kAdHocIters; ++i) {
      engine.plan_cache().Clear();
      cold += TimeQuery(engine, PointQuery("v > " + std::to_string(i)));
    }
    // Warm side drives the wire-protocol fast path: typed parameters
    // straight into the prepared plan, no SQL text at all.
    ExecOptions exec;
    double warm = 0;
    int64_t executed = 0;
    for (int i = 0; i < kAdHocIters; ++i) {
      warm += TimeCall([&] {
        auto r = engine.ExecutePrepared("q", {Value::BigInt(i)}, exec);
        if (r.ok()) ++executed;
        return r;
      });
    }
    report("prepared", cold, warm, executed, kAdHocIters);
  }

  if (json_path) {
    std::ofstream out(json_path);
    const char* threads = std::getenv("SODA_THREADS");
    out << "{\"bench\": \"bench_repeat\", \"scale\": \"" << scale.name
        << "\", \"threads\": " << (threads ? threads : "0")
        << ", \"fact_rows\": " << B << ", \"probe_rows\": " << P
        << ", \"ad_hoc_iters\": " << kAdHocIters
        << ", \"join_iters\": " << kJoinIters << ", \"results\": {";
    for (size_t i = 0; i < json.entries.size(); ++i) {
      if (i) out << ", ";
      out << "\"" << json.entries[i].first << "\": " << json.entries[i].second;
    }
    out << "}}\n";
  }
  return 0;
}
