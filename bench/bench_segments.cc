/// \file bench_segments.cc
/// PR-7 storage benchmark: encoded columnar segments + partitioned tables
/// versus the flat column layout (DESIGN.md §9).
///
/// Twin tables with identical rows — `flat` (mutable decoded columns) and
/// `enc` (range-partitioned, sealed into dict/FOR/RLE segments) — are
/// measured on:
///   - full scans (decode bandwidth vs. plain reads),
///   - filtered scans (zone-map skipping + partition pruning vs. the
///     generic Filter transform),
///   - grouped aggregation over a dict-friendly string key,
///   - in-memory footprint (table-level and the string column alone),
///   - checkpoint file size (serde writes sealed tables as segments).
///
/// Times are the min of 3 reps. `--json=path` dumps the series for
/// tools/bench_report.sh → BENCH_pr7.json.

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "storage/checkpoint.h"
#include "storage/column.h"
#include "storage/table.h"

namespace soda::bench {
namespace {

/// Builds the shared row set: a sequential partition key, a small-domain
/// FOR-friendly value, an RLE-friendly run column, and a low-cardinality
/// dictionary-friendly tag.
TablePtr MakeSource(const std::string& name, size_t n) {
  std::vector<int64_t> k(n), v(n), r(n);
  std::vector<std::string> tag(n);
  for (size_t i = 0; i < n; ++i) {
    k[i] = static_cast<int64_t>(i);
    v[i] = static_cast<int64_t>((i * 37) % 1000);
    r[i] = static_cast<int64_t>(i / 64);
    tag[i] = "tag_" + std::to_string(i % 64);
  }
  auto t = std::make_shared<Table>(
      name, Schema({Field("k", DataType::kBigInt), Field("v", DataType::kBigInt),
                    Field("r", DataType::kBigInt),
                    Field("tag", DataType::kVarchar)}));
  if (!t->SetColumn(0, Column::FromBigInts(std::move(k))).ok()) std::exit(1);
  if (!t->SetColumn(1, Column::FromBigInts(std::move(v))).ok()) std::exit(1);
  if (!t->SetColumn(2, Column::FromBigInts(std::move(r))).ok()) std::exit(1);
  if (!t->SetColumn(3, Column::FromStrings(std::move(tag))).ok()) std::exit(1);
  return t;
}

/// CREATE TABLE enc ... PARTITION BY RANGE(k) with `parts` equal-width
/// partitions over [0, n), then bulk-loads it from `flat` (the INSERT ...
/// SELECT path stages, clusters, and seals — the same route recovery and
/// large DML take).
void LoadEncoded(Engine& engine, size_t n, size_t parts) {
  std::string ddl =
      "CREATE TABLE enc (k BIGINT, v BIGINT, r BIGINT, tag VARCHAR) "
      "PARTITION BY RANGE(k) (";
  for (size_t p = 1; p < parts; ++p) {
    if (p > 1) ddl += ", ";
    ddl += std::to_string(n * p / parts);
  }
  ddl += ")";
  auto st = engine.Execute(ddl);
  if (!st.ok()) {
    std::fprintf(stderr, "ddl failed: %s\n", st.status().ToString().c_str());
    std::exit(1);
  }
  st = engine.Execute("INSERT INTO enc SELECT k, v, r, tag FROM flat");
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.status().ToString().c_str());
    std::exit(1);
  }
}

/// Sums the sealed segment footprint of one column across all row groups.
size_t SealedColumnBytes(const Table& t, size_t col) {
  size_t bytes = 0;
  for (size_t g = 0; g < t.num_row_groups(); ++g) {
    bytes += t.group_segment(g, col)->MemoryUsage();
  }
  return bytes;
}

size_t FileBytes(const std::string& path) {
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0) {
    std::fprintf(stderr, "stat failed: %s\n", path.c_str());
    std::exit(1);
  }
  return static_cast<size_t>(sb.st_size);
}

struct JsonWriter {
  std::vector<std::pair<std::string, double>> entries;
  void Add(const std::string& name, double value) {
    entries.emplace_back(name, value);
  }
};

}  // namespace
}  // namespace soda::bench

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;

  setenv("SODA_THREADS", "8", /*overwrite=*/0);

  Scale scale = ParseScale(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const size_t N = 8'000'000 / scale.divisor;
  const size_t kParts = 8;
  std::printf("bench_segments scale=%s rows=%s partitions=%zu threads=%s\n\n",
              scale.name, Human(N).c_str(), kParts, getenv("SODA_THREADS"));

  Engine engine;
  TablePtr flat = MakeSource("flat", N);
  if (!engine.catalog().RegisterTable(flat).ok()) std::exit(1);
  LoadEncoded(engine, N, kParts);
  TablePtr enc = engine.catalog().GetTable("enc").ValueOrDie();
  if (!enc->sealed() || enc->num_rows() != N) std::exit(1);

  JsonWriter json;
  PrintHeader({"case", "flat_s", "encoded_s", "encoded/flat"});
  auto report = [&](const char* name, double flat_s, double enc_s) {
    PrintCell(name);
    PrintSeconds(flat_s);
    PrintSeconds(enc_s);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", enc_s / flat_s);
    PrintCell(buf);
    EndRow();
    json.Add(std::string(name) + ".flat", flat_s);
    json.Add(std::string(name) + ".encoded", enc_s);
  };

  // Each case runs the identical query on both twins; results must agree
  // (the partition suite proves that; here we just time).
  auto time_pair = [&](const char* name, const std::string& q_flat,
                       const std::string& q_enc) {
    double f = 1e300, e = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      f = std::min(f, TimeQuery(engine, q_flat));
      e = std::min(e, TimeQuery(engine, q_enc));
    }
    report(name, f, e);
  };

  // Full scan: every row of two int columns flows through the pipeline —
  // decode bandwidth (FOR unpack + RLE expansion) vs. plain column reads.
  time_pair("scan", "SELECT sum(v), sum(r) FROM flat",
            "SELECT sum(v), sum(r) FROM enc");

  // Pruned filter: the k-range keeps 1 of 8 partitions; the sealed side
  // also evaluates the predicate on encoded payloads and zone maps.
  {
    const std::string cut = std::to_string(N / kParts);
    time_pair("filter_pruned", "SELECT sum(v) FROM flat WHERE k < " + cut,
              "SELECT sum(v) FROM enc WHERE k < " + cut);
  }

  // Selective filter with no partition help: v is not the partition key,
  // so only segment stats + encoded-domain evaluation can save work.
  time_pair("filter_selective", "SELECT count(*) FROM flat WHERE v = 7",
            "SELECT count(*) FROM enc WHERE v = 7");

  // Grouped aggregate over the dict-encoded string key.
  time_pair("agg_by_tag",
            "SELECT tag, count(*), sum(v) FROM flat GROUP BY tag",
            "SELECT tag, count(*), sum(v) FROM enc GROUP BY tag");

  // --- Footprint ---------------------------------------------------------
  const size_t flat_bytes = flat->MemoryUsage();
  const size_t enc_bytes = enc->MemoryUsage();
  const size_t flat_tag_bytes = flat->column(3).MemoryUsage();
  const size_t enc_tag_bytes = SealedColumnBytes(*enc, 3);
  std::printf("\nmemory: table %s -> %s (%.2fx), tag column %s -> %s "
              "(%.2fx)\n",
              Human(flat_bytes).c_str(), Human(enc_bytes).c_str(),
              double(flat_bytes) / double(enc_bytes),
              Human(flat_tag_bytes).c_str(), Human(enc_tag_bytes).c_str(),
              double(flat_tag_bytes) / double(enc_tag_bytes));
  json.Add("memory.flat_bytes", double(flat_bytes));
  json.Add("memory.encoded_bytes", double(enc_bytes));
  json.Add("memory.tag_flat_bytes", double(flat_tag_bytes));
  json.Add("memory.tag_encoded_bytes", double(enc_tag_bytes));

  // --- Checkpoint size ---------------------------------------------------
  // Two throwaway durable engines, one per layout; serde persists sealed
  // tables as segments, so the file-size ratio tracks the encoding.
  {
    char flat_dir[] = "/tmp/soda_bench_flat_XXXXXX";
    char enc_dir[] = "/tmp/soda_bench_enc_XXXXXX";
    if (!mkdtemp(flat_dir) || !mkdtemp(enc_dir)) std::exit(1);

    size_t ckpt_flat = 0, ckpt_enc = 0;
    {
      EngineOptions opts;
      opts.data_dir = flat_dir;
      Engine durable(opts);
      if (!durable.startup_status().ok()) std::exit(1);
      if (!durable.catalog().RegisterTable(MakeSource("flat", N)).ok()) {
        std::exit(1);
      }
      if (!durable.Execute("CHECKPOINT").ok()) std::exit(1);
      ckpt_flat = FileBytes(std::string(flat_dir) + "/" + kCheckpointFileName);
    }
    {
      EngineOptions opts;
      opts.data_dir = enc_dir;
      Engine durable(opts);
      if (!durable.startup_status().ok()) std::exit(1);
      if (!durable.catalog().RegisterTable(MakeSource("flat", N)).ok()) {
        std::exit(1);
      }
      LoadEncoded(durable, N, kParts);
      if (!durable.Execute("DROP TABLE flat").ok()) std::exit(1);
      if (!durable.Execute("CHECKPOINT").ok()) std::exit(1);
      ckpt_enc = FileBytes(std::string(enc_dir) + "/" + kCheckpointFileName);
    }
    std::printf("checkpoint: flat %s -> encoded %s (%.2fx)\n",
                Human(ckpt_flat).c_str(), Human(ckpt_enc).c_str(),
                double(ckpt_flat) / double(ckpt_enc));
    json.Add("checkpoint.flat_bytes", double(ckpt_flat));
    json.Add("checkpoint.encoded_bytes", double(ckpt_enc));

    std::string rm = "rm -rf ";
    if (std::system((rm + flat_dir + " " + enc_dir).c_str()) != 0) {
      std::fprintf(stderr, "warning: scratch cleanup failed\n");
    }
  }

  if (json_path) {
    std::ofstream out(json_path);
    out << "{\"bench\": \"bench_segments\", \"scale\": \"" << scale.name
        << "\", \"threads\": " << getenv("SODA_THREADS")
        << ", \"rows\": " << N << ", \"partitions\": " << kParts
        << ", \"results\": {";
    for (size_t i = 0; i < json.entries.size(); ++i) {
      if (i) out << ", ";
      out << "\"" << json.entries[i].first << "\": " << json.entries[i].second;
    }
    out << "}}\n";
  }
  return 0;
}
