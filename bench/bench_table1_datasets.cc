/// Table 1: the k-Means experiment dataset matrix (paper §8.1.1) — three
/// lines of experiments varying tuples, dimensions, and clusters, sharing
/// one connecting configuration (n=4M, d=10, k=5, starred in the paper).
/// This harness prints the matrix at the selected scale and measures bulk
/// generation/loading time for each dataset (HyPer's fast data loading,
/// §3, is part of why in-database analytics is viable for data scientists).

#include "bench/bench_util.h"
#include "bench_support/workloads.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace soda;
  using namespace soda::bench;
  Scale scale = ParseScale(argc, argv);

  struct Row {
    const char* line;
    size_t n;
    size_t d;
    size_t k;
    bool star;
  };
  const std::vector<Row> rows = {
      {"vary-tuples", 160000, 10, 5, false},
      {"vary-tuples", 800000, 10, 5, false},
      {"vary-tuples", 4000000, 10, 5, true},
      {"vary-tuples", 20000000, 10, 5, false},
      {"vary-tuples", 100000000, 10, 5, false},
      {"vary-tuples", 500000000, 10, 5, false},
      {"vary-dims", 4000000, 3, 5, false},
      {"vary-dims", 4000000, 5, 5, false},
      {"vary-dims", 4000000, 10, 5, true},
      {"vary-dims", 4000000, 25, 5, false},
      {"vary-dims", 4000000, 50, 5, false},
      {"vary-clusters", 4000000, 10, 3, false},
      {"vary-clusters", 4000000, 10, 5, true},
      {"vary-clusters", 4000000, 10, 10, false},
      {"vary-clusters", 4000000, 10, 25, false},
      {"vary-clusters", 4000000, 10, 50, false},
  };

  std::printf("=== Table 1: datasets for the k-Means experiments ===\n");
  std::printf("scale=%s (paper sizes / %zu); '*' marks the connecting "
              "configuration shared by all three sweeps\n\n",
              scale.name, scale.divisor);
  PrintHeader({"experiment line", "#tuples n", "#dims d", "k", "gen+load [s]",
               "size"});

  int counter = 0;
  for (const Row& row : rows) {
    size_t n = row.n / scale.divisor;
    Engine engine;
    Timer timer;
    auto table = workloads::GenerateVectorTable(
        &engine.catalog(), "t" + std::to_string(counter++), n, row.d, n);
    double seconds = timer.ElapsedSeconds();
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
      return 1;
    }
    PrintCell(row.line);
    PrintCell(Human(n) + (row.star ? " *" : ""));
    PrintCell(std::to_string(row.d));
    PrintCell(std::to_string(row.k));
    PrintSeconds(seconds);
    PrintCell(HumanBytes((*table)->MemoryUsage()));
    EndRow();
    std::fflush(stdout);
  }
  return 0;
}
