/// \file bench_util.h
/// Shared scaffolding for the figure/table reproduction harnesses.
///
/// Every harness prints the same series the paper reports. Absolute times
/// depend on this machine; the *shapes* (system ordering, scaling slopes,
/// crossovers) are what EXPERIMENTS.md validates against the paper.
///
/// Scaling: `--scale=ci|medium|paper` (or SODA_SCALE env var) divides the
/// paper's dataset sizes by 100 / 10 / 1 while keeping every sweep's
/// structure intact (DESIGN.md §5).

#ifndef SODA_BENCH_BENCH_UTIL_H_
#define SODA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/timer.h"

namespace soda::bench {

struct Scale {
  const char* name;
  size_t divisor;        ///< operator / contender dataset divisor
  size_t heavy_divisor;  ///< divisor for sweeps dominated by the layer-3
                         ///< SQL variants (interpreted plans are orders of
                         ///< magnitude slower than HyPer's codegen, so CI
                         ///< uses smaller inputs there; shapes unchanged)
};

inline Scale ParseScale(int argc, char** argv) {
  const char* request = std::getenv("SODA_SCALE");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) request = argv[i] + 8;
  }
  if (request) {
    if (!std::strcmp(request, "paper")) return {"paper", 1, 1};
    if (!std::strcmp(request, "medium")) return {"medium", 10, 100};
    if (!std::strcmp(request, "ci")) return {"ci", 100, 1000};
    std::fprintf(stderr, "unknown scale '%s' (want ci|medium|paper)\n",
                 request);
    std::exit(2);
  }
  return {"ci", 100, 1000};
}

/// Times one engine query; exits loudly on error (benchmark results must
/// never silently come from failed queries).
inline double TimeQuery(Engine& engine, const std::string& sql,
                        ExecStats* stats = nullptr) {
  Timer timer;
  auto result = engine.Execute(sql);
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\nSQL: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  if (stats) *stats = result->stats();
  return seconds;
}

/// Times an arbitrary callable returning Result<T>.
template <typename Fn>
double TimeCall(Fn&& fn) {
  Timer timer;
  auto result = fn();
  double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark call failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return seconds;
}

/// Fixed-width row printer for the result tables.
inline void PrintHeader(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (const auto& c : cols) {
    (void)c;
    std::printf("%-22s", "--------------------");
  }
  std::printf("\n");
}

inline void PrintCell(const std::string& v) { std::printf("%-22s", v.c_str()); }
inline void PrintSeconds(double s) { std::printf("%-22.4f", s); }
inline void EndRow() { std::printf("\n"); }

inline std::string Human(size_t n) {
  char buf[32];
  if (n >= 1000000 && n % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%zum", n / 1000000);
  } else if (n >= 1000 && n % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%zuk", n / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

}  // namespace soda::bench

#endif  // SODA_BENCH_BENCH_UTIL_H_
