/// \file bench_wal.cc
/// Durability overhead: INSERT and UPDATE throughput with the write-ahead
/// log off (volatile engine), in group-commit mode, and with
/// fsync-per-commit — plus recovery time for the resulting log.
///
/// The paper's main-memory engine is volatile; this harness quantifies
/// what the durability layer (DESIGN.md §Durability) costs on top, and
/// what group commit (SET soda.wal_fsync = group) buys back.
///
///   ./build/bench/bench_wal [--scale=ci|medium|paper]
///
/// Series: rows/s for batched INSERTs, statements/s for single-row
/// INSERTs (the fsync-bound worst case), seconds per full-table UPDATE,
/// and recovery (reopen) time.

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

namespace soda::bench {
namespace {

namespace fs = std::filesystem;

struct Mode {
  const char* label;   ///< printed name
  bool durable;        ///< false = volatile engine (no WAL at all)
  WalFsyncMode fsync;  ///< meaningful when durable
};

std::string FreshDir(const std::string& base, const char* label) {
  std::string dir = base + "/" + label;
  fs::remove_all(dir);
  return dir;
}

EngineOptions MakeOptions(const Mode& mode, const std::string& dir) {
  EngineOptions options;
  if (mode.durable) {
    options.data_dir = dir;
    options.wal_fsync = mode.fsync;
  }
  return options;
}

void Run(const Scale& scale) {
  const size_t batch_rows = 1000000 / scale.divisor;
  const size_t batch_stmt_rows = 1000;  // rows per INSERT statement
  const size_t single_stmts = 2000 / scale.divisor + 20;

  const Mode modes[] = {
      {"wal=off(volatile)", false, WalFsyncMode::kOn},
      {"wal=nosync", true, WalFsyncMode::kOff},
      {"wal=group", true, WalFsyncMode::kGroup},
      {"wal=fsync", true, WalFsyncMode::kOn},
  };

  std::string base = "/tmp/soda_bench_wal";
  fs::create_directories(base);

  std::printf("WAL overhead — batched INSERT %s rows (%zu/stmt), "
              "%zu single-row INSERTs, full-table UPDATE, reopen\n\n",
              Human(batch_rows).c_str(), batch_stmt_rows, single_stmts);
  PrintHeader({"mode", "batch Mrows/s", "single stmts/s", "update s",
               "recover s"});

  for (const Mode& mode : modes) {
    std::string dir = FreshDir(base, mode.label);
    double batch_s, single_s, update_s;
    {
      Engine engine(MakeOptions(mode, dir));
      if (!engine.startup_status().ok()) {
        std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                     engine.startup_status().ToString().c_str());
        std::exit(1);
      }
      TimeQuery(engine, "CREATE TABLE t (a INTEGER, b FLOAT)");

      // Batched inserts: one multi-row VALUES statement per 1000 rows.
      std::string values;
      for (size_t i = 0; i < batch_stmt_rows; ++i) {
        values += i ? "," : "";
        values += "(" + std::to_string(i) + "," +
                  std::to_string(i % 97) + ".5)";
      }
      std::string insert = "INSERT INTO t VALUES " + values;
      Timer timer;
      for (size_t done = 0; done < batch_rows; done += batch_stmt_rows) {
        TimeQuery(engine, insert);
      }
      batch_s = timer.ElapsedSeconds();

      // Single-row statements: every commit pays the full sync policy.
      // A separate small table keeps the copy-on-write rebuild cost out
      // of the numbers — this series isolates the per-commit fsync.
      TimeQuery(engine, "CREATE TABLE s (a INTEGER)");
      timer = Timer();
      for (size_t i = 0; i < single_stmts; ++i) {
        TimeQuery(engine, "INSERT INTO s VALUES (1)");
      }
      single_s = timer.ElapsedSeconds();

      // One full-table UPDATE: copy-on-write rebuild + table-image record.
      update_s = TimeQuery(engine, "UPDATE t SET b = b + 1.0");
    }

    double recover_s = 0.0;
    if (mode.durable) {
      Timer timer;
      Engine reopened(MakeOptions(mode, dir));
      if (!reopened.startup_status().ok()) {
        std::fprintf(stderr, "recover %s: %s\n", dir.c_str(),
                     reopened.startup_status().ToString().c_str());
        std::exit(1);
      }
      recover_s = timer.ElapsedSeconds();
    }

    PrintCell(mode.label);
    std::printf("%-22.2f", batch_rows / batch_s / 1e6);
    std::printf("%-22.0f", single_stmts / single_s);
    PrintSeconds(update_s);
    if (mode.durable) {
      PrintSeconds(recover_s);
    } else {
      PrintCell("-");
    }
    EndRow();
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace soda::bench

int main(int argc, char** argv) {
  soda::bench::Scale scale = soda::bench::ParseScale(argc, argv);
  std::printf("scale: %s\n", scale.name);
  soda::bench::Run(scale);
  return 0;
}
