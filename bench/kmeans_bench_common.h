/// \file kmeans_bench_common.h
/// Shared sweep driver for the three k-Means panels of Figure 4 and the
/// two Naive Bayes panels of Figure 5: every (n, d, k) configuration is
/// executed by all six evaluated systems (paper §8.2):
///
///   HyPer Operator  — layer-4 physical operator via SQL (Listing 3)
///   HyPer Iterate   — layer-3 SQL with the ITERATE construct (§5.1)
///   HyPer SQL       — layer-3 SQL with recursive CTEs (the baseline)
///   Spark(sim)      — RddEngine proxy (§8.2, MLlib shortcuts disabled)
///   MATLAB(sim)     — SingleThreadedEngine proxy
///   MADlib(sim)     — UdfEngine proxy (black-box row-at-a-time UDFs)

#ifndef SODA_BENCH_KMEANS_BENCH_COMMON_H_
#define SODA_BENCH_KMEANS_BENCH_COMMON_H_

#include <memory>

#include "bench/bench_util.h"
#include "bench_support/workloads.h"
#include "contenders/contender.h"

namespace soda::bench {

struct KMeansConfig {
  size_t n;  ///< tuples (already scaled)
  size_t d;  ///< dimensions
  size_t k;  ///< clusters
};

inline constexpr int64_t kKMeansIterations = 3;  // paper §8.1.1

/// Feature-only view of a generated table (drops the id/cid column).
inline TablePtr FeatureView(const Table& t) {
  Schema schema;
  for (size_t j = 1; j < t.num_columns(); ++j) {
    schema.AddField(t.schema().field(j));
  }
  auto out = std::make_shared<Table>("view", schema);
  for (size_t j = 1; j < t.num_columns(); ++j) {
    Column col(t.column(j).type());
    col.AppendSlice(t.column(j), 0, t.num_rows());
    (void)out->SetColumn(j - 1, std::move(col));
  }
  return out;
}

/// Runs one k-Means configuration through all six systems and prints one
/// row: label, then seconds per system.
inline void RunKMeansRow(const std::string& label, const KMeansConfig& cfg) {
  Engine engine;
  auto data = workloads::GenerateVectorTable(&engine.catalog(), "data", cfg.n,
                                             cfg.d, cfg.n * 31 + cfg.d);
  if (!data.ok()) std::exit(1);
  auto centers = workloads::SampleInitialCenters(&engine.catalog(), "centers",
                                                 **data, cfg.k, cfg.k + 7);
  if (!centers.ok()) std::exit(1);

  PrintCell(label);
  // Layer 4: physical operator with a λ squared-L2 distance.
  PrintSeconds(TimeQuery(engine, workloads::KMeansOperatorSql(
                                     "data", "centers", cfg.d,
                                     kKMeansIterations)));
  // Layer 3: ITERATE. The SQL formulation runs i-1 steps for the same
  // number of center updates as the operator's i rounds (see
  // tests/integration_test.cc) — we keep i equal across systems as the
  // paper does and note the off-by-one in EXPERIMENTS.md.
  PrintSeconds(TimeQuery(engine, workloads::KMeansIterateSql(
                                     "data", "centers", cfg.d,
                                     kKMeansIterations)));
  // Layer 3 baseline: recursive CTE.
  PrintSeconds(TimeQuery(engine, workloads::KMeansRecursiveCteSql(
                                     "data", "centers", cfg.d,
                                     kKMeansIterations)));

  TablePtr dview = FeatureView(**data);
  TablePtr cview = FeatureView(**centers);
  auto spark = MakeRddEngine();
  PrintSeconds(TimeCall(
      [&] { return spark->KMeans(*dview, *cview, kKMeansIterations); }));
  auto matlab = MakeSingleThreadedEngine();
  PrintSeconds(TimeCall(
      [&] { return matlab->KMeans(*dview, *cview, kKMeansIterations); }));
  auto madlib = MakeUdfEngine();
  PrintSeconds(TimeCall(
      [&] { return madlib->KMeans(*dview, *cview, kKMeansIterations); }));
  EndRow();
  std::fflush(stdout);
}

inline void PrintKMeansHeader(const char* param_name) {
  PrintHeader({param_name, "HyPer Operator", "HyPer Iterate", "HyPer SQL",
               "Spark(sim)", "MATLAB(sim)", "MADlib(sim)"});
}

}  // namespace soda::bench

#endif  // SODA_BENCH_KMEANS_BENCH_COMMON_H_
