/// \file nb_bench_common.h
/// Shared driver for the two Naive Bayes panels of Figure 5 (training
/// phase only, as in the paper §8.1.2).

#ifndef SODA_BENCH_NB_BENCH_COMMON_H_
#define SODA_BENCH_NB_BENCH_COMMON_H_

#include "bench/bench_util.h"
#include "bench_support/workloads.h"
#include "contenders/contender.h"

namespace soda::bench {

inline void PrintNbHeader(const char* param_name) {
  PrintHeader({param_name, "HyPer Operator", "HyPer SQL", "Spark(sim)",
               "MATLAB(sim)", "MADlib(sim)"});
}

/// One (n, d) Naive Bayes training configuration through all systems.
/// Naive Bayes is not iterative, so there is no separate ITERATE variant —
/// the layer-3 implementation is a single aggregation query (§6.2).
inline void RunNbRow(const std::string& label, size_t n, size_t d) {
  Engine engine;
  auto labeled = workloads::GenerateLabeledTable(&engine.catalog(), "labeled",
                                                 n, d, n * 17 + d);
  if (!labeled.ok()) std::exit(1);

  PrintCell(label);
  PrintSeconds(
      TimeQuery(engine, workloads::NaiveBayesOperatorSql("labeled", d)));
  PrintSeconds(TimeQuery(engine, workloads::NaiveBayesSql("labeled", d)));

  auto spark = MakeRddEngine();
  PrintSeconds(TimeCall([&] { return spark->NaiveBayesTrain(**labeled); }));
  auto matlab = MakeSingleThreadedEngine();
  PrintSeconds(TimeCall([&] { return matlab->NaiveBayesTrain(**labeled); }));
  auto madlib = MakeUdfEngine();
  PrintSeconds(TimeCall([&] { return madlib->NaiveBayesTrain(**labeled); }));
  EndRow();
  std::fflush(stdout);
}

}  // namespace soda::bench

#endif  // SODA_BENCH_NB_BENCH_COMMON_H_
