# Empty compiler generated dependencies file for bench_ablation_csr_vs_join.
# This may be replaced when dependencies are built.
