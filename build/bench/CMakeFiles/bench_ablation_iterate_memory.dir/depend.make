# Empty dependencies file for bench_ablation_iterate_memory.
# This may be replaced when dependencies are built.
