# Empty compiler generated dependencies file for bench_fig4_kmeans_clusters.
# This may be replaced when dependencies are built.
