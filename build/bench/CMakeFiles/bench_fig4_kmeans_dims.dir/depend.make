# Empty dependencies file for bench_fig4_kmeans_dims.
# This may be replaced when dependencies are built.
