file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_kmeans_tuples.dir/bench_fig4_kmeans_tuples.cc.o"
  "CMakeFiles/bench_fig4_kmeans_tuples.dir/bench_fig4_kmeans_tuples.cc.o.d"
  "bench_fig4_kmeans_tuples"
  "bench_fig4_kmeans_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kmeans_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
