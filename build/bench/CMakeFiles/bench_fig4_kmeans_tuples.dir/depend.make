# Empty dependencies file for bench_fig4_kmeans_tuples.
# This may be replaced when dependencies are built.
