file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nb_dims.dir/bench_fig5_nb_dims.cc.o"
  "CMakeFiles/bench_fig5_nb_dims.dir/bench_fig5_nb_dims.cc.o.d"
  "bench_fig5_nb_dims"
  "bench_fig5_nb_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nb_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
