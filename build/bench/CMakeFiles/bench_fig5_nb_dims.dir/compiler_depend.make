# Empty compiler generated dependencies file for bench_fig5_nb_dims.
# This may be replaced when dependencies are built.
