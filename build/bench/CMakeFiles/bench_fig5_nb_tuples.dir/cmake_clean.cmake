file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nb_tuples.dir/bench_fig5_nb_tuples.cc.o"
  "CMakeFiles/bench_fig5_nb_tuples.dir/bench_fig5_nb_tuples.cc.o.d"
  "bench_fig5_nb_tuples"
  "bench_fig5_nb_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nb_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
