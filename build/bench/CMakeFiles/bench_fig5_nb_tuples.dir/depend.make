# Empty dependencies file for bench_fig5_nb_tuples.
# This may be replaced when dependencies are built.
