file(REMOVE_RECURSE
  "CMakeFiles/social_network_ranking.dir/social_network_ranking.cpp.o"
  "CMakeFiles/social_network_ranking.dir/social_network_ranking.cpp.o.d"
  "social_network_ranking"
  "social_network_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
