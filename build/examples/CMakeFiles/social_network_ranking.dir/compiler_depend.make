# Empty compiler generated dependencies file for social_network_ranking.
# This may be replaced when dependencies are built.
