file(REMOVE_RECURSE
  "CMakeFiles/spam_classifier.dir/spam_classifier.cpp.o"
  "CMakeFiles/spam_classifier.dir/spam_classifier.cpp.o.d"
  "spam_classifier"
  "spam_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
