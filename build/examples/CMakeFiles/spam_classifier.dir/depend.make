# Empty dependencies file for spam_classifier.
# This may be replaced when dependencies are built.
