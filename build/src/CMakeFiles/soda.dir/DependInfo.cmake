
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/connected_components.cc" "src/CMakeFiles/soda.dir/analytics/connected_components.cc.o" "gcc" "src/CMakeFiles/soda.dir/analytics/connected_components.cc.o.d"
  "/root/repo/src/analytics/kmeans.cc" "src/CMakeFiles/soda.dir/analytics/kmeans.cc.o" "gcc" "src/CMakeFiles/soda.dir/analytics/kmeans.cc.o.d"
  "/root/repo/src/analytics/naive_bayes.cc" "src/CMakeFiles/soda.dir/analytics/naive_bayes.cc.o" "gcc" "src/CMakeFiles/soda.dir/analytics/naive_bayes.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/CMakeFiles/soda.dir/analytics/pagerank.cc.o" "gcc" "src/CMakeFiles/soda.dir/analytics/pagerank.cc.o.d"
  "/root/repo/src/analytics/stats.cc" "src/CMakeFiles/soda.dir/analytics/stats.cc.o" "gcc" "src/CMakeFiles/soda.dir/analytics/stats.cc.o.d"
  "/root/repo/src/bench_support/workloads.cc" "src/CMakeFiles/soda.dir/bench_support/workloads.cc.o" "gcc" "src/CMakeFiles/soda.dir/bench_support/workloads.cc.o.d"
  "/root/repo/src/contenders/common.cc" "src/CMakeFiles/soda.dir/contenders/common.cc.o" "gcc" "src/CMakeFiles/soda.dir/contenders/common.cc.o.d"
  "/root/repo/src/contenders/rdd_engine.cc" "src/CMakeFiles/soda.dir/contenders/rdd_engine.cc.o" "gcc" "src/CMakeFiles/soda.dir/contenders/rdd_engine.cc.o.d"
  "/root/repo/src/contenders/single_threaded_engine.cc" "src/CMakeFiles/soda.dir/contenders/single_threaded_engine.cc.o" "gcc" "src/CMakeFiles/soda.dir/contenders/single_threaded_engine.cc.o.d"
  "/root/repo/src/contenders/udf_engine.cc" "src/CMakeFiles/soda.dir/contenders/udf_engine.cc.o" "gcc" "src/CMakeFiles/soda.dir/contenders/udf_engine.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/soda.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/soda.dir/core/engine.cc.o.d"
  "/root/repo/src/core/query_result.cc" "src/CMakeFiles/soda.dir/core/query_result.cc.o" "gcc" "src/CMakeFiles/soda.dir/core/query_result.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/soda.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/soda.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/soda.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/iterate.cc" "src/CMakeFiles/soda.dir/exec/iterate.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/iterate.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/soda.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/recursive_cte.cc" "src/CMakeFiles/soda.dir/exec/recursive_cte.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/recursive_cte.cc.o.d"
  "/root/repo/src/exec/table_function.cc" "src/CMakeFiles/soda.dir/exec/table_function.cc.o" "gcc" "src/CMakeFiles/soda.dir/exec/table_function.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/soda.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/soda.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/soda.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/soda.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/fold.cc" "src/CMakeFiles/soda.dir/expr/fold.cc.o" "gcc" "src/CMakeFiles/soda.dir/expr/fold.cc.o.d"
  "/root/repo/src/expr/lambda_kernel.cc" "src/CMakeFiles/soda.dir/expr/lambda_kernel.cc.o" "gcc" "src/CMakeFiles/soda.dir/expr/lambda_kernel.cc.o.d"
  "/root/repo/src/expr/type_inference.cc" "src/CMakeFiles/soda.dir/expr/type_inference.cc.o" "gcc" "src/CMakeFiles/soda.dir/expr/type_inference.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/soda.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/soda.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/ldbc_generator.cc" "src/CMakeFiles/soda.dir/graph/ldbc_generator.cc.o" "gcc" "src/CMakeFiles/soda.dir/graph/ldbc_generator.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/soda.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/soda.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/soda.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/soda.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/logical_plan.cc" "src/CMakeFiles/soda.dir/sql/logical_plan.cc.o" "gcc" "src/CMakeFiles/soda.dir/sql/logical_plan.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/CMakeFiles/soda.dir/sql/optimizer.cc.o" "gcc" "src/CMakeFiles/soda.dir/sql/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/soda.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/soda.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/soda.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/soda.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/soda.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/soda.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/soda.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/soda.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/data_chunk.cc" "src/CMakeFiles/soda.dir/storage/data_chunk.cc.o" "gcc" "src/CMakeFiles/soda.dir/storage/data_chunk.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/soda.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/soda.dir/storage/table.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/soda.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/soda.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/soda.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/soda.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/soda.dir/types/value.cc.o" "gcc" "src/CMakeFiles/soda.dir/types/value.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/soda.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/soda.dir/util/logging.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/soda.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/soda.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/soda.dir/util/status.cc.o" "gcc" "src/CMakeFiles/soda.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/soda.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/soda.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/soda.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/soda.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
