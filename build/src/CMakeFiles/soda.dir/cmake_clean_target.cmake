file(REMOVE_RECURSE
  "libsoda.a"
)
