# Empty dependencies file for soda.
# This may be replaced when dependencies are built.
