file(REMOVE_RECURSE
  "CMakeFiles/analytics_kmeans_test.dir/analytics_kmeans_test.cc.o"
  "CMakeFiles/analytics_kmeans_test.dir/analytics_kmeans_test.cc.o.d"
  "analytics_kmeans_test"
  "analytics_kmeans_test.pdb"
  "analytics_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
