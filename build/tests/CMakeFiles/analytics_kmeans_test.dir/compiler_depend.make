# Empty compiler generated dependencies file for analytics_kmeans_test.
# This may be replaced when dependencies are built.
