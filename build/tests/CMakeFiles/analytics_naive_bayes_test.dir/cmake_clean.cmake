file(REMOVE_RECURSE
  "CMakeFiles/analytics_naive_bayes_test.dir/analytics_naive_bayes_test.cc.o"
  "CMakeFiles/analytics_naive_bayes_test.dir/analytics_naive_bayes_test.cc.o.d"
  "analytics_naive_bayes_test"
  "analytics_naive_bayes_test.pdb"
  "analytics_naive_bayes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_naive_bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
