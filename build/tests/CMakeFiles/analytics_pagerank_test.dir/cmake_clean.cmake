file(REMOVE_RECURSE
  "CMakeFiles/analytics_pagerank_test.dir/analytics_pagerank_test.cc.o"
  "CMakeFiles/analytics_pagerank_test.dir/analytics_pagerank_test.cc.o.d"
  "analytics_pagerank_test"
  "analytics_pagerank_test.pdb"
  "analytics_pagerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
