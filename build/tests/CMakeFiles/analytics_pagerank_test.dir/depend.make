# Empty dependencies file for analytics_pagerank_test.
# This may be replaced when dependencies are built.
