file(REMOVE_RECURSE
  "CMakeFiles/contenders_test.dir/contenders_test.cc.o"
  "CMakeFiles/contenders_test.dir/contenders_test.cc.o.d"
  "contenders_test"
  "contenders_test.pdb"
  "contenders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contenders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
