# Empty compiler generated dependencies file for contenders_test.
# This may be replaced when dependencies are built.
