file(REMOVE_RECURSE
  "CMakeFiles/exec_sql_test.dir/exec_sql_test.cc.o"
  "CMakeFiles/exec_sql_test.dir/exec_sql_test.cc.o.d"
  "exec_sql_test"
  "exec_sql_test.pdb"
  "exec_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
