# Empty compiler generated dependencies file for exec_sql_test.
# This may be replaced when dependencies are built.
