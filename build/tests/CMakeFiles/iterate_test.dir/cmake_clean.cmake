file(REMOVE_RECURSE
  "CMakeFiles/iterate_test.dir/iterate_test.cc.o"
  "CMakeFiles/iterate_test.dir/iterate_test.cc.o.d"
  "iterate_test"
  "iterate_test.pdb"
  "iterate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
