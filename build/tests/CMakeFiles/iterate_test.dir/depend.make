# Empty dependencies file for iterate_test.
# This may be replaced when dependencies are built.
