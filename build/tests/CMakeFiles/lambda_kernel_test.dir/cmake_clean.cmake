file(REMOVE_RECURSE
  "CMakeFiles/lambda_kernel_test.dir/lambda_kernel_test.cc.o"
  "CMakeFiles/lambda_kernel_test.dir/lambda_kernel_test.cc.o.d"
  "lambda_kernel_test"
  "lambda_kernel_test.pdb"
  "lambda_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
