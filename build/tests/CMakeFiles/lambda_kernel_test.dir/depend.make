# Empty dependencies file for lambda_kernel_test.
# This may be replaced when dependencies are built.
