file(REMOVE_RECURSE
  "CMakeFiles/predicate_sugar_test.dir/predicate_sugar_test.cc.o"
  "CMakeFiles/predicate_sugar_test.dir/predicate_sugar_test.cc.o.d"
  "predicate_sugar_test"
  "predicate_sugar_test.pdb"
  "predicate_sugar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_sugar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
