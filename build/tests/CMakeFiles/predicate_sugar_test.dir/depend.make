# Empty dependencies file for predicate_sugar_test.
# This may be replaced when dependencies are built.
