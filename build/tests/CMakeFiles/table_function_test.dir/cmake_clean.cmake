file(REMOVE_RECURSE
  "CMakeFiles/table_function_test.dir/table_function_test.cc.o"
  "CMakeFiles/table_function_test.dir/table_function_test.cc.o.d"
  "table_function_test"
  "table_function_test.pdb"
  "table_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
