# Empty compiler generated dependencies file for table_function_test.
# This may be replaced when dependencies are built.
