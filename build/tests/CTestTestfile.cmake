# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/lambda_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sql_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_binder_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_sql_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/iterate_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_pagerank_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_naive_bayes_test[1]_include.cmake")
include("/root/repo/build/tests/table_function_test[1]_include.cmake")
include("/root/repo/build/tests/contenders_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/connected_components_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/dml_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_sugar_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
