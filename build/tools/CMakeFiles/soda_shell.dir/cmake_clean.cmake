file(REMOVE_RECURSE
  "CMakeFiles/soda_shell.dir/soda_shell.cc.o"
  "CMakeFiles/soda_shell.dir/soda_shell.cc.o.d"
  "soda_shell"
  "soda_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
