/// Customer segmentation — the paper's "data mining on vector data"
/// motif end to end.
///
/// An online shop keeps an RFM table (recency / frequency / monetary
/// value) *inside the operational database*; segments are recomputed
/// ad hoc, with no export to a dedicated analytics tool (the paper's
/// argument against layer 1 of Fig. 1). The distance lambda normalizes
/// the wildly different feature scales — the kind of per-task metric §7's
/// lambdas exist for — and profiling/labeling of segments happens in the
/// same SQL session.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "util/rng.h"

namespace {

void Check(const soda::Status& st) {
  if (!st.ok()) {
    std::printf("error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

soda::QueryResult Exec(soda::Engine& engine, const std::string& sql) {
  auto result = engine.Execute(sql);
  Check(result.status());
  return std::move(result.ValueOrDie());
}

}  // namespace

int main() {
  soda::Engine engine;
  std::printf("=== customer segmentation with lambda-parameterized k-Means ===\n\n");

  // Operational table: one row per customer.
  Check(engine
            .Execute("CREATE TABLE customers (id INTEGER, recency FLOAT, "
                     "frequency FLOAT, monetary FLOAT)")
            .status());

  // Synthesize four behavioural archetypes.
  {
    auto table = engine.catalog().GetTable("customers");
    Check(table.status());
    soda::Rng rng(2024);
    struct Archetype {
      double recency, frequency, monetary;
    };
    const Archetype archetypes[] = {
        {5, 40, 2000},    // champions: bought yesterday, buy often, spend big
        {60, 20, 800},    // loyal but cooling off
        {200, 2, 150},    // hibernating
        {10, 1, 50},      // fresh one-timers
    };
    for (int id = 0; id < 5000; ++id) {
      const Archetype& a = archetypes[rng.Below(4)];
      Check((*table)->AppendRow(
          {soda::Value::BigInt(id),
           soda::Value::Double(std::max(0.0, a.recency * (0.5 + rng.NextDouble()))),
           soda::Value::Double(std::max(0.0, a.frequency * (0.5 + rng.NextDouble()))),
           soda::Value::Double(std::max(0.0, a.monetary * (0.5 + rng.NextDouble())))}));
    }
  }

  auto overview = Exec(engine,
                       "SELECT count(*) customers, avg(recency) avg_recency, "
                       "avg(frequency) avg_frequency, avg(monetary) avg_monetary "
                       "FROM customers");
  std::printf("-- population overview\n%s\n", overview.ToString().c_str());

  // Scale-normalized distance: recency spans ~0-400 days, frequency ~0-80
  // orders, monetary ~0-4000 currency units. Without the lambda, monetary
  // would dominate every assignment.
  const std::string distance =
      "lambda(a, b) ((a.recency - b.recency) / 400.0)^2 + "
      "((a.frequency - b.frequency) / 80.0)^2 + "
      "((a.monetary - b.monetary) / 4000.0)^2";

  // Segment in one query: operator output is a relation of centers.
  auto centers = Exec(
      engine,
      "SELECT * FROM KMEANS("
      "(SELECT recency, frequency, monetary FROM customers), "
      "(SELECT recency, frequency, monetary FROM customers LIMIT 4), " +
          distance + ", 15) ORDER BY cluster");
  std::printf("-- segment centers (normalized-distance k-Means, k=4)\n%s\n",
              centers.ToString().c_str());

  // Persist the centers and label every customer by nearest segment — all
  // in SQL, using the same lambda expressed as a plain scalar expression.
  Check(engine
            .Execute("CREATE TABLE segments (cluster INTEGER, recency FLOAT, "
                     "frequency FLOAT, monetary FLOAT)")
            .status());
  Check(engine
            .Execute("INSERT INTO segments SELECT * FROM KMEANS("
                     "(SELECT recency, frequency, monetary FROM customers), "
                     "(SELECT recency, frequency, monetary FROM customers "
                     "LIMIT 4), " +
                     distance + ", 15)")
            .status());

  auto profile = Exec(
      engine,
      "SELECT s.cluster, count(*) size, avg(c.recency) days_since_order, "
      "avg(c.frequency) orders, avg(c.monetary) spend "
      "FROM customers c, segments s, "
      "(SELECT c2.id cid, min(((c2.recency - s2.recency) / 400.0)^2 + "
      "((c2.frequency - s2.frequency) / 80.0)^2 + "
      "((c2.monetary - s2.monetary) / 4000.0)^2) best "
      " FROM customers c2, segments s2 GROUP BY c2.id) m "
      "WHERE m.cid = c.id AND "
      "((c.recency - s.recency) / 400.0)^2 + "
      "((c.frequency - s.frequency) / 80.0)^2 + "
      "((c.monetary - s.monetary) / 4000.0)^2 = m.best "
      "GROUP BY s.cluster ORDER BY spend DESC");
  std::printf("-- segment profiles (assignment + profiling in plain SQL)\n%s\n",
              profile.ToString().c_str());

  std::printf(
      "Segments stay fresh: re-running the KMEANS query after new orders\n"
      "arrive re-segments without any ETL cycle (paper §1).\n");
  return 0;
}
