/// Market-basket analysis — frequent itemsets in pure SQL.
///
/// The paper (§4.2) singles out the a-priori algorithm as one that "works
/// well in SQL": each level's candidate generation and support counting is
/// a self-join plus GROUP BY/HAVING, with the anti-monotonicity pruning
/// expressed as joins against the previous level's frequent sets. This
/// example mines frequent pairs and triples from synthetic transactions
/// and derives association rules with confidence — all layer-3 SQL, no
/// operator needed.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "util/rng.h"

namespace {

soda::QueryResult Exec(soda::Engine& engine, const std::string& sql) {
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\nSQL: %s\n", result.status().ToString().c_str(),
                sql.c_str());
    std::exit(1);
  }
  return std::move(result.ValueOrDie());
}

}  // namespace

int main() {
  soda::Engine engine;
  std::printf("=== frequent itemsets with a-priori in SQL (paper §4.2) ===\n\n");

  // Transactions as (basket, item) pairs. Items 0..19; a few engineered
  // co-occurrence patterns: {1,2} often together, {1,2,3} fairly often,
  // {7,8} together.
  (void)engine.Execute("CREATE TABLE baskets (tid INTEGER, item INTEGER)");
  {
    auto table = engine.catalog().GetTable("baskets");
    soda::Rng rng(31);
    for (int tid = 0; tid < 3000; ++tid) {
      auto add = [&](int item) {
        (void)(*table)->AppendRow(
            {soda::Value::BigInt(tid), soda::Value::BigInt(item)});
      };
      if (rng.Below(100) < 40) {
        add(1);
        add(2);
        if (rng.Below(100) < 50) add(3);
      }
      if (rng.Below(100) < 25) {
        add(7);
        add(8);
      }
      // Random noise items (distinct per basket with high probability).
      size_t extras = 1 + rng.Below(4);
      for (size_t e = 0; e < extras; ++e) {
        add(static_cast<int>(10 + rng.Below(10)));
      }
    }
  }
  const int kMinSupport = 300;  // absolute support threshold (10%)

  auto overview = Exec(engine, "SELECT count(*) total_rows FROM baskets");
  std::printf("-- %lld (tid, item) rows; min support %d baskets\n\n",
              static_cast<long long>(overview.GetInt(0, 0)), kMinSupport);

  // L1: frequent single items.
  (void)engine.Execute("CREATE TABLE l1 (item INTEGER, support INTEGER)");
  (void)Exec(engine,
             "INSERT INTO l1 SELECT item, count(*) FROM ("
             "SELECT DISTINCT tid, item FROM baskets) b GROUP BY item "
             "HAVING count(*) >= " + std::to_string(kMinSupport));
  auto l1 = Exec(engine, "SELECT * FROM l1 ORDER BY support DESC, item");
  std::printf("-- L1: frequent items\n%s\n", l1.ToString(8).c_str());

  // L2: candidate pairs from L1 x L1 (a < b), counted per basket —
  // the a-priori join + prune + count in one statement.
  (void)engine.Execute(
      "CREATE TABLE l2 (item_a INTEGER, item_b INTEGER, support INTEGER)");
  (void)Exec(engine,
             "INSERT INTO l2 "
             "SELECT x.item, y.item, count(*) FROM "
             "(SELECT DISTINCT tid, item FROM baskets) x "
             "JOIN (SELECT DISTINCT tid, item FROM baskets) y "
             "  ON x.tid = y.tid "
             "JOIN l1 fa ON fa.item = x.item "
             "JOIN l1 fb ON fb.item = y.item "
             "WHERE x.item < y.item "
             "GROUP BY x.item, y.item "
             "HAVING count(*) >= " + std::to_string(kMinSupport));
  auto l2 = Exec(engine, "SELECT * FROM l2 ORDER BY support DESC");
  std::printf("-- L2: frequent pairs\n%s\n", l2.ToString(8).c_str());

  // L3: extend frequent pairs by a frequent item, pruning with the
  // anti-monotonicity property (every 2-subset must be in L2).
  auto l3 = Exec(engine,
                 "SELECT p.item_a, p.item_b, z.item item_c, count(*) support "
                 "FROM l2 p "
                 "JOIN (SELECT DISTINCT tid, item FROM baskets) x "
                 "  ON x.item = p.item_a "
                 "JOIN (SELECT DISTINCT tid, item FROM baskets) y "
                 "  ON y.tid = x.tid AND y.item = p.item_b "
                 "JOIN (SELECT DISTINCT tid, item FROM baskets) z "
                 "  ON z.tid = x.tid "
                 "JOIN l2 pr1 ON pr1.item_a = p.item_a AND pr1.item_b = z.item "
                 "JOIN l2 pr2 ON pr2.item_a = p.item_b AND pr2.item_b = z.item "
                 "WHERE z.item > p.item_b "
                 "GROUP BY p.item_a, p.item_b, z.item "
                 "HAVING count(*) >= " + std::to_string(kMinSupport) +
                 " ORDER BY support DESC");
  std::printf("-- L3: frequent triples (anti-monotone pruning via L2 joins)\n%s\n",
              l3.ToString(5).c_str());

  // Association rules a -> b with confidence = support(ab) / support(a).
  auto rules = Exec(engine,
                    "SELECT p.item_a, p.item_b, p.support pair_support, "
                    "CAST(p.support AS FLOAT) / fa.support confidence "
                    "FROM l2 p JOIN l1 fa ON fa.item = p.item_a "
                    "ORDER BY confidence DESC LIMIT 5");
  std::printf("-- top rules a -> b by confidence\n%s\n",
              rules.ToString(5).c_str());

  std::printf(
      "Every step is an ordinary optimizable SQL query over live data —\n"
      "layer 3 of the paper's Figure 1, no export, no custom language.\n");
  return 0;
}
