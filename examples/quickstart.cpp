/// Quickstart: the full tour in one file.
///
/// Walks through the paper's three integration surfaces against one engine
/// instance: plain SQL, the non-appending ITERATE construct (Listing 1),
/// and lambda-parameterized analytics operators (Listings 2 and 3).
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"

namespace {

void Exec(soda::Engine& engine, const char* title, const std::string& sql) {
  std::printf("-- %s\n%s\n", title, sql.c_str());
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  if (result->num_rows() > 0) {
    std::printf("%s", result->ToString(8).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  soda::Engine engine;

  std::printf("=== soda quickstart ===\n\n");

  // --- 1. Plain SQL: the database part of "one solution fits all" --------
  Exec(engine, "schema from the paper's Listing 3",
       "CREATE TABLE data (x FLOAT, y INTEGER, z FLOAT, descr VARCHAR(500))");
  Exec(engine, "load a few rows",
       "INSERT INTO data VALUES "
       "(0.5, 1, 0.1, 'alpha'), (0.9, 1, 0.2, 'beta'), "
       "(0.1, 2, 0.3, 'gamma'), (8.5, 9, 7.5, 'delta'), "
       "(9.1, 9, 7.9, 'epsilon'), (8.8, 8, 8.1, 'zeta')");
  Exec(engine, "ordinary analytics-free SQL still works",
       "SELECT y, count(*) cnt, avg(x) mean_x FROM data "
       "GROUP BY y HAVING count(*) > 1 ORDER BY y");

  // --- 2. The ITERATE construct (paper §5.1, Listing 1) -------------------
  Exec(engine, "Listing 1: smallest three-digit multiple of seven",
       "SELECT * FROM ITERATE ((SELECT 7 \"x\"), "
       "(SELECT x + 7 FROM iterate), "
       "(SELECT x FROM iterate WHERE x >= 100))");

  Exec(engine, "the classic appending alternative: WITH RECURSIVE",
       "WITH RECURSIVE fib (a, b) AS ((SELECT 0, 1) UNION ALL "
       "(SELECT b, a + b FROM fib WHERE b < 100)) "
       "SELECT a FROM fib ORDER BY a");

  // --- 3. Analytics operators with lambdas (paper §6/§7) ------------------
  Exec(engine, "initial centers: just another relation",
       "CREATE TABLE center (x FLOAT, y INTEGER, z FLOAT)");
  Exec(engine, "pick two seeds",
       "INSERT INTO center VALUES (0.5, 1, 0.1), (8.5, 9, 7.5)");

  Exec(engine,
       "Listing 3: k-Means with a user-defined distance lambda",
       "SELECT * FROM KMEANS ("
       "(SELECT x, y FROM data), "
       "(SELECT x, y FROM center), "
       "lambda(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, "
       "3) ORDER BY cluster");

  Exec(engine,
       "the same operator as a k-Medians-style variant: only the lambda "
       "changes (paper §7)",
       "SELECT * FROM KMEANS ("
       "(SELECT x, y FROM data), "
       "(SELECT x, y FROM center), "
       "lambda(a, b) abs(a.x - b.x) + abs(a.y - b.y), "
       "3) ORDER BY cluster");

  Exec(engine, "a small friendship graph",
       "CREATE TABLE edges (src INTEGER, dest INTEGER)");
  Exec(engine, "edges",
       "INSERT INTO edges VALUES (1,2),(2,1),(2,3),(3,2),(3,1),(1,3),(4,1)");
  Exec(engine, "Listing 2: PageRank as a relational operator",
       "SELECT * FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0001) "
       "ORDER BY rank DESC");

  // --- 4. Everything composes ---------------------------------------------
  Exec(engine,
       "operators are relations: post-process PageRank output with SQL",
       "SELECT count(*) important FROM PAGERANK("
       "(SELECT src, dest FROM edges), 0.85, 0.0001) pr WHERE pr.rank > 0.25");

  Exec(engine, "a fourth operator, added the same way (extensibility)",
       "SELECT component, count(*) size FROM CONNECTED_COMPONENTS("
       "(SELECT src, dest FROM edges)) GROUP BY component ORDER BY component");

  // --- 5. Live data: mutate, re-analyze, no ETL ----------------------------
  Exec(engine, "data changes transactionally (copy-on-write snapshot)",
       "UPDATE data SET x = x + 100.0 WHERE descr LIKE 'z%'");
  Exec(engine, "the very next analytical query sees fresh data",
       "SELECT max(x) FROM data");

  std::printf("=== done ===\n");
  return 0;
}
