/// Social-network influencer ranking — the paper's graph-analytics motif.
///
/// Generates an LDBC-SNB-like person-knows-person graph (§8.1.3), ranks
/// people with the physical PageRank operator (temporary CSR + reverse id
/// mapping, §6.3), joins ranks back to profile data, and contrasts the
/// operator with the ITERATE SQL formulation — the §8.4.2 comparison in
/// miniature, including a weighted variant via an edge-weight lambda.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "bench_support/workloads.h"
#include "core/engine.h"
#include "graph/ldbc_generator.h"
#include "util/timer.h"

namespace {

soda::QueryResult Exec(soda::Engine& engine, const std::string& sql) {
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\nSQL: %s\n", result.status().ToString().c_str(),
                sql.c_str());
    std::exit(1);
  }
  return std::move(result.ValueOrDie());
}

}  // namespace

int main() {
  soda::Engine engine;
  std::printf("=== who matters in the social graph? ===\n\n");

  // An LDBC-like graph: 4000 people, heavy-tailed friendships.
  soda::GeneratedGraph graph = soda::GenerateSocialGraph(4000, 24, 7);
  if (!soda::workloads::RegisterGraph(&engine.catalog(), "knows", graph)
           .ok()) {
    return 1;
  }
  std::printf("generated %zu people, %zu directed friendship edges\n\n",
              graph.num_vertices, graph.num_edges);

  // A profile table keyed by the same (sparse, shuffled) person ids.
  (void)engine.Execute("CREATE TABLE people (id INTEGER, handle TEXT)");
  {
    auto people = engine.catalog().GetTable("people");
    std::set<int64_t> ids(graph.src.begin(), graph.src.end());
    for (int64_t id : ids) {
      (void)(*people)->AppendRow(
          {soda::Value::BigInt(id),
           soda::Value::Varchar("person_" + std::to_string(id))});
    }
  }

  // Rank + join + top-10, one query (paper Fig. 2a: post-processing of an
  // operator's output is ordinary SQL).
  soda::Timer timer;
  auto top = Exec(engine,
                  "SELECT p.handle, pr.rank FROM PAGERANK("
                  "(SELECT src, dst FROM knows), 0.85, 0.0, 30) pr "
                  "JOIN people p ON p.id = pr.vertex "
                  "ORDER BY pr.rank DESC, p.handle LIMIT 10");
  double operator_seconds = timer.ElapsedSeconds();
  std::printf("-- top influencers (physical operator, %0.3fs)\n%s\n",
              operator_seconds, top.ToString(10).c_str());

  // The same computation in pure SQL with ITERATE (layer 3).
  (void)engine.Execute("CREATE TABLE deg (src INTEGER, cnt INTEGER)");
  (void)engine.Execute("INSERT INTO deg " +
                       soda::workloads::DegreeTableSql("knows"));
  timer.Reset();
  auto sql_top = Exec(engine, soda::workloads::PageRankIterateSql(
                                  "knows", "deg", graph.num_vertices, 0.85,
                                  30));
  double iterate_seconds = timer.ElapsedSeconds();
  std::printf(
      "-- same ranking via the ITERATE SQL formulation: %0.3fs "
      "(%0.1fx the operator; §8.4.2: joins vs the CSR index)\n",
      iterate_seconds, iterate_seconds / operator_seconds);
  std::printf("   top vertex agrees: operator=%s, iterate=%lld\n\n",
              top.GetString(0, 0).c_str(),
              static_cast<long long>(sql_top.GetInt(0, 0)));

  // Weighted variant: close friendships (low id distance as a stand-in
  // for interaction strength) count more — just a different lambda.
  auto weighted = Exec(engine,
                       "SELECT p.handle, pr.rank FROM PAGERANK("
                       "(SELECT src, dst FROM knows), 0.85, 0.0, 30, "
                       "lambda(e) 1.0 / (1.0 + abs(e.src - e.dst) / 1000.0)"
                       ") pr JOIN people p ON p.id = pr.vertex "
                       "ORDER BY pr.rank DESC, p.handle LIMIT 5");
  std::printf("-- top-5 under interaction-weighted edges (edge lambda, §7)\n%s\n",
              weighted.ToString(5).c_str());

  return 0;
}
