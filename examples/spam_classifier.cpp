/// Spam classification — the paper's supervised-learning motif (§6.2).
///
/// Message feature vectors live in a relational table; a Gaussian Naive
/// Bayes model is trained by the NAIVE_BAYES_TRAIN operator, *stored as a
/// relation* (the paper's answer to "the model does not match any of the
/// relational entities"), applied with NAIVE_BAYES_PREDICT, and evaluated
/// — train/test split, scoring, confusion matrix — entirely in SQL.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "util/rng.h"

namespace {

soda::QueryResult Exec(soda::Engine& engine, const std::string& sql) {
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::printf("error: %s\nSQL: %s\n", result.status().ToString().c_str(),
                sql.c_str());
    std::exit(1);
  }
  return std::move(result.ValueOrDie());
}

}  // namespace

int main() {
  soda::Engine engine;
  std::printf("=== in-database spam filtering with Naive Bayes ===\n\n");

  // Features per message: exclamation density, ALL-CAPS ratio, link count,
  // message length. Spam skews every one of them.
  (void)engine.Execute(
      "CREATE TABLE messages (id INTEGER, is_spam INTEGER, exclaim FLOAT, "
      "caps FLOAT, links FLOAT, length FLOAT)");
  {
    auto table = engine.catalog().GetTable("messages");
    soda::Rng rng(99);
    for (int id = 0; id < 8000; ++id) {
      bool spam = rng.Below(100) < 30;  // 30% spam base rate
      double exclaim = spam ? 4 + rng.Gaussian() * 2 : 0.5 + rng.Gaussian();
      double caps = spam ? 0.4 + rng.Gaussian() * 0.15
                         : 0.05 + rng.Gaussian() * 0.05;
      double links = spam ? 3 + rng.Gaussian() : 0.3 + rng.Gaussian() * 0.5;
      double length = spam ? 300 + rng.Gaussian() * 120
                           : 600 + rng.Gaussian() * 250;
      (void)(*table)->AppendRow(
          {soda::Value::BigInt(id), soda::Value::BigInt(spam ? 1 : 0),
           soda::Value::Double(exclaim), soda::Value::Double(caps),
           soda::Value::Double(links), soda::Value::Double(length)});
    }
  }

  // Train/test split in SQL (80/20 by id hash).
  auto split = Exec(engine,
                    "SELECT sum(CASE WHEN id % 5 < 4 THEN 1 ELSE 0 END) train_rows, "
                    "sum(CASE WHEN id % 5 = 4 THEN 1 ELSE 0 END) test_rows, "
                    "avg(CAST(is_spam AS FLOAT)) spam_rate FROM messages");
  std::printf("-- dataset\n%s\n", split.ToString().c_str());

  // Train on the 80%% split; the model is a relation we can inspect.
  (void)engine.Execute("DROP TABLE IF EXISTS model");
  (void)engine.Execute(
      "CREATE TABLE model (class INTEGER, attr INTEGER, prior FLOAT, "
      "mean FLOAT, variance FLOAT, cnt INTEGER)");
  auto train = engine.Execute(
      "INSERT INTO model SELECT * FROM NAIVE_BAYES_TRAIN("
      "(SELECT is_spam, exclaim, caps, links, length FROM messages "
      "WHERE id % 5 < 4))");
  if (!train.ok()) {
    std::printf("training failed: %s\n", train.status().ToString().c_str());
    return 1;
  }
  auto model = Exec(engine, "SELECT * FROM model ORDER BY class, attr");
  std::printf("-- the model IS a relation (paper §6.2)\n%s\n",
              model.ToString(8).c_str());

  // Predict the held-out 20% and score in the same query: join predictions
  // (positional id via a re-join on the feature values is fragile, so we
  // predict features + keep the truth column alongside).
  auto confusion = Exec(
      engine,
      "SELECT t.is_spam truth, p.predicted, count(*) n "
      "FROM NAIVE_BAYES_PREDICT((SELECT * FROM model), "
      "(SELECT exclaim, caps, links, length FROM messages "
      " WHERE id % 5 = 4 ORDER BY id)) p "
      "JOIN (SELECT exclaim, caps, links, length, is_spam FROM messages "
      "      WHERE id % 5 = 4) t "
      "ON t.exclaim = p.exclaim AND t.caps = p.caps AND t.links = p.links "
      "AND t.length = p.length "
      "GROUP BY t.is_spam, p.predicted ORDER BY truth, p.predicted");
  std::printf("-- confusion matrix on the held-out split\n%s\n",
              confusion.ToString().c_str());

  // Accuracy in one more query.
  auto accuracy = Exec(
      engine,
      "SELECT avg(CASE WHEN t.is_spam = p.predicted THEN 1.0 ELSE 0.0 END) "
      "accuracy "
      "FROM NAIVE_BAYES_PREDICT((SELECT * FROM model), "
      "(SELECT exclaim, caps, links, length FROM messages "
      " WHERE id % 5 = 4)) p "
      "JOIN (SELECT exclaim, caps, links, length, is_spam FROM messages "
      "      WHERE id % 5 = 4) t "
      "ON t.exclaim = p.exclaim AND t.caps = p.caps AND t.links = p.links "
      "AND t.length = p.length");
  std::printf("-- held-out accuracy: %.3f\n", accuracy.GetDouble(0, 0));
  std::printf(
      "\nNew mail flows into `messages` transactionally; re-running the\n"
      "INSERT INTO model retrains on fresh data — no stale models, no ETL.\n");
  return 0;
}
