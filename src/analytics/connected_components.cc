#include "analytics/connected_components.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "graph/csr.h"
#include "util/parallel.h"

namespace soda {

Result<TablePtr> RunConnectedComponents(const Table& edges,
                                        ConnectedComponentsStats* stats,
                                        QueryGuard* guard) {
  if (edges.num_columns() < 2 ||
      edges.column(0).type() != DataType::kBigInt ||
      edges.column(1).type() != DataType::kBigInt) {
    return Status::InvalidArgument(
        "connected components require BIGINT (src, dst) edge columns");
  }
  const size_t e = edges.num_rows();
  // Undirected closure: materialize both directions before the CSR build.
  SODA_RETURN_NOT_OK(
      GuardReserve(guard, 4 * e * sizeof(int64_t), "cc.edges"));
  std::vector<int64_t> src, dst;
  src.reserve(2 * e);
  dst.reserve(2 * e);
  const int64_t* s = edges.column(0).I64Data();
  const int64_t* d = edges.column(1).I64Data();
  for (size_t i = 0; i < e; ++i) {
    src.push_back(s[i]);
    dst.push_back(d[i]);
    src.push_back(d[i]);
    dst.push_back(s[i]);
  }
  SODA_ASSIGN_OR_RETURN(CsrGraph csr, CsrBuilder::Build(src, dst));
  const size_t v = csr.num_vertices();

  Schema out_schema({Field("vertex", DataType::kBigInt),
                     Field("component", DataType::kBigInt)});
  auto out = std::make_shared<Table>("components", out_schema);
  if (v == 0) {
    if (stats) *stats = {};
    return out;
  }

  // Labels carry the *original* ids so the final component label is the
  // component's smallest original id (stable across input orders).
  std::vector<int64_t> label(v), next(v);
  for (uint32_t i = 0; i < v; ++i) label[i] = csr.OriginalId(i);

  int64_t iterations = 0;
  for (;;) {
    // Governance probe per propagation round; label propagation runs at
    // most diameter+1 rounds but huge graphs still deserve a deadline.
    SODA_RETURN_NOT_OK(GuardProbe(guard, "cc.iteration"));
    std::atomic<bool> changed{false};
    SODA_RETURN_NOT_OK(ParallelFor(
        guard, v, [&](size_t begin, size_t end, size_t) {
          bool local_changed = false;
          for (size_t vert = begin; vert < end; ++vert) {
            int64_t best = label[vert];
            for (const uint32_t* n =
                     csr.NeighborsBegin(static_cast<uint32_t>(vert));
                 n != csr.NeighborsEnd(static_cast<uint32_t>(vert)); ++n) {
              best = std::min(best, label[*n]);
            }
            next[vert] = best;
            if (best != label[vert]) local_changed = true;
          }
          if (local_changed) changed.store(true, std::memory_order_relaxed);
        }));
    ++iterations;
    label.swap(next);
    if (!changed.load()) break;
  }

  std::unordered_set<int64_t> distinct(label.begin(), label.end());
  if (stats) {
    stats->iterations_run = iterations;
    stats->num_components = distinct.size();
    stats->num_vertices = v;
  }

  out->Reserve(v);
  for (uint32_t i = 0; i < v; ++i) {
    out->column(0).AppendBigInt(csr.OriginalId(i));
    out->column(1).AppendBigInt(label[i]);
  }
  return out;
}

}  // namespace soda
