/// \file connected_components.h
/// Connected components — an *extension* operator demonstrating how new
/// algorithms slot into the paper's layer-4 framework (§6): it reuses the
/// temporary-CSR building block of the PageRank operator (dense
/// re-labeling, parallel per-vertex iterations, reverse id mapping) and is
/// exposed as the CONNECTED_COMPONENTS((edges)) table function, freely
/// composable with relational operators.
///
/// Algorithm: synchronous min-label propagation. Labels start as each
/// vertex's dense id; each round every vertex adopts the minimum label in
/// its closed neighborhood (parallel, double-buffered); termination when a
/// round changes nothing. Edges are treated as undirected (both directions
/// are added internally).

#ifndef SODA_ANALYTICS_CONNECTED_COMPONENTS_H_
#define SODA_ANALYTICS_CONNECTED_COMPONENTS_H_

#include <cstdint>

#include "storage/table.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

struct ConnectedComponentsStats {
  int64_t iterations_run = 0;
  size_t num_components = 0;
  size_t num_vertices = 0;
};

/// Computes connected components over an edge relation whose first two
/// columns are BIGINT (src, dst). Output: (vertex BIGINT,
/// component BIGINT) where `component` is the smallest *original* vertex
/// id in the component (stable, order-independent labels).
///
/// `guard` (nullable) is probed at "cc.iteration" every propagation round;
/// the undirected edge-list copy is charged to the memory budget at
/// "cc.edges" before it is built.
Result<TablePtr> RunConnectedComponents(const Table& edges,
                                        ConnectedComponentsStats* stats =
                                            nullptr,
                                        QueryGuard* guard = nullptr);

}  // namespace soda

#endif  // SODA_ANALYTICS_CONNECTED_COMPONENTS_H_
