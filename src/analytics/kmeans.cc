#include "analytics/kmeans.h"

#include <atomic>
#include <cstring>
#include <limits>

#include "util/parallel.h"

namespace soda {

namespace {

/// Copies an all-numeric table into a dense row-major double matrix
/// (paper §6.1: the operator provides "efficient internal data
/// representations"). Parallel over rows. The matrix is the operator's
/// dominant allocation, so it is reserved against the memory budget
/// ("kmeans.densify") before any memory is touched.
Status Densify(const Table& t, std::vector<double>* out, QueryGuard* guard) {
  const size_t n = t.num_rows();
  const size_t d = t.num_columns();
  for (size_t c = 0; c < d; ++c) {
    if (!IsNumeric(t.column(c).type())) {
      return Status::TypeError("k-Means requires numeric columns; column '" +
                               t.schema().field(c).name + "' is " +
                               DataTypeToString(t.column(c).type()));
    }
  }
  SODA_RETURN_NOT_OK(
      GuardReserve(guard, n * d * sizeof(double), "kmeans.densify"));
  out->resize(n * d);
  return ParallelFor(guard, n, [&](size_t begin, size_t end, size_t) {
    for (size_t c = 0; c < d; ++c) {
      const Column& col = t.column(c);
      if (col.type() == DataType::kDouble) {
        const double* src = col.F64Data();
        for (size_t i = begin; i < end; ++i) (*out)[i * d + c] = src[i];
      } else {
        const int64_t* src = col.I64Data();
        for (size_t i = begin; i < end; ++i) {
          (*out)[i * d + c] = static_cast<double>(src[i]);
        }
      }
    }
  });
}

double SquaredL2(const double* a, const double* b, size_t d) {
  double acc = 0;
  for (size_t j = 0; j < d; ++j) {
    double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

/// Thread-local accumulation state for one assignment round.
struct WorkerAccum {
  std::vector<double> sums;    // k * d
  std::vector<int64_t> counts; // k
  size_t changed = 0;

  void Reset(size_t k, size_t d) {
    sums.assign(k * d, 0.0);
    counts.assign(k, 0);
    changed = 0;
  }
};

}  // namespace

Result<KMeansResult> RunKMeans(const Table& data,
                               const Table& initial_centers,
                               const KMeansOptions& options) {
  const size_t n = data.num_rows();
  const size_t d = data.num_columns();
  const size_t k = initial_centers.num_rows();
  if (k == 0) {
    return Status::InvalidArgument("k-Means requires at least one center");
  }
  if (initial_centers.num_columns() != d) {
    return Status::InvalidArgument(
        "k-Means centers must have the same number of columns as the data (" +
        std::to_string(initial_centers.num_columns()) + " vs " +
        std::to_string(d) + ")");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }
  if (options.min_change_fraction < 0 || options.min_change_fraction > 1) {
    return Status::InvalidArgument(
        "min_change_fraction must be in [0, 1]");
  }

  std::vector<double> points;
  SODA_RETURN_NOT_OK(Densify(data, &points, options.guard));
  std::vector<double> centers;
  SODA_RETURN_NOT_OK(Densify(initial_centers, &centers, options.guard));

  // Previous assignment per tuple, for the convergence check (§6.1: the
  // algorithm converges when no tuple changes its assigned cluster).
  std::vector<uint32_t> assignment(n, std::numeric_limits<uint32_t>::max());

  const LambdaKernel* lambda = options.distance;
  std::vector<WorkerAccum> workers(NumWorkers());

  KMeansResult result;
  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    // Governance probe per round: a k-Means that never converges is
    // exactly the runaway the paper says the database must abort (§5.1).
    SODA_RETURN_NOT_OK(GuardProbe(options.guard, "kmeans.iteration"));
    for (auto& w : workers) w.Reset(k, d);

    SODA_RETURN_NOT_OK(ParallelFor(
        options.guard, n, [&](size_t begin, size_t end, size_t worker) {
      WorkerAccum& acc = workers[worker];
      for (size_t i = begin; i < end; ++i) {
        const double* p = points.data() + i * d;
        uint32_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k; ++c) {
          const double* ctr = centers.data() + c * d;
          double dist =
              lambda ? lambda->Eval(p, ctr) : SquaredL2(p, ctr, d);
          if (dist < best_dist) {
            best_dist = dist;
            best = static_cast<uint32_t>(c);
          }
        }
        if (assignment[i] != best) {
          assignment[i] = best;
          acc.changed++;
        }
        double* sum = acc.sums.data() + best * d;
        for (size_t j = 0; j < d; ++j) sum[j] += p[j];
        acc.counts[best]++;
      }
    }));

    // Global merge — the only synchronized step.
    std::vector<double> sums(k * d, 0.0);
    std::vector<int64_t> counts(k, 0);
    size_t changed = 0;
    for (const auto& w : workers) {
      if (w.counts.empty()) continue;
      for (size_t c = 0; c < k; ++c) counts[c] += w.counts[c];
      for (size_t j = 0; j < k * d; ++j) sums[j] += w.sums[j];
      changed += w.changed;
    }

    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) {
        centers[c * d + j] = sums[c * d + j] * inv;
      }
    }

    result.iterations_run = iter + 1;
    if (static_cast<double>(changed) <=
        options.min_change_fraction * static_cast<double>(n)) {
      result.converged = true;
      break;
    }
  }

  // Output relation: cluster id + final center coordinates.
  Schema out_schema;
  out_schema.AddField(Field("cluster", DataType::kBigInt));
  for (const auto& f : initial_centers.schema().fields()) {
    out_schema.AddField(Field(f.name, DataType::kDouble));
  }
  auto out = std::make_shared<Table>("kmeans", out_schema);
  out->Reserve(k);
  for (size_t c = 0; c < k; ++c) {
    out->column(0).AppendBigInt(static_cast<int64_t>(c));
    for (size_t j = 0; j < d; ++j) {
      out->column(j + 1).AppendDouble(centers[c * d + j]);
    }
  }
  result.centers = std::move(out);
  return result;
}

Result<std::vector<uint32_t>> AssignClusters(const Table& data,
                                             const Table& centers,
                                             const LambdaKernel* distance) {
  const size_t n = data.num_rows();
  const size_t d = data.num_columns();
  if (centers.num_columns() != d || centers.num_rows() == 0) {
    return Status::InvalidArgument("centers incompatible with data");
  }
  std::vector<double> points, ctrs;
  SODA_RETURN_NOT_OK(Densify(data, &points, /*guard=*/nullptr));
  SODA_RETURN_NOT_OK(Densify(centers, &ctrs, /*guard=*/nullptr));
  const size_t k = centers.num_rows();
  std::vector<uint32_t> assignment(n);
  ParallelFor(n, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      const double* p = points.data() + i * d;
      uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double dist = distance ? distance->Eval(p, ctrs.data() + c * d)
                               : SquaredL2(p, ctrs.data() + c * d, d);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<uint32_t>(c);
        }
      }
      assignment[i] = best;
    }
  });
  return assignment;
}

}  // namespace soda
