/// \file kmeans.h
/// The physical k-Means operator (paper §6.1).
///
/// Lloyd's algorithm with morsel-parallel assignment: each worker assigns
/// its tuples to the nearest center and accumulates per-cluster sums in
/// thread-local state; synchronization happens only for the final merge
/// and center update, exactly as §6.1 describes. The distance metric is a
/// variation point: a compiled SQL lambda (paper §7) or the built-in
/// squared-L2 default.

#ifndef SODA_ANALYTICS_KMEANS_H_
#define SODA_ANALYTICS_KMEANS_H_

#include <cstdint>

#include "expr/lambda_kernel.h"
#include "storage/table.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

struct KMeansOptions {
  /// Maximum number of assignment/update rounds (the paper's experiments
  /// use 3).
  int64_t max_iterations = 3;
  /// Optional user distance metric d(a, b) over (point, center); nullptr
  /// selects the built-in squared Euclidean distance.
  const LambdaKernel* distance = nullptr;
  /// Softened convergence criterion (paper §6.1: "the algorithm is
  /// interrupted if only a small fraction of tuples changed its assigned
  /// cluster"): stop once changed_tuples <= min_change_fraction * n.
  /// 0 keeps the strict no-change criterion.
  double min_change_fraction = 0.0;
  /// Resource governor probed at the "kmeans.iteration" site each round
  /// and at every assignment morsel; null = ungoverned.
  QueryGuard* guard = nullptr;
};

struct KMeansResult {
  /// Final centers: (cluster BIGINT, <center coordinates...> DOUBLE) with
  /// coordinate names taken from the centers input.
  TablePtr centers;
  int64_t iterations_run = 0;
  /// True when no tuple changed its assignment in the last round (the
  /// classical convergence criterion, §6.1).
  bool converged = false;
};

/// Runs k-Means over `data` starting from `initial_centers`. Both inputs
/// must be all-numeric; their column counts must match; `initial_centers`
/// must be non-empty.
Result<KMeansResult> RunKMeans(const Table& data, const Table& initial_centers,
                               const KMeansOptions& options);

/// Assigns each row of `data` to its nearest center (0-based index) —
/// the model-application step; used by examples and tests.
Result<std::vector<uint32_t>> AssignClusters(const Table& data,
                                             const Table& centers,
                                             const LambdaKernel* distance);

}  // namespace soda

#endif  // SODA_ANALYTICS_KMEANS_H_
