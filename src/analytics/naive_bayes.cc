#include "analytics/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "analytics/stats.h"
#include "util/parallel.h"

namespace soda {

namespace {
/// Variance floor: a zero-variance Gaussian degenerates; the standard fix.
constexpr double kMinVariance = 1e-9;
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

Schema NaiveBayesModelSchema() {
  return Schema({Field("class", DataType::kBigInt),
                 Field("attr", DataType::kBigInt),
                 Field("prior", DataType::kDouble),
                 Field("mean", DataType::kDouble),
                 Field("variance", DataType::kDouble),
                 Field("cnt", DataType::kBigInt)});
}

Result<TablePtr> TrainNaiveBayes(const Table& labeled, QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(GroupedMoments gm,
                        ComputeGroupedMoments(labeled, guard));
  const int64_t total = gm.total_count();
  const double num_classes = static_cast<double>(gm.classes.size());

  auto model = std::make_shared<Table>("nb_model", NaiveBayesModelSchema());
  model->Reserve(gm.classes.size() * gm.num_attributes);
  for (size_t c = 0; c < gm.classes.size(); ++c) {
    const int64_t class_count = gm.cells[c].empty() ? 0 : gm.cells[c][0].count;
    // PR(c) = (|c| + 1) / (|D| + |C|), paper §6.2.
    const double prior = (static_cast<double>(class_count) + 1.0) /
                         (static_cast<double>(total) + num_classes);
    for (size_t a = 0; a < gm.num_attributes; ++a) {
      const Moments& m = gm.cells[c][a];
      model->column(0).AppendBigInt(gm.classes[c]);
      model->column(1).AppendBigInt(static_cast<int64_t>(a) + 1);
      model->column(2).AppendDouble(prior);
      model->column(3).AppendDouble(m.Mean());
      model->column(4).AppendDouble(std::max(m.Variance(), kMinVariance));
      model->column(5).AppendBigInt(m.count);
    }
  }
  return model;
}

Result<TablePtr> PredictNaiveBayes(const Table& model, const Table& data,
                                   QueryGuard* guard) {
  // Decode the relational model into per-class parameter vectors.
  if (!model.schema().TypesEqual(NaiveBayesModelSchema())) {
    return Status::InvalidArgument(
        "model relation does not match the Naive Bayes model schema " +
        NaiveBayesModelSchema().ToString());
  }
  struct ClassParams {
    double log_prior = 0;
    std::vector<double> mean;
    std::vector<double> variance;
  };
  std::map<int64_t, ClassParams> classes;
  size_t num_attrs = 0;
  for (size_t r = 0; r < model.num_rows(); ++r) {
    int64_t cls = model.column(0).GetBigInt(r);
    size_t attr = static_cast<size_t>(model.column(1).GetBigInt(r));
    if (attr == 0) return Status::InvalidArgument("model attr ids are 1-based");
    num_attrs = std::max(num_attrs, attr);
    auto& p = classes[cls];
    if (p.mean.size() < attr) {
      p.mean.resize(attr);
      p.variance.resize(attr, kMinVariance);
    }
    p.log_prior = std::log(std::max(model.column(2).GetDouble(r),
                                    std::numeric_limits<double>::min()));
    p.mean[attr - 1] = model.column(3).GetDouble(r);
    p.variance[attr - 1] =
        std::max(model.column(4).GetDouble(r), kMinVariance);
  }
  if (classes.empty()) {
    return Status::InvalidArgument("empty Naive Bayes model");
  }
  if (data.num_columns() != num_attrs) {
    return Status::InvalidArgument(
        "data has " + std::to_string(data.num_columns()) +
        " attributes but the model was trained on " +
        std::to_string(num_attrs));
  }
  for (size_t c = 0; c < data.num_columns(); ++c) {
    if (!IsNumeric(data.column(c).type())) {
      return Status::TypeError("prediction attributes must be numeric");
    }
  }

  // Flatten classes for the hot loop.
  std::vector<int64_t> labels;
  std::vector<ClassParams> params;
  for (auto& [cls, p] : classes) {
    if (p.mean.size() != num_attrs) {
      return Status::InvalidArgument("model is missing attributes for class " +
                                     std::to_string(cls));
    }
    labels.push_back(cls);
    params.push_back(std::move(p));
  }
  // Precompute the Gaussian log-normalizers.
  std::vector<std::vector<double>> log_norm(params.size());
  for (size_t c = 0; c < params.size(); ++c) {
    log_norm[c].resize(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      log_norm[c][a] = -0.5 * std::log(kTwoPi * params[c].variance[a]);
    }
  }

  const size_t n = data.num_rows();
  std::vector<int64_t> predicted(n);
  SODA_RETURN_NOT_OK(ParallelFor(
      guard, n, [&](size_t begin, size_t end, size_t) {
        std::vector<double> x(num_attrs);
        for (size_t i = begin; i < end; ++i) {
          for (size_t a = 0; a < num_attrs; ++a) {
            x[a] = data.column(a).GetNumeric(i);
          }
          double best_score = -std::numeric_limits<double>::infinity();
          int64_t best_label = labels[0];
          for (size_t c = 0; c < params.size(); ++c) {
            double score = params[c].log_prior;
            for (size_t a = 0; a < num_attrs; ++a) {
              double diff = x[a] - params[c].mean[a];
              score += log_norm[c][a] -
                       0.5 * diff * diff / params[c].variance[a];
            }
            if (score > best_score) {
              best_score = score;
              best_label = labels[c];
            }
          }
          predicted[i] = best_label;
        }
      }));

  Schema out_schema = data.schema();
  out_schema.AddField(Field("predicted", DataType::kBigInt));
  auto out = std::make_shared<Table>("nb_predict", out_schema);
  for (size_t c = 0; c < data.num_columns(); ++c) {
    Column col(data.column(c).type());
    col.AppendSlice(data.column(c), 0, n);
    SODA_RETURN_NOT_OK(out->SetColumn(c, std::move(col)));
  }
  SODA_RETURN_NOT_OK(out->SetColumn(
      data.num_columns(), Column::FromBigInts(std::move(predicted))));
  return out;
}

}  // namespace soda
