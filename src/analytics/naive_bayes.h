/// \file naive_bayes.h
/// The physical Naive Bayes operators (paper §6.2).
///
/// Two separate physical operators, exactly as the paper describes:
/// *training* consumes a labeled relation and produces a relational model
/// (the model "does not match any of the relational entities ... we
/// implemented model creation and application as two separate operators");
/// *testing* consumes the model relation plus an unlabeled relation and
/// predicts labels. Training accumulates per-thread hash tables of
/// sufficient statistics (count, sum, sum of squares per class and
/// attribute — shared with the SUMMARIZE building block) and merges them
/// once. The a-priori probability uses the paper's Laplace-smoothed
/// estimator PR(c) = (|c| + 1) / (|D| + |C|).

#ifndef SODA_ANALYTICS_NAIVE_BAYES_H_
#define SODA_ANALYTICS_NAIVE_BAYES_H_

#include "storage/table.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

/// Model relation schema: (class BIGINT, attr BIGINT /*1-based*/,
/// prior DOUBLE, mean DOUBLE, variance DOUBLE, cnt BIGINT).
Schema NaiveBayesModelSchema();

/// Trains a Gaussian Naive Bayes model. `labeled`'s first column is an
/// integer class label; the remaining columns are numeric attributes.
/// `guard` (nullable) is probed at every accumulation morsel.
Result<TablePtr> TrainNaiveBayes(const Table& labeled,
                                 QueryGuard* guard = nullptr);

/// Applies a model to `data` (numeric attribute columns matching the
/// model's attribute count). Output: the data columns plus a trailing
/// `predicted BIGINT` column. Parallel over tuples; `guard` (nullable) is
/// probed at every prediction morsel.
Result<TablePtr> PredictNaiveBayes(const Table& model, const Table& data,
                                   QueryGuard* guard = nullptr);

}  // namespace soda

#endif  // SODA_ANALYTICS_NAIVE_BAYES_H_
