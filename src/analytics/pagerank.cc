#include "analytics/pagerank.h"

#include <atomic>
#include <cmath>
#include <unordered_map>

#include "graph/csr.h"
#include "util/parallel.h"

namespace soda {

Result<TablePtr> RunPageRank(const Table& edges,
                             const PageRankOptions& options,
                             PageRankStats* stats) {
  if (edges.num_columns() < 2) {
    return Status::InvalidArgument(
        "PageRank requires an edge relation with (src, dst) columns");
  }
  const Column& src_col = edges.column(0);
  const Column& dst_col = edges.column(1);
  if (src_col.type() != DataType::kBigInt ||
      dst_col.type() != DataType::kBigInt) {
    return Status::TypeError("PageRank edge endpoints must be BIGINT");
  }
  if (!(options.damping >= 0.0 && options.damping <= 1.0)) {
    return Status::InvalidArgument("damping factor must be in [0, 1]");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  const size_t e = edges.num_rows();
  // The edge copies plus the CSR index are the operator's dominant
  // allocations; charge them before building (the CSR holds offsets,
  // targets and optionally weights, roughly 2x the edge list).
  SODA_RETURN_NOT_OK(GuardReserve(options.guard,
                                  4 * e * sizeof(int64_t), "pagerank.csr"));
  std::vector<int64_t> src(src_col.I64Data(), src_col.I64Data() + e);
  std::vector<int64_t> dst(dst_col.I64Data(), dst_col.I64Data() + e);

  // Optional per-edge weights via the lambda (single tuple parameter =
  // the whole edge row, densified to doubles).
  std::vector<double> weights;
  if (options.edge_weight) {
    const size_t d = edges.num_columns();
    weights.resize(e);
    SODA_RETURN_NOT_OK(ParallelFor(
        options.guard, e, [&](size_t begin, size_t end, size_t) {
          std::vector<double> row(d);
          for (size_t i = begin; i < end; ++i) {
            for (size_t c = 0; c < d; ++c) {
              row[c] = edges.column(c).GetNumeric(i);
            }
            weights[i] = options.edge_weight->Eval(row.data(), nullptr);
          }
        }));
    for (size_t i = 0; i < e; ++i) {
      if (!(weights[i] >= 0)) {
        return Status::ExecutionError(
            "edge-weight lambda produced a negative or NaN weight");
      }
    }
  }

  // Temporary CSR over *incoming* edges (pull-based iteration: vertex v
  // reads its in-neighbors' ranks), paper §6.3. Re-labeling to dense ids
  // happens inside the builder.
  SODA_ASSIGN_OR_RETURN(
      CsrGraph in_csr,
      CsrBuilder::Build(dst, src, weights.empty() ? nullptr : &weights));
  const size_t v = in_csr.num_vertices();
  if (stats) {
    stats->num_vertices = v;
    stats->num_edges = e;
  }

  Schema out_schema(
      {Field("vertex", DataType::kBigInt), Field("rank", DataType::kDouble)});
  auto out = std::make_shared<Table>("pagerank", out_schema);
  if (v == 0) return out;

  // Out-degree (or total outgoing weight) per dense vertex. The in-CSR's
  // original-id mapping covers every vertex, so map src ids through it by
  // rebuilding a dense lookup.
  std::vector<double> out_weight(v, 0.0);
  {
    std::unordered_map<int64_t, uint32_t> to_dense;
    to_dense.reserve(v * 2);
    for (uint32_t i = 0; i < v; ++i) to_dense.emplace(in_csr.OriginalId(i), i);
    for (size_t i = 0; i < e; ++i) {
      out_weight[to_dense[src[i]]] += weights.empty() ? 1.0 : weights[i];
    }
  }

  std::vector<double> rank(v, 1.0 / static_cast<double>(v));
  std::vector<double> next(v, 0.0);
  // Per-edge transition contribution rank[u] * w(u,v) / W_out(u); we
  // precompute 1/W_out to keep the inner loop multiply-only.
  std::vector<double> inv_out(v, 0.0);
  for (size_t i = 0; i < v; ++i) {
    if (out_weight[i] > 0) inv_out[i] = 1.0 / out_weight[i];
  }

  const double d = options.damping;
  const double base = (1.0 - d) / static_cast<double>(v);
  double delta = 0;
  int64_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Governance probe per round (paper §6.3 runs 45 fixed iterations;
    // a deadline or cancellation aborts between rounds, never mid-round).
    SODA_RETURN_NOT_OK(GuardProbe(options.guard, "pagerank.iteration"));
    // Dangling mass: vertices without outgoing edges distribute their rank
    // uniformly (keeps the ranks a probability distribution).
    double dangling = 0;
    for (size_t i = 0; i < v; ++i) {
      if (out_weight[i] == 0) dangling += rank[i];
    }
    const double redistribute = d * dangling / static_cast<double>(v);

    // New ranks, one vertex per slot — no synchronization inside the
    // iteration (paper §6.3), since each v writes only next[v].
    const bool weighted = in_csr.has_weights();
    SODA_RETURN_NOT_OK(ParallelFor(
        options.guard, v, [&](size_t begin, size_t end, size_t) {
          for (size_t vert = begin; vert < end; ++vert) {
            double acc = 0;
            const uint32_t* nb =
                in_csr.NeighborsBegin(static_cast<uint32_t>(vert));
            const uint32_t* nbe =
                in_csr.NeighborsEnd(static_cast<uint32_t>(vert));
            if (weighted) {
              const double* w = in_csr.weights().data() +
                                (nb - in_csr.targets().data());
              for (; nb != nbe; ++nb, ++w) {
                acc += rank[*nb] * inv_out[*nb] * *w;
              }
            } else {
              for (; nb != nbe; ++nb) {
                acc += rank[*nb] * inv_out[*nb];
              }
            }
            next[vert] = base + redistribute + d * acc;
          }
        }));

    // End-of-iteration aggregation of the workers' delta (paper §6.3:
    // "at the end of each iteration we aggregate each worker's data to
    // determine how much the new ranks differ").
    delta = 0;
    for (size_t i = 0; i < v; ++i) delta += std::fabs(next[i] - rank[i]);
    rank.swap(next);
    if (options.epsilon > 0 && delta <= options.epsilon) {
      ++iter;
      break;
    }
  }
  if (stats) {
    stats->iterations_run = iter;
    stats->last_delta = delta;
  }

  // Reverse mapping operator: dense internal ids -> original ids (§6.3).
  out->Reserve(v);
  for (uint32_t i = 0; i < v; ++i) {
    out->column(0).AppendBigInt(in_csr.OriginalId(i));
    out->column(1).AppendDouble(rank[i]);
  }
  return out;
}

}  // namespace soda
