/// \file pagerank.h
/// The physical PageRank operator (paper §6.3).
///
/// Builds a temporary CSR index with dense re-labeled vertex ids (so every
/// neighbor-rank access is a single array read), runs the damped power
/// iteration in parallel without synchronization inside an iteration, and
/// translates the dense ids back to the original ids through the reverse
/// mapping operator. An optional edge-weight lambda (paper §4.3/§7:
/// "define edge weights in PageRank") turns the uniform transition matrix
/// into a weighted one.

#ifndef SODA_ANALYTICS_PAGERANK_H_
#define SODA_ANALYTICS_PAGERANK_H_

#include <cstdint>

#include "expr/lambda_kernel.h"
#include "storage/table.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

struct PageRankOptions {
  /// Damping factor d (probability the random surfer follows an edge);
  /// the paper uses 0.85.
  double damping = 0.85;
  /// Convergence threshold on the L1 rank change; 0 disables early exit
  /// (the paper's experiments use e = 0 with 45 fixed iterations).
  double epsilon = 0.0001;
  int64_t max_iterations = 45;
  /// Optional edge weight lambda over the edge tuple (numeric columns of
  /// the edges input); nullptr = uniform weights.
  const LambdaKernel* edge_weight = nullptr;
  /// Resource governor probed at "pagerank.iteration" each power-iteration
  /// round; the CSR build is charged at "pagerank.csr". null = ungoverned.
  QueryGuard* guard = nullptr;
};

struct PageRankStats {
  int64_t iterations_run = 0;
  double last_delta = 0;  ///< L1 change of the final iteration
  size_t num_vertices = 0;
  size_t num_edges = 0;
};

/// Computes PageRank for the graph induced by `edges`, whose first two
/// columns are integer (src, dst) vertex ids; additional numeric columns
/// are visible to the edge-weight lambda. Returns a relation
/// (vertex BIGINT, rank DOUBLE) keyed by original vertex ids.
/// Dangling vertices' rank mass is redistributed uniformly, so ranks sum
/// to 1 (a tested invariant).
Result<TablePtr> RunPageRank(const Table& edges, const PageRankOptions& options,
                             PageRankStats* stats = nullptr);

}  // namespace soda

#endif  // SODA_ANALYTICS_PAGERANK_H_
