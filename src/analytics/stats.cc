#include "analytics/stats.h"

#include <cmath>
#include <unordered_map>

#include "util/parallel.h"

namespace soda {

namespace {

struct LocalState {
  std::unordered_map<int64_t, size_t> class_index;
  std::vector<int64_t> classes;
  std::vector<std::vector<Moments>> cells;

  std::vector<Moments>& CellsFor(int64_t label, size_t num_attrs) {
    auto [it, inserted] = class_index.emplace(label, classes.size());
    if (inserted) {
      classes.push_back(label);
      cells.emplace_back(num_attrs);
    }
    return cells[it->second];
  }
};

}  // namespace

Result<GroupedMoments> ComputeGroupedMoments(const Table& input,
                                             QueryGuard* guard) {
  if (input.num_columns() < 2) {
    return Status::InvalidArgument(
        "grouped moments require a label column plus at least one attribute");
  }
  const Column& label_col = input.column(0);
  if (label_col.type() != DataType::kBigInt &&
      label_col.type() != DataType::kBool) {
    return Status::TypeError("class label column must be integer");
  }
  const size_t num_attrs = input.num_columns() - 1;
  for (size_t c = 1; c < input.num_columns(); ++c) {
    if (!IsNumeric(input.column(c).type())) {
      return Status::TypeError("attribute columns must be numeric (column " +
                               input.schema().field(c).name + ")");
    }
  }

  const size_t n = input.num_rows();
  std::vector<LocalState> locals(NumWorkers());
  SODA_RETURN_NOT_OK(ParallelFor(
      guard, n, [&](size_t begin, size_t end, size_t worker) {
        LocalState& local = locals[worker];
        for (size_t i = begin; i < end; ++i) {
          int64_t label = label_col.GetBigInt(i);
          auto& cells = local.CellsFor(label, num_attrs);
          for (size_t a = 0; a < num_attrs; ++a) {
            cells[a].Update(input.column(a + 1).GetNumeric(i));
          }
        }
      }));

  GroupedMoments out;
  out.num_attributes = num_attrs;
  std::unordered_map<int64_t, size_t> index;
  for (const auto& local : locals) {
    for (size_t c = 0; c < local.classes.size(); ++c) {
      int64_t label = local.classes[c];
      auto [it, inserted] = index.emplace(label, out.classes.size());
      if (inserted) {
        out.classes.push_back(label);
        out.cells.emplace_back(num_attrs);
      }
      auto& target = out.cells[it->second];
      for (size_t a = 0; a < num_attrs; ++a) {
        target[a].Merge(local.cells[c][a]);
      }
    }
  }
  return out;
}

Result<TablePtr> SummarizeByClass(const Table& input, QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(GroupedMoments gm,
                        ComputeGroupedMoments(input, guard));
  Schema schema({Field("class", DataType::kBigInt),
                 Field("attr", DataType::kBigInt),
                 Field("cnt", DataType::kBigInt),
                 Field("sum", DataType::kDouble),
                 Field("sumsq", DataType::kDouble),
                 Field("mean", DataType::kDouble),
                 Field("stddev", DataType::kDouble)});
  auto out = std::make_shared<Table>("summarize", schema);
  out->Reserve(gm.classes.size() * gm.num_attributes);
  for (size_t c = 0; c < gm.classes.size(); ++c) {
    for (size_t a = 0; a < gm.num_attributes; ++a) {
      const Moments& m = gm.cells[c][a];
      out->column(0).AppendBigInt(gm.classes[c]);
      out->column(1).AppendBigInt(static_cast<int64_t>(a) + 1);
      out->column(2).AppendBigInt(m.count);
      out->column(3).AppendDouble(m.sum);
      out->column(4).AppendDouble(m.sumsq);
      out->column(5).AppendDouble(m.Mean());
      out->column(6).AppendDouble(std::sqrt(m.Variance()));
    }
  }
  return out;
}

}  // namespace soda
