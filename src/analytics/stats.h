/// \file stats.h
/// Shared statistics building block (paper §6.2: "the generation of
/// additional statistical measures is handled by two additional operators
/// that are not limited to Naive Bayes but can be used as a building block
/// for multiple algorithms, for example k-Means").
///
/// Computes, per (class, attribute): tuple count, sum and sum of squares —
/// exactly the sufficient statistics the Naive Bayes training operator
/// accumulates per thread — plus derived mean and standard deviation.

#ifndef SODA_ANALYTICS_STATS_H_
#define SODA_ANALYTICS_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

/// Sufficient statistics for one (class, attribute) cell.
struct Moments {
  int64_t count = 0;
  double sum = 0;
  double sumsq = 0;

  void Update(double v) {
    ++count;
    sum += v;
    sumsq += v * v;
  }
  void Merge(const Moments& o) {
    count += o.count;
    sum += o.sum;
    sumsq += o.sumsq;
  }
  double Mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Population variance (what the Gaussian MLE uses).
  double Variance() const {
    if (!count) return 0;
    double m = Mean();
    double v = sumsq / static_cast<double>(count) - m * m;
    return v < 0 ? 0 : v;  // numeric noise
  }
};

/// Per-class moments for every attribute, keyed by int64 class label.
struct GroupedMoments {
  std::vector<int64_t> classes;              ///< distinct labels, first-seen order
  std::vector<std::vector<Moments>> cells;   ///< [class][attribute]
  size_t num_attributes = 0;

  int64_t total_count() const {
    int64_t t = 0;
    for (const auto& c : cells) {
      if (!c.empty()) t += c[0].count;
    }
    return t;
  }
};

/// Computes grouped moments over `input`, whose first column is an integer
/// class label and whose remaining columns are numeric attributes.
/// Parallel: thread-local accumulation, merged once (the paper's operator
/// structure, §6.2). `guard` (nullable) is probed at every morsel.
Result<GroupedMoments> ComputeGroupedMoments(const Table& input,
                                             QueryGuard* guard = nullptr);

/// The SUMMARIZE table function's relational output:
/// (class BIGINT, attr BIGINT, cnt BIGINT, sum DOUBLE, sumsq DOUBLE,
///  mean DOUBLE, stddev DOUBLE); `attr` is 1-based.
Result<TablePtr> SummarizeByClass(const Table& input,
                                  QueryGuard* guard = nullptr);

}  // namespace soda

#endif  // SODA_ANALYTICS_STATS_H_
