#include "bench_support/workloads.h"

#include <cmath>

#include "util/parallel.h"
#include "util/rng.h"

namespace soda::workloads {

namespace {

Schema VectorSchema(size_t d, bool with_id, const char* first_col) {
  Schema schema;
  if (with_id) schema.AddField(Field(first_col, DataType::kBigInt));
  for (size_t j = 0; j < d; ++j) {
    schema.AddField(Field("x" + std::to_string(j + 1), DataType::kDouble));
  }
  return schema;
}

/// Squared-L2 distance text between `a.x1..xd` and `b.x1..xd`.
std::string DistanceExpr(const std::string& a, const std::string& b,
                         size_t d) {
  std::string out;
  for (size_t j = 1; j <= d; ++j) {
    if (j > 1) out += " + ";
    out += "(" + a + ".x" + std::to_string(j) + " - " + b + ".x" +
           std::to_string(j) + ")^2";
  }
  return out;
}

std::string AvgList(const std::string& alias, size_t d,
                    const std::string& out_prefix) {
  std::string out;
  for (size_t j = 1; j <= d; ++j) {
    if (j > 1) out += ", ";
    out += "avg(" + alias + ".x" + std::to_string(j) + ") " + out_prefix +
           std::to_string(j);
  }
  return out;
}

/// Subquery text computing centers from the current assignment relation
/// `state` (id->cid) joined with `data`.
std::string CentersFromAssignments(const std::string& state,
                                   const std::string& data, size_t d,
                                   const std::string& a_alias,
                                   const std::string& d_alias) {
  return "(SELECT " + a_alias + ".cid cid, " + AvgList(d_alias, d, "x") +
         " FROM " + state + " " + a_alias + " JOIN " + data + " " + d_alias +
         " ON " + d_alias + ".id = " + a_alias + ".id GROUP BY " + a_alias +
         ".cid)";
}

/// The reassignment step: computes, for every data tuple, the id of the
/// nearest center drawn from `centers_sql` (a relation (cid, x1..xd)).
/// Produces (i+1, id, cid) relative to iteration relation `state`.
std::string ReassignSql(const std::string& data,
                        const std::string& centers_sql_a,
                        const std::string& centers_sql_b, size_t d,
                        const std::string& state) {
  // min-distance per tuple, then match (the standard argmin-in-SQL idiom).
  return "SELECT a.i + 1 i, dd.id id, min(nc.cid) cid"
         " FROM " + data + " dd, " + centers_sql_a + " nc, "
         "(SELECT d2.id did, min(" + DistanceExpr("d2", "nc2", d) + ") mind"
         " FROM " + data + " d2, " + centers_sql_b + " nc2 GROUP BY d2.id) m, "
         + state + " a"
         " WHERE a.id = dd.id AND m.did = dd.id AND (" +
         DistanceExpr("dd", "nc", d) + ") = m.mind"
         " GROUP BY a.i, dd.id";
}

}  // namespace

Result<TablePtr> GenerateVectorTable(Catalog* catalog,
                                     const std::string& name, size_t n,
                                     size_t d, uint64_t seed) {
  SODA_ASSIGN_OR_RETURN(TablePtr table,
                        catalog->CreateTable(name, VectorSchema(d, true, "id")));
  std::vector<int64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int64_t>(i);
  SODA_RETURN_NOT_OK(table->SetColumn(0, Column::FromBigInts(std::move(ids))));
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col(n);
    ParallelFor(n, [&](size_t begin, size_t end, size_t) {
      // Seed per (column, morsel) so generation parallelizes
      // deterministically.
      Rng rng(seed * 1315423911u + j * 2654435761u + begin);
      for (size_t i = begin; i < end; ++i) col[i] = rng.Uniform(0, 100);
    });
    SODA_RETURN_NOT_OK(
        table->SetColumn(j + 1, Column::FromDoubles(std::move(col))));
  }
  return table;
}

Result<TablePtr> GenerateLabeledTable(Catalog* catalog,
                                      const std::string& name, size_t n,
                                      size_t d, uint64_t seed) {
  SODA_ASSIGN_OR_RETURN(
      TablePtr table,
      catalog->CreateTable(name, VectorSchema(d, true, "label")));
  std::vector<int64_t> labels(n);
  ParallelFor(n, [&](size_t begin, size_t end, size_t) {
    Rng rng(seed * 104729 + begin);
    for (size_t i = begin; i < end; ++i) {
      labels[i] = static_cast<int64_t>(rng.Below(2));
    }
  });
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col(n);
    ParallelFor(n, [&](size_t begin, size_t end, size_t) {
      Rng rng(seed * 7368787 + j * 104651 + begin);
      for (size_t i = begin; i < end; ++i) {
        // Class-shifted uniform: separable but overlapping (§8.1.2).
        col[i] = rng.Uniform(0, 100) + 30.0 * static_cast<double>(labels[i]);
      }
    });
    SODA_RETURN_NOT_OK(
        table->SetColumn(j + 1, Column::FromDoubles(std::move(col))));
  }
  SODA_RETURN_NOT_OK(
      table->SetColumn(0, Column::FromBigInts(std::move(labels))));
  return table;
}

Result<TablePtr> RegisterGraph(Catalog* catalog, const std::string& name,
                               const GeneratedGraph& graph) {
  Schema schema(
      {Field("src", DataType::kBigInt), Field("dst", DataType::kBigInt)});
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->CreateTable(name, schema));
  SODA_RETURN_NOT_OK(table->SetColumn(0, Column::FromBigInts(graph.src)));
  SODA_RETURN_NOT_OK(table->SetColumn(1, Column::FromBigInts(graph.dst)));
  return table;
}

Result<TablePtr> SampleInitialCenters(Catalog* catalog,
                                      const std::string& name,
                                      const Table& data, size_t k,
                                      uint64_t seed) {
  if (data.num_rows() < k || data.num_columns() < 2) {
    return Status::InvalidArgument("not enough data to sample centers");
  }
  const size_t d = data.num_columns() - 1;  // skip id column
  SODA_ASSIGN_OR_RETURN(TablePtr table,
                        catalog->CreateTable(name, VectorSchema(d, true, "cid")));
  Rng rng(seed);
  for (size_t c = 0; c < k; ++c) {
    size_t row = static_cast<size_t>(rng.Below(data.num_rows()));
    table->column(0).AppendBigInt(static_cast<int64_t>(c));
    for (size_t j = 0; j < d; ++j) {
      table->column(j + 1).AppendDouble(data.column(j + 1).GetNumeric(row));
    }
  }
  return table;
}

std::string FeatureList(size_t d, const std::string& prefix,
                        const std::string& table_alias) {
  std::string out;
  for (size_t j = 1; j <= d; ++j) {
    if (j > 1) out += ", ";
    if (!table_alias.empty()) out += table_alias + ".";
    out += prefix + "x" + std::to_string(j);
  }
  return out;
}

std::string KMeansIterateSql(const std::string& data,
                             const std::string& centers, size_t d,
                             int64_t iterations) {
  // State: the per-tuple assignment relation (i, id, cid) — n rows, which
  // ITERATE replaces each round while a recursive CTE would append
  // (paper §5.1's n·i vs 2·n memory argument).
  std::string init =
      "SELECT 0 i, dd.id id, min(cc.cid) cid"
      " FROM " + data + " dd, " + centers + " cc, "
      "(SELECT d2.id did, min(" + DistanceExpr("d2", "c2", d) + ") mind"
      " FROM " + data + " d2, " + centers + " c2 GROUP BY d2.id) m"
      " WHERE m.did = dd.id AND (" + DistanceExpr("dd", "cc", d) +
      ") = m.mind GROUP BY dd.id";
  std::string step = ReassignSql(
      data, CentersFromAssignments("iterate", data, d, "a2", "d3"),
      CentersFromAssignments("iterate", data, d, "a3", "d4"), d, "iterate");
  std::string stop =
      "SELECT 1 FROM iterate WHERE i >= " + std::to_string(iterations);
  // Final centers from the last assignment.
  return "SELECT fa.cid cid, " + AvgList("fd", d, "x") +
         " FROM ITERATE((" + init + "), (" + step + "), (" + stop + ")) fa"
         " JOIN " + data + " fd ON fd.id = fa.id"
         " GROUP BY fa.cid ORDER BY fa.cid";
}

std::string KMeansRecursiveCteSql(const std::string& data,
                                  const std::string& centers, size_t d,
                                  int64_t iterations) {
  std::string init =
      "SELECT 0 i, dd.id id, min(cc.cid) cid"
      " FROM " + data + " dd, " + centers + " cc, "
      "(SELECT d2.id did, min(" + DistanceExpr("d2", "c2", d) + ") mind"
      " FROM " + data + " d2, " + centers + " c2 GROUP BY d2.id) m"
      " WHERE m.did = dd.id AND (" + DistanceExpr("dd", "cc", d) +
      ") = m.mind GROUP BY dd.id";
  // The step prunes itself once i reaches the iteration budget — the
  // fixpoint then terminates because no new tuples are produced.
  std::string step = ReassignSql(
      data, CentersFromAssignments("km", data, d, "a2", "d3"),
      CentersFromAssignments("km", data, d, "a3", "d4"), d, "km");
  step += " HAVING a.i + 1 <= " + std::to_string(iterations);
  return "WITH RECURSIVE km (i, id, cid) AS ((" + init + ") UNION ALL (" +
         step + ")) SELECT fa.cid cid, " + AvgList("fd", d, "x") +
         " FROM km fa JOIN " + data + " fd ON fd.id = fa.id"
         " WHERE fa.i = " + std::to_string(iterations) +
         " GROUP BY fa.cid ORDER BY fa.cid";
}

std::string KMeansOperatorSql(const std::string& data,
                              const std::string& centers, size_t d,
                              int64_t iterations,
                              const std::string& lambda_body) {
  std::string body =
      lambda_body.empty() ? DistanceExpr("a", "b", d) : lambda_body;
  return "SELECT * FROM KMEANS((SELECT " + FeatureList(d) + " FROM " + data +
         "), (SELECT " + FeatureList(d) + " FROM " + centers +
         "), lambda(a, b) " + body + ", " +
         std::to_string(iterations) + ") ORDER BY cluster";
}

std::string DegreeTableSql(const std::string& edges) {
  return "SELECT src, count(*) cnt FROM " + edges + " GROUP BY src";
}

namespace {
std::string PageRankStepSql(const std::string& edges, const std::string& deg,
                            size_t num_vertices, double damping,
                            const std::string& state) {
  std::string n = std::to_string(num_vertices);
  std::string dmp = std::to_string(damping);
  return "SELECT rr.i + 1 i, e.dst v, (1.0 - " + dmp + ") / " + n + " + " +
         dmp + " * sum(rr.r / dg.cnt) r"
         " FROM " + edges + " e JOIN " + state + " rr ON e.src = rr.v"
         " JOIN " + deg + " dg ON dg.src = e.src"
         " GROUP BY rr.i, e.dst";
}
}  // namespace

std::string PageRankIterateSql(const std::string& edges,
                               const std::string& deg, size_t num_vertices,
                               double damping, int64_t iterations) {
  std::string n = std::to_string(num_vertices);
  std::string init = "SELECT 0 i, dg0.src v, 1.0 / " + n + " r FROM " + deg +
                     " dg0";
  std::string step =
      PageRankStepSql(edges, deg, num_vertices, damping, "iterate");
  std::string stop =
      "SELECT 1 FROM iterate WHERE i >= " + std::to_string(iterations);
  return "SELECT v, r FROM ITERATE((" + init + "), (" + step + "), (" + stop +
         ")) ORDER BY r DESC, v LIMIT 100";
}

std::string PageRankRecursiveCteSql(const std::string& edges,
                                    const std::string& deg,
                                    size_t num_vertices, double damping,
                                    int64_t iterations) {
  std::string n = std::to_string(num_vertices);
  std::string init = "SELECT 0 i, dg0.src v, 1.0 / " + n + " r FROM " + deg +
                     " dg0";
  std::string step =
      PageRankStepSql(edges, deg, num_vertices, damping, "pr") +
      " HAVING rr.i + 1 <= " + std::to_string(iterations);
  return "WITH RECURSIVE pr (i, v, r) AS ((" + init + ") UNION ALL (" + step +
         ")) SELECT v, r FROM pr WHERE i = " + std::to_string(iterations) +
         " ORDER BY r DESC, v LIMIT 100";
}

std::string PageRankOperatorSql(const std::string& edges, double damping,
                                double epsilon, int64_t iterations) {
  return "SELECT * FROM PAGERANK((SELECT src, dst FROM " + edges + "), " +
         std::to_string(damping) + ", " + std::to_string(epsilon) + ", " +
         std::to_string(iterations) +
         ") ORDER BY rank DESC, vertex LIMIT 100";
}

std::string NaiveBayesSql(const std::string& labeled, size_t d) {
  // One aggregation pass computing the sufficient statistics the training
  // operator keeps per class and attribute (§6.2): count, sum, sum².
  std::string sql = "SELECT label, count(*) cnt";
  for (size_t j = 1; j <= d; ++j) {
    std::string x = "x" + std::to_string(j);
    sql += ", sum(" + x + ") s" + std::to_string(j);
    sql += ", sum(" + x + " * " + x + ") q" + std::to_string(j);
  }
  sql += " FROM " + labeled + " GROUP BY label ORDER BY label";
  return sql;
}

std::string NaiveBayesOperatorSql(const std::string& labeled, size_t d) {
  return "SELECT * FROM NAIVE_BAYES_TRAIN((SELECT label, " + FeatureList(d) +
         " FROM " + labeled + ")) ORDER BY class, attr";
}

}  // namespace soda::workloads
