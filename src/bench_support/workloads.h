/// \file workloads.h
/// Workload synthesis for the paper's evaluation (§8.1) plus the SQL text
/// of the layer-3 algorithm implementations ("HyPer Iterate" and
/// "HyPer SQL" in Figures 4/5).
///
/// Vector data is uniform synthetic, as in §8.1.1 ("we create artificial,
/// uniformly distributed datasets"); labeled data uses two uniform labels
/// with label-shifted attribute means so classifiers have signal
/// (§8.1.2); graphs come from graph/ldbc_generator.h.

#ifndef SODA_BENCH_SUPPORT_WORKLOADS_H_
#define SODA_BENCH_SUPPORT_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "graph/ldbc_generator.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace soda::workloads {

/// Creates and registers `name(id BIGINT, x1..xd DOUBLE)` with n uniform
/// rows in [0, 100)^d. Parallel columnar bulk load. Deterministic in seed.
Result<TablePtr> GenerateVectorTable(Catalog* catalog,
                                     const std::string& name, size_t n,
                                     size_t d, uint64_t seed = 7);

/// Creates and registers `name(label BIGINT, x1..xd DOUBLE)`: two labels
/// {0,1} with uniform priors; attribute j of class c is uniform in
/// [c*30, c*30+100) so classes are separable but overlapping.
Result<TablePtr> GenerateLabeledTable(Catalog* catalog,
                                      const std::string& name, size_t n,
                                      size_t d, uint64_t seed = 11);

/// Creates and registers `name(src BIGINT, dst BIGINT)` from a generated
/// graph.
Result<TablePtr> RegisterGraph(Catalog* catalog, const std::string& name,
                               const GeneratedGraph& graph);

/// Creates and registers `name(cid BIGINT, x1..xd DOUBLE)` with k initial
/// centers sampled uniformly from `data`'s feature columns (the paper's
/// "random selection of k initial cluster centers", §8.1.1).
Result<TablePtr> SampleInitialCenters(Catalog* catalog,
                                      const std::string& name,
                                      const Table& data, size_t k,
                                      uint64_t seed = 13);

// --- SQL builders (layer 3) ------------------------------------------------

/// Comma-joined "x1, x2, ..." style column list.
std::string FeatureList(size_t d, const std::string& prefix = "",
                        const std::string& table_alias = "");

/// k-Means via the non-appending ITERATE construct ("HyPer Iterate").
/// `data`/`centers` name tables created by the generators above.
std::string KMeansIterateSql(const std::string& data,
                             const std::string& centers, size_t d,
                             int64_t iterations);

/// k-Means via WITH RECURSIVE ("HyPer SQL").
std::string KMeansRecursiveCteSql(const std::string& data,
                                  const std::string& centers, size_t d,
                                  int64_t iterations);

/// k-Means via the physical operator with a lambda distance ("HyPer
/// Operator", Listing 3). `lambda_body` defaults to squared L2 when empty;
/// pass e.g. an L1 body for k-Medians-style clustering.
std::string KMeansOperatorSql(const std::string& data,
                              const std::string& centers, size_t d,
                              int64_t iterations,
                              const std::string& lambda_body = "");

/// PageRank SQL variants. `deg` names a materialized
/// (src BIGINT, cnt BIGINT) out-degree table; `num_vertices` is inlined
/// into the 1/N terms (soda has no scalar subqueries — see DESIGN.md).
std::string DegreeTableSql(const std::string& edges);
std::string PageRankIterateSql(const std::string& edges,
                               const std::string& deg, size_t num_vertices,
                               double damping, int64_t iterations);
std::string PageRankRecursiveCteSql(const std::string& edges,
                                    const std::string& deg,
                                    size_t num_vertices, double damping,
                                    int64_t iterations);
std::string PageRankOperatorSql(const std::string& edges, double damping,
                                double epsilon, int64_t iterations);

/// Naive Bayes training in plain SQL (single aggregation; the algorithm is
/// not iterative) and via the physical operator.
std::string NaiveBayesSql(const std::string& labeled, size_t d);
std::string NaiveBayesOperatorSql(const std::string& labeled, size_t d);

}  // namespace soda::workloads

#endif  // SODA_BENCH_SUPPORT_WORKLOADS_H_
