#include "contenders/common.h"

#include <algorithm>
#include <cmath>

#include "analytics/naive_bayes.h"

namespace soda::contender_detail {

Status ExportMatrix(const Table& t, std::vector<double>* out, size_t* n,
                    size_t* d) {
  *n = t.num_rows();
  *d = t.num_columns();
  for (size_t c = 0; c < *d; ++c) {
    if (!IsNumeric(t.column(c).type())) {
      return Status::TypeError("contender export requires numeric columns");
    }
  }
  out->resize(*n * *d);
  for (size_t c = 0; c < *d; ++c) {
    const Column& col = t.column(c);
    for (size_t i = 0; i < *n; ++i) {
      (*out)[i * *d + c] = col.GetNumeric(i);
    }
  }
  return Status::OK();
}

TablePtr PackCenters(const std::vector<double>& centers, size_t k, size_t d) {
  Schema schema;
  schema.AddField(Field("cluster", DataType::kBigInt));
  for (size_t j = 0; j < d; ++j) {
    schema.AddField(Field("x" + std::to_string(j + 1), DataType::kDouble));
  }
  auto out = std::make_shared<Table>("centers", schema);
  out->Reserve(k);
  for (size_t c = 0; c < k; ++c) {
    out->column(0).AppendBigInt(static_cast<int64_t>(c));
    for (size_t j = 0; j < d; ++j) {
      out->column(j + 1).AppendDouble(centers[c * d + j]);
    }
  }
  return out;
}

TablePtr PackRanks(const std::vector<int64_t>& vertices,
                   const std::vector<double>& ranks) {
  Schema schema(
      {Field("vertex", DataType::kBigInt), Field("rank", DataType::kDouble)});
  auto out = std::make_shared<Table>("pagerank", schema);
  out->Reserve(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    out->column(0).AppendBigInt(vertices[i]);
    out->column(1).AppendDouble(ranks[i]);
  }
  return out;
}

TablePtr PackNaiveBayesModel(const std::vector<ClassMoments>& classes,
                             int64_t total_count) {
  auto out = std::make_shared<Table>("nb_model", NaiveBayesModelSchema());
  const double num_classes = static_cast<double>(classes.size());
  for (const auto& cm : classes) {
    const double prior = (static_cast<double>(cm.count) + 1.0) /
                         (static_cast<double>(total_count) + num_classes);
    const double n = static_cast<double>(std::max<int64_t>(cm.count, 1));
    for (size_t a = 0; a < cm.sum.size(); ++a) {
      double mean = cm.sum[a] / n;
      double var = std::max(cm.sumsq[a] / n - mean * mean, 1e-9);
      out->column(0).AppendBigInt(cm.label);
      out->column(1).AppendBigInt(static_cast<int64_t>(a) + 1);
      out->column(2).AppendDouble(prior);
      out->column(3).AppendDouble(mean);
      out->column(4).AppendDouble(var);
      out->column(5).AppendBigInt(cm.count);
    }
  }
  return out;
}

}  // namespace soda::contender_detail
