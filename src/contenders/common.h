/// \file common.h
/// Shared helpers for the contender simulations: data export from the
/// engine's tables into each contender's native format, and result
/// packaging back into relations. The export copies are intentional —
/// they model the ETL / data-transfer cost of layers 1-2 (paper Fig. 1).

#ifndef SODA_CONTENDERS_COMMON_H_
#define SODA_CONTENDERS_COMMON_H_

#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace soda::contender_detail {

/// Exports an all-numeric table as a dense row-major matrix (n x d).
Status ExportMatrix(const Table& t, std::vector<double>* out, size_t* n,
                    size_t* d);

/// Packages k centers (row-major k x d) as the standard k-Means result
/// relation (cluster BIGINT, x1..xd DOUBLE).
TablePtr PackCenters(const std::vector<double>& centers, size_t k, size_t d);

/// Packages (vertex, rank) pairs as the standard PageRank result relation.
TablePtr PackRanks(const std::vector<int64_t>& vertices,
                   const std::vector<double>& ranks);

/// Packages per-class Gaussian parameters as the standard model relation
/// (class, attr, prior, mean, variance, cnt), matching
/// NaiveBayesModelSchema().
struct ClassMoments {
  int64_t label = 0;
  int64_t count = 0;
  std::vector<double> sum;
  std::vector<double> sumsq;
};
TablePtr PackNaiveBayesModel(const std::vector<ClassMoments>& classes,
                             int64_t total_count);

}  // namespace soda::contender_detail

#endif  // SODA_CONTENDERS_COMMON_H_
