/// \file contender.h
/// Simulated contender systems for the paper's evaluation (§8.2).
///
/// The paper compares HyPer against MATLAB R2015, Apache Spark 1.5 MLlib,
/// and MADlib 1.8 on Greenplum. None of those is available (or sensible)
/// inside this reproduction, so each is replaced by a small engine that
/// preserves the *performance-relevant execution paradigm* the paper
/// attributes to it (see DESIGN.md §3):
///
///  - SingleThreadedEngine (MATLAB proxy): identical algorithms, dense
///    arrays, strictly one thread ("MATLAB runs both algorithms
///    single-threaded and therefore cannot compete").
///  - RddEngine (Spark proxy): immutable partitioned collections, a new
///    materialized dataset per stage, per-task scheduling overhead, and an
///    up-front load step that copies the data out of the database — with
///    MLlib's distance-bound shortcuts disabled, as the paper does.
///  - UdfEngine (MADlib proxy): black-box row-at-a-time user-defined
///    functions over boxed tuples, with intermediate results written back
///    to relations after every UDF invocation.
///
/// Every contender *starts from the engine's base tables* and therefore
/// pays its own export/import cost, mirroring layer 1/2 of Figure 1.

#ifndef SODA_CONTENDERS_CONTENDER_H_
#define SODA_CONTENDERS_CONTENDER_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace soda {

/// Common interface: the three algorithms of the paper's evaluation.
class Contender {
 public:
  virtual ~Contender() = default;
  virtual std::string name() const = 0;

  /// Lloyd's k-Means for `iterations` rounds; returns the final centers
  /// as (cluster BIGINT, coords... DOUBLE).
  virtual Result<TablePtr> KMeans(const Table& data, const Table& centers,
                                  int64_t iterations) = 0;

  /// PageRank with damping 0.85 over (src, dst) edges for `iterations`
  /// rounds; returns (vertex BIGINT, rank DOUBLE).
  virtual Result<TablePtr> PageRank(const Table& edges, double damping,
                                    int64_t iterations) = 0;

  /// Gaussian Naive Bayes training; returns a model relation
  /// (class, attr, prior, mean, variance, cnt).
  virtual Result<TablePtr> NaiveBayesTrain(const Table& labeled) = 0;
};

std::unique_ptr<Contender> MakeSingleThreadedEngine();  ///< MATLAB proxy
std::unique_ptr<Contender> MakeRddEngine();             ///< Spark proxy
std::unique_ptr<Contender> MakeUdfEngine();             ///< MADlib proxy

}  // namespace soda

#endif  // SODA_CONTENDERS_CONTENDER_H_
