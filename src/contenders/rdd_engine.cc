/// \file rdd_engine.cc
/// Apache Spark MLlib proxy (paper §8.2).
///
/// Models the execution paradigm the paper measures against:
///  - data is *loaded* out of the database into partitioned, immutable,
///    row-object collections (the RDD) before any computation;
///  - every stage materializes a new collection (RDDs are immutable);
///  - shuffles merge per-partition hash maps at a stage barrier;
///  - per-row closures operate on row objects (std::vector<double> per
///    tuple), modelling JVM object overhead structurally;
///  - MLlib's k-Means shortcut optimizations (norm-based distance bounds)
///    are NOT applied, matching §8.2's "we therefore disabled the
///    following optimizations".
/// Stages run on the shared pool, one task per partition.

#include <cmath>
#include <limits>
#include <unordered_map>

#include "contenders/common.h"
#include "contenders/contender.h"
#include "util/parallel.h"

namespace soda {

namespace {

using contender_detail::ClassMoments;
using contender_detail::PackCenters;
using contender_detail::PackNaiveBayesModel;
using contender_detail::PackRanks;

/// A partitioned collection of row objects.
using Row = std::vector<double>;
using Partition = std::vector<Row>;

size_t DefaultParallelism() { return NumWorkers() * 4; }

/// Load stage: copy a table into row-object partitions (the ETL cost of a
/// dedicated system, Fig. 1 layer 1).
Result<std::vector<Partition>> LoadRdd(const Table& t) {
  const size_t n = t.num_rows();
  const size_t d = t.num_columns();
  for (size_t c = 0; c < d; ++c) {
    if (!IsNumeric(t.column(c).type())) {
      return Status::TypeError("RDD load requires numeric columns");
    }
  }
  const size_t parts = DefaultParallelism();
  std::vector<Partition> rdd(parts);
  const size_t per = (n + parts - 1) / std::max<size_t>(parts, 1);
  ParallelFor(parts, [&](size_t begin, size_t end, size_t) {
    for (size_t p = begin; p < end; ++p) {
      size_t lo = p * per, hi = std::min(n, lo + per);
      if (lo >= hi) continue;
      Partition& part = rdd[p];
      part.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        Row row(d);
        for (size_t c = 0; c < d; ++c) row[c] = t.column(c).GetNumeric(i);
        part.push_back(std::move(row));
      }
    }
  }, /*morsel=*/1);
  return rdd;
}

class RddEngine : public Contender {
 public:
  std::string name() const override { return "RDD (Spark MLlib sim)"; }

  Result<TablePtr> KMeans(const Table& data, const Table& centers,
                          int64_t iterations) override {
    SODA_ASSIGN_OR_RETURN(std::vector<Partition> rdd, LoadRdd(data));
    std::vector<double> ctr_matrix;
    size_t k, d;
    SODA_RETURN_NOT_OK(
        contender_detail::ExportMatrix(centers, &ctr_matrix, &k, &d));
    if (k == 0) return Status::InvalidArgument("no centers");

    struct PartStats {
      std::vector<double> sums;
      std::vector<int64_t> counts;
    };
    for (int64_t iter = 0; iter < iterations; ++iter) {
      // Stage: mapPartitions — each task digests one partition into local
      // cluster statistics (a fresh object per stage, RDD-style).
      std::vector<PartStats> stats(rdd.size());
      ParallelFor(rdd.size(), [&](size_t begin, size_t end, size_t) {
        for (size_t p = begin; p < end; ++p) {
          PartStats st;
          st.sums.assign(k * d, 0.0);
          st.counts.assign(k, 0);
          for (const Row& row : rdd[p]) {
            size_t best = 0;
            double best_dist = std::numeric_limits<double>::infinity();
            for (size_t c = 0; c < k; ++c) {
              const double* ctr = ctr_matrix.data() + c * d;
              double dist = 0;
              for (size_t j = 0; j < d; ++j) {
                double diff = row[j] - ctr[j];
                dist += diff * diff;
              }
              if (dist < best_dist) {
                best_dist = dist;
                best = c;
              }
            }
            st.counts[best]++;
            for (size_t j = 0; j < d; ++j) st.sums[best * d + j] += row[j];
          }
          stats[p] = std::move(st);
        }
      }, /*morsel=*/1);

      // Shuffle barrier: reduce partition statistics on the driver.
      std::vector<double> sums(k * d, 0.0);
      std::vector<int64_t> counts(k, 0);
      for (const auto& st : stats) {
        if (st.counts.empty()) continue;
        for (size_t c = 0; c < k; ++c) counts[c] += st.counts[c];
        for (size_t j = 0; j < k * d; ++j) sums[j] += st.sums[j];
      }
      for (size_t c = 0; c < k; ++c) {
        if (!counts[c]) continue;
        for (size_t j = 0; j < d; ++j) {
          ctr_matrix[c * d + j] =
              sums[c * d + j] / static_cast<double>(counts[c]);
        }
      }
    }
    return PackCenters(ctr_matrix, k, d);
  }

  Result<TablePtr> PageRank(const Table& edges, double damping,
                            int64_t iterations) override {
    SODA_ASSIGN_OR_RETURN(std::vector<Partition> edge_rdd, LoadRdd(edges));

    // collect distinct vertices + out-degrees (a shuffle).
    std::vector<std::unordered_map<int64_t, double>> local_deg(edge_rdd.size());
    ParallelFor(edge_rdd.size(), [&](size_t begin, size_t end, size_t) {
      for (size_t p = begin; p < end; ++p) {
        for (const Row& e : edge_rdd[p]) {
          local_deg[p][static_cast<int64_t>(e[0])] += 1.0;
          local_deg[p].emplace(static_cast<int64_t>(e[1]), 0.0);
        }
      }
    }, 1);
    std::unordered_map<int64_t, double> out_deg;
    for (auto& m : local_deg) {
      for (auto& [vtx, c] : m) out_deg[vtx] += c;
    }
    const size_t v = out_deg.size();
    if (v == 0) return PackRanks({}, {});

    // ranks as a hash map RDD (re-materialized every iteration, the
    // paired-RDD join pattern of naive Spark PageRank).
    std::unordered_map<int64_t, double> rank;
    rank.reserve(v * 2);
    for (const auto& [vtx, _] : out_deg) {
      rank.emplace(vtx, 1.0 / static_cast<double>(v));
    }
    const double base = (1.0 - damping) / static_cast<double>(v);

    for (int64_t iter = 0; iter < iterations; ++iter) {
      double dangling = 0;
      for (const auto& [vtx, deg] : out_deg) {
        if (deg == 0) dangling += rank[vtx];
      }
      const double redistribute = damping * dangling / static_cast<double>(v);

      // Stage: per-partition contribution maps (flatMap + local combine).
      std::vector<std::unordered_map<int64_t, double>> contribs(
          edge_rdd.size());
      ParallelFor(edge_rdd.size(), [&](size_t begin, size_t end, size_t) {
        for (size_t p = begin; p < end; ++p) {
          auto& local = contribs[p];
          for (const Row& e : edge_rdd[p]) {
            int64_t s = static_cast<int64_t>(e[0]);
            int64_t t = static_cast<int64_t>(e[1]);
            local[t] += rank.at(s) / out_deg.at(s);
          }
        }
      }, 1);

      // Shuffle barrier: reduceByKey into the next rank map.
      std::unordered_map<int64_t, double> next;
      next.reserve(v * 2);
      for (const auto& [vtx, _] : out_deg) {
        next.emplace(vtx, base + redistribute);
      }
      for (auto& local : contribs) {
        for (auto& [vtx, c] : local) next[vtx] += damping * c;
      }
      rank = std::move(next);
    }

    std::vector<int64_t> vertices;
    std::vector<double> ranks;
    vertices.reserve(v);
    ranks.reserve(v);
    for (const auto& [vtx, r] : rank) {
      vertices.push_back(vtx);
      ranks.push_back(r);
    }
    return PackRanks(vertices, ranks);
  }

  Result<TablePtr> NaiveBayesTrain(const Table& labeled) override {
    SODA_ASSIGN_OR_RETURN(std::vector<Partition> rdd, LoadRdd(labeled));
    if (labeled.num_columns() < 2) {
      return Status::InvalidArgument("labeled data needs label + attributes");
    }
    const size_t d = labeled.num_columns() - 1;

    std::vector<std::unordered_map<int64_t, ClassMoments>> locals(rdd.size());
    ParallelFor(rdd.size(), [&](size_t begin, size_t end, size_t) {
      for (size_t p = begin; p < end; ++p) {
        auto& local = locals[p];
        for (const Row& row : rdd[p]) {
          int64_t label = static_cast<int64_t>(row[0]);
          ClassMoments& cm = local[label];
          if (cm.sum.empty()) {
            cm.label = label;
            cm.sum.assign(d, 0);
            cm.sumsq.assign(d, 0);
          }
          cm.count++;
          for (size_t a = 0; a < d; ++a) {
            cm.sum[a] += row[1 + a];
            cm.sumsq[a] += row[1 + a] * row[1 + a];
          }
        }
      }
    }, 1);

    std::unordered_map<int64_t, ClassMoments> merged;
    int64_t total = 0;
    for (auto& local : locals) {
      for (auto& [label, cm] : local) {
        ClassMoments& target = merged[label];
        if (target.sum.empty()) {
          target = cm;
        } else {
          target.count += cm.count;
          for (size_t a = 0; a < d; ++a) {
            target.sum[a] += cm.sum[a];
            target.sumsq[a] += cm.sumsq[a];
          }
        }
        total += cm.count;
      }
    }
    std::vector<ClassMoments> classes;
    classes.reserve(merged.size());
    for (auto& [_, cm] : merged) classes.push_back(std::move(cm));
    return PackNaiveBayesModel(classes, total);
  }
};

}  // namespace

std::unique_ptr<Contender> MakeRddEngine() {
  return std::make_unique<RddEngine>();
}

}  // namespace soda
