/// \file single_threaded_engine.cc
/// MATLAB proxy (paper §8.2/§8.4.3): the same algorithms over dense
/// arrays, strictly single-threaded — "MATLAB does not contain parallel
/// versions of the chosen algorithms" — with an up-front export of the
/// data out of the database.

#include <cmath>
#include <limits>
#include <unordered_map>

#include "contenders/common.h"
#include "contenders/contender.h"

namespace soda {

namespace {

using contender_detail::ClassMoments;
using contender_detail::ExportMatrix;
using contender_detail::PackCenters;
using contender_detail::PackNaiveBayesModel;
using contender_detail::PackRanks;

class SingleThreadedEngine : public Contender {
 public:
  std::string name() const override { return "SingleThreaded (MATLAB sim)"; }

  Result<TablePtr> KMeans(const Table& data, const Table& centers,
                          int64_t iterations) override {
    std::vector<double> points, ctrs;
    size_t n, d, k, d2;
    SODA_RETURN_NOT_OK(ExportMatrix(data, &points, &n, &d));
    SODA_RETURN_NOT_OK(ExportMatrix(centers, &ctrs, &k, &d2));
    if (d != d2 || k == 0) {
      return Status::InvalidArgument("centers incompatible with data");
    }

    std::vector<double> sums(k * d);
    std::vector<int64_t> counts(k);
    for (int64_t iter = 0; iter < iterations; ++iter) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (size_t i = 0; i < n; ++i) {
        const double* p = points.data() + i * d;
        size_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k; ++c) {
          const double* ctr = ctrs.data() + c * d;
          double dist = 0;
          for (size_t j = 0; j < d; ++j) {
            double diff = p[j] - ctr[j];
            dist += diff * diff;
          }
          if (dist < best_dist) {
            best_dist = dist;
            best = c;
          }
        }
        counts[best]++;
        for (size_t j = 0; j < d; ++j) sums[best * d + j] += p[j];
      }
      for (size_t c = 0; c < k; ++c) {
        if (!counts[c]) continue;
        for (size_t j = 0; j < d; ++j) {
          ctrs[c * d + j] = sums[c * d + j] / static_cast<double>(counts[c]);
        }
      }
    }
    return PackCenters(ctrs, k, d);
  }

  Result<TablePtr> PageRank(const Table& edges, double damping,
                            int64_t iterations) override {
    const size_t e = edges.num_rows();
    const int64_t* src = edges.column(0).I64Data();
    const int64_t* dst = edges.column(1).I64Data();

    // Densify ids (sequential hash build).
    std::unordered_map<int64_t, uint32_t> dense;
    std::vector<int64_t> original;
    auto intern = [&](int64_t id) {
      auto [it, inserted] =
          dense.emplace(id, static_cast<uint32_t>(original.size()));
      if (inserted) original.push_back(id);
      return it->second;
    };
    std::vector<uint32_t> s(e), t(e);
    for (size_t i = 0; i < e; ++i) {
      s[i] = intern(src[i]);
      t[i] = intern(dst[i]);
    }
    const size_t v = original.size();
    if (v == 0) return PackRanks({}, {});

    std::vector<double> out_deg(v, 0);
    for (size_t i = 0; i < e; ++i) out_deg[s[i]] += 1.0;

    std::vector<double> rank(v, 1.0 / static_cast<double>(v)), next(v);
    const double base = (1.0 - damping) / static_cast<double>(v);
    for (int64_t iter = 0; iter < iterations; ++iter) {
      double dangling = 0;
      for (size_t i = 0; i < v; ++i) {
        if (out_deg[i] == 0) dangling += rank[i];
      }
      std::fill(next.begin(), next.end(),
                base + damping * dangling / static_cast<double>(v));
      // Edge-scatter formulation, like MATLAB's sparse M*r.
      for (size_t i = 0; i < e; ++i) {
        next[t[i]] += damping * rank[s[i]] / out_deg[s[i]];
      }
      rank.swap(next);
    }
    return PackRanks(original, rank);
  }

  Result<TablePtr> NaiveBayesTrain(const Table& labeled) override {
    std::vector<double> rows;
    size_t n, width;
    SODA_RETURN_NOT_OK(ExportMatrix(labeled, &rows, &n, &width));
    if (width < 2) {
      return Status::InvalidArgument("labeled data needs label + attributes");
    }
    const size_t d = width - 1;
    std::unordered_map<int64_t, size_t> index;
    std::vector<ClassMoments> classes;
    for (size_t i = 0; i < n; ++i) {
      int64_t label = static_cast<int64_t>(rows[i * width]);
      auto [it, inserted] = index.emplace(label, classes.size());
      if (inserted) {
        ClassMoments cm;
        cm.label = label;
        cm.sum.assign(d, 0);
        cm.sumsq.assign(d, 0);
        classes.push_back(std::move(cm));
      }
      ClassMoments& cm = classes[it->second];
      cm.count++;
      for (size_t a = 0; a < d; ++a) {
        double x = rows[i * width + 1 + a];
        cm.sum[a] += x;
        cm.sumsq[a] += x * x;
      }
    }
    return PackNaiveBayesModel(classes, static_cast<int64_t>(n));
  }
};

}  // namespace

std::unique_ptr<Contender> MakeSingleThreadedEngine() {
  return std::make_unique<SingleThreadedEngine>();
}

}  // namespace soda
