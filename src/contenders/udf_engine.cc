/// \file udf_engine.cc
/// MADlib-on-Greenplum proxy (paper §8.2) — layer 2 of Figure 1.
///
/// Models black-box UDF execution: the driver iterates over relations
/// tuple-at-a-time, boxes every row into `Value` objects, and calls the
/// algorithm step through a virtual `RowUdf` interface the "database"
/// cannot inspect or inline (paper §4.1: UDFs are "run by the database
/// system as a black box"). Intermediate state (cluster assignments, rank
/// tables) is written back to relations after every UDF pass, modelling
/// MADlib's materialization between SQL-driven invocations. Execution is
/// not parallelized across tuples — the per-call boxing dominates, which
/// is the behaviour the paper measures (MADlib "cannot compete with
/// solutions that integrate data analytics deeper and produce better
/// execution code").

#include <cmath>
#include <limits>
#include <unordered_map>

#include "contenders/common.h"
#include "contenders/contender.h"

namespace soda {

namespace {

using contender_detail::ClassMoments;
using contender_detail::PackCenters;
using contender_detail::PackNaiveBayesModel;
using contender_detail::PackRanks;

/// The black-box per-row function: receives a boxed tuple, returns a boxed
/// tuple. Virtual so the call cannot be inlined into the scan loop.
class RowUdf {
 public:
  virtual ~RowUdf() = default;
  virtual std::vector<Value> Process(const std::vector<Value>& row) = 0;
};

/// The "database side": scans a relation tuple-at-a-time, boxes each row,
/// invokes the UDF, and materializes its outputs into a result relation.
Result<TablePtr> RunUdfScan(const Table& input, const Schema& out_schema,
                            RowUdf& udf) {
  auto out = std::make_shared<Table>("udf_result", out_schema);
  const size_t n = input.num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row = input.GetRow(i);  // boxing
    std::vector<Value> result = udf.Process(row);
    if (!result.empty()) {
      SODA_RETURN_NOT_OK(out->AppendRow(result));
    }
  }
  return out;
}

class UdfEngine : public Contender {
 public:
  std::string name() const override { return "UDF (MADlib sim)"; }

  Result<TablePtr> KMeans(const Table& data, const Table& centers,
                          int64_t iterations) override {
    size_t k, d;
    std::vector<double> ctrs;
    SODA_RETURN_NOT_OK(
        contender_detail::ExportMatrix(centers, &ctrs, &k, &d));
    if (k == 0 || data.num_columns() != d) {
      return Status::InvalidArgument("centers incompatible with data");
    }

    // Each iteration: one UDF pass assigning tuples (materialized as an
    // assignment relation), then a driver-side aggregation pass over it.
    Schema assign_schema;
    assign_schema.AddField(Field("cluster", DataType::kBigInt));
    for (size_t j = 0; j < d; ++j) {
      assign_schema.AddField(
          Field("x" + std::to_string(j + 1), DataType::kDouble));
    }

    class AssignUdf : public RowUdf {
     public:
      AssignUdf(const std::vector<double>* ctrs, size_t k, size_t d)
          : ctrs_(ctrs), k_(k), d_(d) {}
      std::vector<Value> Process(const std::vector<Value>& row) override {
        size_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k_; ++c) {
          double dist = 0;
          for (size_t j = 0; j < d_; ++j) {
            double diff = row[j].AsDouble() - (*ctrs_)[c * d_ + j];
            dist += diff * diff;
          }
          if (dist < best_dist) {
            best_dist = dist;
            best = c;
          }
        }
        std::vector<Value> out;
        out.reserve(d_ + 1);
        out.push_back(Value::BigInt(static_cast<int64_t>(best)));
        for (size_t j = 0; j < d_; ++j) out.push_back(row[j]);
        return out;
      }
      const std::vector<double>* ctrs_;
      size_t k_, d_;
    };

    for (int64_t iter = 0; iter < iterations; ++iter) {
      AssignUdf udf(&ctrs, k, d);
      SODA_ASSIGN_OR_RETURN(TablePtr assigned,
                            RunUdfScan(data, assign_schema, udf));
      // Aggregation pass over the materialized assignment relation.
      std::vector<double> sums(k * d, 0.0);
      std::vector<int64_t> counts(k, 0);
      for (size_t i = 0; i < assigned->num_rows(); ++i) {
        std::vector<Value> row = assigned->GetRow(i);  // boxing again
        size_t c = static_cast<size_t>(row[0].AsBigInt());
        counts[c]++;
        for (size_t j = 0; j < d; ++j) {
          sums[c * d + j] += row[j + 1].AsDouble();
        }
      }
      for (size_t c = 0; c < k; ++c) {
        if (!counts[c]) continue;
        for (size_t j = 0; j < d; ++j) {
          ctrs[c * d + j] = sums[c * d + j] / static_cast<double>(counts[c]);
        }
      }
    }
    return PackCenters(ctrs, k, d);
  }

  Result<TablePtr> PageRank(const Table& edges, double damping,
                            int64_t iterations) override {
    // Driver collects degrees via a boxed scan.
    std::unordered_map<int64_t, double> out_deg;
    const size_t e = edges.num_rows();
    for (size_t i = 0; i < e; ++i) {
      std::vector<Value> row = edges.GetRow(i);
      out_deg[row[0].AsBigInt()] += 1.0;
      out_deg.emplace(row[1].AsBigInt(), 0.0);
    }
    const size_t v = out_deg.size();
    if (v == 0) return PackRanks({}, {});

    std::unordered_map<int64_t, double> rank;
    for (const auto& [vtx, _] : out_deg) {
      rank.emplace(vtx, 1.0 / static_cast<double>(v));
    }
    const double base = (1.0 - damping) / static_cast<double>(v);

    // One UDF pass per iteration emitting boxed (dst, contribution) rows,
    // materialized and then re-aggregated by the driver.
    Schema contrib_schema({Field("dst", DataType::kBigInt),
                           Field("contrib", DataType::kDouble)});
    class ContribUdf : public RowUdf {
     public:
      ContribUdf(const std::unordered_map<int64_t, double>* rank,
                 const std::unordered_map<int64_t, double>* deg)
          : rank_(rank), deg_(deg) {}
      std::vector<Value> Process(const std::vector<Value>& row) override {
        int64_t s = row[0].AsBigInt();
        return {row[1],
                Value::Double(rank_->at(s) / deg_->at(s))};
      }
      const std::unordered_map<int64_t, double>* rank_;
      const std::unordered_map<int64_t, double>* deg_;
    };

    for (int64_t iter = 0; iter < iterations; ++iter) {
      double dangling = 0;
      for (const auto& [vtx, deg] : out_deg) {
        if (deg == 0) dangling += rank[vtx];
      }
      ContribUdf udf(&rank, &out_deg);
      SODA_ASSIGN_OR_RETURN(TablePtr contribs,
                            RunUdfScan(edges, contrib_schema, udf));
      std::unordered_map<int64_t, double> next;
      const double redistribute = damping * dangling / static_cast<double>(v);
      for (const auto& [vtx, _] : out_deg) {
        next.emplace(vtx, base + redistribute);
      }
      for (size_t i = 0; i < contribs->num_rows(); ++i) {
        std::vector<Value> row = contribs->GetRow(i);
        next[row[0].AsBigInt()] += damping * row[1].AsDouble();
      }
      rank = std::move(next);
    }

    std::vector<int64_t> vertices;
    std::vector<double> ranks;
    for (const auto& [vtx, r] : rank) {
      vertices.push_back(vtx);
      ranks.push_back(r);
    }
    return PackRanks(vertices, ranks);
  }

  Result<TablePtr> NaiveBayesTrain(const Table& labeled) override {
    if (labeled.num_columns() < 2) {
      return Status::InvalidArgument("labeled data needs label + attributes");
    }
    const size_t d = labeled.num_columns() - 1;
    std::unordered_map<int64_t, ClassMoments> merged;
    int64_t total = 0;

    class MomentsUdf : public RowUdf {
     public:
      MomentsUdf(std::unordered_map<int64_t, ClassMoments>* merged,
                 int64_t* total, size_t d)
          : merged_(merged), total_(total), d_(d) {}
      std::vector<Value> Process(const std::vector<Value>& row) override {
        int64_t label = row[0].AsBigInt();
        ClassMoments& cm = (*merged_)[label];
        if (cm.sum.empty()) {
          cm.label = label;
          cm.sum.assign(d_, 0);
          cm.sumsq.assign(d_, 0);
        }
        cm.count++;
        (*total_)++;
        for (size_t a = 0; a < d_; ++a) {
          double x = row[1 + a].AsDouble();
          cm.sum[a] += x;
          cm.sumsq[a] += x * x;
        }
        return {};  // aggregate-style UDF: no per-row output
      }
      std::unordered_map<int64_t, ClassMoments>* merged_;
      int64_t* total_;
      size_t d_;
    };

    MomentsUdf udf(&merged, &total, d);
    SODA_ASSIGN_OR_RETURN(TablePtr ignored,
                          RunUdfScan(labeled, Schema(), udf));
    (void)ignored;
    std::vector<ClassMoments> classes;
    for (auto& [_, cm] : merged) classes.push_back(std::move(cm));
    return PackNaiveBayesModel(classes, total);
  }
};

}  // namespace

std::unique_ptr<Contender> MakeUdfEngine() {
  return std::make_unique<UdfEngine>();
}

}  // namespace soda
