#include "core/engine.h"

#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "expr/evaluator.h"
#include "expr/fold.h"
#include "sql/binder.h"
#include "sql/optimizer.h"
#include "sql/parser.h"

namespace soda {

namespace {

Result<QueryResult> ExecuteSelect(const SelectStmt& stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  QueryGuard* guard) {
  Binder binder(catalog);
  SODA_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelectStatement(stmt));
  if (options.optimize) {
    plan = OptimizePlan(std::move(plan), catalog);
  }
  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.max_iterations = options.max_iterations;
  ctx.guard = guard;
  SODA_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(*plan, ctx));
  return QueryResult(std::move(result), ctx.stats);
}

Result<QueryResult> ExecuteCreate(const CreateTableStmt& stmt,
                                  Catalog* catalog,
                                  const EngineOptions& options,
                                  QueryGuard* guard) {
  if (stmt.if_not_exists && catalog->HasTable(stmt.name)) {
    return QueryResult();
  }
  if (stmt.as_select) {
    // CREATE TABLE .. AS SELECT: materialize first, register second, so a
    // failing query leaves no half-created table behind.
    SODA_ASSIGN_OR_RETURN(
        QueryResult result,
        ExecuteSelect(*stmt.as_select, catalog, options, guard));
    Schema schema;
    for (const auto& f : result.schema().fields()) {
      schema.AddField(Field(f.name, f.type));  // strip qualifiers
    }
    const Table& src = *result.table();
    // The bulk column copy bypasses Table::AppendChunk; charge it before
    // the table is registered so a failed budget leaves no empty shell.
    SODA_RETURN_NOT_OK(
        GuardReserve(guard, src.MemoryUsage(), "exec.dml"));
    SODA_ASSIGN_OR_RETURN(TablePtr table,
                          catalog->CreateTable(stmt.name, schema));
    for (size_t c = 0; c < src.num_columns(); ++c) {
      table->column(c).AppendSlice(src.column(c), 0, src.num_rows());
    }
    return QueryResult();
  }
  Schema schema;
  for (const auto& [name, type] : stmt.columns) {
    schema.AddField(Field(name, type));
  }
  SODA_ASSIGN_OR_RETURN(TablePtr table,
                        catalog->CreateTable(stmt.name, std::move(schema)));
  (void)table;
  return QueryResult();
}

/// Evaluates an optional WHERE over a full table; `selected[i]` is set for
/// rows where the predicate is TRUE (all rows when `where` is null).
Result<std::vector<uint8_t>> EvaluateRowMask(const Table& table,
                                             const ParseExpr* where,
                                             Catalog* catalog,
                                             QueryGuard* guard) {
  std::vector<uint8_t> selected(table.num_rows(), where ? 0 : 1);
  if (!where) return selected;
  Binder binder(catalog);
  Schema schema = table.schema().WithQualifier(table.name());
  SODA_ASSIGN_OR_RETURN(ExprPtr pred, binder.BindScalar(*where, schema));
  if (pred->type != DataType::kBool) {
    return Status::BindError("WHERE clause must be boolean");
  }
  DataChunk chunk;
  const size_t n = table.num_rows();
  for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
    SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
    table.ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
    std::vector<uint32_t> sel;
    SODA_RETURN_NOT_OK(EvaluatePredicate(*pred, chunk, &sel));
    for (uint32_t i : sel) selected[offset + i] = 1;
  }
  return selected;
}

/// DELETE: copy-on-write — build the surviving rows into a fresh table and
/// atomically swap it in (readers holding the old TablePtr keep a
/// consistent snapshot).
Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt, Catalog* catalog,
                                  QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));
  SODA_ASSIGN_OR_RETURN(
      std::vector<uint8_t> doomed,
      EvaluateRowMask(*table, stmt.where.get(), catalog, guard));
  // Copy-on-write duplicates (up to) the whole table; charge the rebuild
  // before touching it so budget failures leave the old snapshot intact.
  SODA_RETURN_NOT_OK(GuardReserve(guard, table->MemoryUsage(), "exec.dml"));
  auto next = std::make_shared<Table>(table->name(), table->schema());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    for (size_t r = 0; r < table->num_rows(); ++r) {
      if (!doomed[r]) next->column(c).AppendFrom(table->column(c), r);
    }
  }
  SODA_RETURN_NOT_OK(catalog->ReplaceTable(stmt.table, std::move(next)));
  return QueryResult();
}

/// UPDATE: evaluate every SET expression over the whole table, then merge
/// per the WHERE mask into a fresh table and swap (copy-on-write).
Result<QueryResult> ExecuteUpdate(const UpdateStmt& stmt, Catalog* catalog,
                                  QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));
  const Schema schema = table->schema().WithQualifier(table->name());
  Binder binder(catalog);

  // Bind assignments; insert casts for compatible numeric mismatches.
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [col_name, parse_expr] : stmt.assignments) {
    SODA_ASSIGN_OR_RETURN(size_t col, schema.FindField(col_name));
    SODA_ASSIGN_OR_RETURN(ExprPtr expr,
                          binder.BindScalar(*parse_expr, schema));
    DataType want = schema.field(col).type;
    if (expr->type != want) {
      if (!(IsNumeric(expr->type) && IsNumeric(want))) {
        return Status::TypeError("cannot assign " +
                                 std::string(DataTypeToString(expr->type)) +
                                 " to column '" + col_name + "' of type " +
                                 DataTypeToString(want));
      }
      expr = Expression::Cast(std::move(expr), want);
    }
    assignments.emplace_back(col, std::move(expr));
  }

  SODA_ASSIGN_OR_RETURN(
      std::vector<uint8_t> selected,
      EvaluateRowMask(*table, stmt.where.get(), catalog, guard));

  // New values, evaluated chunk-wise over the old snapshot.
  std::vector<Column> new_values;
  for (auto& [col, expr] : assignments) {
    Column out(schema.field(col).type);
    DataChunk chunk;
    const size_t n = table->num_rows();
    for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      table->ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
      Column part;
      SODA_RETURN_NOT_OK(EvaluateExpression(*expr, chunk, &part));
      out.AppendSlice(part, 0, part.size());
    }
    new_values.push_back(std::move(out));
  }

  // The copy-on-write merge duplicates the table (see ExecuteDelete).
  SODA_RETURN_NOT_OK(GuardReserve(guard, table->MemoryUsage(), "exec.dml"));
  auto next = std::make_shared<Table>(table->name(), table->schema());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const Column* updated = nullptr;
    for (size_t a = 0; a < assignments.size(); ++a) {
      if (assignments[a].first == c) updated = &new_values[a];
    }
    Column& dst = next->column(c);
    if (!updated) {
      dst.AppendSlice(table->column(c), 0, table->num_rows());
      continue;
    }
    for (size_t r = 0; r < table->num_rows(); ++r) {
      dst.AppendFrom(selected[r] ? *updated : table->column(c), r);
    }
  }
  SODA_RETURN_NOT_OK(catalog->ReplaceTable(stmt.table, std::move(next)));
  return QueryResult();
}

Result<QueryResult> ExecuteDrop(const DropTableStmt& stmt, Catalog* catalog) {
  if (stmt.if_exists && !catalog->HasTable(stmt.name)) {
    return QueryResult();
  }
  SODA_RETURN_NOT_OK(catalog->DropTable(stmt.name));
  return QueryResult();
}

Result<QueryResult> ExecuteInsert(const InsertStmt& stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));

  if (!stmt.values_rows.empty()) {
    Binder binder(catalog);
    for (const auto& parse_row : stmt.values_rows) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      if (parse_row.size() != table->num_columns()) {
        return Status::BindError(
            "INSERT arity mismatch: table has " +
            std::to_string(table->num_columns()) + " columns, row has " +
            std::to_string(parse_row.size()));
      }
      std::vector<Value> row;
      row.reserve(parse_row.size());
      for (const auto& e : parse_row) {
        SODA_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(*e, Schema()));
        SODA_ASSIGN_OR_RETURN(Value v, EvaluateConstantExpression(*bound));
        row.push_back(std::move(v));
      }
      SODA_RETURN_NOT_OK(table->AppendRow(row));
    }
    return QueryResult();
  }

  // INSERT .. SELECT.
  SODA_ASSIGN_OR_RETURN(QueryResult sub,
                        ExecuteSelect(*stmt.select, catalog, options, guard));
  const Table& src = *sub.table();
  if (src.num_columns() != table->num_columns()) {
    return Status::BindError("INSERT .. SELECT arity mismatch");
  }
  // Positional insert with implicit numeric coercion. Each AppendChunk is
  // charged to the memory budget at "storage.append" (via the thread's
  // MemoryScope); the probe here adds cancellation/deadline coverage.
  DataChunk chunk;
  const size_t n = src.num_rows();
  for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
    SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
    src.ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
    DataChunk coerced;
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      DataType want = table->schema().field(c).type;
      if (chunk.column(c).type() == want) {
        coerced.AddColumn(std::move(chunk.column(c)));
        continue;
      }
      if (!(IsNumeric(chunk.column(c).type()) && IsNumeric(want))) {
        return Status::TypeError(
            "INSERT .. SELECT type mismatch in column '" +
            table->schema().field(c).name + "'");
      }
      Column col(want);
      const Column& in = chunk.column(c);
      col.Reserve(in.size());
      for (size_t i = 0; i < in.size(); ++i) {
        if (in.IsNull(i)) {
          col.AppendNull();
        } else if (want == DataType::kDouble) {
          col.AppendDouble(in.GetNumeric(i));
        } else {
          col.AppendBigInt(static_cast<int64_t>(in.GetNumeric(i)));
        }
      }
      coerced.AddColumn(std::move(col));
    }
    SODA_RETURN_NOT_OK(table->AppendChunk(coerced));
  }
  return QueryResult();
}

/// EXPLAIN [ANALYZE]: the optimized plan tree plus the physical pipeline
/// decomposition, rendered as a one-column relation, one row per line.
/// With ANALYZE the plan is executed (under the statement's QueryGuard)
/// and every pipeline operator reports rows/chunks/time.
Result<QueryResult> ExecuteExplain(const SelectStmt& stmt, bool analyze,
                                   Catalog* catalog,
                                   const EngineOptions& options,
                                   QueryGuard* guard) {
  Binder binder(catalog);
  SODA_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelectStatement(stmt));
  if (options.optimize) {
    plan = OptimizePlan(std::move(plan), catalog);
  }
  SODA_ASSIGN_OR_RETURN(PhysicalPlan physical, LowerPlan(*plan));
  ExecStats stats;
  if (analyze) {
    ExecContext ctx;
    ctx.catalog = catalog;
    ctx.max_iterations = options.max_iterations;
    ctx.guard = guard;
    SODA_RETURN_NOT_OK(physical.Execute(ctx));
    stats = ctx.stats;
  }
  auto table = std::make_shared<Table>(
      "explain", Schema({Field("plan", DataType::kVarchar)}));
  std::string text = plan->ToString();
  if (!text.empty() && text.back() != '\n') text += "\n";
  text += "=== Pipelines ===\n" + physical.ToString(analyze);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SODA_RETURN_NOT_OK(
        table->AppendRow({Value::Varchar(text.substr(start, end - start))}));
    start = end + 1;
  }
  return QueryResult(std::move(table), stats);
}

/// SET soda.<knob> = <value>: mutates the engine-level defaults. Knobs map
/// onto EngineOptions; unknown names and negative values are rejected with
/// a clean error, leaving the options untouched.
Result<QueryResult> ExecuteSet(const SetStmt& stmt, EngineOptions* options) {
  if (stmt.value < 0) {
    return Status::InvalidArgument("SET " + stmt.name +
                                   ": value must be >= 0 (0 = unlimited)");
  }
  if (stmt.name == "soda.timeout_ms") {
    options->timeout_ms = stmt.value;
  } else if (stmt.name == "soda.memory_limit_mb") {
    options->memory_limit_bytes = stmt.value * int64_t{1024} * 1024;
  } else if (stmt.name == "soda.max_iterations") {
    if (stmt.value == 0) {
      return Status::InvalidArgument(
          "SET soda.max_iterations: value must be >= 1");
    }
    options->max_iterations = static_cast<size_t>(stmt.value);
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name +
        "' (supported: soda.timeout_ms, soda.memory_limit_mb, "
        "soda.max_iterations)");
  }
  return QueryResult();
}

Result<QueryResult> ExecuteStatement(const Statement& stmt, Catalog* catalog,
                                     const EngineOptions& options,
                                     QueryGuard* guard) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, catalog, options, guard);
    case StatementKind::kCreateTable:
      return ExecuteCreate(*stmt.create_table, catalog, options, guard);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert, catalog, options, guard);
    case StatementKind::kDropTable:
      return ExecuteDrop(*stmt.drop_table, catalog);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update, catalog, guard);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del, catalog, guard);
    case StatementKind::kExplain:
      return ExecuteExplain(*stmt.select, stmt.explain_analyze, catalog,
                            options, guard);
    case StatementKind::kSet:
      return Status::Internal("SET must be handled by the engine");
  }
  return Status::Internal("unknown statement kind");
}

/// One statement under a fresh QueryGuard built from the engine defaults
/// overlaid with per-call ExecOptions. The guard is installed as the
/// calling thread's MemoryScope so storage appends are charged; the
/// guard-aware ParallelFor extends the scope to worker threads.
Result<QueryResult> RunGoverned(const Statement& stmt, Catalog* catalog,
                                EngineOptions* engine_options,
                                const ExecOptions& exec) {
  if (stmt.kind == StatementKind::kSet) {
    return ExecuteSet(*stmt.set, engine_options);
  }
  EngineOptions effective = *engine_options;
  if (exec.max_iterations >= 0) {
    effective.max_iterations = static_cast<size_t>(exec.max_iterations);
  }
  QueryLimits limits;
  limits.timeout_ms =
      exec.timeout_ms >= 0 ? exec.timeout_ms : engine_options->timeout_ms;
  limits.memory_limit_bytes = exec.memory_limit_bytes >= 0
                                  ? exec.memory_limit_bytes
                                  : engine_options->memory_limit_bytes;
  QueryGuard guard(limits, exec.cancel ? exec.cancel->token() : nullptr);
  QueryGuard::MemoryScope scope(&guard);
  // Probe once before any work so a pre-cancelled handle (or an already
  // expired deadline) aborts even plans that touch no other probe site,
  // e.g. a bare table scan that returns the catalog table directly.
  SODA_RETURN_NOT_OK(guard.Check("exec.statement"));
  return ExecuteStatement(stmt, catalog, effective, &guard);
}

}  // namespace

Result<QueryResult> Engine::Execute(const std::string& sql) {
  return Execute(sql, ExecOptions{});
}

Result<QueryResult> Engine::Execute(const std::string& sql,
                                    const ExecOptions& exec) {
  SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return RunGoverned(stmt, &catalog_, &options_, exec);
}

Result<QueryResult> Engine::ExecuteScript(const std::string& sql) {
  SODA_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return QueryResult();
  QueryResult last;
  for (const auto& stmt : stmts) {
    // SET takes effect for the remaining statements of the script.
    Result<QueryResult> r =
        RunGoverned(stmt, &catalog_, &options_, ExecOptions{});
    SODA_RETURN_NOT_OK(r.status());
    last = std::move(r.ValueOrDie());
  }
  return last;
}

Result<std::string> Engine::Explain(const std::string& sql) {
  SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements only");
  }
  Binder binder(&catalog_);
  SODA_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelectStatement(*stmt.select));
  if (options_.optimize) {
    plan = OptimizePlan(std::move(plan), &catalog_);
  }
  SODA_ASSIGN_OR_RETURN(PhysicalPlan physical, LowerPlan(*plan));
  std::string text = plan->ToString();
  if (!text.empty() && text.back() != '\n') text += "\n";
  return text + "=== Pipelines ===\n" + physical.ToString();
}

}  // namespace soda
