#include "core/engine.h"

#include <algorithm>
#include <cctype>

#include "core/plan_cache.h"
#include "exec/executor.h"
#include "exec/ht_recycler.h"
#include "exec/physical_plan.h"
#include "exec/plan_fingerprint.h"
#include "exec/plan_verifier.h"
#include "expr/evaluator.h"
#include "expr/fold.h"
#include "sql/binder.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "storage/partition.h"
#include "storage/segment.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// The engine's repeated-traffic caches plus the raw statement text,
/// threaded from Engine::Execute into the SELECT/EXPLAIN/PREPARE paths
/// (DESIGN.md §11). All pointers may be null (tests calling helpers
/// directly, inner selects of CTAS / INSERT..SELECT that have no
/// statement-level SQL key).
struct CacheCtx {
  PlanCache* plan_cache = nullptr;
  HtRecycler* ht_recycler = nullptr;
  PreparedRegistry* prepared = nullptr;
  const std::string* sql = nullptr;  ///< raw text of the outer statement
};

/// The plan-cache key: trimmed statement text plus the optimize flag (a
/// plan-shape test flipping soda's optimizer off must not be served an
/// optimized plan cached moments earlier).
std::string PlanCacheKey(const std::string& sql, bool optimize) {
  return std::string(Trim(sql)) + (optimize ? "|opt" : "|raw");
}

/// A CacheCtx for a nested select (CTAS / INSERT..SELECT body): the
/// recycler still applies, but there is no statement-level SQL text to
/// key a plan-cache entry by, and prepared names are out of scope.
CacheCtx InnerCacheCtx(const CacheCtx& cc) {
  CacheCtx inner;
  inner.ht_recycler = cc.ht_recycler;
  return inner;
}

/// Health counters for soda_status(): durability-layer numbers straight
/// from the manager's atomics, quarantine extent from a walk over the
/// catalog (the caller's snapshot for SELECTs, so the numbers are
/// consistent with what the statement can see).
EngineStatusSnapshot CollectEngineStatus(const Catalog* catalog,
                                         DurabilityManager* dur,
                                         const CacheCtx& cc) {
  EngineStatusSnapshot s;
  if (cc.plan_cache != nullptr) {
    const PlanCache::Stats ps = cc.plan_cache->stats();
    s.plan_cache_hits = ps.hits;
    s.plan_cache_misses = ps.misses;
    s.plan_cache_entries = ps.entries;
  }
  if (cc.ht_recycler != nullptr) {
    const HtRecycler::Stats hs = cc.ht_recycler->stats();
    s.ht_cache_hits = hs.hits;
    s.ht_cache_misses = hs.misses;
    s.ht_cache_evictions = hs.evictions;
    s.ht_cache_bytes = hs.bytes;
  }
  if (dur != nullptr) {
    s.durable = true;
    s.wal_bytes = static_cast<int64_t>(dur->wal()->size_bytes());
    s.wal_records = static_cast<int64_t>(dur->wal()->record_count());
    s.last_checkpoint_lsn = static_cast<int64_t>(dur->last_checkpoint_lsn());
    s.checkpoint_count = static_cast<int64_t>(dur->checkpoint_count());
    s.auto_checkpoint_count =
        static_cast<int64_t>(dur->auto_checkpoint_count());
    s.scrub_pass_count = static_cast<int64_t>(dur->scrub_pass_count());
  }
  for (const std::string& name : catalog->TableNames()) {
    Result<TablePtr> t = catalog->GetTable(name);
    if (!t.ok()) continue;
    const TablePtr& table = t.ValueOrDie();
    if (table->table_level_quarantined()) ++s.quarantined_tables;
    for (size_t g = 0; g < table->num_row_groups(); ++g) {
      if (table->group_quarantined(g)) ++s.quarantined_row_groups;
    }
  }
  return s;
}

/// Fills the per-statement ExecContext fields shared by SELECT, EXPLAIN
/// ANALYZE, and EXECUTE.
void InitExecContext(ExecContext* ctx, Catalog* catalog,
                     const EngineOptions& options, DurabilityManager* dur,
                     QueryGuard* guard, const CacheCtx& cc) {
  ctx->catalog = catalog;
  ctx->max_iterations = options.max_iterations;
  ctx->guard = guard;
  ctx->verify_plans = options.verify_plans;
  ctx->ht_recycler = cc.ht_recycler;
  ctx->status_provider = [catalog, dur, cc] {
    return CollectEngineStatus(catalog, dur, cc);
  };
}

/// `stmt` may be null when the engine's pre-parse fast path fired (a
/// Peek on the plan cache proved this text keyed a SELECT): the hit path
/// then runs with no AST at all, and the miss path (entry went stale or
/// was evicted in the meantime) re-parses the text lazily.
Result<QueryResult> ExecuteSelect(const SelectStmt* stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  DurabilityManager* dur, QueryGuard* guard,
                                  const CacheCtx& cc) {
  // Plan-cache consult: keyed by the raw SQL text, validated against the
  // pinned snapshot's table versions. A hit skips lex/parse/bind/optimize
  // entirely.
  std::shared_ptr<const PlanNode> plan;
  std::string key;
  const bool cacheable = cc.plan_cache != nullptr && cc.sql != nullptr;
  if (cacheable) {
    key = PlanCacheKey(*cc.sql, options.optimize);
    SODA_ASSIGN_OR_RETURN(plan, cc.plan_cache->Lookup(key, *catalog, guard));
  }
  Statement reparsed;  // owns the lazily parsed AST when `stmt` was null
  if (plan == nullptr) {
    if (stmt == nullptr) {
      SODA_ASSIGN_OR_RETURN(reparsed, ParseStatement(*cc.sql));
      if (reparsed.kind != StatementKind::kSelect ||
          reparsed.select == nullptr) {
        return Status::Internal(
            "plan-cache fast path keyed non-SELECT text: " + *cc.sql);
      }
      stmt = reparsed.select.get();
    }
    Binder binder(catalog);
    SODA_ASSIGN_OR_RETURN(PlanPtr fresh, binder.BindSelectStatement(*stmt));
    if (options.optimize) {
      fresh = OptimizePlan(std::move(fresh), catalog);
    }
    plan = std::shared_ptr<const PlanNode>(std::move(fresh));
    if (cacheable) {
      CachedPlan entry;
      entry.plan = plan;
      entry.fingerprint = FingerprintPlan(*plan, *catalog, &entry.deps);
      entry.catalog_version = catalog->catalog_version();
      cc.plan_cache->Insert(key, std::move(entry));
    }
  }
  ExecContext ctx;
  InitExecContext(&ctx, catalog, options, dur, guard, cc);
  SODA_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(*plan, ctx));
  return QueryResult(std::move(result), ctx.stats);
}

/// Seals a freshly built (exclusively owned) DML result when the policy
/// says encoding pays off. Partitioned tables always seal — pruning needs
/// the partition-clustered layout.
Status MaybeSeal(const EngineOptions& options, Table* table) {
  if (table->sealed()) return Status::OK();
  if (table->partition_spec().partitioned()) return table->Seal();
  if (options.encode_segments && table->num_rows() >= kSealMinRows) {
    return table->Seal();
  }
  return Status::OK();
}

/// Builds the CREATE TABLE partition spec from the parsed clause,
/// resolving the column against `schema` and validating bounds.
Result<PartitionSpec> BuildPartitionSpec(const CreateTableStmt& stmt,
                                         const Schema& schema) {
  PartitionSpec spec;
  if (stmt.partition_kind == CreateTableStmt::PartitionKind::kNone) {
    return spec;
  }
  SODA_ASSIGN_OR_RETURN(size_t col,
                        schema.FindField(ToLower(stmt.partition_column)));
  spec.column = ToLower(stmt.partition_column);
  spec.column_index = col;
  if (stmt.partition_kind == CreateTableStmt::PartitionKind::kHash) {
    spec.kind = PartitionSpec::Kind::kHash;
    if (stmt.partition_count < 1 || stmt.partition_count > 4096) {
      return Status::InvalidArgument(
          "PARTITION BY HASH: PARTITIONS must be in [1, 4096]");
    }
    spec.num_partitions = static_cast<size_t>(stmt.partition_count);
    return spec;
  }
  spec.kind = PartitionSpec::Kind::kRange;
  if (schema.field(col).type != DataType::kBigInt) {
    return Status::InvalidArgument(
        "PARTITION BY RANGE requires a BIGINT partition column");
  }
  if (stmt.partition_bounds.empty()) {
    return Status::InvalidArgument(
        "PARTITION BY RANGE: at least one bound required");
  }
  for (size_t i = 1; i < stmt.partition_bounds.size(); ++i) {
    if (stmt.partition_bounds[i] <= stmt.partition_bounds[i - 1]) {
      return Status::InvalidArgument(
          "PARTITION BY RANGE: bounds must be strictly ascending");
    }
  }
  spec.bounds = stmt.partition_bounds;
  spec.num_partitions = spec.bounds.size() + 1;
  return spec;
}

/// INSERT into a sealed table: every existing row group is shared by
/// pointer into the new table version — only the staged rows are encoded
/// (bucketed into their partitions first). The old image is never decoded.
Result<TablePtr> AppendSealed(const Table& prev, const Table& staged) {
  const PartitionSpec& spec = prev.partition_spec();
  const auto& prev_offsets = prev.partition_offsets();
  const size_t P = prev_offsets.size() - 1;

  // Bucket staged rows by partition (single bucket when unpartitioned).
  std::vector<std::vector<uint32_t>> buckets(P);
  if (spec.partitioned() && spec.num_partitions == P) {
    const Column& pcol = staged.column(spec.column_index);
    for (size_t r = 0; r < staged.num_rows(); ++r) {
      buckets[PartitionOfRow(spec, pcol, r)].push_back(
          static_cast<uint32_t>(r));
    }
  } else {
    buckets[0].resize(staged.num_rows());
    for (size_t r = 0; r < staged.num_rows(); ++r) {
      buckets[0][r] = static_cast<uint32_t>(r);
    }
  }

  std::vector<std::vector<SegmentPtr>> groups;
  std::vector<size_t> offsets{0};
  size_t g = 0;
  size_t total = 0;
  for (size_t p = 0; p < P; ++p) {
    while (g < prev.num_row_groups() &&
           prev.group_offset(g) < prev_offsets[p + 1]) {
      std::vector<SegmentPtr> group;
      group.reserve(prev.num_columns());
      for (size_t c = 0; c < prev.num_columns(); ++c) {
        group.push_back(prev.group_segment(g, c));
      }
      total += prev.group_rows(g);
      groups.push_back(std::move(group));
      ++g;
    }
    if (!buckets[p].empty()) {
      // Gather this partition's staged rows into flat columns, then
      // encode them as fresh groups appended at the partition's end.
      std::vector<Column> part;
      part.reserve(staged.num_columns());
      for (size_t c = 0; c < staged.num_columns(); ++c) {
        Column col(staged.column(c).type());
        col.Reserve(buckets[p].size());
        col.AppendGather(staged.column(c), buckets[p].data(),
                         buckets[p].size());
        part.push_back(std::move(col));
      }
      const size_t rows = buckets[p].size();
      for (size_t off = 0; off < rows; off += kSegmentRows) {
        const size_t take = std::min(kSegmentRows, rows - off);
        std::vector<SegmentPtr> group;
        group.reserve(part.size());
        for (const Column& col : part) {
          SODA_ASSIGN_OR_RETURN(SegmentPtr seg,
                                EncodeSegment(col, off, take));
          group.push_back(std::move(seg));
        }
        groups.push_back(std::move(group));
      }
      total += rows;
    }
    offsets.push_back(total);
  }

  auto next = std::make_shared<Table>(prev.name(), prev.schema());
  next->set_partition_spec(spec);
  SODA_RETURN_NOT_OK(next->AdoptSealed(std::move(groups), std::move(offsets)));
  return next;
}

/// Rebuilds a sealed table after DELETE/UPDATE, re-encoding only the
/// partitions that contain touched rows; untouched partitions share their
/// row groups with the previous version by pointer.
///
/// `next_flat` must hold the complete post-statement rows in the same
/// partition-contiguous order as `prev` (DELETE removes rows in place;
/// UPDATE replaces values in place — neither reorders, so partition p's
/// rows occupy [new_offsets[p], new_offsets[p+1]) in `next_flat`).
/// `touched[p]` marks partitions whose rows changed.
Result<TablePtr> ResealReusing(const Table& prev, const Table& next_flat,
                               const std::vector<uint8_t>& touched,
                               const std::vector<size_t>& new_offsets) {
  const size_t P = touched.size();
  const auto& prev_offsets = prev.partition_offsets();
  std::vector<std::vector<SegmentPtr>> groups;
  std::vector<size_t> offsets{0};
  size_t g = 0;
  size_t total = 0;
  for (size_t p = 0; p < P; ++p) {
    if (!touched[p]) {
      while (g < prev.num_row_groups() &&
             prev.group_offset(g) < prev_offsets[p + 1]) {
        std::vector<SegmentPtr> group;
        group.reserve(prev.num_columns());
        for (size_t c = 0; c < prev.num_columns(); ++c) {
          group.push_back(prev.group_segment(g, c));
        }
        total += prev.group_rows(g);
        groups.push_back(std::move(group));
        ++g;
      }
    } else {
      while (g < prev.num_row_groups() &&
             prev.group_offset(g) < prev_offsets[p + 1]) {
        ++g;  // skip the stale groups
      }
      for (size_t off = new_offsets[p]; off < new_offsets[p + 1];
           off += kSegmentRows) {
        const size_t take = std::min(kSegmentRows, new_offsets[p + 1] - off);
        std::vector<SegmentPtr> group;
        group.reserve(next_flat.num_columns());
        for (size_t c = 0; c < next_flat.num_columns(); ++c) {
          SODA_ASSIGN_OR_RETURN(
              SegmentPtr seg,
              EncodeSegment(next_flat.column(c), off, take));
          group.push_back(std::move(seg));
        }
        groups.push_back(std::move(group));
      }
      total += new_offsets[p + 1] - new_offsets[p];
    }
    offsets.push_back(total);
  }
  auto next = std::make_shared<Table>(prev.name(), prev.schema());
  next->set_partition_spec(prev.partition_spec());
  SODA_RETURN_NOT_OK(next->AdoptSealed(std::move(groups), std::move(offsets)));
  return next;
}

Result<QueryResult> ExecuteCreate(const CreateTableStmt& stmt,
                                  Catalog* catalog,
                                  const EngineOptions& options,
                                  DurabilityManager* dur, QueryGuard* guard,
                                  const CacheCtx& cc) {
  if (stmt.if_not_exists && catalog->HasTable(stmt.name)) {
    return QueryResult();
  }
  // Name clash is checked before the WAL append so a failing CREATE never
  // reaches the log (the engine is single-writer; see DESIGN.md §6b).
  if (catalog->HasTable(stmt.name)) {
    return Status::AlreadyExists("table already exists: " +
                                 ToLower(stmt.name));
  }
  if (stmt.as_select) {
    // CREATE TABLE .. AS SELECT: materialize first, log second, register
    // third, so a failing query or a failed commit leaves no half-created
    // table behind (in memory or on disk).
    SODA_ASSIGN_OR_RETURN(
        QueryResult result,
        ExecuteSelect(stmt.as_select.get(), catalog, options, dur, guard,
                      InnerCacheCtx(cc)));
    Schema schema;
    for (const auto& f : result.schema().fields()) {
      schema.AddField(Field(f.name, f.type));  // strip qualifiers
    }
    const Table& src = *result.table();
    // The bulk column copy bypasses Table::AppendChunk; charge it before
    // the table is registered so a failed budget leaves no empty shell.
    SODA_RETURN_NOT_OK(
        GuardReserve(guard, src.MemoryUsage(), "exec.dml"));
    auto table = std::make_shared<Table>(ToLower(stmt.name), schema);
    for (size_t c = 0; c < src.num_columns(); ++c) {
      table->column(c).AppendSlice(src.column(c), 0, src.num_rows());
    }
    // Seal before logging so the checkpoint/WAL image is the encoded one.
    SODA_RETURN_NOT_OK(MaybeSeal(options, table.get()));
    SODA_RETURN_NOT_OK(CommitDurable(
        dur, [&] { return dur->LogTableImage(*table); },
        [&] { return catalog->RegisterTable(std::move(table)); }));
    return QueryResult();
  }
  Schema schema;
  for (const auto& [name, type] : stmt.columns) {
    schema.AddField(Field(name, type));
  }
  SODA_ASSIGN_OR_RETURN(PartitionSpec spec, BuildPartitionSpec(stmt, schema));
  SODA_RETURN_NOT_OK(CommitDurable(
      dur,
      [&] { return dur->LogCreateTable(ToLower(stmt.name), schema, spec); },
      [&]() -> Status {
        auto table = std::make_shared<Table>(ToLower(stmt.name), schema);
        table->set_partition_spec(spec);
        // Partitioned tables live sealed from birth: every later INSERT
        // goes through the group-reuse append path (AppendSealed), which
        // requires the clustered layout to already exist.
        if (spec.partitioned()) SODA_RETURN_NOT_OK(table->Seal());
        return catalog->RegisterTable(std::move(table));
      }));
  return QueryResult();
}

/// Evaluates an optional WHERE over a full table; `selected[i]` is set for
/// rows where the predicate is TRUE (all rows when `where` is null).
Result<std::vector<uint8_t>> EvaluateRowMask(const Table& table,
                                             const ParseExpr* where,
                                             Catalog* catalog,
                                             QueryGuard* guard) {
  std::vector<uint8_t> selected(table.num_rows(), where ? 0 : 1);
  if (!where) return selected;
  Binder binder(catalog);
  Schema schema = table.schema().WithQualifier(table.name());
  SODA_ASSIGN_OR_RETURN(ExprPtr pred, binder.BindScalar(*where, schema));
  if (pred->type != DataType::kBool) {
    return Status::BindError("WHERE clause must be boolean");
  }
  DataChunk chunk;
  const size_t n = table.num_rows();
  for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
    SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
    table.ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
    std::vector<uint32_t> sel;
    SODA_RETURN_NOT_OK(EvaluatePredicate(*pred, chunk, &sel));
    for (uint32_t i : sel) selected[offset + i] = 1;
  }
  return selected;
}

/// DELETE: copy-on-write — build the surviving rows into a fresh table and
/// atomically swap it in (readers holding the old TablePtr keep a
/// consistent snapshot). The new image is write-ahead-logged before the
/// swap, so the statement commits to disk and memory together.
Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  DurabilityManager* dur, QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));
  // Writes must see the whole table (copy-on-write rebuild); quarantined
  // payload would silently turn into all-NULL placeholder rows.
  SODA_RETURN_NOT_OK(table->CheckReadable(0, table->num_rows()));
  SODA_ASSIGN_OR_RETURN(
      std::vector<uint8_t> doomed,
      EvaluateRowMask(*table, stmt.where.get(), catalog, guard));
  // Copy-on-write duplicates (up to) the whole table; charge the rebuild
  // before touching it so budget failures leave the old snapshot intact.
  SODA_RETURN_NOT_OK(GuardReserve(guard, table->MemoryUsage(), "exec.dml"));
  auto next = std::make_shared<Table>(table->name(), table->schema());
  next->set_partition_spec(table->partition_spec());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    for (size_t r = 0; r < table->num_rows(); ++r) {
      if (!doomed[r]) next->column(c).AppendFrom(table->column(c), r);
    }
  }
  TablePtr publish = next;
  if (table->sealed() && table->partition_spec().partitioned()) {
    // Surviving rows keep their clustered order (the rebuild filters in
    // place), so partitions with no deleted row can share their encoded
    // groups with the previous version; only touched partitions re-encode.
    const auto& prev_offsets = table->partition_offsets();
    const size_t P = prev_offsets.size() - 1;
    std::vector<uint8_t> touched(P, 0);
    std::vector<size_t> new_offsets(P + 1, 0);
    for (size_t p = 0; p < P; ++p) {
      size_t survivors = 0;
      for (size_t r = prev_offsets[p]; r < prev_offsets[p + 1]; ++r) {
        if (doomed[r]) {
          touched[p] = 1;
        } else {
          ++survivors;
        }
      }
      new_offsets[p + 1] = new_offsets[p] + survivors;
    }
    SODA_ASSIGN_OR_RETURN(publish,
                          ResealReusing(*table, *next, touched, new_offsets));
  } else {
    SODA_RETURN_NOT_OK(MaybeSeal(options, next.get()));
  }
  SODA_RETURN_NOT_OK(CommitDurable(
      dur, [&] { return dur->LogTableImage(*publish); },
      [&] { return catalog->ReplaceTable(stmt.table, std::move(publish)); }));
  return QueryResult();
}

/// UPDATE: gather-evaluate-scatter — SET expressions run only over the
/// rows the WHERE mask selects (a failing or expensive expression on an
/// unselected row never executes), then the new values are scattered into
/// a fresh table which is swapped in (copy-on-write).
Result<QueryResult> ExecuteUpdate(const UpdateStmt& stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  DurabilityManager* dur, QueryGuard* guard) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));
  // See ExecuteDelete: no copy-on-write over quarantined payload.
  SODA_RETURN_NOT_OK(table->CheckReadable(0, table->num_rows()));
  const Schema schema = table->schema().WithQualifier(table->name());
  Binder binder(catalog);

  // Bind assignments; insert casts for compatible numeric mismatches.
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [col_name, parse_expr] : stmt.assignments) {
    SODA_ASSIGN_OR_RETURN(size_t col, schema.FindField(col_name));
    SODA_ASSIGN_OR_RETURN(ExprPtr expr,
                          binder.BindScalar(*parse_expr, schema));
    DataType want = schema.field(col).type;
    if (expr->type != want) {
      if (!(IsNumeric(expr->type) && IsNumeric(want))) {
        return Status::TypeError("cannot assign " +
                                 std::string(DataTypeToString(expr->type)) +
                                 " to column '" + col_name + "' of type " +
                                 DataTypeToString(want));
      }
      expr = Expression::Cast(std::move(expr), want);
    }
    assignments.emplace_back(col, std::move(expr));
  }

  SODA_ASSIGN_OR_RETURN(
      std::vector<uint8_t> selected,
      EvaluateRowMask(*table, stmt.where.get(), catalog, guard));

  const size_t n = table->num_rows();
  std::vector<size_t> sel;
  for (size_t r = 0; r < n; ++r) {
    if (selected[r]) sel.push_back(r);
  }

  // New values for the selected rows only, in selection order (compact:
  // new_values[a][i] belongs to row sel[i]).
  std::vector<Column> new_values;
  for (auto& [col, expr] : assignments) {
    new_values.emplace_back(schema.field(col).type);
    (void)expr;
  }
  if (sel.size() == n) {
    // Every row selected: contiguous scan beats row-wise gathering.
    DataChunk chunk;
    for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      table->ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
      for (size_t a = 0; a < assignments.size(); ++a) {
        Column part;
        SODA_RETURN_NOT_OK(
            EvaluateExpression(*assignments[a].second, chunk, &part));
        new_values[a].AppendSlice(part, 0, part.size());
      }
    }
  } else {
    for (size_t start = 0; start < sel.size(); start += kChunkCapacity) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      const size_t count = std::min(kChunkCapacity, sel.size() - start);
      DataChunk gathered;
      for (size_t c = 0; c < table->num_columns(); ++c) {
        Column col(table->column(c).type());
        col.Reserve(count);
        for (size_t i = 0; i < count; ++i) {
          col.AppendFrom(table->column(c), sel[start + i]);
        }
        gathered.AddColumn(std::move(col));
      }
      for (size_t a = 0; a < assignments.size(); ++a) {
        Column part;
        SODA_RETURN_NOT_OK(
            EvaluateExpression(*assignments[a].second, gathered, &part));
        new_values[a].AppendSlice(part, 0, part.size());
      }
    }
  }

  // The copy-on-write merge duplicates the table (see ExecuteDelete).
  SODA_RETURN_NOT_OK(GuardReserve(guard, table->MemoryUsage(), "exec.dml"));
  auto next = std::make_shared<Table>(table->name(), table->schema());
  next->set_partition_spec(table->partition_spec());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const Column* updated = nullptr;
    for (size_t a = 0; a < assignments.size(); ++a) {
      if (assignments[a].first == c) updated = &new_values[a];
    }
    Column& dst = next->column(c);
    if (!updated) {
      dst.AppendSlice(table->column(c), 0, table->num_rows());
      continue;
    }
    size_t cursor = 0;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      if (selected[r]) {
        dst.AppendFrom(*updated, cursor++);
      } else {
        dst.AppendFrom(table->column(c), r);
      }
    }
  }
  // Assigning the partition column can move rows between partitions, which
  // invalidates the clustered order — only then is a full re-seal needed.
  bool repartitions = false;
  if (table->partition_spec().partitioned()) {
    for (const auto& [col, expr] : assignments) {
      if (col == table->partition_spec().column_index) repartitions = true;
      (void)expr;
    }
  }
  TablePtr publish = next;
  if (table->sealed() && table->partition_spec().partitioned() &&
      !repartitions) {
    // In-place value replacement keeps row order and counts, so the new
    // partition layout equals the old one; only partitions containing a
    // selected row re-encode.
    const auto& prev_offsets = table->partition_offsets();
    const size_t P = prev_offsets.size() - 1;
    std::vector<uint8_t> touched(P, 0);
    for (size_t p = 0; p < P; ++p) {
      for (size_t r = prev_offsets[p]; r < prev_offsets[p + 1]; ++r) {
        if (selected[r]) {
          touched[p] = 1;
          break;
        }
      }
    }
    SODA_ASSIGN_OR_RETURN(publish,
                          ResealReusing(*table, *next, touched, prev_offsets));
  } else {
    SODA_RETURN_NOT_OK(MaybeSeal(options, next.get()));
  }
  SODA_RETURN_NOT_OK(CommitDurable(
      dur, [&] { return dur->LogTableImage(*publish); },
      [&] { return catalog->ReplaceTable(stmt.table, std::move(publish)); }));
  return QueryResult();
}

Result<QueryResult> ExecuteDrop(const DropTableStmt& stmt, Catalog* catalog,
                                DurabilityManager* dur) {
  if (stmt.if_exists && !catalog->HasTable(stmt.name)) {
    return QueryResult();
  }
  if (!catalog->HasTable(stmt.name)) {
    return Status::KeyError("table not found: " + ToLower(stmt.name));
  }
  SODA_RETURN_NOT_OK(CommitDurable(
      dur, [&] { return dur->LogDropTable(ToLower(stmt.name)); },
      [&] { return catalog->DropTable(stmt.name); }));
  return QueryResult();
}

/// INSERT: all-or-nothing. New rows are staged into a side table; only
/// when every row has evaluated, type-checked, and been write-ahead-logged
/// is the live table rebuilt and atomically swapped in. A failure at any
/// point (bad row, tripped guard, injected fault, failed commit) leaves
/// the table — in memory and on disk — exactly as it was.
Result<QueryResult> ExecuteInsert(const InsertStmt& stmt, Catalog* catalog,
                                  const EngineOptions& options,
                                  DurabilityManager* dur, QueryGuard* guard,
                                  const CacheCtx& cc) {
  SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(stmt.table));
  // INSERT rebuilds (or group-reuse-appends to) the current payload; a
  // quarantined table rejects the write rather than splice rows onto
  // placeholder data. DROP TABLE and kTableImage recovery still work.
  SODA_RETURN_NOT_OK(table->CheckReadable(0, table->num_rows()));
  Table staged(table->name(), table->schema());

  if (!stmt.values_rows.empty()) {
    Binder binder(catalog);
    for (const auto& parse_row : stmt.values_rows) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      if (parse_row.size() != table->num_columns()) {
        return Status::BindError(
            "INSERT arity mismatch: table has " +
            std::to_string(table->num_columns()) + " columns, row has " +
            std::to_string(parse_row.size()));
      }
      std::vector<Value> row;
      row.reserve(parse_row.size());
      for (const auto& e : parse_row) {
        SODA_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(*e, Schema()));
        SODA_ASSIGN_OR_RETURN(Value v, EvaluateConstantExpression(*bound));
        row.push_back(std::move(v));
      }
      SODA_RETURN_NOT_OK(staged.AppendRow(row));
    }
  } else {
    // INSERT .. SELECT.
    SODA_ASSIGN_OR_RETURN(
        QueryResult sub,
        ExecuteSelect(stmt.select.get(), catalog, options, dur, guard,
                      InnerCacheCtx(cc)));
    const Table& src = *sub.table();
    if (src.num_columns() != table->num_columns()) {
      return Status::BindError("INSERT .. SELECT arity mismatch");
    }
    // Positional insert with implicit numeric coercion. Each AppendChunk
    // is charged to the memory budget at "storage.append" (via the
    // thread's MemoryScope); the probe here adds cancellation/deadline
    // coverage.
    DataChunk chunk;
    const size_t n = src.num_rows();
    for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, "exec.dml"));
      src.ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
      DataChunk coerced;
      for (size_t c = 0; c < chunk.num_columns(); ++c) {
        DataType want = table->schema().field(c).type;
        if (chunk.column(c).type() == want) {
          coerced.AddColumn(std::move(chunk.column(c)));
          continue;
        }
        if (!(IsNumeric(chunk.column(c).type()) && IsNumeric(want))) {
          return Status::TypeError(
              "INSERT .. SELECT type mismatch in column '" +
              table->schema().field(c).name + "'");
        }
        Column col(want);
        const Column& in = chunk.column(c);
        col.Reserve(in.size());
        for (size_t i = 0; i < in.size(); ++i) {
          if (in.IsNull(i)) {
            col.AppendNull();
          } else if (want == DataType::kDouble) {
            col.AppendDouble(in.GetNumeric(i));
          } else {
            col.AppendBigInt(static_cast<int64_t>(in.GetNumeric(i)));
          }
        }
        coerced.AddColumn(std::move(col));
      }
      SODA_RETURN_NOT_OK(staged.AppendChunk(coerced));
    }
  }

  // Commit point: log the staged rows, then rebuild-and-swap so readers
  // holding the old TablePtr keep a consistent snapshot (the same
  // copy-on-write path UPDATE/DELETE use).
  SODA_RETURN_NOT_OK(GuardReserve(guard, table->MemoryUsage(), "exec.dml"));
  SODA_RETURN_NOT_OK(CommitDurable(
      dur, [&] { return dur->LogAppendRows(staged); },
      [&]() -> Status {
        if (table->sealed()) {
          // Group-reuse append: existing segments are shared by pointer
          // into the new version; only the staged rows are encoded.
          SODA_ASSIGN_OR_RETURN(TablePtr next, AppendSealed(*table, staged));
          return catalog->ReplaceTable(table->name(), std::move(next));
        }
        auto next = std::make_shared<Table>(table->name(), table->schema());
        next->set_partition_spec(table->partition_spec());
        for (size_t c = 0; c < table->num_columns(); ++c) {
          next->column(c).AppendSlice(table->column(c), 0, table->num_rows());
          next->column(c).AppendSlice(staged.column(c), 0, staged.num_rows());
        }
        SODA_RETURN_NOT_OK(MaybeSeal(options, next.get()));
        return catalog->ReplaceTable(table->name(), std::move(next));
      }));
  return QueryResult();
}

/// Builds the background-maintenance thresholds from the engine knobs.
MaintenanceOptions MaintenanceFromOptions(const EngineOptions& o) {
  MaintenanceOptions m;
  m.wal_auto_checkpoint_bytes = o.wal_auto_checkpoint_mb << 20;
  m.wal_auto_checkpoint_records = o.wal_auto_checkpoint_records;
  m.scrub_interval = std::chrono::milliseconds(
      o.scrub_interval_ms > 0 ? o.scrub_interval_ms : 0);
  return m;
}

/// One scrub pass (see Engine::RunScrub). The CRC sweep runs lock-free
/// over a catalog snapshot; only quarantine publication takes the
/// statement lock, and it re-verifies each suspect group against the
/// then-current table version (DML may have swapped in a new one whose
/// group indices differ).
Status RunScrubPass(Catalog* catalog, Mutex* write_mu, DurabilityManager* dur,
                    ScrubReport* report) {
  std::vector<TablePtr> tables;
  for (const std::string& name : catalog->TableNames()) {
    Result<TablePtr> t = catalog->GetTable(name);
    if (t.ok()) tables.push_back(std::move(t.ValueOrDie()));
  }
  auto publish = [catalog, write_mu](
                     const std::string& name,
                     const std::vector<size_t>& groups) -> Status {
    MutexLock lock(write_mu);
    Result<TablePtr> tr = catalog->GetTable(name);
    if (!tr.ok()) return Status::OK();  // dropped since the sweep
    const TablePtr& t = tr.ValueOrDie();
    if (!t->sealed()) return Status::OK();  // replaced by a flat rebuild
    // Copy-on-write clone sharing every segment pointer — readers keep
    // their pinned version; only the quarantine flags change.
    auto next = std::make_shared<Table>(t->name(), t->schema());
    next->set_partition_spec(t->partition_spec());
    std::vector<std::vector<SegmentPtr>> cloned;
    cloned.reserve(t->num_row_groups());
    for (size_t g = 0; g < t->num_row_groups(); ++g) {
      std::vector<SegmentPtr> row;
      row.reserve(t->num_columns());
      for (size_t c = 0; c < t->num_columns(); ++c) {
        row.push_back(t->group_segment(g, c));
      }
      cloned.push_back(std::move(row));
    }
    SODA_RETURN_NOT_OK(
        next->AdoptSealed(std::move(cloned), t->partition_offsets()));
    for (size_t g = 0; g < t->num_row_groups(); ++g) {
      if (t->group_quarantined(g)) next->MarkGroupQuarantined(g);
    }
    bool newly_quarantined = false;
    for (size_t g : groups) {
      if (g >= next->num_row_groups() || next->group_quarantined(g)) continue;
      bool corrupt = false;
      for (size_t c = 0; c < next->num_columns() && !corrupt; ++c) {
        const SegmentPtr& seg = next->group_segment(g, c);
        corrupt = seg != nullptr && seg->crc != 0 &&
                  ComputeSegmentCrc(*seg) != seg->crc;
      }
      if (corrupt) {
        next->MarkGroupQuarantined(g);
        newly_quarantined = true;
      }
    }
    if (!newly_quarantined) return Status::OK();
    return catalog->ReplaceTable(name, std::move(next));
  };
  SODA_RETURN_NOT_OK(ScrubTables(tables, publish, report));
  if (dur) SODA_RETURN_NOT_OK(dur->VerifyAndHealCheckpoint(*catalog, report));
  return Status::OK();
}

/// SCRUB: one synchronous integrity pass; the result relation reports
/// what was checked and what was quarantined/healed.
Result<QueryResult> ExecuteScrub(Catalog* catalog, Mutex* write_mu,
                                 DurabilityManager* dur) {
  ScrubReport report;
  SODA_RETURN_NOT_OK(RunScrubPass(catalog, write_mu, dur, &report));
  if (dur) dur->NoteScrubPass();
  auto table = std::make_shared<Table>(
      "scrub", Schema({Field("metric", DataType::kVarchar),
                       Field("value", DataType::kBigInt)}));
  const std::pair<const char*, int64_t> rows[] = {
      {"tables_checked", static_cast<int64_t>(report.tables_checked)},
      {"segments_checked", static_cast<int64_t>(report.segments_checked)},
      {"corrupt_segments", static_cast<int64_t>(report.corrupt_segments)},
      {"quarantined_groups", static_cast<int64_t>(report.quarantined_groups)},
      {"checkpoint_present", report.checkpoint_present ? 1 : 0},
      {"checkpoint_ok", report.checkpoint_ok ? 1 : 0},
      {"checkpoint_rewritten", report.checkpoint_rewritten ? 1 : 0},
  };
  for (const auto& [metric, value] : rows) {
    SODA_RETURN_NOT_OK(
        table->AppendRow({Value::Varchar(metric), Value::BigInt(value)}));
  }
  return QueryResult(std::move(table), ExecStats{});
}

/// CHECKPOINT: persist every table atomically and truncate the WAL.
Result<QueryResult> ExecuteCheckpoint(Catalog* catalog,
                                      DurabilityManager* dur) {
  if (!dur) {
    return Status::InvalidArgument(
        "CHECKPOINT requires a durable engine (set EngineOptions::data_dir "
        "or run soda_shell --data-dir <dir>)");
  }
  SODA_RETURN_NOT_OK(dur->Checkpoint(*catalog));
  return QueryResult();
}

/// EXPLAIN [ANALYZE]: the optimized plan tree plus the physical pipeline
/// decomposition, rendered as a one-column relation, one row per line.
/// With ANALYZE the plan is executed (under the statement's QueryGuard)
/// and every pipeline operator reports rows/chunks/time.
/// Strips the leading EXPLAIN [ANALYZE] keywords from the raw statement
/// text, leaving the SELECT text a bare execution of the same query would
/// present — so EXPLAIN shares the SELECT's plan-cache entry and can
/// report whether the plan was served from cache.
std::string StripExplainPrefix(const std::string& sql) {
  std::string_view s = Trim(sql);
  auto strip_word = [&s](std::string_view word) {
    if (s.size() >= word.size() &&
        EqualsIgnoreCase(s.substr(0, word.size()), word) &&
        (s.size() == word.size() ||
         std::isspace(static_cast<unsigned char>(s[word.size()])))) {
      s = Trim(s.substr(word.size()));
      return true;
    }
    return false;
  };
  if (strip_word("explain")) strip_word("analyze");
  return std::string(s);
}

Result<QueryResult> ExecuteExplain(const SelectStmt& stmt, bool analyze,
                                   Catalog* catalog,
                                   const EngineOptions& options,
                                   DurabilityManager* dur, QueryGuard* guard,
                                   const CacheCtx& cc) {
  // EXPLAIN consults (and fills) the same plan-cache slot the bare SELECT
  // uses, so `EXPLAIN ANALYZE <q>` after `<q>` reports "plan: cached".
  std::shared_ptr<const PlanNode> plan;
  std::string key;
  bool from_cache = false;
  const bool cacheable = cc.plan_cache != nullptr && cc.sql != nullptr;
  if (cacheable) {
    key = PlanCacheKey(StripExplainPrefix(*cc.sql), options.optimize);
    SODA_ASSIGN_OR_RETURN(plan, cc.plan_cache->Lookup(key, *catalog, guard));
    from_cache = plan != nullptr;
  }
  if (plan == nullptr) {
    Binder binder(catalog);
    SODA_ASSIGN_OR_RETURN(PlanPtr fresh, binder.BindSelectStatement(stmt));
    if (options.optimize) {
      fresh = OptimizePlan(std::move(fresh), catalog);
    }
    plan = std::shared_ptr<const PlanNode>(std::move(fresh));
    if (cacheable) {
      CachedPlan entry;
      entry.plan = plan;
      entry.fingerprint = FingerprintPlan(*plan, *catalog, &entry.deps);
      entry.catalog_version = catalog->catalog_version();
      cc.plan_cache->Insert(key, std::move(entry));
    }
  }
  SODA_ASSIGN_OR_RETURN(PhysicalPlan physical, LowerPlan(*plan));
  // EXPLAIN always reports the verifier verdict, even when the session
  // knob is off — it is the cheapest way to audit a suspect plan.
  Status verdict = VerifyPlan(*plan, physical);
  ExecStats stats;
  if (analyze) {
    if (options.verify_plans || kPlanVerifierAlwaysOn) {
      SODA_RETURN_NOT_OK(verdict);
    }
    ExecContext ctx;
    InitExecContext(&ctx, catalog, options, dur, guard, cc);
    ctx.verify_plans = false;  // already verified above
    SODA_RETURN_NOT_OK(physical.Execute(ctx));
    stats = ctx.stats;
  }
  auto table = std::make_shared<Table>(
      "explain", Schema({Field("plan", DataType::kVarchar)}));
  std::string text = plan->ToString();
  if (!text.empty() && text.back() != '\n') text += "\n";
  text += "=== Pipelines ===\n" + physical.ToString(analyze);
  if (!text.empty() && text.back() != '\n') text += "\n";
  text += std::string("plan: ") + (from_cache ? "cached" : "fresh") + "\n";
  if (analyze) {
    text += std::string("join build: ") +
            (stats.recycled_joins > 0 ? "recycled" : "built") + "\n";
  }
  text += verdict.ok() ? "Verifier: OK"
                       : "Verifier: FAILED — " + verdict.ToString();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    SODA_RETURN_NOT_OK(
        table->AppendRow({Value::Varchar(text.substr(start, end - start))}));
    start = end + 1;
  }
  return QueryResult(std::move(table), stats);
}

/// SET soda.<knob> = <value>: mutates the engine-level defaults. Knobs map
/// onto EngineOptions; unknown names and invalid values are rejected with
/// a clean error, leaving the options untouched. The WAL knobs
/// (soda.wal_fsync, soda.wal_group_bytes) additionally apply to the live
/// log immediately.
Result<QueryResult> ExecuteSet(const SetStmt& stmt, EngineOptions* options,
                               DurabilityManager* dur, const CacheCtx& cc) {
  if (stmt.name == "soda.plan_cache") {
    std::string value = stmt.has_text ? ToLower(stmt.text_value) : "";
    if (value != "on" && value != "off") {
      return Status::InvalidArgument(
          "SET soda.plan_cache: expected on or off");
    }
    if (cc.plan_cache) cc.plan_cache->SetEnabled(value == "on");
    return QueryResult();
  }
  if (stmt.name == "soda.wal_fsync") {
    if (!stmt.has_text) {
      return Status::InvalidArgument(
          "SET soda.wal_fsync: expected on, off, or group");
    }
    SODA_ASSIGN_OR_RETURN(WalFsyncMode mode,
                          WalFsyncModeFromString(ToLower(stmt.text_value)));
    options->wal_fsync = mode;
    if (dur) dur->SetFsyncMode(mode, options->wal_group_bytes);
    return QueryResult();
  }
  if (stmt.name == "soda.verify_plans") {
    std::string value = stmt.has_text ? ToLower(stmt.text_value) : "";
    if (value != "on" && value != "off") {
      return Status::InvalidArgument(
          "SET soda.verify_plans: expected on or off");
    }
    options->verify_plans = value == "on";
    return QueryResult();
  }
  if (stmt.name == "soda.encode_segments") {
    std::string value = stmt.has_text ? ToLower(stmt.text_value) : "";
    if (value != "on" && value != "off") {
      return Status::InvalidArgument(
          "SET soda.encode_segments: expected on or off");
    }
    options->encode_segments = value == "on";
    return QueryResult();
  }
  if (stmt.has_text) {
    return Status::InvalidArgument("SET " + stmt.name +
                                   ": expected an integer value");
  }
  if (stmt.value < 0) {
    return Status::InvalidArgument("SET " + stmt.name +
                                   ": value must be >= 0 (0 = unlimited)");
  }
  if (stmt.name == "soda.timeout_ms") {
    options->timeout_ms = stmt.value;
  } else if (stmt.name == "soda.memory_limit_mb") {
    options->memory_limit_bytes = stmt.value * int64_t{1024} * 1024;
  } else if (stmt.name == "soda.max_iterations") {
    if (stmt.value == 0) {
      return Status::InvalidArgument(
          "SET soda.max_iterations: value must be >= 1");
    }
    options->max_iterations = static_cast<size_t>(stmt.value);
  } else if (stmt.name == "soda.wal_group_bytes") {
    if (stmt.value == 0) {
      return Status::InvalidArgument(
          "SET soda.wal_group_bytes: value must be >= 1");
    }
    options->wal_group_bytes = static_cast<size_t>(stmt.value);
    if (dur) dur->SetFsyncMode(options->wal_fsync, options->wal_group_bytes);
  } else if (stmt.name == "soda.wal_auto_checkpoint_mb") {
    options->wal_auto_checkpoint_mb = static_cast<size_t>(stmt.value);
    if (dur) dur->ConfigureMaintenance(MaintenanceFromOptions(*options));
  } else if (stmt.name == "soda.wal_auto_checkpoint_records") {
    options->wal_auto_checkpoint_records = static_cast<size_t>(stmt.value);
    if (dur) dur->ConfigureMaintenance(MaintenanceFromOptions(*options));
  } else if (stmt.name == "soda.scrub_interval_ms") {
    options->scrub_interval_ms = stmt.value;
    if (dur) dur->ConfigureMaintenance(MaintenanceFromOptions(*options));
  } else if (stmt.name == "soda.ht_cache_mb") {
    if (cc.ht_recycler) {
      cc.ht_recycler->SetBudget(static_cast<size_t>(stmt.value) << 20);
    }
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name +
        "' (supported: soda.timeout_ms, soda.memory_limit_mb, "
        "soda.max_iterations, soda.wal_fsync, soda.wal_group_bytes, "
        "soda.verify_plans, soda.encode_segments, "
        "soda.wal_auto_checkpoint_mb, soda.wal_auto_checkpoint_records, "
        "soda.scrub_interval_ms, soda.plan_cache, soda.ht_cache_mb)");
  }
  return QueryResult();
}

// --- PREPARE / EXECUTE / DEALLOCATE (DESIGN.md §11) -----------------------

/// Grows `types` to cover every $n slot the parse tree references
/// (undeclared slots stay kInvalid until inference fills them).
void ScanParseParams(const ParseExpr& e, std::vector<DataType>* types) {
  if (e.kind == ParseExprKind::kParameter && types->size() < e.param_index) {
    types->resize(e.param_index, DataType::kInvalid);
  }
  for (const auto& c : e.children) ScanParseParams(*c, types);
}

/// Deep-clones a parse expression, replacing $n placeholders with literal
/// nodes from `args` (already cast to the declared parameter types).
Result<ParseExprPtr> CloneParseSubst(const ParseExpr& e,
                                     const std::vector<Value>& args) {
  if (e.kind == ParseExprKind::kParameter) {
    if (e.param_index == 0 || e.param_index > args.size()) {
      return Status::InvalidArgument(
          "EXECUTE provides " + std::to_string(args.size()) +
          " parameter(s) but the statement references $" +
          std::to_string(e.param_index));
    }
    auto lit = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
    lit->literal = args[e.param_index - 1];
    return lit;
  }
  auto out = std::make_unique<ParseExpr>(e.kind);
  out->literal = e.literal;
  out->qualifier = e.qualifier;
  out->name = e.name;
  out->binary_op = e.binary_op;
  out->unary_op = e.unary_op;
  out->case_has_else = e.case_has_else;
  out->cast_type = e.cast_type;
  out->lambda_params = e.lambda_params;
  out->source_text = e.source_text;
  out->param_index = e.param_index;
  for (const auto& c : e.children) {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr child, CloneParseSubst(*c, args));
    out->children.push_back(std::move(child));
  }
  return out;
}

/// Binds + optimizes a prepared SELECT body against `catalog`, filling
/// `entry`'s plan, deps, parameter types, and validation version. Used at
/// PREPARE and again whenever EXECUTE finds the dependencies stale.
Status BindPreparedSelect(PreparedStatement* entry, Catalog* catalog,
                          const EngineOptions& options) {
  Binder binder(catalog);
  binder.set_param_types(&entry->param_types);
  SODA_ASSIGN_OR_RETURN(PlanPtr plan,
                        binder.BindSelectStatement(*entry->body->select));
  if (options.optimize) {
    plan = OptimizePlan(std::move(plan), catalog);
  }
  entry->plan = std::shared_ptr<const PlanNode>(std::move(plan));
  entry->deps.clear();
  FingerprintPlan(*entry->plan, *catalog, &entry->deps);
  entry->catalog_version = catalog->catalog_version();
  return Status::OK();
}

/// PREPARE name [(types)] AS body: resolves parameter types now (declared
/// list, then inference from the body), binds SELECT bodies to an
/// optimized parameterized plan, and registers the result. Re-preparing
/// an existing name replaces it (divergence from Postgres' error — it
/// keeps the shell's shed-retry loop idempotent).
Result<QueryResult> ExecutePrepare(PrepareStmt& stmt, Catalog* catalog,
                                   const EngineOptions& options,
                                   const CacheCtx& cc) {
  if (cc.prepared == nullptr) {
    return Status::InvalidArgument(
        "PREPARE requires an engine-managed session");
  }
  if (stmt.body == nullptr) {
    return Status::Internal("PREPARE without a body");
  }
  auto entry = std::make_shared<PreparedStatement>();
  entry->name = ToLower(stmt.name);
  entry->param_types = stmt.param_types;
  entry->body = std::shared_ptr<const Statement>(std::move(stmt.body));
  if (entry->body->kind == StatementKind::kSelect) {
    SODA_RETURN_NOT_OK(BindPreparedSelect(entry.get(), catalog, options));
  } else if (entry->body->kind == StatementKind::kInsert) {
    const InsertStmt& ins = *entry->body->insert;
    for (const auto& row : ins.values_rows) {
      for (const auto& cell : row) ScanParseParams(*cell, &entry->param_types);
    }
    // Undeclared parameters standing directly in a VALUES cell take the
    // target column's type; nested occurrences ($1 + 1) stay untyped and
    // pass through uncast (the INSERT path coerces on append).
    Result<TablePtr> t = catalog->GetTable(ins.table);
    if (t.ok()) {
      const Schema& schema = (*t)->schema();
      for (const auto& row : ins.values_rows) {
        for (size_t c = 0; c < row.size() && c < schema.num_fields(); ++c) {
          if (row[c]->kind != ParseExprKind::kParameter) continue;
          DataType& slot = entry->param_types[row[c]->param_index - 1];
          if (slot == DataType::kInvalid) slot = schema.field(c).type;
        }
      }
    }
  } else {
    return Status::InvalidArgument(
        "PREPARE supports SELECT and INSERT statements only");
  }
  cc.prepared->Put(std::move(entry));
  return QueryResult();
}

/// Evaluates EXECUTE's constant arguments and casts each to the prepared
/// statement's parameter type. Arity and cast failures are reported with
/// the 1-based slot number.
Result<std::vector<Value>> EvaluateExecuteArgs(const ExecuteStmt& stmt,
                                               const PreparedStatement& prep,
                                               Catalog* catalog) {
  if (stmt.args.size() != prep.param_types.size()) {
    return Status::InvalidArgument(
        "prepared statement '" + prep.name + "' expects " +
        std::to_string(prep.param_types.size()) + " parameter(s), got " +
        std::to_string(stmt.args.size()));
  }
  Binder binder(catalog);
  std::vector<Value> args;
  args.reserve(stmt.args.size());
  for (size_t i = 0; i < stmt.args.size(); ++i) {
    SODA_ASSIGN_OR_RETURN(ExprPtr bound,
                          binder.BindScalar(*stmt.args[i], Schema()));
    SODA_ASSIGN_OR_RETURN(Value v, EvaluateConstantExpression(*bound));
    const DataType want = prep.param_types[i];
    if (want != DataType::kInvalid) {
      Result<Value> cast = v.CastTo(want);
      if (!cast.ok()) {
        return Status::TypeError("parameter $" + std::to_string(i + 1) +
                                 ": " + cast.status().message());
      }
      v = std::move(cast.ValueOrDie());
    }
    args.push_back(std::move(v));
  }
  return args;
}

/// EXECUTE name [(args)]: SELECT bodies clone the prepared plan and
/// substitute literals — skipping lex/parse/bind/optimize; when a
/// dependency went stale (DML/DDL republished a table) the body is
/// transparently re-bound first. INSERT bodies clone the VALUES parse
/// rows with parameters substituted and run the normal INSERT path.
Result<QueryResult> ExecuteExecute(const ExecuteStmt& stmt, Catalog* catalog,
                                   const EngineOptions& options,
                                   DurabilityManager* dur, QueryGuard* guard,
                                   const CacheCtx& cc) {
  if (cc.prepared == nullptr) {
    return Status::InvalidArgument(
        "EXECUTE requires an engine-managed session");
  }
  PreparedPtr prep = cc.prepared->Get(ToLower(stmt.name));
  if (prep == nullptr) {
    return Status::KeyError("unknown prepared statement: " +
                            ToLower(stmt.name));
  }
  SODA_ASSIGN_OR_RETURN(std::vector<Value> args,
                        EvaluateExecuteArgs(stmt, *prep, catalog));
  if (prep->body->kind == StatementKind::kSelect) {
    if (prep->catalog_version != catalog->catalog_version() &&
        !DepsStillValid(prep->deps, *catalog)) {
      auto fresh = std::make_shared<PreparedStatement>(*prep);
      fresh->param_types = prep->param_types;
      SODA_RETURN_NOT_OK(BindPreparedSelect(fresh.get(), catalog, options));
      cc.prepared->Put(fresh);
      prep = std::move(fresh);
    }
    PlanPtr instance = prep->plan->Clone();
    SODA_RETURN_NOT_OK(SubstituteParams(instance.get(), args));
    ExecContext ctx;
    InitExecContext(&ctx, catalog, options, dur, guard, cc);
    SODA_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(*instance, ctx));
    return QueryResult(std::move(result), ctx.stats);
  }
  const InsertStmt& ins = *prep->body->insert;
  if (ins.values_rows.empty()) {
    // INSERT .. SELECT body: nothing to substitute (parameters inside the
    // select are rejected at bind time), execute the stored AST directly.
    return ExecuteInsert(ins, catalog, options, dur, guard,
                         InnerCacheCtx(cc));
  }
  InsertStmt sub;
  sub.table = ins.table;
  sub.values_rows.reserve(ins.values_rows.size());
  for (const auto& row : ins.values_rows) {
    std::vector<ParseExprPtr> out;
    out.reserve(row.size());
    for (const auto& cell : row) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr e, CloneParseSubst(*cell, args));
      out.push_back(std::move(e));
    }
    sub.values_rows.push_back(std::move(out));
  }
  return ExecuteInsert(sub, catalog, options, dur, guard, InnerCacheCtx(cc));
}

Result<QueryResult> ExecuteDeallocate(const DeallocateStmt& stmt,
                                      const CacheCtx& cc) {
  if (cc.prepared == nullptr) {
    return Status::InvalidArgument(
        "DEALLOCATE requires an engine-managed session");
  }
  SODA_RETURN_NOT_OK(cc.prepared->Remove(ToLower(stmt.name)));
  return QueryResult();
}

Result<QueryResult> ExecuteStatement(Statement& stmt, Catalog* catalog,
                                     const EngineOptions& options,
                                     DurabilityManager* dur,
                                     QueryGuard* guard, const CacheCtx& cc) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(stmt.select.get(), catalog, options, dur, guard,
                           cc);
    case StatementKind::kCreateTable:
      return ExecuteCreate(*stmt.create_table, catalog, options, dur, guard,
                           cc);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert, catalog, options, dur, guard, cc);
    case StatementKind::kDropTable:
      return ExecuteDrop(*stmt.drop_table, catalog, dur);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update, catalog, options, dur, guard);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del, catalog, options, dur, guard);
    case StatementKind::kExplain:
      return ExecuteExplain(*stmt.select, stmt.explain_analyze, catalog,
                            options, dur, guard, cc);
    case StatementKind::kCheckpoint: {
      Result<QueryResult> r = ExecuteCheckpoint(catalog, dur);
      if (r.ok()) {
        // CHECKPOINT doubles as the operator's "drop all caches" lever;
        // correctness never depends on it (fingerprints embed versions),
        // but it gives tests and ops a deterministic cold state.
        if (cc.ht_recycler) cc.ht_recycler->EvictAll();
        if (cc.plan_cache) cc.plan_cache->Clear();
      }
      return r;
    }
    case StatementKind::kPrepare:
      return ExecutePrepare(*stmt.prepare, catalog, options, cc);
    case StatementKind::kExecute:
      return ExecuteExecute(*stmt.execute, catalog, options, dur, guard, cc);
    case StatementKind::kDeallocate:
      return ExecuteDeallocate(*stmt.deallocate, cc);
    case StatementKind::kSet:
      return Status::Internal("SET must be handled by the engine");
    case StatementKind::kScrub:
      // Like SET: dispatched by RunGoverned before the write lock is
      // taken — the scrub publisher acquires it itself.
      return Status::Internal("SCRUB must be handled by the engine");
  }
  return Status::Internal("unknown statement kind");
}

/// One statement under a fresh QueryGuard built from the session (or
/// engine) defaults overlaid with per-call ExecOptions. The guard is
/// installed as the calling thread's MemoryScope so storage appends are
/// charged; the guard-aware ParallelFor extends the scope to worker
/// threads.
Result<QueryResult> RunGoverned(Statement& stmt, Catalog* catalog,
                                Mutex* write_mu,
                                EngineOptions* engine_options,
                                DurabilityManager* dur,
                                const ExecOptions& exec, const CacheCtx& cc) {
  // The session's SET state, when present, shadows the engine-global
  // options for both reads (effective limits) and writes (SET).
  EngineOptions* base =
      exec.session_options ? exec.session_options : engine_options;
  if (stmt.kind == StatementKind::kSet) {
    return ExecuteSet(*stmt.set, base, dur, cc);
  }
  if (stmt.kind == StatementKind::kScrub) {
    // Not under the write lock: the CRC sweep is read-only over pinned
    // table versions, and the quarantine publisher takes write_mu itself
    // for each copy-on-write swap.
    return ExecuteScrub(catalog, write_mu, dur);
  }
  EngineOptions effective = *base;
  if (exec.max_iterations >= 0) {
    effective.max_iterations = static_cast<size_t>(exec.max_iterations);
  }
  QueryLimits limits;
  limits.timeout_ms = exec.timeout_ms >= 0 ? exec.timeout_ms : base->timeout_ms;
  limits.memory_limit_bytes = exec.memory_limit_bytes >= 0
                                  ? exec.memory_limit_bytes
                                  : base->memory_limit_bytes;
  QueryGuard guard(limits, exec.cancel ? exec.cancel->token() : nullptr);
  QueryGuard::MemoryScope scope(&guard);
  // Probe once before any work so a pre-cancelled handle (or an already
  // expired deadline) aborts even plans that touch no other probe site,
  // e.g. a bare table scan that returns the catalog table directly.
  SODA_RETURN_NOT_OK(guard.Check("exec.statement"));

  // EXECUTE routes by the prepared body's kind: SELECT bodies are snapshot
  // reads, INSERT bodies must serialize with other writers. An unknown
  // name falls through to the read path and errors there.
  bool execute_is_write = false;
  if (stmt.kind == StatementKind::kExecute && cc.prepared != nullptr) {
    PreparedPtr prep = cc.prepared->Get(ToLower(stmt.execute->name));
    execute_is_write =
        prep != nullptr && prep->body->kind == StatementKind::kInsert;
  }

  if (stmt.kind == StatementKind::kSelect ||
      stmt.kind == StatementKind::kExplain ||
      stmt.kind == StatementKind::kPrepare ||
      stmt.kind == StatementKind::kDeallocate ||
      (stmt.kind == StatementKind::kExecute && !execute_is_write)) {
    // Snapshot read: pin every table's current version for the whole
    // statement. Concurrent DML swaps in new versions without disturbing
    // us, and a statement scanning one table twice (self-join, CTE reuse)
    // sees exactly one version. Readers take no lock beyond the O(#tables)
    // map copy.
    Catalog snapshot;
    catalog->SnapshotInto(&snapshot);
    return ExecuteStatement(stmt, &snapshot, effective, dur, &guard, cc);
  }

  // Write statements are read-modify-swap over table versions; serialize
  // them so concurrent UPDATEs cannot lose each other's swap. Lock order:
  // write_mu_ → commit_mu_ → leaf mutexes (see engine.h).
  MutexLock write_lock(write_mu);
  return ExecuteStatement(stmt, catalog, effective, dur, &guard, cc);
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  // Any catalog change (DML/DDL/quarantine/recovery replay) invalidates
  // recycled hash tables built over that table. Installed before recovery
  // so replayed writes also flow through (harmless on the empty cache).
  // The listener fires outside Catalog::mu_, and HtRecycler::mu_ is a
  // leaf, so this cannot deadlock (see the lock order in engine.h).
  catalog_.SetChangeListener(
      [this](const std::string& table) { ht_recycler_.InvalidateTable(table); });
  if (options_.data_dir.empty()) return;
  Result<std::unique_ptr<DurabilityManager>> dur = DurabilityManager::Open(
      options_.data_dir, &catalog_, options_.wal_fsync,
      options_.wal_group_bytes);
  if (!dur.ok()) {
    startup_status_ = dur.status();
    return;
  }
  durability_ = std::move(dur.ValueOrDie());
  durability_->StartMaintenance(&catalog_, MaintenanceFromOptions(options_),
                                [this] {
                                  ScrubReport report;
                                  return RunScrub(&report);
                                });
}

Engine::~Engine() {
  // Members destroy in reverse declaration order, so write_mu_ (and the
  // catalog the scrub closure captures) would be gone before durability_.
  // Stop the maintenance thread while everything it touches is alive.
  if (durability_) durability_->StopMaintenance();
}

Status Engine::RunScrub(ScrubReport* report) {
  SODA_RETURN_NOT_OK(startup_status_);
  return RunScrubPass(&catalog_, &write_mu_, durability_.get(), report);
}

Result<QueryResult> Engine::Execute(const std::string& sql) {
  return Execute(sql, ExecOptions{});
}

Result<QueryResult> Engine::Execute(const std::string& sql,
                                    const ExecOptions& exec) {
  SODA_RETURN_NOT_OK(startup_status_);
  CacheCtx cc;
  cc.plan_cache = &plan_cache_;
  cc.ht_recycler = &ht_recycler_;
  cc.prepared = exec.prepared ? exec.prepared : &prepared_;
  cc.sql = &sql;
  // Repeated ad-hoc text: an entry under this exact trimmed text proves
  // the statement is a SELECT (only SELECTs are ever inserted), so the
  // lexer and parser are skipped entirely — the read path's real Lookup
  // revalidates the plan against the statement's pinned snapshot, and
  // re-parses lazily if the entry went stale in between (ExecuteSelect).
  if (plan_cache_.Peek(PlanCacheKey(sql, options_.optimize))) {
    Statement select_only;
    select_only.kind = StatementKind::kSelect;
    return RunGoverned(select_only, &catalog_, &write_mu_, &options_,
                       durability_.get(), exec, cc);
  }
  SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return RunGoverned(stmt, &catalog_, &write_mu_, &options_,
                     durability_.get(), exec, cc);
}

Result<QueryResult> Engine::ExecutePrepared(const std::string& name,
                                            const std::vector<Value>& params,
                                            const ExecOptions& exec) {
  SODA_RETURN_NOT_OK(startup_status_);
  // Synthesize the EXECUTE AST directly from the typed values — the whole
  // point of the wire fast path is that no SQL text exists to lex/parse.
  Statement stmt;
  stmt.kind = StatementKind::kExecute;
  stmt.execute = std::make_unique<ExecuteStmt>();
  stmt.execute->name = name;
  stmt.execute->args.reserve(params.size());
  for (const Value& v : params) {
    auto lit = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
    lit->literal = v;
    stmt.execute->args.push_back(std::move(lit));
  }
  CacheCtx cc;
  cc.plan_cache = &plan_cache_;
  cc.ht_recycler = &ht_recycler_;
  cc.prepared = exec.prepared ? exec.prepared : &prepared_;
  return RunGoverned(stmt, &catalog_, &write_mu_, &options_,
                     durability_.get(), exec, cc);
}

Result<QueryResult> Engine::ExecuteScript(const std::string& sql) {
  SODA_RETURN_NOT_OK(startup_status_);
  SODA_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return QueryResult();
  QueryResult last;
  for (auto& stmt : stmts) {
    // Script statements skip the plan cache (no per-statement SQL text is
    // recovered from the split); PREPARE/EXECUTE still work.
    CacheCtx cc;
    cc.ht_recycler = &ht_recycler_;
    cc.prepared = &prepared_;
    // SET takes effect for the remaining statements of the script.
    Result<QueryResult> r =
        RunGoverned(stmt, &catalog_, &write_mu_, &options_,
                    durability_.get(), ExecOptions{}, cc);
    SODA_RETURN_NOT_OK(r.status());
    last = std::move(r.ValueOrDie());
  }
  return last;
}

Result<std::string> Engine::Explain(const std::string& sql) {
  SODA_RETURN_NOT_OK(startup_status_);
  SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements only");
  }
  Binder binder(&catalog_);
  SODA_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelectStatement(*stmt.select));
  if (options_.optimize) {
    plan = OptimizePlan(std::move(plan), &catalog_);
  }
  SODA_ASSIGN_OR_RETURN(PhysicalPlan physical, LowerPlan(*plan));
  std::string text = plan->ToString();
  if (!text.empty() && text.back() != '\n') text += "\n";
  text += "=== Pipelines ===\n" + physical.ToString();
  Status verdict = VerifyPlan(*plan, physical);
  text += verdict.ok() ? "Verifier: OK\n"
                       : "Verifier: FAILED — " + verdict.ToString() + "\n";
  return text;
}

}  // namespace soda
