/// \file engine.h
/// soda's public entry point: a main-memory relational engine with
/// integrated data analytics.
///
/// Usage:
///
///   soda::Engine engine;
///   engine.Execute("CREATE TABLE data (x FLOAT, y FLOAT)");
///   engine.Execute("INSERT INTO data VALUES (1.0, 2.0), (3.0, 4.0)");
///   auto result = engine.Execute(
///       "SELECT * FROM KMEANS((SELECT x, y FROM data), "
///       "                     (SELECT x, y FROM data LIMIT 2), "
///       "                     λ(a, b) (a.x-b.x)^2 + (a.y-b.y)^2, 3)");
///
/// The engine executes the paper's full surface: plain SQL (layer 3),
/// recursive CTEs, the non-appending ITERATE construct (§5.1), and the
/// lambda-parameterized analytics operators (§6/§7) — all inside one query
/// plan, freely composable with relational operators.

#ifndef SODA_CORE_ENGINE_H_
#define SODA_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

#include "core/plan_cache.h"
#include "core/query_result.h"
#include "exec/ht_recycler.h"
#include "storage/catalog.h"
#include "storage/durability.h"
#include "storage/scrub.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

struct EngineOptions {
  /// Infinite-loop guard for ITERATE / recursive CTEs (paper §5.1).
  /// SQL: `SET soda.max_iterations = <n>`.
  size_t max_iterations = 100000;
  /// Run the optimizer (disable only for plan-shape tests).
  bool optimize = true;
  /// Wall-clock deadline applied to every statement, in milliseconds;
  /// 0 = unlimited. SQL: `SET soda.timeout_ms = <n>`.
  int64_t timeout_ms = 0;
  /// Cumulative-materialization budget per statement, in bytes;
  /// 0 = unlimited. SQL: `SET soda.memory_limit_mb = <n>`.
  int64_t memory_limit_bytes = 0;
  /// Durability: when non-empty, the engine recovers this directory on
  /// construction (latest checkpoint + WAL tail — see storage/durability.h)
  /// and write-ahead-logs every DDL/DML statement into it. Empty = the
  /// historical volatile engine. A failed recovery surfaces via
  /// `Engine::startup_status()` and poisons every Execute call.
  std::string data_dir;
  /// When WAL records are forced to stable storage.
  /// SQL: `SET soda.wal_fsync = on|off|group`.
  WalFsyncMode wal_fsync = WalFsyncMode::kOn;
  /// Group-commit batching threshold (wal_fsync = group): fsync once per
  /// this many logged bytes. SQL: `SET soda.wal_group_bytes = <n>`.
  size_t wal_group_bytes = size_t{1} << 20;
  /// Run the static plan verifier (exec/plan_verifier.h) before executing
  /// every lowered plan. O(plan size) per statement, so it stays on by
  /// default; debug builds verify even when this is off.
  /// SQL: `SET soda.verify_plans = on|off`.
  bool verify_plans = true;
  /// Seal DML results of >= kSealMinRows rows into encoded columnar
  /// segments (storage/segment.h). Partitioned tables seal regardless —
  /// partition pruning needs the clustered layout. Off = keep every table
  /// flat (ablation / debugging). SQL: `SET soda.encode_segments = on|off`.
  bool encode_segments = true;
  /// Auto-checkpoint when the WAL exceeds this many megabytes (0 = off).
  /// Runs on the background maintenance thread; the checkpoint rotates
  /// the log, so sustained DML keeps the WAL bounded.
  /// SQL: `SET soda.wal_auto_checkpoint_mb = <n>`.
  size_t wal_auto_checkpoint_mb = 0;
  /// ... or when the WAL holds this many records (0 = off).
  /// SQL: `SET soda.wal_auto_checkpoint_records = <n>`.
  size_t wal_auto_checkpoint_records = 0;
  /// Periodic background scrub cadence in milliseconds (0 = off; run
  /// SCRUB manually). SQL: `SET soda.scrub_interval_ms = <n>`.
  int64_t scrub_interval_ms = 0;
};

/// Thread-safe cancellation handle. Create one, pass it via
/// `ExecOptions::cancel`, and call `Cancel()` from any thread: the running
/// statement aborts with kCancelled at its next probe (morsel boundary,
/// iteration step, or storage append). Reusable across statements; once
/// tripped it stays tripped.
class CancelHandle {
 public:
  CancelHandle() : token_(std::make_shared<CancelToken>()) {}

  void Cancel() const { token_->Cancel(); }
  bool cancelled() const { return token_->cancelled(); }

  const std::shared_ptr<CancelToken>& token() const { return token_; }

 private:
  std::shared_ptr<CancelToken> token_;
};

/// Per-call execution options for Engine::Execute. Numeric fields default
/// to -1 = inherit the engine-level setting (EngineOptions / SET soda.*);
/// 0 means explicitly unlimited.
struct ExecOptions {
  int64_t timeout_ms = -1;
  int64_t memory_limit_bytes = -1;
  int64_t max_iterations = -1;
  /// Optional external cancellation; must outlive the Execute call.
  const CancelHandle* cancel = nullptr;
  /// Per-session options (the session's SET state). When set, the
  /// statement reads its defaults from here instead of the engine-global
  /// options, and a SET statement writes here — so one server session's
  /// knobs never leak into another's. The caller owns the object, must
  /// keep it alive through the call, and must not run two statements
  /// with the same session_options concurrently (the network server's
  /// one-statement-per-connection loop guarantees this).
  EngineOptions* session_options = nullptr;
  /// Per-session prepared statements (PREPARE/EXECUTE/DEALLOCATE). When
  /// set, the statement resolves names here; null uses the engine-global
  /// registry (single-process embedding). The network server gives each
  /// session its own registry so one connection's statements are
  /// invisible to another's, and harvests it with the session.
  PreparedRegistry* prepared = nullptr;
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  /// With `options.data_dir` set, construction recovers the directory's
  /// checkpoint + WAL tail into the catalog; check `startup_status()`.
  explicit Engine(EngineOptions options);
  ~Engine();

  /// Executes one SQL statement (SELECT / CREATE TABLE / INSERT / DROP /
  /// UPDATE / DELETE / EXPLAIN / SET).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes one statement under per-call resource limits. A tripped
  /// limit surfaces as a clean Status (kCancelled / kDeadlineExceeded /
  /// kResourceExhausted); the catalog stays usable afterwards.
  ///
  /// Thread safety: Execute may be called from many threads at once
  /// (the network server does). Reads (SELECT / EXPLAIN) pin a catalog
  /// snapshot and never block; writers (DDL / DML / CHECKPOINT)
  /// serialize on an internal statement lock, so concurrent UPDATEs
  /// cannot lose each other's copy-on-write swaps. Engine-global SET
  /// from concurrent callers is NOT synchronized — concurrent sessions
  /// must use ExecOptions::session_options.
  Result<QueryResult> Execute(const std::string& sql,
                              const ExecOptions& exec);

  /// Executes a prepared statement directly from typed parameter values —
  /// no SQL text, no lexing or parsing. This is the network server's
  /// kExecutePrepared entry point; `name` resolves in
  /// `exec.prepared` (or the engine-global registry when null).
  Result<QueryResult> ExecutePrepared(const std::string& name,
                                      const std::vector<Value>& params,
                                      const ExecOptions& exec);

  /// Executes a ';'-separated script, discarding intermediate results;
  /// returns the last statement's result. SET statements take effect for
  /// the remainder of the script (and the engine's lifetime).
  Result<QueryResult> ExecuteScript(const std::string& sql);

  /// Returns the optimized plan tree for a SELECT (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// Direct catalog access for bulk loading (see bench_support/workloads).
  /// Tables registered this way are NOT write-ahead-logged; run CHECKPOINT
  /// to persist them on a durable engine.
  Catalog& catalog() { return catalog_; }

  EngineOptions& options() { return options_; }

  /// Non-OK when construction-time recovery failed (unreadable data_dir,
  /// corrupt checkpoint). Every Execute call returns this status until the
  /// engine is rebuilt with a usable data_dir.
  const Status& startup_status() const { return startup_status_; }

  /// Null for volatile engines (no data_dir).
  DurabilityManager* durability() { return durability_.get(); }

  /// Runs one full scrub pass synchronously (the SQL `SCRUB` statement
  /// and the background maintenance thread both land here): re-verifies
  /// every sealed segment's CRC, quarantines corrupt row groups
  /// (copy-on-write under the statement lock), and — on a durable engine
  /// — verifies the at-rest checkpoint, rewriting it from memory when
  /// damaged. Safe to call concurrently with queries and DML.
  Status RunScrub(ScrubReport* report);

  /// Repeated-traffic caches (DESIGN.md §11): memoized optimized plans
  /// keyed by SQL text, and completed join build hash tables keyed by
  /// build-fragment fingerprint. Exposed for tests and benchmarks (cold
  /// runs call Clear()/EvictAll()).
  PlanCache& plan_cache() { return plan_cache_; }
  HtRecycler& ht_recycler() { return ht_recycler_; }
  /// The engine-global prepared-statement registry (used when
  /// ExecOptions::prepared is null).
  PreparedRegistry& prepared_statements() { return prepared_; }

 private:
  Catalog catalog_;
  EngineOptions options_;
  std::unique_ptr<DurabilityManager> durability_;
  Status startup_status_;
  /// Serializes write statements (DDL/DML/CHECKPOINT): each one is a
  /// read-modify-swap over catalog table versions, so two running at
  /// once would lose one of the swaps. Held across the whole statement.
  /// Lock order: write_mu_ → DurabilityManager::commit_mu_ → leaf
  /// mutexes (Wal::mu_, Catalog::mu_, PlanCache::mu_, HtRecycler::mu_,
  /// PreparedRegistry::mu_). The cache mutexes are leaves: no callback,
  /// catalog call, or I/O runs under them. See DESIGN.md §7/§11.
  Mutex write_mu_;
  PlanCache plan_cache_;
  HtRecycler ht_recycler_;
  PreparedRegistry prepared_;
};

}  // namespace soda

#endif  // SODA_CORE_ENGINE_H_
