/// \file engine.h
/// soda's public entry point: a main-memory relational engine with
/// integrated data analytics.
///
/// Usage:
///
///   soda::Engine engine;
///   engine.Execute("CREATE TABLE data (x FLOAT, y FLOAT)");
///   engine.Execute("INSERT INTO data VALUES (1.0, 2.0), (3.0, 4.0)");
///   auto result = engine.Execute(
///       "SELECT * FROM KMEANS((SELECT x, y FROM data), "
///       "                     (SELECT x, y FROM data LIMIT 2), "
///       "                     λ(a, b) (a.x-b.x)^2 + (a.y-b.y)^2, 3)");
///
/// The engine executes the paper's full surface: plain SQL (layer 3),
/// recursive CTEs, the non-appending ITERATE construct (§5.1), and the
/// lambda-parameterized analytics operators (§6/§7) — all inside one query
/// plan, freely composable with relational operators.

#ifndef SODA_CORE_ENGINE_H_
#define SODA_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "core/query_result.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace soda {

struct EngineOptions {
  /// Infinite-loop guard for ITERATE / recursive CTEs (paper §5.1).
  size_t max_iterations = 100000;
  /// Run the optimizer (disable only for plan-shape tests).
  bool optimize = true;
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(EngineOptions options) : options_(options) {}

  /// Executes one SQL statement (SELECT / CREATE TABLE / INSERT / DROP).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated script, discarding intermediate results;
  /// returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& sql);

  /// Returns the optimized plan tree for a SELECT (EXPLAIN).
  Result<std::string> Explain(const std::string& sql);

  /// Direct catalog access for bulk loading (see bench_support/workloads).
  Catalog& catalog() { return catalog_; }

  EngineOptions& options() { return options_; }

 private:
  Catalog catalog_;
  EngineOptions options_;
};

}  // namespace soda

#endif  // SODA_CORE_ENGINE_H_
