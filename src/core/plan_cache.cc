#include "core/plan_cache.h"

namespace soda {

bool DepsStillValid(const std::vector<PlanDependency>& deps,
                    const Catalog& snapshot) {
  for (const PlanDependency& d : deps) {
    Result<TablePtr> t = snapshot.GetTable(d.table);
    if (!t.ok()) return false;
    if ((*t)->version() != d.version) return false;
    // Version equality pins the exact published incarnation, and a
    // quarantine publishes through ReplaceTable (fresh version) — but a
    // cached artifact bypassing CheckReadable must never survive a
    // quarantine, so re-check explicitly.
    if ((*t)->quarantined()) return false;
    if (HashSchema((*t)->schema()) != d.schema_hash) return false;
  }
  return true;
}

Result<std::shared_ptr<const PlanNode>> PlanCache::Lookup(
    const std::string& key, const Catalog& snapshot, QueryGuard* guard) {
  // Inline literal so lint rule 5 ties this probe to the registry.
  SODA_RETURN_NOT_OK(GuardProbe(guard, "cache.plan_lookup"));
  MutexLock lock(&mu_);
  if (!enabled_) return std::shared_ptr<const PlanNode>();
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::shared_ptr<const PlanNode>();
  }
  CachedPlan& entry = it->second->entry;
  if (entry.catalog_version != snapshot.catalog_version()) {
    if (!DepsStillValid(entry.deps, snapshot)) {
      lru_.erase(it->second);
      index_.erase(it);
      ++misses_;
      return std::shared_ptr<const PlanNode>();
    }
    // Re-fasten the fast path: the deps hold at this catalog version.
    entry.catalog_version = snapshot.catalog_version();
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return entry.plan;
}

void PlanCache::Insert(const std::string& key, CachedPlan entry) {
  if (entry.plan == nullptr) return;
  for (const PlanDependency& d : entry.deps) {
    if (d.quarantined) return;
  }
  MutexLock lock(&mu_);
  if (!enabled_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (lru_.size() > kPlanCacheMaxEntries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

bool PlanCache::Peek(const std::string& key) const {
  MutexLock lock(&mu_);
  return enabled_ && index_.find(key) != index_.end();
}

void PlanCache::SetEnabled(bool enabled) {
  MutexLock lock(&mu_);
  enabled_ = enabled;
  if (!enabled_) {
    lru_.clear();
    index_.clear();
  }
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(&mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<int64_t>(lru_.size());
  return s;
}

void PreparedRegistry::Put(PreparedPtr stmt) {
  MutexLock lock(&mu_);
  stmts_[stmt->name] = std::move(stmt);
}

PreparedPtr PreparedRegistry::Get(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = stmts_.find(name);
  return it == stmts_.end() ? nullptr : it->second;
}

Status PreparedRegistry::Remove(const std::string& name) {
  MutexLock lock(&mu_);
  if (stmts_.erase(name) == 0) {
    return Status::KeyError("unknown prepared statement: " + name);
  }
  return Status::OK();
}

void PreparedRegistry::Clear() {
  MutexLock lock(&mu_);
  stmts_.clear();
}

size_t PreparedRegistry::size() const {
  MutexLock lock(&mu_);
  return stmts_.size();
}

}  // namespace soda
