/// \file plan_cache.h
/// The plan cache and the prepared-statement registry (DESIGN.md §11).
///
/// Two levels of work-skipping for repeated traffic:
///
///  - `PlanCache` memoizes *ad-hoc* SELECTs: the optimized logical plan,
///    keyed by the statement's trimmed SQL text (+ the optimize flag) and
///    validated against the statement's pinned catalog snapshot through
///    the plan's PlanDependency list (table → publication version). A hit
///    skips lex/parse/bind/optimize; lowering and execution still run per
///    statement (physical plans hold per-run state). Cached plans are
///    shared as `shared_ptr<const PlanNode>` — execution never mutates a
///    logical plan, so concurrent sessions can execute one copy.
///
///  - `PreparedRegistry` holds PREPAREd statements: the parsed AST, the
///    bound parameter types, and (for SELECT bodies) the optimized plan
///    containing kParameter placeholders. EXECUTE clones the plan,
///    substitutes literals, and runs — re-binding transparently when the
///    dependency versions went stale.
///
/// Both structures are engine-owned leaves in the lock order (write_mu_ →
/// commit_mu_ → leaves); sessions may also own a private PreparedRegistry
/// (ExecOptions::prepared) so one connection's statements are invisible
/// to another's.

#ifndef SODA_CORE_PLAN_CACHE_H_
#define SODA_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/plan_fingerprint.h"
#include "sql/ast.h"
#include "sql/logical_plan.h"
#include "storage/catalog.h"
#include "util/mutex.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

/// Entries kept before LRU eviction; plans are small (no data), so a
/// count bound suffices where the hash-table recycler needs bytes.
inline constexpr size_t kPlanCacheMaxEntries = 256;

/// An optimized logical plan plus the facts needed to validate it.
struct CachedPlan {
  std::shared_ptr<const PlanNode> plan;
  uint64_t fingerprint = 0;
  std::vector<PlanDependency> deps;
  /// Catalog version the deps were last validated against (fast path:
  /// a snapshot at the same version needs no per-table checks).
  uint64_t catalog_version = 0;
};

class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;
  };

  /// Looks up `key` and validates the entry against `snapshot` (the
  /// statement's pinned catalog snapshot). Probes `guard` (may be null)
  /// under "cache.plan_lookup". Stale entries are evicted and count as
  /// misses. Returns nullptr on miss.
  Result<std::shared_ptr<const PlanNode>> Lookup(const std::string& key,
                                                 const Catalog& snapshot,
                                                 QueryGuard* guard);

  /// Inserts (or replaces) an entry; refused when any dependency is
  /// quarantined. Evicts the least-recently-used entry beyond the bound.
  void Insert(const std::string& key, CachedPlan entry);

  /// True when `key` has an entry right now, with no validation, no LRU
  /// touch, and no counter movement. Only SELECT statements are ever
  /// inserted, so a Peek hit proves the keyed text is a SELECT — the
  /// engine uses that to skip lex/parse for repeated ad-hoc text before
  /// the real (validated, counted) Lookup runs against the statement's
  /// pinned snapshot.
  bool Peek(const std::string& key) const;

  /// Enables/disables the cache (SET soda.plan_cache = on|off);
  /// disabling clears it. Lookups miss while disabled.
  void SetEnabled(bool enabled);

  void Clear();

  Stats stats() const;

 private:
  struct Slot {
    std::string key;
    CachedPlan entry;
  };

  mutable Mutex mu_;
  bool enabled_ SODA_GUARDED_BY(mu_) = true;
  /// MRU at front.
  std::list<Slot> lru_ SODA_GUARDED_BY(mu_);
  std::map<std::string, std::list<Slot>::iterator> index_
      SODA_GUARDED_BY(mu_);
  int64_t hits_ SODA_GUARDED_BY(mu_) = 0;
  int64_t misses_ SODA_GUARDED_BY(mu_) = 0;
};

/// Validates a dependency list against a catalog snapshot: every table
/// must still exist at the recorded publication version and carry no
/// quarantine. Shared by the plan cache and EXECUTE's staleness check.
bool DepsStillValid(const std::vector<PlanDependency>& deps,
                    const Catalog& snapshot);

/// One PREPAREd statement. Immutable after registration; re-preparation
/// (stale plan, re-PREPARE of the same name) replaces the registry slot.
struct PreparedStatement {
  std::string name;
  /// The parsed body (kSelect or kInsert). Shared so EXECUTE can hold it
  /// across a registry replacement.
  std::shared_ptr<const Statement> body;
  /// Parameter types by 1-based slot, resolved at PREPARE time.
  std::vector<DataType> param_types;
  /// SELECT bodies: the optimized plan with kParameter placeholders and
  /// its dependencies (at `catalog_version`). Null for INSERT bodies.
  std::shared_ptr<const PlanNode> plan;
  std::vector<PlanDependency> deps;
  uint64_t catalog_version = 0;
};

using PreparedPtr = std::shared_ptr<const PreparedStatement>;

/// Name → prepared statement. PREPARE of an existing name replaces it
/// (documented divergence from Postgres' error: it keeps shell retry
/// loops idempotent).
class PreparedRegistry {
 public:
  void Put(PreparedPtr stmt);
  /// Null when unknown.
  PreparedPtr Get(const std::string& name) const;
  Status Remove(const std::string& name);
  void Clear();
  size_t size() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, PreparedPtr> stmts_ SODA_GUARDED_BY(mu_);
};

}  // namespace soda

#endif  // SODA_CORE_PLAN_CACHE_H_
