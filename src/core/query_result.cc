#include "core/query_result.h"

namespace soda {

std::string QueryResult::ToString(size_t max_rows) const {
  if (!table_) return "(no result)\n";
  return table_->ToString(max_rows);
}

}  // namespace soda
