/// \file query_result.h
/// Materialized query results returned by soda::Engine.

#ifndef SODA_CORE_QUERY_RESULT_H_
#define SODA_CORE_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "storage/table.h"

namespace soda {

/// A finished query's result relation plus execution statistics.
class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(TablePtr table, ExecStats stats)
      : table_(std::move(table)), stats_(stats) {}

  /// Number of result rows (0 for DDL/DML statements).
  size_t num_rows() const { return table_ ? table_->num_rows() : 0; }
  size_t num_columns() const { return table_ ? table_->num_columns() : 0; }

  /// The result schema (empty for DDL/DML).
  const Schema& schema() const {
    static const Schema kEmpty;
    return table_ ? table_->schema() : kEmpty;
  }

  /// Cell access (boxed; intended for result consumption, not hot loops).
  Value GetValue(size_t row, size_t col) const {
    return table_->column(col).GetValue(row);
  }

  /// Typed convenience accessors.
  int64_t GetInt(size_t row, size_t col) const {
    return table_->column(col).GetBigInt(row);
  }
  double GetDouble(size_t row, size_t col) const {
    return table_->column(col).GetNumeric(row);
  }
  const std::string& GetString(size_t row, size_t col) const {
    return table_->column(col).GetString(row);
  }
  bool IsNull(size_t row, size_t col) const {
    return table_->column(col).IsNull(row);
  }

  /// Underlying relation (null for DDL/DML).
  const TablePtr& table() const { return table_; }

  /// Execution statistics (iteration counts, materialization accounting).
  const ExecStats& stats() const { return stats_; }

  /// Pretty ASCII rendering of up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  TablePtr table_;
  ExecStats stats_;
};

}  // namespace soda

#endif  // SODA_CORE_QUERY_RESULT_H_
