/// \file aggregate.cc
/// Hash aggregation with thread-local partial states merged at finalize —
/// the structure the paper describes for its analytics operators (§6.1:
/// "Thread synchronization is only needed for the very last steps, global
/// aggregation of the local intermediate results") applied to plain
/// GROUP BY. The "very last step" itself is parallel too: worker group
/// tables are merged by hash radix, one partition per worker, and the
/// result is materialized fragment-wise with bulk column appends.

#include <atomic>
#include <bit>
#include <cmath>

#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/hash_kernels.h"
#include "util/first_error.h"
#include "util/parallel.h"

namespace soda {

namespace {

/// Fault/cancellation site for the finalize-time merge and
/// materialization phases.
constexpr char kAggMergeSite[] = "exec.agg_merge";

/// Grouping equality: unlike joins, NULL groups with NULL.
bool GroupCellsEqual(const Column& a, size_t ra, const Column& b, size_t rb) {
  bool na = a.IsNull(ra), nb = b.IsNull(rb);
  if (na || nb) return na && nb;
  return CellsEqual(a, ra, b, rb);
}

/// One aggregate's accumulator; a single struct covers all supported
/// functions (count/sum/avg/min/max/var/stddev). Integer min/max are
/// tracked exactly alongside the double pair: BIGINT values beyond 2^53
/// round in a double, so `min(x)`/`max(x)` over BIGINT read `imin`/`imax`.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  double sum = 0;
  double sumsq = 0;
  double min = 0;
  double max = 0;

  void UpdateNumeric(double v, int64_t iv) {
    if (count == 0) {
      min = max = v;
      imin = imax = iv;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
      if (iv < imin) imin = iv;
      if (iv > imax) imax = iv;
    }
    ++count;
    isum += iv;
    sum += v;
    sumsq += v * v;
  }

  void Merge(const AggState& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    isum += other.isum;
    sum += other.sum;
    sumsq += other.sumsq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    if (other.imin < imin) imin = other.imin;
    if (other.imax > imax) imax = other.imax;
  }
};

/// Pre-classified update kind for one aggregate spec. The consume loop is
/// the hottest code in a GROUP BY pipeline; dispatching once per spec at
/// sink construction lets each row touch only the accumulator fields its
/// function actually reads at materialization, instead of maintaining the
/// full 8-field AggState for every spec.
enum class AggOp : uint8_t {
  kCountStar,   ///< count(*): unconditional count
  kCountArg,    ///< count(x): count of non-NULL (also any varchar arg)
  kSumInt,      ///< sum over BIGINT: exact integer sum + count
  kSumDouble,   ///< sum over DOUBLE: double sum + count
  kAvg,         ///< avg: double sum + count
  kMinInt,      ///< min over BIGINT: exact integer min + count
  kMinDouble,   ///< min over DOUBLE: double min + count
  kMaxInt,      ///< max over BIGINT: exact integer max + count
  kMaxDouble,   ///< max over DOUBLE: double max + count
  kVar,         ///< var/stddev: sum + sum of squares + count
  kGeneric,     ///< unknown function: maintain everything
};

// --- Compact per-spec accumulators -----------------------------------------
// One struct per AggOp family, holding only the fields that op reads at
// materialization. Groups store their specs' states packed back-to-back in
// one byte block, so a GROUP BY row touches one short run of cache lines
// instead of `num_specs` full 64-byte AggStates — at large group counts the
// consume loop is bound by exactly those misses. Every struct leads with
// `count`, so a spec defensively demoted to kCountArg (varchar argument)
// still writes a valid prefix of whatever layout its slot was given.

struct CountState {
  int64_t count;
};
struct SumIntState {
  int64_t count;
  int64_t isum;
};
struct SumDoubleState {
  int64_t count;
  double sum;
};
struct MinMaxIntState {
  int64_t count;
  int64_t ival;
};
struct MinMaxDoubleState {
  int64_t count;
  double val;
};
struct VarState {
  int64_t count;
  double sum;
  double sumsq;
};

size_t StateSize(AggOp op) {
  switch (op) {
    case AggOp::kCountStar:
    case AggOp::kCountArg:
      return sizeof(CountState);
    case AggOp::kSumInt:
      return sizeof(SumIntState);
    case AggOp::kSumDouble:
    case AggOp::kAvg:
      return sizeof(SumDoubleState);
    case AggOp::kMinInt:
    case AggOp::kMaxInt:
      return sizeof(MinMaxIntState);
    case AggOp::kMinDouble:
    case AggOp::kMaxDouble:
      return sizeof(MinMaxDoubleState);
    case AggOp::kVar:
      return sizeof(VarState);
    case AggOp::kGeneric:
      return sizeof(AggState);
  }
  return sizeof(AggState);
}

/// Byte layout of one group's packed accumulator block. Shared by every
/// GroupTable of a sink (workers and merge fragments alike); owned by the
/// AggregateSink, which outlives them all.
struct StateLayout {
  std::vector<uint32_t> offsets;  ///< per-spec byte offset within a block
  size_t stride = 0;              ///< bytes per group, 8-aligned

  static StateLayout Make(const std::vector<AggOp>& ops) {
    StateLayout l;
    l.offsets.reserve(ops.size());
    size_t off = 0;
    for (AggOp op : ops) {
      l.offsets.push_back(static_cast<uint32_t>(off));
      off += StateSize(op);  // every state size is already 8-aligned
    }
    l.stride = off;
    return l;
  }
};

/// Folds `src` into `dst` (both pointers to the same op's state struct);
/// the merge-side counterpart of the consume switch.
void MergeSpecState(AggOp op, uint8_t* dst, const uint8_t* src) {
  switch (op) {
    case AggOp::kCountStar:
    case AggOp::kCountArg:
      reinterpret_cast<CountState*>(dst)->count +=
          reinterpret_cast<const CountState*>(src)->count;
      break;
    case AggOp::kSumInt: {
      auto* d = reinterpret_cast<SumIntState*>(dst);
      const auto* s = reinterpret_cast<const SumIntState*>(src);
      d->count += s->count;
      d->isum += s->isum;
      break;
    }
    case AggOp::kSumDouble:
    case AggOp::kAvg: {
      auto* d = reinterpret_cast<SumDoubleState*>(dst);
      const auto* s = reinterpret_cast<const SumDoubleState*>(src);
      d->count += s->count;
      d->sum += s->sum;
      break;
    }
    case AggOp::kMinInt:
    case AggOp::kMaxInt: {
      auto* d = reinterpret_cast<MinMaxIntState*>(dst);
      const auto* s = reinterpret_cast<const MinMaxIntState*>(src);
      if (s->count == 0) break;
      if (d->count == 0 || (op == AggOp::kMinInt ? s->ival < d->ival
                                                 : s->ival > d->ival)) {
        d->ival = s->ival;
      }
      d->count += s->count;
      break;
    }
    case AggOp::kMinDouble:
    case AggOp::kMaxDouble: {
      auto* d = reinterpret_cast<MinMaxDoubleState*>(dst);
      const auto* s = reinterpret_cast<const MinMaxDoubleState*>(src);
      if (s->count == 0) break;
      if (d->count == 0 || (op == AggOp::kMinDouble ? s->val < d->val
                                                    : s->val > d->val)) {
        d->val = s->val;
      }
      d->count += s->count;
      break;
    }
    case AggOp::kVar: {
      auto* d = reinterpret_cast<VarState*>(dst);
      const auto* s = reinterpret_cast<const VarState*>(src);
      d->count += s->count;
      d->sum += s->sum;
      d->sumsq += s->sumsq;
      break;
    }
    case AggOp::kGeneric:
      reinterpret_cast<AggState*>(dst)->Merge(
          *reinterpret_cast<const AggState*>(src));
      break;
  }
}

AggOp ClassifyAggOp(const AggregateSpec& spec) {
  if (spec.function == "count") {
    return spec.arg_index < 0 ? AggOp::kCountStar : AggOp::kCountArg;
  }
  const bool int_result = spec.result_type == DataType::kBigInt;
  if (spec.function == "sum") {
    return int_result ? AggOp::kSumInt : AggOp::kSumDouble;
  }
  if (spec.function == "avg") return AggOp::kAvg;
  if (spec.function == "min") {
    return int_result ? AggOp::kMinInt : AggOp::kMinDouble;
  }
  if (spec.function == "max") {
    return int_result ? AggOp::kMaxInt : AggOp::kMaxDouble;
  }
  if (spec.function == "var" || spec.function == "stddev") return AggOp::kVar;
  return AggOp::kGeneric;
}

/// Per-worker (and per-merge-partition) grouping state. The group index is
/// an open-addressing slot array over the columnar MixHash values: the
/// avalanche hash supplies well-distributed bucket bits directly, so a
/// lookup is a masked index plus linear probing — no modulo-prime division
/// and no node/chain pointer chases like the previous
/// `unordered_map<hash, vector<group>>` index paid on every input row. The
/// stored per-group hash (also needed by the radix merge) doubles as a
/// cheap pre-filter so full key comparison only runs on a 64-bit hash
/// match.
struct GroupTable {
  static constexpr size_t kInitialSlots = 1024;  // power of two
  /// High half of a slot word: the key hash's top 32 bits, compared before
  /// touching the group's key row. The probe loop stays within the slot
  /// array on a miss — no dependent load into `hashes` per candidate.
  static constexpr uint64_t kTagMask = 0xFFFFFFFF00000000ull;

  GroupTable(const Schema& key_schema, const StateLayout* layout)
      : keys("keys", key_schema), layout(layout) {
    slots.assign(kInitialSlots, 0);
    i64_keys = true;
    for (size_t c = 0; c < key_schema.num_fields(); ++c) {
      const DataType t = key_schema.field(c).type;
      if (t != DataType::kBigInt && t != DataType::kBool) i64_keys = false;
      key_cols.push_back(&keys.column(c));
    }
  }

  Table keys;  ///< one row per group: the group-by column values
  /// Packed accumulator blocks, group-major: group g's state for spec s
  /// lives at `states[g * layout->stride + layout->offsets[s]]`.
  std::vector<uint8_t> states;
  std::vector<uint64_t> hashes;  ///< per-group combined key hash (radix merge)
  /// Open addressing: `(hash & kTagMask) | (group id + 1)`, 0 = empty. The
  /// inline tag makes a probe a single load; the full key row is only read
  /// on a 32-bit tag match (the key comparison stays authoritative, so a
  /// tag collision just falls through to the next candidate).
  std::vector<uint64_t> slots;
  std::vector<Column*> key_cols;  ///< cached &keys.column(c)
  /// Per-chunk scratch reused across Consume calls — a GROUP BY over N
  /// chunks would otherwise pay N heap round-trips per buffer.
  std::vector<uint64_t> hash_scratch;
  std::vector<uint32_t> group_scratch;
  std::vector<const Column*> col_scratch;
  std::vector<const Column*> arg_scratch;
  std::vector<AggOp> op_scratch;

  const StateLayout* layout;
  /// Every key column is i64-backed (BIGINT/BOOL): the verify loop can
  /// compare raw values inline instead of calling the out-of-line
  /// type-dispatched CellsEqual per candidate.
  bool i64_keys;

  /// Number of groups; robust for the zero-spec (SELECT DISTINCT) case
  /// where the state blocks are empty.
  size_t NumGroups() const {
    return layout->stride ? states.size() / layout->stride : keys.num_rows();
  }

  /// Doubles the slot array and reinserts every group from its stored
  /// hash; keys never need rehashing.
  void GrowSlots() {
    std::vector<uint64_t> next(slots.size() * 2, 0);
    const size_t mask = next.size() - 1;
    for (uint32_t g = 0; g < static_cast<uint32_t>(hashes.size()); ++g) {
      size_t pos = hashes[g] & mask;
      while (next[pos] != 0) pos = (pos + 1) & mask;
      next[pos] = (hashes[g] & kTagMask) | (g + 1);
    }
    slots = std::move(next);
  }

  /// Finds or creates the group matching `(cols, row)`; returns its id.
  /// `hash` must be the HashRows-combined key hash of the row.
  size_t FindOrCreate(uint64_t hash, const std::vector<const Column*>& cols,
                      size_t row) {
    const size_t mask = slots.size() - 1;
    size_t pos = hash & mask;
    const uint64_t tag = hash & kTagMask;
    for (;;) {
      const uint64_t slot = slots[pos];
      if (slot == 0) break;
      if ((slot & kTagMask) == tag) {
        const uint32_t g = static_cast<uint32_t>(slot) - 1;
        bool equal = true;
        if (i64_keys) {
          for (size_t c = 0; c < cols.size(); ++c) {
            const Column& a = *cols[c];
            const Column& b = *key_cols[c];
            const bool na = a.IsNull(row), nb = b.IsNull(g);
            if (na != nb || (!na && a.GetBigInt(row) != b.GetBigInt(g))) {
              equal = false;
              break;
            }
          }
        } else {
          for (size_t c = 0; c < cols.size(); ++c) {
            if (!GroupCellsEqual(*cols[c], row, keys.column(c), g)) {
              equal = false;
              break;
            }
          }
        }
        if (equal) return g;
      }
      pos = (pos + 1) & mask;
    }
    const uint32_t g = static_cast<uint32_t>(NumGroups());
    for (size_t c = 0; c < cols.size(); ++c) {
      keys.column(c).AppendFrom(*cols[c], row);
    }
    states.resize(states.size() + layout->stride);  // zero = empty states
    hashes.push_back(hash);
    slots[pos] = tag | (g + 1);
    // Keep the load factor at or below 1/2 so probe sequences stay short.
    if (hashes.size() * 2 >= slots.size()) GrowSlots();
    return g;
  }
};

class AggregateSink : public TableSink {
 public:
  AggregateSink(const PlanNode& plan, Schema key_schema)
      : plan_(plan), key_schema_(std::move(key_schema)) {
    workers_.resize(NumWorkers());
    ops_.reserve(plan_.aggregates.size());
    for (const auto& spec : plan_.aggregates) {
      ops_.push_back(ClassifyAggOp(spec));
    }
    layout_ = StateLayout::Make(ops_);
  }

  Status Consume(DataChunk& chunk, const SinkContext& sctx) override {
    auto& local = workers_[sctx.worker_id];
    if (!local) {
      local = std::make_unique<GroupTable>(key_schema_, &layout_);
    }
    const size_t g_cols = plan_.num_group_cols;
    const size_t n = chunk.num_rows();
    std::vector<const Column*>& key_cols = local->col_scratch;
    key_cols.resize(g_cols);
    for (size_t c = 0; c < g_cols; ++c) key_cols[c] = &chunk.column(c);

    // Hash the whole chunk's keys up front with the columnar kernels.
    const bool need_hashes = g_cols > 0;
    std::vector<uint64_t>& hashes = local->hash_scratch;
    if (need_hashes) {
      hashes.resize(n);
      HashRows(key_cols, 0, n, hashes.data());
    }

    // Hoist the per-spec argument columns and effective ops out of the row
    // loop. A varchar argument degrades any op to a non-NULL count — only
    // count() is bound for varchar, but the check is per-column, not
    // per-row.
    const size_t num_specs = plan_.aggregates.size();
    std::vector<const Column*>& args = local->arg_scratch;
    std::vector<AggOp>& ops = local->op_scratch;
    args.assign(num_specs, nullptr);
    ops.resize(num_specs);
    for (size_t s = 0; s < num_specs; ++s) {
      ops[s] = ops_[s];
      if (plan_.aggregates[s].arg_index >= 0) {
        args[s] =
            &chunk.column(static_cast<size_t>(plan_.aggregates[s].arg_index));
        if (args[s]->type() == DataType::kVarchar) ops[s] = AggOp::kCountArg;
      }
    }

    // Phase 1 — resolve every row's group id in one tight probe loop.
    // With G groups >> cache, the slot load is a near-guaranteed miss; the
    // chunk's hashes are known up front, so issue the load a few rows early.
    std::vector<uint32_t>& groups = local->group_scratch;
    groups.resize(n);
    constexpr size_t kPrefetchAhead = 8;
    // analyze:allow(guard-probe: n is one morsel chunk; ParallelFor probes exec.morsel)
    for (size_t row = 0; row < n; ++row) {
      if (need_hashes && row + kPrefetchAhead < n) {
        const size_t pmask = local->slots.size() - 1;
        __builtin_prefetch(&local->slots[hashes[row + kPrefetchAhead] & pmask]);
      }
      groups[row] = static_cast<uint32_t>(local->FindOrCreate(
          need_hashes ? hashes[row] : kHashSeed, key_cols, row));
    }
    // Zero aggregates (SELECT DISTINCT): the groups' existence is the
    // whole result, and `states` is empty — indexing it is UB.
    if (num_specs == 0) return Status::OK();

    // Phase 2 — apply the updates row-major (a group's spec states are
    // packed into one contiguous block, so one row touches one short run
    // of lines). The group ids from phase 1 let us prefetch each row's
    // block a few rows ahead — at large group counts those are the misses
    // that dominate the consume loop.
    uint8_t* const states = local->states.data();
    const size_t stride = layout_.stride;
    const uint32_t* const offs = layout_.offsets.data();
    // analyze:allow(guard-probe: n is one morsel chunk; ParallelFor probes exec.morsel)
    for (size_t row = 0; row < n; ++row) {
      if (row + kPrefetchAhead < n) {
        const char* line = reinterpret_cast<const char*>(
            states + groups[row + kPrefetchAhead] * stride);
        __builtin_prefetch(line);
        if (stride > 64) __builtin_prefetch(line + stride - 1);
      }
      uint8_t* const base = states + groups[row] * stride;
      for (size_t s = 0; s < num_specs; ++s) {
        uint8_t* const st = base + offs[s];
        if (ops[s] == AggOp::kCountStar) {
          reinterpret_cast<CountState*>(st)->count++;
          continue;
        }
        const Column& arg = *args[s];
        if (arg.IsNull(row)) continue;  // aggregates skip NULLs
        switch (ops[s]) {
          case AggOp::kCountArg:
            reinterpret_cast<CountState*>(st)->count++;
            break;
          case AggOp::kSumInt: {
            auto* sst = reinterpret_cast<SumIntState*>(st);
            sst->isum += arg.GetBigInt(row);
            sst->count++;
            break;
          }
          case AggOp::kSumDouble:
          case AggOp::kAvg: {
            auto* sst = reinterpret_cast<SumDoubleState*>(st);
            sst->sum += arg.GetNumeric(row);
            sst->count++;
            break;
          }
          case AggOp::kMinInt: {
            auto* sst = reinterpret_cast<MinMaxIntState*>(st);
            const int64_t iv = arg.GetBigInt(row);
            if (sst->count == 0 || iv < sst->ival) sst->ival = iv;
            sst->count++;
            break;
          }
          case AggOp::kMaxInt: {
            auto* sst = reinterpret_cast<MinMaxIntState*>(st);
            const int64_t iv = arg.GetBigInt(row);
            if (sst->count == 0 || iv > sst->ival) sst->ival = iv;
            sst->count++;
            break;
          }
          case AggOp::kMinDouble: {
            auto* sst = reinterpret_cast<MinMaxDoubleState*>(st);
            const double v = arg.GetNumeric(row);
            if (sst->count == 0 || v < sst->val) sst->val = v;
            sst->count++;
            break;
          }
          case AggOp::kMaxDouble: {
            auto* sst = reinterpret_cast<MinMaxDoubleState*>(st);
            const double v = arg.GetNumeric(row);
            if (sst->count == 0 || v > sst->val) sst->val = v;
            sst->count++;
            break;
          }
          case AggOp::kVar: {
            auto* sst = reinterpret_cast<VarState*>(st);
            const double v = arg.GetNumeric(row);
            sst->sum += v;
            sst->sumsq += v * v;
            sst->count++;
            break;
          }
          case AggOp::kCountStar:
            break;  // handled above
          case AggOp::kGeneric: {
            const double v = arg.GetNumeric(row);
            const int64_t iv =
                arg.type() == DataType::kDouble ? 0 : arg.GetBigInt(row);
            reinterpret_cast<AggState*>(st)->UpdateNumeric(v, iv);
            break;
          }
        }
      }
    }
    return Status::OK();
  }

  Status Finalize() override {
    QueryGuard* guard = QueryGuard::Current();
    SODA_RETURN_NOT_OK(GuardProbe(guard, kAggMergeSite));

    std::vector<std::unique_ptr<GroupTable>> locals;
    for (auto& w : workers_) {
      if (w) locals.push_back(std::move(w));
    }
    workers_.clear();
    const size_t num_specs = plan_.aggregates.size();

    // Phase 1 — merge. One producer adopts its table outright; several
    // merge in parallel by hash radix: partition p is owned by exactly one
    // worker, which folds every local's partition-p groups into a fresh
    // fragment (no locks — partitions are disjoint by construction).
    std::vector<std::unique_ptr<GroupTable>> fragments;
    if (locals.size() <= 1) {
      std::unique_ptr<GroupTable> merged =
          locals.empty()
              ? std::make_unique<GroupTable>(key_schema_, &layout_)
              : std::move(locals[0]);
      fragments.push_back(std::move(merged));
    } else {
      const size_t P = std::bit_ceil(
          std::min<size_t>(64, std::max<size_t>(2, NumWorkers())));
      // Bucket every local's groups by partition once, up front.
      std::vector<std::vector<std::vector<uint32_t>>> buckets(locals.size());
      for (size_t l = 0; l < locals.size(); ++l) {
        buckets[l].resize(P);
        const std::vector<uint64_t>& hashes = locals[l]->hashes;
        for (uint32_t g = 0; g < locals[l]->NumGroups(); ++g) {
          buckets[l][hashes[g] & (P - 1)].push_back(g);
        }
      }
      fragments.resize(P);
      FirstError first_error;
      Status par = ParallelFor(
          guard, P,
          [&](size_t begin, size_t end, size_t) {
            for (size_t p = begin; p < end; ++p) {
              if (first_error.failed()) return;
              Status st = GuardProbe(guard, kAggMergeSite);
              if (!st.ok()) {
                first_error.Record(std::move(st));
                return;
              }
              auto frag = std::make_unique<GroupTable>(key_schema_, &layout_);
              for (size_t l = 0; l < locals.size(); ++l) {
                GroupTable& w = *locals[l];
                std::vector<const Column*> cols(w.keys.num_columns());
                for (size_t c = 0; c < cols.size(); ++c) {
                  cols[c] = &w.keys.column(c);
                }
                for (uint32_t g : buckets[l][p]) {
                  size_t target = frag->FindOrCreate(w.hashes[g], cols, g);
                  uint8_t* dst = frag->states.data() + target * layout_.stride;
                  const uint8_t* src = w.states.data() + g * layout_.stride;
                  for (size_t s = 0; s < num_specs; ++s) {
                    MergeSpecState(ops_[s], dst + layout_.offsets[s],
                                   src + layout_.offsets[s]);
                  }
                }
              }
              fragments[p] = std::move(frag);
            }
          },
          /*morsel_size=*/1);
      SODA_RETURN_NOT_OK(first_error.Take());
      SODA_RETURN_NOT_OK(par);
      locals.clear();
    }

    // A global aggregate (no GROUP BY) over empty input still yields one
    // row of "empty" aggregates.
    size_t total_groups = 0;
    for (const auto& f : fragments) {
      if (f) total_groups += f->NumGroups();
    }
    if (plan_.num_group_cols == 0 && total_groups == 0) {
      fragments[0]->states.resize(layout_.stride);
      total_groups = fragments[0]->NumGroups();
    }

    // Phase 2 — materialize, one output fragment per merge fragment
    // (parallel), then splice the fragments together with bulk column
    // appends. Charge the result relation before building it.
    size_t result_bytes = 0;
    for (const auto& f : fragments) {
      if (!f) continue;
      result_bytes += f->keys.MemoryUsage() +
                      f->NumGroups() * num_specs * sizeof(int64_t);
    }
    SODA_RETURN_NOT_OK(GuardReserve(guard, result_bytes, kAggMergeSite));

    std::vector<Table> outputs(fragments.size());
    {
      FirstError first_error;
      Status par = ParallelFor(
          guard, fragments.size(),
          [&](size_t begin, size_t end, size_t) {
            for (size_t p = begin; p < end; ++p) {
              if (first_error.failed()) return;
              if (!fragments[p]) continue;
              Status st = MaterializeFragment(*fragments[p], &outputs[p]);
              if (!st.ok()) {
                first_error.Record(std::move(st));
                return;
              }
            }
          },
          /*morsel_size=*/1);
      SODA_RETURN_NOT_OK(first_error.Take());
      SODA_RETURN_NOT_OK(par);
    }

    // Single fragment (serial pipelines, one producing worker): adopt it
    // as the result instead of re-copying through the splice below.
    size_t nonempty = 0;
    for (const auto& out : outputs) {
      if (out.num_columns() > 0) ++nonempty;
    }
    if (nonempty == 1) {
      for (auto& out : outputs) {
        if (out.num_columns() > 0) {
          result_ = std::make_shared<Table>(std::move(out));
          return Status::OK();
        }
      }
    }
    result_ = std::make_shared<Table>("aggregate", plan_.schema);
    result_->Reserve(total_groups);
    for (const auto& out : outputs) {
      if (out.num_columns() == 0) continue;
      for (size_t c = 0; c < result_->num_columns(); ++c) {
        result_->column(c).AppendSlice(out.column(c), 0, out.num_rows());
      }
    }
    return Status::OK();
  }

  std::string name() const override {
    std::string s = "Aggregate groups=" + std::to_string(plan_.num_group_cols);
    s += " [";
    for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
      if (i) s += ", ";
      const AggregateSpec& spec = plan_.aggregates[i];
      s += spec.function + "(" +
           (spec.arg_index < 0 ? "*" : "#" + std::to_string(spec.arg_index)) +
           ")";
    }
    return s + "]";
  }

  TablePtr result() const override { return result_; }

 private:
  /// Renders one merged fragment into an output table shaped like the
  /// aggregate's schema: keys are spliced column-wise (AppendSlice, not
  /// row-at-a-time AppendFrom), aggregate columns are computed one column
  /// at a time over the packed states.
  Status MaterializeFragment(const GroupTable& frag, Table* out) const {
    const size_t groups = frag.NumGroups();
    *out = Table("aggregate.fragment", plan_.schema);
    out->Reserve(groups);
    for (size_t c = 0; c < plan_.num_group_cols; ++c) {
      out->column(c).AppendSlice(frag.keys.column(c), 0, groups);
    }
    const size_t num_specs = plan_.aggregates.size();
    const size_t stride = layout_.stride;
    for (size_t s = 0; s < num_specs; ++s) {
      const AggregateSpec& spec = plan_.aggregates[s];
      const AggOp op = ops_[s];
      Column& col = out->column(plan_.num_group_cols + s);
      const uint8_t* base = frag.states.data() + layout_.offsets[s];
      for (size_t g = 0; g < groups; ++g) {
        const uint8_t* st = base + g * stride;
        // Every state struct leads with `count`.
        const int64_t count =
            reinterpret_cast<const CountState*>(st)->count;
        if (op == AggOp::kCountStar || op == AggOp::kCountArg) {
          col.AppendBigInt(count);
          continue;
        }
        if (op == AggOp::kGeneric) {
          return Status::Internal("unknown aggregate: " + spec.function);
        }
        if (count == 0) {
          col.AppendNull();
          continue;
        }
        switch (op) {
          case AggOp::kSumInt:
            // BIGINT sum/min/max report the exactly-tracked integers;
            // doubles beyond 2^53 would round (satellite fix, ISSUE 4).
            col.AppendBigInt(
                reinterpret_cast<const SumIntState*>(st)->isum);
            break;
          case AggOp::kSumDouble:
            col.AppendDouble(
                reinterpret_cast<const SumDoubleState*>(st)->sum);
            break;
          case AggOp::kAvg:
            col.AppendDouble(
                reinterpret_cast<const SumDoubleState*>(st)->sum /
                static_cast<double>(count));
            break;
          case AggOp::kMinInt:
          case AggOp::kMaxInt:
            col.AppendBigInt(
                reinterpret_cast<const MinMaxIntState*>(st)->ival);
            break;
          case AggOp::kMinDouble:
          case AggOp::kMaxDouble:
            col.AppendDouble(
                reinterpret_cast<const MinMaxDoubleState*>(st)->val);
            break;
          case AggOp::kVar: {
            if (count < 2) {
              col.AppendNull();
              break;
            }
            const auto* vs = reinterpret_cast<const VarState*>(st);
            double n = static_cast<double>(count);
            double var = (vs->sumsq - vs->sum * vs->sum / n) / (n - 1);
            if (var < 0) var = 0;  // numeric noise
            col.AppendDouble(spec.function == "var" ? var : std::sqrt(var));
            break;
          }
          case AggOp::kCountStar:
          case AggOp::kCountArg:
          case AggOp::kGeneric:
            break;  // handled above
        }
      }
    }
    return Status::OK();
  }

  const PlanNode& plan_;
  Schema key_schema_;
  std::vector<AggOp> ops_;  ///< per-spec update kind, classified once
  StateLayout layout_;      ///< packed state layout shared by all tables
  std::vector<std::unique_ptr<GroupTable>> workers_;
  TablePtr result_;
};

}  // namespace

std::shared_ptr<TableSink> MakeAggregateSink(const PlanNode& plan) {
  std::vector<Field> key_fields(
      plan.children[0]->schema.fields().begin(),
      plan.children[0]->schema.fields().begin() + plan.num_group_cols);
  return std::make_shared<AggregateSink>(plan, Schema(std::move(key_fields)));
}

}  // namespace soda
