/// \file aggregate.cc
/// Hash aggregation with thread-local partial states merged at finalize —
/// the structure the paper describes for its analytics operators (§6.1:
/// "Thread synchronization is only needed for the very last steps, global
/// aggregation of the local intermediate results") applied to plain
/// GROUP BY.

#include <cmath>
#include <unordered_map>

#include "exec/executor.h"
#include "exec/hash_join.h"
#include "util/parallel.h"

namespace soda {

namespace {

/// Grouping equality: unlike joins, NULL groups with NULL.
bool GroupCellsEqual(const Column& a, size_t ra, const Column& b, size_t rb) {
  bool na = a.IsNull(ra), nb = b.IsNull(rb);
  if (na || nb) return na && nb;
  return CellsEqual(a, ra, b, rb);
}

/// One aggregate's accumulator; a single struct covers all supported
/// functions (count/sum/avg/min/max/var/stddev).
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double sum = 0;
  double sumsq = 0;
  double min = 0;
  double max = 0;

  void UpdateNumeric(double v, int64_t iv) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    isum += iv;
    sum += v;
    sumsq += v * v;
  }

  void Merge(const AggState& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    isum += other.isum;
    sum += other.sum;
    sumsq += other.sumsq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// Per-worker (and final) grouping state.
struct GroupTable {
  explicit GroupTable(const Schema& key_schema, size_t num_specs)
      : keys("keys", key_schema),
        num_specs(num_specs),
        int_keyed(key_schema.num_fields() == 1 &&
                  (key_schema.field(0).type == DataType::kBigInt ||
                   key_schema.field(0).type == DataType::kBool)) {}

  Table keys;  ///< one row per group: the group-by column values
  std::vector<AggState> states;  ///< group-major [group * num_specs + spec]
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;  ///< hash -> group ids
  /// Fast path for the common single-BIGINT-key case (e.g. GROUP BY id in
  /// the layer-3 k-Means/PageRank formulations): direct key -> group map,
  /// no rehash-and-verify chain.
  std::unordered_map<int64_t, uint32_t> int_index;
  size_t num_specs;
  bool int_keyed;

  /// Number of groups; robust for the zero-key (global aggregate) case
  /// where the key table has no columns and thus reports zero rows.
  size_t NumGroups() const {
    return num_specs ? states.size() / num_specs : keys.num_rows();
  }

  /// Single-BIGINT-key fast path; only valid when `int_keyed` and the key
  /// cell is non-NULL.
  size_t FindOrCreateInt(int64_t key, const Column& col, size_t row) {
    auto [it, inserted] =
        int_index.emplace(key, static_cast<uint32_t>(NumGroups()));
    if (inserted) {
      keys.column(0).AppendFrom(col, row);
      states.resize(states.size() + num_specs);
    }
    return it->second;
  }

  /// Finds or creates the group matching `(cols, row)`; returns its id.
  size_t FindOrCreate(uint64_t hash, const std::vector<const Column*>& cols,
                      size_t row) {
    if (int_keyed && !cols[0]->IsNull(row)) {
      return FindOrCreateInt(cols[0]->GetBigInt(row), *cols[0], row);
    }
    auto& bucket = index[hash];
    for (uint32_t g : bucket) {
      bool equal = true;
      for (size_t c = 0; c < cols.size(); ++c) {
        if (!GroupCellsEqual(*cols[c], row, keys.column(c), g)) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    uint32_t g = static_cast<uint32_t>(NumGroups());
    for (size_t c = 0; c < cols.size(); ++c) {
      keys.column(c).AppendFrom(*cols[c], row);
    }
    states.resize(states.size() + num_specs);
    bucket.push_back(g);
    return g;
  }
};

class AggregateSink : public TableSink {
 public:
  AggregateSink(const PlanNode& plan, Schema key_schema)
      : plan_(plan), key_schema_(std::move(key_schema)) {
    workers_.resize(NumWorkers());
  }

  Status Consume(DataChunk& chunk, const SinkContext& sctx) override {
    auto& local = workers_[sctx.worker_id];
    if (!local) {
      local = std::make_unique<GroupTable>(key_schema_,
                                           plan_.aggregates.size());
    }
    const size_t g_cols = plan_.num_group_cols;
    std::vector<const Column*> key_cols(g_cols);
    for (size_t c = 0; c < g_cols; ++c) key_cols[c] = &chunk.column(c);

    for (size_t row = 0; row < chunk.num_rows(); ++row) {
      size_t g;
      if (local->int_keyed && !key_cols[0]->IsNull(row)) {
        g = local->FindOrCreateInt(key_cols[0]->GetBigInt(row), *key_cols[0],
                                   row);
      } else {
        uint64_t hash = 0xCBF29CE484222325ULL;
        for (size_t c = 0; c < g_cols; ++c) {
          hash = hash * 31 + HashCell(*key_cols[c], row);
        }
        g = local->FindOrCreate(hash, key_cols, row);
      }
      // Zero aggregates (SELECT DISTINCT): the group's existence is the
      // whole result, and `states` is empty — indexing it is UB.
      if (plan_.aggregates.empty()) continue;
      AggState* states = &local->states[g * plan_.aggregates.size()];
      for (size_t s = 0; s < plan_.aggregates.size(); ++s) {
        const AggregateSpec& spec = plan_.aggregates[s];
        if (spec.arg_index < 0) {  // count(*)
          states[s].count++;
          continue;
        }
        const Column& arg = chunk.column(static_cast<size_t>(spec.arg_index));
        if (arg.IsNull(row)) continue;  // aggregates skip NULLs
        if (arg.type() == DataType::kVarchar) {
          states[s].count++;  // only count() is bound for varchar args
          continue;
        }
        double v = arg.GetNumeric(row);
        int64_t iv =
            arg.type() == DataType::kDouble ? 0 : arg.GetBigInt(row);
        states[s].UpdateNumeric(v, iv);
      }
    }
    return Status::OK();
  }

  Status Finalize() override {
    // Merge all worker tables into the first non-empty one.
    std::unique_ptr<GroupTable> merged;
    for (auto& w : workers_) {
      if (!w) continue;
      if (!merged) {
        merged = std::move(w);
        continue;
      }
      const size_t groups = w->NumGroups();
      std::vector<const Column*> cols(w->keys.num_columns());
      for (size_t c = 0; c < cols.size(); ++c) cols[c] = &w->keys.column(c);
      for (size_t g = 0; g < groups; ++g) {
        uint64_t hash = 0xCBF29CE484222325ULL;
        for (size_t c = 0; c < cols.size(); ++c) {
          hash = hash * 31 + HashCell(*cols[c], g);
        }
        size_t target = merged->FindOrCreate(hash, cols, g);
        for (size_t s = 0; s < plan_.aggregates.size(); ++s) {
          merged->states[target * plan_.aggregates.size() + s].Merge(
              w->states[g * plan_.aggregates.size() + s]);
        }
      }
      w.reset();
    }
    if (!merged) {
      merged = std::make_unique<GroupTable>(key_schema_,
                                            plan_.aggregates.size());
    }
    // A global aggregate (no GROUP BY) over empty input still yields one
    // row of "empty" aggregates.
    if (plan_.num_group_cols == 0 && merged->NumGroups() == 0) {
      merged->states.resize(plan_.aggregates.size());
    }

    result_ = std::make_shared<Table>("aggregate", plan_.schema);
    const size_t groups = merged->NumGroups();
    result_->Reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      for (size_t c = 0; c < plan_.num_group_cols; ++c) {
        result_->column(c).AppendFrom(merged->keys.column(c), g);
      }
      for (size_t s = 0; s < plan_.aggregates.size(); ++s) {
        const AggregateSpec& spec = plan_.aggregates[s];
        const AggState& st =
            merged->states[g * plan_.aggregates.size() + s];
        Column& out = result_->column(plan_.num_group_cols + s);
        if (spec.function == "count") {
          out.AppendBigInt(st.count);
          continue;
        }
        if (st.count == 0) {
          out.AppendNull();
          continue;
        }
        if (spec.function == "sum") {
          if (spec.result_type == DataType::kBigInt) {
            out.AppendBigInt(st.isum);
          } else {
            out.AppendDouble(st.sum);
          }
        } else if (spec.function == "avg") {
          out.AppendDouble(st.sum / static_cast<double>(st.count));
        } else if (spec.function == "min" || spec.function == "max") {
          double v = spec.function == "min" ? st.min : st.max;
          if (spec.result_type == DataType::kBigInt) {
            out.AppendBigInt(static_cast<int64_t>(v));
          } else {
            out.AppendDouble(v);
          }
        } else if (spec.function == "var" || spec.function == "stddev") {
          if (st.count < 2) {
            out.AppendNull();
            continue;
          }
          double n = static_cast<double>(st.count);
          double var = (st.sumsq - st.sum * st.sum / n) / (n - 1);
          if (var < 0) var = 0;  // numeric noise
          out.AppendDouble(spec.function == "var" ? var : std::sqrt(var));
        } else {
          return Status::Internal("unknown aggregate: " + spec.function);
        }
      }
    }
    return Status::OK();
  }

  std::string name() const override {
    std::string s = "Aggregate groups=" + std::to_string(plan_.num_group_cols);
    s += " [";
    for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
      if (i) s += ", ";
      const AggregateSpec& spec = plan_.aggregates[i];
      s += spec.function + "(" +
           (spec.arg_index < 0 ? "*" : "#" + std::to_string(spec.arg_index)) +
           ")";
    }
    return s + "]";
  }

  TablePtr result() const override { return result_; }

 private:
  const PlanNode& plan_;
  Schema key_schema_;
  std::vector<std::unique_ptr<GroupTable>> workers_;
  TablePtr result_;
};

}  // namespace

std::shared_ptr<TableSink> MakeAggregateSink(const PlanNode& plan) {
  std::vector<Field> key_fields(
      plan.children[0]->schema.fields().begin(),
      plan.children[0]->schema.fields().begin() + plan.num_group_cols);
  return std::make_shared<AggregateSink>(plan, Schema(std::move(key_fields)));
}

}  // namespace soda
