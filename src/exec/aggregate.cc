/// \file aggregate.cc
/// Hash aggregation with thread-local partial states merged at finalize —
/// the structure the paper describes for its analytics operators (§6.1:
/// "Thread synchronization is only needed for the very last steps, global
/// aggregation of the local intermediate results") applied to plain
/// GROUP BY. The "very last step" itself is parallel too: worker group
/// tables are merged by hash radix, one partition per worker, and the
/// result is materialized fragment-wise with bulk column appends.

#include <atomic>
#include <bit>
#include <cmath>

#include "exec/executor.h"
#include "exec/hash_join.h"
#include "exec/hash_kernels.h"
#include "util/first_error.h"
#include "util/parallel.h"

namespace soda {

namespace {

/// Fault/cancellation site for the finalize-time merge and
/// materialization phases.
constexpr char kAggMergeSite[] = "exec.agg_merge";

/// Grouping equality: unlike joins, NULL groups with NULL.
bool GroupCellsEqual(const Column& a, size_t ra, const Column& b, size_t rb) {
  bool na = a.IsNull(ra), nb = b.IsNull(rb);
  if (na || nb) return na && nb;
  return CellsEqual(a, ra, b, rb);
}

/// One aggregate's accumulator; a single struct covers all supported
/// functions (count/sum/avg/min/max/var/stddev). Integer min/max are
/// tracked exactly alongside the double pair: BIGINT values beyond 2^53
/// round in a double, so `min(x)`/`max(x)` over BIGINT read `imin`/`imax`.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  double sum = 0;
  double sumsq = 0;
  double min = 0;
  double max = 0;

  void UpdateNumeric(double v, int64_t iv) {
    if (count == 0) {
      min = max = v;
      imin = imax = iv;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
      if (iv < imin) imin = iv;
      if (iv > imax) imax = iv;
    }
    ++count;
    isum += iv;
    sum += v;
    sumsq += v * v;
  }

  void Merge(const AggState& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    isum += other.isum;
    sum += other.sum;
    sumsq += other.sumsq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    if (other.imin < imin) imin = other.imin;
    if (other.imax > imax) imax = other.imax;
  }
};

/// Pre-classified update kind for one aggregate spec. The consume loop is
/// the hottest code in a GROUP BY pipeline; dispatching once per spec at
/// sink construction lets each row touch only the accumulator fields its
/// function actually reads at materialization, instead of maintaining the
/// full 8-field AggState for every spec.
enum class AggOp : uint8_t {
  kCountStar,   ///< count(*): unconditional count
  kCountArg,    ///< count(x): count of non-NULL (also any varchar arg)
  kSumInt,      ///< sum over BIGINT: exact integer sum + count
  kSumDouble,   ///< sum over DOUBLE: double sum + count
  kAvg,         ///< avg: double sum + count
  kMinInt,      ///< min over BIGINT: exact integer min + count
  kMinDouble,   ///< min over DOUBLE: double min + count
  kMaxInt,      ///< max over BIGINT: exact integer max + count
  kMaxDouble,   ///< max over DOUBLE: double max + count
  kVar,         ///< var/stddev: sum + sum of squares + count
  kGeneric,     ///< unknown function: maintain everything
};

AggOp ClassifyAggOp(const AggregateSpec& spec) {
  if (spec.function == "count") {
    return spec.arg_index < 0 ? AggOp::kCountStar : AggOp::kCountArg;
  }
  const bool int_result = spec.result_type == DataType::kBigInt;
  if (spec.function == "sum") {
    return int_result ? AggOp::kSumInt : AggOp::kSumDouble;
  }
  if (spec.function == "avg") return AggOp::kAvg;
  if (spec.function == "min") {
    return int_result ? AggOp::kMinInt : AggOp::kMinDouble;
  }
  if (spec.function == "max") {
    return int_result ? AggOp::kMaxInt : AggOp::kMaxDouble;
  }
  if (spec.function == "var" || spec.function == "stddev") return AggOp::kVar;
  return AggOp::kGeneric;
}

/// Per-worker (and per-merge-partition) grouping state. The group index is
/// an open-addressing slot array over the columnar MixHash values: the
/// avalanche hash supplies well-distributed bucket bits directly, so a
/// lookup is a masked index plus linear probing — no modulo-prime division
/// and no node/chain pointer chases like the previous
/// `unordered_map<hash, vector<group>>` index paid on every input row. The
/// stored per-group hash (also needed by the radix merge) doubles as a
/// cheap pre-filter so full key comparison only runs on a 64-bit hash
/// match.
struct GroupTable {
  static constexpr size_t kInitialSlots = 1024;  // power of two

  explicit GroupTable(const Schema& key_schema, size_t num_specs)
      : keys("keys", key_schema), num_specs(num_specs) {
    slots.assign(kInitialSlots, 0);
    i64_keys = true;
    for (size_t c = 0; c < key_schema.num_fields(); ++c) {
      const DataType t = key_schema.field(c).type;
      if (t != DataType::kBigInt && t != DataType::kBool) i64_keys = false;
      key_cols.push_back(&keys.column(c));
    }
  }

  Table keys;  ///< one row per group: the group-by column values
  std::vector<AggState> states;  ///< group-major [group * num_specs + spec]
  std::vector<uint64_t> hashes;  ///< per-group combined key hash (radix merge)
  std::vector<uint32_t> slots;   ///< open addressing: group id + 1, 0 = empty
  std::vector<Column*> key_cols;  ///< cached &keys.column(c)
  /// Per-chunk scratch reused across Consume calls — a GROUP BY over N
  /// chunks would otherwise pay N heap round-trips per buffer.
  std::vector<uint64_t> hash_scratch;
  std::vector<const Column*> col_scratch;
  std::vector<const Column*> arg_scratch;
  std::vector<AggOp> op_scratch;

  size_t num_specs;
  /// Every key column is i64-backed (BIGINT/BOOL): the verify loop can
  /// compare raw values inline instead of calling the out-of-line
  /// type-dispatched CellsEqual per candidate.
  bool i64_keys;

  /// Number of groups; robust for the zero-key (global aggregate) case
  /// where the key table has no columns and thus reports zero rows.
  size_t NumGroups() const {
    return num_specs ? states.size() / num_specs : keys.num_rows();
  }

  /// Doubles the slot array and reinserts every group from its stored
  /// hash; keys never need rehashing.
  void GrowSlots() {
    std::vector<uint32_t> next(slots.size() * 2, 0);
    const size_t mask = next.size() - 1;
    for (uint32_t g = 0; g < static_cast<uint32_t>(hashes.size()); ++g) {
      size_t pos = hashes[g] & mask;
      while (next[pos] != 0) pos = (pos + 1) & mask;
      next[pos] = g + 1;
    }
    slots = std::move(next);
  }

  /// Finds or creates the group matching `(cols, row)`; returns its id.
  /// `hash` must be the HashRows-combined key hash of the row.
  size_t FindOrCreate(uint64_t hash, const std::vector<const Column*>& cols,
                      size_t row) {
    const size_t mask = slots.size() - 1;
    size_t pos = hash & mask;
    for (;;) {
      const uint32_t slot = slots[pos];
      if (slot == 0) break;
      const uint32_t g = slot - 1;
      if (hashes[g] == hash) {
        bool equal = true;
        if (i64_keys) {
          for (size_t c = 0; c < cols.size(); ++c) {
            const Column& a = *cols[c];
            const Column& b = *key_cols[c];
            const bool na = a.IsNull(row), nb = b.IsNull(g);
            if (na != nb || (!na && a.GetBigInt(row) != b.GetBigInt(g))) {
              equal = false;
              break;
            }
          }
        } else {
          for (size_t c = 0; c < cols.size(); ++c) {
            if (!GroupCellsEqual(*cols[c], row, keys.column(c), g)) {
              equal = false;
              break;
            }
          }
        }
        if (equal) return g;
      }
      pos = (pos + 1) & mask;
    }
    const uint32_t g = static_cast<uint32_t>(NumGroups());
    for (size_t c = 0; c < cols.size(); ++c) {
      keys.column(c).AppendFrom(*cols[c], row);
    }
    states.resize(states.size() + num_specs);
    hashes.push_back(hash);
    slots[pos] = g + 1;
    // Keep the load factor at or below 1/2 so probe sequences stay short.
    if (hashes.size() * 2 >= slots.size()) GrowSlots();
    return g;
  }
};

class AggregateSink : public TableSink {
 public:
  AggregateSink(const PlanNode& plan, Schema key_schema)
      : plan_(plan), key_schema_(std::move(key_schema)) {
    workers_.resize(NumWorkers());
    ops_.reserve(plan_.aggregates.size());
    for (const auto& spec : plan_.aggregates) {
      ops_.push_back(ClassifyAggOp(spec));
    }
  }

  Status Consume(DataChunk& chunk, const SinkContext& sctx) override {
    auto& local = workers_[sctx.worker_id];
    if (!local) {
      local = std::make_unique<GroupTable>(key_schema_,
                                           plan_.aggregates.size());
    }
    const size_t g_cols = plan_.num_group_cols;
    const size_t n = chunk.num_rows();
    std::vector<const Column*>& key_cols = local->col_scratch;
    key_cols.resize(g_cols);
    for (size_t c = 0; c < g_cols; ++c) key_cols[c] = &chunk.column(c);

    // Hash the whole chunk's keys up front with the columnar kernels.
    const bool need_hashes = g_cols > 0;
    std::vector<uint64_t>& hashes = local->hash_scratch;
    if (need_hashes) {
      hashes.resize(n);
      HashRows(key_cols, 0, n, hashes.data());
    }

    // Hoist the per-spec argument columns and effective ops out of the row
    // loop. A varchar argument degrades any op to a non-NULL count — only
    // count() is bound for varchar, but the check is per-column, not
    // per-row.
    const size_t num_specs = plan_.aggregates.size();
    std::vector<const Column*>& args = local->arg_scratch;
    std::vector<AggOp>& ops = local->op_scratch;
    args.assign(num_specs, nullptr);
    ops.resize(num_specs);
    for (size_t s = 0; s < num_specs; ++s) {
      ops[s] = ops_[s];
      if (plan_.aggregates[s].arg_index >= 0) {
        args[s] =
            &chunk.column(static_cast<size_t>(plan_.aggregates[s].arg_index));
        if (args[s]->type() == DataType::kVarchar) ops[s] = AggOp::kCountArg;
      }
    }

    for (size_t row = 0; row < n; ++row) {
      size_t g = local->FindOrCreate(need_hashes ? hashes[row] : kHashSeed,
                                     key_cols, row);
      // Zero aggregates (SELECT DISTINCT): the group's existence is the
      // whole result, and `states` is empty — indexing it is UB.
      if (num_specs == 0) continue;
      AggState* states = &local->states[g * num_specs];
      for (size_t s = 0; s < num_specs; ++s) {
        AggState& st = states[s];
        if (ops[s] == AggOp::kCountStar) {
          st.count++;
          continue;
        }
        const Column& arg = *args[s];
        if (arg.IsNull(row)) continue;  // aggregates skip NULLs
        switch (ops[s]) {
          case AggOp::kCountArg:
            st.count++;
            break;
          case AggOp::kSumInt:
            st.isum += arg.GetBigInt(row);
            st.count++;
            break;
          case AggOp::kSumDouble:
          case AggOp::kAvg:
            st.sum += arg.GetNumeric(row);
            st.count++;
            break;
          case AggOp::kMinInt: {
            int64_t iv = arg.GetBigInt(row);
            if (st.count == 0 || iv < st.imin) st.imin = iv;
            st.count++;
            break;
          }
          case AggOp::kMaxInt: {
            int64_t iv = arg.GetBigInt(row);
            if (st.count == 0 || iv > st.imax) st.imax = iv;
            st.count++;
            break;
          }
          case AggOp::kMinDouble: {
            double v = arg.GetNumeric(row);
            if (st.count == 0 || v < st.min) st.min = v;
            st.count++;
            break;
          }
          case AggOp::kMaxDouble: {
            double v = arg.GetNumeric(row);
            if (st.count == 0 || v > st.max) st.max = v;
            st.count++;
            break;
          }
          case AggOp::kVar: {
            double v = arg.GetNumeric(row);
            st.sum += v;
            st.sumsq += v * v;
            st.count++;
            break;
          }
          case AggOp::kCountStar:
            break;  // handled above
          case AggOp::kGeneric: {
            double v = arg.GetNumeric(row);
            int64_t iv =
                arg.type() == DataType::kDouble ? 0 : arg.GetBigInt(row);
            st.UpdateNumeric(v, iv);
            break;
          }
        }
      }
    }
    return Status::OK();
  }

  Status Finalize() override {
    QueryGuard* guard = QueryGuard::Current();
    SODA_RETURN_NOT_OK(GuardProbe(guard, kAggMergeSite));

    std::vector<std::unique_ptr<GroupTable>> locals;
    for (auto& w : workers_) {
      if (w) locals.push_back(std::move(w));
    }
    workers_.clear();
    const size_t num_specs = plan_.aggregates.size();

    // Phase 1 — merge. One producer adopts its table outright; several
    // merge in parallel by hash radix: partition p is owned by exactly one
    // worker, which folds every local's partition-p groups into a fresh
    // fragment (no locks — partitions are disjoint by construction).
    std::vector<std::unique_ptr<GroupTable>> fragments;
    if (locals.size() <= 1) {
      std::unique_ptr<GroupTable> merged =
          locals.empty()
              ? std::make_unique<GroupTable>(key_schema_, num_specs)
              : std::move(locals[0]);
      fragments.push_back(std::move(merged));
    } else {
      const size_t P = std::bit_ceil(
          std::min<size_t>(64, std::max<size_t>(2, NumWorkers())));
      // Bucket every local's groups by partition once, up front.
      std::vector<std::vector<std::vector<uint32_t>>> buckets(locals.size());
      for (size_t l = 0; l < locals.size(); ++l) {
        buckets[l].resize(P);
        const std::vector<uint64_t>& hashes = locals[l]->hashes;
        for (uint32_t g = 0; g < locals[l]->NumGroups(); ++g) {
          buckets[l][hashes[g] & (P - 1)].push_back(g);
        }
      }
      fragments.resize(P);
      FirstError first_error;
      Status par = ParallelFor(
          guard, P,
          [&](size_t begin, size_t end, size_t) {
            for (size_t p = begin; p < end; ++p) {
              if (first_error.failed()) return;
              Status st = GuardProbe(guard, kAggMergeSite);
              if (!st.ok()) {
                first_error.Record(std::move(st));
                return;
              }
              auto frag = std::make_unique<GroupTable>(key_schema_,
                                                       num_specs);
              for (size_t l = 0; l < locals.size(); ++l) {
                GroupTable& w = *locals[l];
                std::vector<const Column*> cols(w.keys.num_columns());
                for (size_t c = 0; c < cols.size(); ++c) {
                  cols[c] = &w.keys.column(c);
                }
                for (uint32_t g : buckets[l][p]) {
                  size_t target = frag->FindOrCreate(w.hashes[g], cols, g);
                  for (size_t s = 0; s < num_specs; ++s) {
                    frag->states[target * num_specs + s].Merge(
                        w.states[g * num_specs + s]);
                  }
                }
              }
              fragments[p] = std::move(frag);
            }
          },
          /*morsel_size=*/1);
      SODA_RETURN_NOT_OK(first_error.Take());
      SODA_RETURN_NOT_OK(par);
      locals.clear();
    }

    // A global aggregate (no GROUP BY) over empty input still yields one
    // row of "empty" aggregates.
    size_t total_groups = 0;
    for (const auto& f : fragments) {
      if (f) total_groups += f->NumGroups();
    }
    if (plan_.num_group_cols == 0 && total_groups == 0) {
      fragments[0]->states.resize(num_specs);
      total_groups = fragments[0]->NumGroups();
    }

    // Phase 2 — materialize, one output fragment per merge fragment
    // (parallel), then splice the fragments together with bulk column
    // appends. Charge the result relation before building it.
    size_t result_bytes = 0;
    for (const auto& f : fragments) {
      if (!f) continue;
      result_bytes += f->keys.MemoryUsage() +
                      f->NumGroups() * num_specs * sizeof(int64_t);
    }
    SODA_RETURN_NOT_OK(GuardReserve(guard, result_bytes, kAggMergeSite));

    std::vector<Table> outputs(fragments.size());
    {
      FirstError first_error;
      Status par = ParallelFor(
          guard, fragments.size(),
          [&](size_t begin, size_t end, size_t) {
            for (size_t p = begin; p < end; ++p) {
              if (first_error.failed()) return;
              if (!fragments[p]) continue;
              Status st = MaterializeFragment(*fragments[p], &outputs[p]);
              if (!st.ok()) {
                first_error.Record(std::move(st));
                return;
              }
            }
          },
          /*morsel_size=*/1);
      SODA_RETURN_NOT_OK(first_error.Take());
      SODA_RETURN_NOT_OK(par);
    }

    // Single fragment (serial pipelines, one producing worker): adopt it
    // as the result instead of re-copying through the splice below.
    size_t nonempty = 0;
    for (const auto& out : outputs) {
      if (out.num_columns() > 0) ++nonempty;
    }
    if (nonempty == 1) {
      for (auto& out : outputs) {
        if (out.num_columns() > 0) {
          result_ = std::make_shared<Table>(std::move(out));
          return Status::OK();
        }
      }
    }
    result_ = std::make_shared<Table>("aggregate", plan_.schema);
    result_->Reserve(total_groups);
    for (const auto& out : outputs) {
      if (out.num_columns() == 0) continue;
      for (size_t c = 0; c < result_->num_columns(); ++c) {
        result_->column(c).AppendSlice(out.column(c), 0, out.num_rows());
      }
    }
    return Status::OK();
  }

  std::string name() const override {
    std::string s = "Aggregate groups=" + std::to_string(plan_.num_group_cols);
    s += " [";
    for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
      if (i) s += ", ";
      const AggregateSpec& spec = plan_.aggregates[i];
      s += spec.function + "(" +
           (spec.arg_index < 0 ? "*" : "#" + std::to_string(spec.arg_index)) +
           ")";
    }
    return s + "]";
  }

  TablePtr result() const override { return result_; }

 private:
  /// Renders one merged fragment into an output table shaped like the
  /// aggregate's schema: keys are spliced column-wise (AppendSlice, not
  /// row-at-a-time AppendFrom), aggregate columns are computed one column
  /// at a time over the packed states.
  Status MaterializeFragment(const GroupTable& frag, Table* out) const {
    const size_t groups = frag.NumGroups();
    *out = Table("aggregate.fragment", plan_.schema);
    out->Reserve(groups);
    for (size_t c = 0; c < plan_.num_group_cols; ++c) {
      out->column(c).AppendSlice(frag.keys.column(c), 0, groups);
    }
    const size_t num_specs = plan_.aggregates.size();
    for (size_t s = 0; s < num_specs; ++s) {
      const AggregateSpec& spec = plan_.aggregates[s];
      Column& col = out->column(plan_.num_group_cols + s);
      for (size_t g = 0; g < groups; ++g) {
        const AggState& st = frag.states[g * num_specs + s];
        if (spec.function == "count") {
          col.AppendBigInt(st.count);
          continue;
        }
        if (st.count == 0) {
          col.AppendNull();
          continue;
        }
        if (spec.function == "sum") {
          if (spec.result_type == DataType::kBigInt) {
            col.AppendBigInt(st.isum);
          } else {
            col.AppendDouble(st.sum);
          }
        } else if (spec.function == "avg") {
          col.AppendDouble(st.sum / static_cast<double>(st.count));
        } else if (spec.function == "min" || spec.function == "max") {
          // BIGINT min/max report the exactly-tracked integer pair;
          // doubles beyond 2^53 would round (satellite fix, ISSUE 4).
          if (spec.result_type == DataType::kBigInt) {
            col.AppendBigInt(spec.function == "min" ? st.imin : st.imax);
          } else {
            col.AppendDouble(spec.function == "min" ? st.min : st.max);
          }
        } else if (spec.function == "var" || spec.function == "stddev") {
          if (st.count < 2) {
            col.AppendNull();
            continue;
          }
          double n = static_cast<double>(st.count);
          double var = (st.sumsq - st.sum * st.sum / n) / (n - 1);
          if (var < 0) var = 0;  // numeric noise
          col.AppendDouble(spec.function == "var" ? var : std::sqrt(var));
        } else {
          return Status::Internal("unknown aggregate: " + spec.function);
        }
      }
    }
    return Status::OK();
  }

  const PlanNode& plan_;
  Schema key_schema_;
  std::vector<AggOp> ops_;  ///< per-spec update kind, classified once
  std::vector<std::unique_ptr<GroupTable>> workers_;
  TablePtr result_;
};

}  // namespace

std::shared_ptr<TableSink> MakeAggregateSink(const PlanNode& plan) {
  std::vector<Field> key_fields(
      plan.children[0]->schema.fields().begin(),
      plan.children[0]->schema.fields().begin() + plan.num_group_cols);
  return std::make_shared<AggregateSink>(plan, Schema(std::move(key_fields)));
}

}  // namespace soda
