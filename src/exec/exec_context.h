/// \file exec_context.h
/// Per-query execution state: catalog access, named relation bindings
/// (CTE working tables, the ITERATE state), runtime guards, and the
/// instrumentation counters used by the §5.1 memory ablation.

#ifndef SODA_EXEC_EXEC_CONTEXT_H_
#define SODA_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "storage/catalog.h"
#include "storage/table.h"
#include "util/query_guard.h"

namespace soda {

class HtRecycler;

/// Default iteration cap for ITERATE / recursive CTEs; overridable per
/// engine (EngineOptions::max_iterations) and per session
/// (SET soda.max_iterations).
inline constexpr size_t kDefaultMaxIterations = 100000;

/// Counters exposed to benchmarks; tracks how much tuple state iterative
/// constructs materialize (recursive CTE vs ITERATE, paper §5.1).
struct ExecStats {
  size_t cumulative_materialized_tuples = 0;  ///< total tuples written to intermediates
  size_t peak_bound_tuples = 0;   ///< max tuples live in iteration bindings + accumulated results
  size_t iterations_run = 0;      ///< iterations across all iterative constructs
  size_t recycled_joins = 0;      ///< join builds served from the hash-table recycler

  void AccountBoundTuples(size_t tuples) {
    if (tuples > peak_bound_tuples) peak_bound_tuples = tuples;
  }
};

/// Engine health counters served by the soda_status() table function
/// (operations / self-healing storage, DESIGN.md §10). Filled by the
/// engine's status provider; a volatile engine reports durable = false
/// with the WAL/checkpoint fields zero.
struct EngineStatusSnapshot {
  bool durable = false;
  int64_t wal_bytes = 0;
  int64_t wal_records = 0;
  int64_t last_checkpoint_lsn = 0;
  int64_t checkpoint_count = 0;
  int64_t auto_checkpoint_count = 0;
  int64_t scrub_pass_count = 0;
  int64_t quarantined_row_groups = 0;
  int64_t quarantined_tables = 0;
  // Repeated-traffic caches (DESIGN.md §11).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_entries = 0;
  int64_t ht_cache_hits = 0;
  int64_t ht_cache_misses = 0;
  int64_t ht_cache_evictions = 0;
  int64_t ht_cache_bytes = 0;
};

/// Mutable state threaded through plan execution. Not thread-safe for
/// concurrent binding mutation; pipelines only read bindings.
struct ExecContext {
  Catalog* catalog = nullptr;

  /// Named relations visible to kBindingRef (recursive CTE working table,
  /// `iterate` state). Executors save/restore entries around loops.
  std::map<std::string, TablePtr> bindings;

  /// Infinite-loop guard for ITERATE and recursive CTEs (paper §5.1:
  /// "those situations need to be detected and aborted by the database").
  /// Set from EngineOptions::max_iterations by the engine.
  size_t max_iterations = kDefaultMaxIterations;

  /// The query's resource governor; null when executing outside an
  /// engine (direct ExecutePlan calls in tests). Probes still reach the
  /// global FaultInjector through GuardProbe in that case.
  QueryGuard* guard = nullptr;

  /// Run the static plan verifier (exec/plan_verifier.h) on every lowered
  /// plan before executing it. On by default; `SET soda.verify_plans =
  /// off` clears it per session (debug builds verify regardless).
  bool verify_plans = true;

  /// Engine-owned join hash-table recycler (exec/ht_recycler.h). Null
  /// outside an engine or with caching disabled; the join lowering then
  /// always builds fresh.
  HtRecycler* ht_recycler = nullptr;

  /// Supplies soda_status() rows; installed by the engine's SELECT path.
  /// Null when executing outside an engine — the table function then
  /// fails cleanly instead of reporting fabricated health.
  std::function<EngineStatusSnapshot()> status_provider;

  /// Cooperative governance probe for executor loops.
  Status Probe(const char* site) { return GuardProbe(guard, site); }

  ExecStats stats;
};

/// Shared abort message for the iteration caps of ITERATE and recursive
/// CTEs: reports what ran, the governing cap, and the knob that raises it.
inline Status IterationCapExceeded(const std::string& construct,
                                   size_t iterations_run, size_t cap) {
  return Status::ExecutionError(
      construct + " aborted after " + std::to_string(iterations_run) +
      " iterations (cap " + std::to_string(cap) +
      "; possible divergence — raise with SET soda.max_iterations or "
      "EngineOptions::max_iterations)");
}

}  // namespace soda

#endif  // SODA_EXEC_EXEC_CONTEXT_H_
