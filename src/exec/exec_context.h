/// \file exec_context.h
/// Per-query execution state: catalog access, named relation bindings
/// (CTE working tables, the ITERATE state), runtime guards, and the
/// instrumentation counters used by the §5.1 memory ablation.

#ifndef SODA_EXEC_EXEC_CONTEXT_H_
#define SODA_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/catalog.h"
#include "storage/table.h"

namespace soda {

/// Counters exposed to benchmarks; tracks how much tuple state iterative
/// constructs materialize (recursive CTE vs ITERATE, paper §5.1).
struct ExecStats {
  size_t cumulative_materialized_tuples = 0;  ///< total tuples written to intermediates
  size_t peak_bound_tuples = 0;   ///< max tuples live in iteration bindings + accumulated results
  size_t iterations_run = 0;      ///< iterations across all iterative constructs

  void AccountBoundTuples(size_t tuples) {
    if (tuples > peak_bound_tuples) peak_bound_tuples = tuples;
  }
};

/// Mutable state threaded through plan execution. Not thread-safe for
/// concurrent binding mutation; pipelines only read bindings.
struct ExecContext {
  Catalog* catalog = nullptr;

  /// Named relations visible to kBindingRef (recursive CTE working table,
  /// `iterate` state). Executors save/restore entries around loops.
  std::map<std::string, TablePtr> bindings;

  /// Infinite-loop guard for ITERATE and recursive CTEs (paper §5.1:
  /// "those situations need to be detected and aborted by the database").
  size_t max_iterations = 100000;

  ExecStats stats;
};

}  // namespace soda

#endif  // SODA_EXEC_EXEC_CONTEXT_H_
