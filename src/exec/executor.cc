#include "exec/executor.h"

#include <atomic>
#include <mutex>

#include "exec/hash_join.h"
#include "expr/evaluator.h"
#include "util/parallel.h"

namespace soda {

namespace {

/// Streaming WHERE: evaluates the predicate and compacts the chunk.
class FilterTransform : public Transform {
 public:
  explicit FilterTransform(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  Status Apply(DataChunk& chunk, const Emit& emit) const override {
    std::vector<uint32_t> selection;
    SODA_RETURN_NOT_OK(EvaluatePredicate(*predicate_, chunk, &selection));
    if (selection.size() == chunk.num_rows()) return emit(chunk);
    if (selection.empty()) return Status::OK();
    DataChunk out;
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      Column col(chunk.column(c).type());
      col.Reserve(selection.size());
      for (uint32_t i : selection) col.AppendFrom(chunk.column(c), i);
      out.AddColumn(std::move(col));
    }
    return emit(out);
  }

 private:
  ExprPtr predicate_;
};

/// Streaming SELECT-list evaluation.
class ProjectTransform : public Transform {
 public:
  explicit ProjectTransform(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}

  Status Apply(DataChunk& chunk, const Emit& emit) const override {
    DataChunk out;
    for (const auto& e : exprs_) {
      Column col;
      SODA_RETURN_NOT_OK(EvaluateExpression(*e, chunk, &col));
      out.AddColumn(std::move(col));
    }
    return emit(out);
  }

 private:
  std::vector<ExprPtr> exprs_;
};

Result<TablePtr> ExecuteValues(const PlanNode& plan) {
  auto table = std::make_shared<Table>("values", plan.schema);
  for (const auto& row : plan.rows) {
    SODA_RETURN_NOT_OK(table->AppendRow(row));
  }
  return table;
}

Result<TablePtr> ExecuteLimit(const PlanNode& plan, ExecContext& ctx) {
  SODA_ASSIGN_OR_RETURN(TablePtr child, ExecutePlan(*plan.children[0], ctx));
  size_t offset = plan.offset > 0 ? static_cast<size_t>(plan.offset) : 0;
  size_t available = child->num_rows() > offset ? child->num_rows() - offset : 0;
  size_t count = plan.limit < 0
                     ? available
                     : std::min(available, static_cast<size_t>(plan.limit));
  if (offset == 0 && count == child->num_rows()) return child;
  auto out = std::make_shared<Table>("limit", plan.schema);
  DataChunk chunk;
  child->ScanSlice(offset, count, &chunk);
  SODA_RETURN_NOT_OK(out->AppendChunk(chunk));
  return out;
}

Result<TablePtr> ExecuteUnionAll(const PlanNode& plan, ExecContext& ctx) {
  auto out = std::make_shared<Table>("union", plan.schema);
  for (const auto& child : plan.children) {
    SODA_RETURN_NOT_OK(ctx.Probe("exec.union"));
    SODA_ASSIGN_OR_RETURN(TablePtr t, ExecutePlan(*child, ctx));
    SODA_RETURN_NOT_OK(
        GuardReserve(ctx.guard, t->MemoryUsage(), "exec.union"));
    for (size_t c = 0; c < t->num_columns(); ++c) {
      out->column(c).AppendSlice(t->column(c), 0, t->num_rows());
    }
  }
  return out;
}

}  // namespace

MaterializeSink::MaterializeSink(Schema schema) : schema_(std::move(schema)) {
  partials_.resize(NumWorkers());
}

Status MaterializeSink::Consume(DataChunk& chunk, size_t worker_id) {
  auto& partial = partials_[worker_id];
  if (!partial) partial = std::make_unique<Table>("partial", schema_);
  return partial->AppendChunk(chunk);
}

Status MaterializeSink::Finalize() {
  result_ = std::make_shared<Table>("result", schema_);
  for (auto& partial : partials_) {
    if (!partial) continue;
    for (size_t c = 0; c < partial->num_columns(); ++c) {
      result_->column(c).AppendSlice(partial->column(c), 0,
                                     partial->num_rows());
    }
    partial.reset();
  }
  return Status::OK();
}

Result<Pipeline> BuildPipeline(const PlanNode& plan, ExecContext& ctx) {
  switch (plan.kind) {
    case PlanKind::kScan: {
      SODA_ASSIGN_OR_RETURN(TablePtr table,
                            ctx.catalog->GetTable(plan.table_name));
      Pipeline p;
      p.source = std::move(table);
      p.source_schema = plan.schema;
      return p;
    }
    case PlanKind::kBindingRef: {
      auto it = ctx.bindings.find(plan.binding_name);
      if (it == ctx.bindings.end()) {
        return Status::Internal("unbound relation: " + plan.binding_name);
      }
      Pipeline p;
      p.source = it->second;
      p.source_schema = plan.schema;
      return p;
    }
    case PlanKind::kFilter: {
      SODA_ASSIGN_OR_RETURN(Pipeline p, BuildPipeline(*plan.children[0], ctx));
      p.transforms.push_back(
          std::make_shared<FilterTransform>(plan.predicate->Clone()));
      return p;
    }
    case PlanKind::kProject: {
      SODA_ASSIGN_OR_RETURN(Pipeline p, BuildPipeline(*plan.children[0], ctx));
      std::vector<ExprPtr> exprs;
      exprs.reserve(plan.exprs.size());
      for (const auto& e : plan.exprs) exprs.push_back(e->Clone());
      p.transforms.push_back(
          std::make_shared<ProjectTransform>(std::move(exprs)));
      return p;
    }
    case PlanKind::kJoin: {
      // Build (right) side executes to completion first; probe (left) side
      // extends the pipeline — joins only break the pipeline on one side,
      // as in HyPer.
      SODA_ASSIGN_OR_RETURN(TablePtr build,
                            ExecutePlan(*plan.children[1], ctx));
      SODA_ASSIGN_OR_RETURN(Pipeline p, BuildPipeline(*plan.children[0], ctx));
      Schema concat = plan.children[0]->schema.Concat(plan.children[1]->schema);
      if (plan.left_keys.empty()) {
        p.transforms.push_back(
            std::make_shared<CrossJoinTransform>(std::move(build), concat));
      } else {
        SODA_ASSIGN_OR_RETURN(
            std::shared_ptr<JoinHashTable> ht,
            JoinHashTable::Build(std::move(build), plan.right_keys));
        p.resources.push_back(ht);
        p.transforms.push_back(std::make_shared<HashJoinProbeTransform>(
            ht, plan.left_keys, concat));
      }
      if (plan.predicate) {
        p.transforms.push_back(
            std::make_shared<FilterTransform>(plan.predicate->Clone()));
      }
      return p;
    }
    default: {
      // Pipeline breaker: materialize and start a fresh pipeline.
      SODA_ASSIGN_OR_RETURN(TablePtr table, ExecutePlan(plan, ctx));
      Pipeline p;
      p.source = std::move(table);
      p.source_schema = plan.schema;
      return p;
    }
  }
}

Status RunPipeline(const Pipeline& pipeline, Sink& sink, ExecContext& ctx) {
  const Table& source = *pipeline.source;
  const size_t total = source.num_rows();

  std::mutex error_mu;
  Status first_error;
  std::atomic<bool> failed{false};

  // Guard-aware: every morsel boundary probes cancellation / deadline /
  // memory budget / fault injection, and worker-side table appends are
  // charged to the query's accountant.
  Status guard_status = ParallelFor(
      ctx.guard, total,
      [&](size_t begin, size_t end, size_t worker_id) {
        if (failed.load(std::memory_order_relaxed)) return;
        for (size_t offset = begin; offset < end;
             offset += kChunkCapacity) {
          if (failed.load(std::memory_order_relaxed)) return;
          size_t count = std::min(kChunkCapacity, end - offset);
          DataChunk chunk;
          source.ScanSlice(offset, count, &chunk);

          // Apply the transform chain with continuation-style emits.
          std::function<Status(DataChunk&, size_t)> apply =
              [&](DataChunk& c, size_t idx) -> Status {
            if (c.num_rows() == 0) return Status::OK();
            if (idx == pipeline.transforms.size()) {
              return sink.Consume(c, worker_id);
            }
            return pipeline.transforms[idx]->Apply(
                c, [&](DataChunk& next) { return apply(next, idx + 1); });
          };
          Status st = apply(chunk, 0);
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      },
      /*morsel_size=*/kChunkCapacity * 8);

  SODA_RETURN_NOT_OK(first_error);
  SODA_RETURN_NOT_OK(guard_status);
  return sink.Finalize();
}

Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext& ctx) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return ctx.catalog->GetTable(plan.table_name);
    case PlanKind::kBindingRef: {
      auto it = ctx.bindings.find(plan.binding_name);
      if (it == ctx.bindings.end()) {
        return Status::Internal("unbound relation: " + plan.binding_name);
      }
      return it->second;
    }
    case PlanKind::kValues:
      return ExecuteValues(plan);
    case PlanKind::kProject: {
      // Fast path for pure column selections over a base relation (e.g.
      // the `(SELECT x1..xd FROM data)` inputs of analytics operators,
      // which HyPer would fuse into the operator's own materialization):
      // one bulk column copy instead of chunked pipeline copies.
      const PlanNode& child = *plan.children[0];
      bool all_refs = true;
      for (const auto& e : plan.exprs) {
        if (e->kind != ExprKind::kColumnRef) {
          all_refs = false;
          break;
        }
      }
      if (all_refs && (child.kind == PlanKind::kScan ||
                       child.kind == PlanKind::kBindingRef)) {
        SODA_ASSIGN_OR_RETURN(TablePtr source, ExecutePlan(child, ctx));
        auto out = std::make_shared<Table>("project", plan.schema);
        size_t bytes = 0;
        for (const auto& e : plan.exprs) {
          bytes += source->column(e->column_index).MemoryUsage();
        }
        SODA_RETURN_NOT_OK(GuardReserve(ctx.guard, bytes, "exec.project"));
        for (size_t i = 0; i < plan.exprs.size(); ++i) {
          Column col(source->column(plan.exprs[i]->column_index).type());
          col.AppendSlice(source->column(plan.exprs[i]->column_index), 0,
                          source->num_rows());
          SODA_RETURN_NOT_OK(out->SetColumn(i, std::move(col)));
        }
        ctx.stats.cumulative_materialized_tuples += out->num_rows();
        return out;
      }
      [[fallthrough]];
    }
    case PlanKind::kFilter:
    case PlanKind::kJoin: {
      SODA_ASSIGN_OR_RETURN(Pipeline p, BuildPipeline(plan, ctx));
      MaterializeSink sink(plan.schema);
      SODA_RETURN_NOT_OK(RunPipeline(p, sink, ctx));
      ctx.stats.cumulative_materialized_tuples += sink.result()->num_rows();
      return sink.result();
    }
    case PlanKind::kAggregate:
      return ExecuteAggregate(plan, ctx);
    case PlanKind::kSort:
      return ExecuteSort(plan, ctx);
    case PlanKind::kLimit:
      return ExecuteLimit(plan, ctx);
    case PlanKind::kUnionAll:
      return ExecuteUnionAll(plan, ctx);
    case PlanKind::kRecursiveCte:
      return ExecuteRecursiveCte(plan, ctx);
    case PlanKind::kIterate:
      return ExecuteIterate(plan, ctx);
    case PlanKind::kTableFunction:
      return ExecuteTableFunction(plan, ctx);
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace soda
