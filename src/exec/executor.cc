#include "exec/executor.h"

#include "exec/physical_plan.h"
#include "exec/plan_verifier.h"
#include "util/parallel.h"

namespace soda {

MaterializeSink::MaterializeSink(Schema schema) : schema_(std::move(schema)) {
  partials_.resize(NumWorkers());
}

Status MaterializeSink::Consume(DataChunk& chunk, const SinkContext& sctx) {
  auto& partial = partials_[sctx.worker_id];
  if (!partial) partial = std::make_unique<Table>("partial", schema_);
  return partial->AppendChunk(chunk);
}

Status MaterializeSink::Finalize() {
  // Single-producer case (serial pipelines, scheduler-thread UNION ALL
  // appends): adopt the partial instead of copying it.
  std::unique_ptr<Table>* only = nullptr;
  size_t populated = 0;
  for (auto& partial : partials_) {
    if (!partial) continue;
    ++populated;
    only = &partial;
  }
  if (populated == 1) {
    result_ = std::move(*only);
    partials_.clear();
    return Status::OK();
  }
  result_ = std::make_shared<Table>("result", schema_);
  for (auto& partial : partials_) {
    if (!partial) continue;
    for (size_t c = 0; c < partial->num_columns(); ++c) {
      result_->column(c).AppendSlice(partial->column(c), 0,
                                     partial->num_rows());
    }
    partial.reset();
  }
  return Status::OK();
}

Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext& ctx) {
  SODA_ASSIGN_OR_RETURN(PhysicalPlan physical, LowerPlan(plan));
  if (ctx.verify_plans || kPlanVerifierAlwaysOn) {
    SODA_RETURN_NOT_OK(ctx.Probe(kVerifyPlanSite));
    SODA_RETURN_NOT_OK(VerifyPlan(plan, physical));
  }
  SODA_RETURN_NOT_OK(physical.Execute(ctx));
  return physical.result();
}

}  // namespace soda
