/// \file executor.h
/// Plan execution: morsel-parallel push pipelines over the plan IR.
///
/// Pipeline model (paper §3): a pipeline is a materialized source relation
/// plus a chain of streaming transforms (filter, project, join probe)
/// ending in a pipeline-breaking sink (materialize, aggregate build).
/// Workers pull morsels from the source and push chunks through the chain
/// into thread-local sink state, which is merged once at the end — the
/// same structure HyPer generates code for; soda interprets it with
/// vectorized transforms (DESIGN.md §3).

#ifndef SODA_EXEC_EXECUTOR_H_
#define SODA_EXEC_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/exec_context.h"
#include "sql/logical_plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace soda {

/// Executes a plan tree to a fully materialized relation.
Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext& ctx);

// --- pipeline machinery (exposed for the aggregate/iterate executors) ----

/// A streaming chunk-to-chunks operator. Implementations must be reentrant
/// (Apply is called concurrently from several workers with distinct
/// chunks).
class Transform {
 public:
  virtual ~Transform() = default;
  using Emit = std::function<Status(DataChunk&)>;
  /// Transforms `chunk`, invoking `emit` for every output chunk (0..n
  /// times).
  virtual Status Apply(DataChunk& chunk, const Emit& emit) const = 0;
};

/// A pipeline-breaking consumer with per-worker state.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual Status Consume(DataChunk& chunk, size_t worker_id) = 0;
  /// Merges worker state; called once, after all Consume calls finished.
  virtual Status Finalize() = 0;
};

/// A runnable pipeline: source relation + transform chain. Owns shared
/// resources (e.g. join hash tables) for its transforms.
struct Pipeline {
  TablePtr source;
  Schema source_schema;
  std::vector<std::shared_ptr<const Transform>> transforms;
  std::vector<std::shared_ptr<void>> resources;
};

/// Lowers a plan subtree into a pipeline, executing any pipeline breakers
/// (and join build sides) it encounters.
Result<Pipeline> BuildPipeline(const PlanNode& plan, ExecContext& ctx);

/// Runs the pipeline: parallel morsel scan -> transforms -> sink.
Status RunPipeline(const Pipeline& pipeline, Sink& sink, ExecContext& ctx);

/// Sink that materializes into per-worker tables merged on Finalize.
class MaterializeSink : public Sink {
 public:
  explicit MaterializeSink(Schema schema);
  Status Consume(DataChunk& chunk, size_t worker_id) override;
  Status Finalize() override;
  TablePtr result() const { return result_; }

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Table>> partials_;
  TablePtr result_;
};

// Implemented in sibling .cc files; declared here so executor.cc can
// dispatch without circular headers.
Result<TablePtr> ExecuteAggregate(const PlanNode& plan, ExecContext& ctx);
Result<TablePtr> ExecuteRecursiveCte(const PlanNode& plan, ExecContext& ctx);
Result<TablePtr> ExecuteIterate(const PlanNode& plan, ExecContext& ctx);
Result<TablePtr> ExecuteTableFunction(const PlanNode& plan, ExecContext& ctx);
Result<TablePtr> ExecuteSort(const PlanNode& plan, ExecContext& ctx);

}  // namespace soda

#endif  // SODA_EXEC_EXECUTOR_H_
