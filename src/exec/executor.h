/// \file executor.h
/// Plan execution: morsel-parallel push pipelines over the plan IR.
///
/// Pipeline model (paper §3): a pipeline is a source relation plus a chain
/// of streaming transforms (filter, project, join probe) ending in a
/// pipeline-breaking sink (materialize, aggregate build, sort, limit).
/// Workers pull morsels from the source and push chunks through the chain
/// into thread-local sink state, which is merged once at the end — the
/// same structure HyPer generates code for; soda interprets it with
/// vectorized transforms (DESIGN.md §3).
///
/// Since the physical-plan refactor the lowering of a whole query into a
/// DAG of such pipelines lives in exec/physical_plan.{h,cc}; this header
/// holds the unified operator interface every pipeline stage implements:
/// `Transform` for streaming operators and `Sink` / `TableSink` for
/// pipeline breakers.

#ifndef SODA_EXEC_EXECUTOR_H_
#define SODA_EXEC_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "sql/logical_plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace soda {

/// Executes a plan tree to a fully materialized relation (lowers it to a
/// physical plan and runs the pipelines; see exec/physical_plan.h).
Result<TablePtr> ExecutePlan(const PlanNode& plan, ExecContext& ctx);

// --- unified physical operator interface ---------------------------------

/// A streaming chunk-to-chunks operator. Implementations must be reentrant
/// (Apply is called concurrently from several workers with distinct
/// chunks).
class Transform {
 public:
  virtual ~Transform() = default;
  using Emit = std::function<Status(DataChunk&)>;
  /// Transforms `chunk`, invoking `emit` for every output chunk (0..n
  /// times).
  virtual Status Apply(DataChunk& chunk, const Emit& emit) const = 0;
  /// True when the transform emits exactly the rows it receives, in order
  /// (pure projection). Lets LIMIT bound the source scan to offset+limit
  /// rows instead of relying on the early-exit flag.
  virtual bool preserves_cardinality() const { return false; }
  /// EXPLAIN display name, e.g. "Filter [(t.a > 1)]".
  virtual std::string name() const = 0;
};

/// Per-chunk context handed to sinks by the pipeline driver.
struct SinkContext {
  /// Stable worker slot in [0, NumWorkers()); index into per-worker state.
  size_t worker_id = 0;
  /// Source-order id of the originating source chunk (its row offset).
  /// All chunks emitted for one source chunk share its sequence, so
  /// order-sensitive sinks (LIMIT) can reassemble source order.
  uint64_t sequence = 0;
};

/// A pipeline-breaking consumer with per-worker state.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual Status Consume(DataChunk& chunk, const SinkContext& sctx) = 0;
  /// Merges worker state; called once, after all Consume calls finished.
  virtual Status Finalize() = 0;
  /// Early-exit signal: once true, workers stop pulling further morsels
  /// (cross-worker LIMIT cutoff). Must be cheap — polled per chunk.
  virtual bool done() const { return false; }
  /// EXPLAIN display name, e.g. "Materialize", "Aggregate groups=1 [...]".
  virtual std::string name() const = 0;
};

/// A sink whose finalized state is a relation.
class TableSink : public Sink {
 public:
  /// Valid after Finalize().
  virtual TablePtr result() const = 0;
};

/// Sink that materializes into per-worker tables merged on Finalize. When
/// only one worker produced rows (serial pipelines, shared UNION ALL
/// sinks on the caller thread) the partial is adopted without a copy.
class MaterializeSink : public TableSink {
 public:
  explicit MaterializeSink(Schema schema);
  Status Consume(DataChunk& chunk, const SinkContext& sctx) override;
  Status Finalize() override;
  std::string name() const override { return "Materialize"; }
  TablePtr result() const override { return result_; }

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Table>> partials_;
  TablePtr result_;
};

// --- breaker sink factories (implemented in sibling .cc files) -----------
// All factories keep a reference to `plan`; the plan node must outlive the
// sink (physical plans never outlive the logical plan they were lowered
// from).

/// Hash aggregation sink for a kAggregate node (aggregate.cc).
std::shared_ptr<TableSink> MakeAggregateSink(const PlanNode& plan);

/// ORDER BY sink for a kSort node (operators.cc): materializes its input
/// and key columns per worker, then stable-sorts with a typed (unboxed)
/// comparator at Finalize.
std::shared_ptr<TableSink> MakeSortSink(const PlanNode& plan);

/// LIMIT/OFFSET sink for a kLimit node (operators.cc): buffers
/// sequence-tagged chunks and trips `done()` once offset+limit rows are
/// collected, so the pipeline stops scanning (cross-worker early exit).
std::shared_ptr<TableSink> MakeLimitSink(const PlanNode& plan);

/// Sorts `input` by `plan.sort_keys` (stable, NULLs first) into a fresh
/// table — the shared core of MakeSortSink and the transform-free ORDER BY
/// fast path (operators.cc).
Result<TablePtr> SortTable(const Table& input, const PlanNode& plan,
                           ExecContext& ctx);

// --- operator-style executors (implemented in sibling .cc files) ---------

Result<TablePtr> ExecuteRecursiveCte(const PlanNode& plan, ExecContext& ctx);
Result<TablePtr> ExecuteIterate(const PlanNode& plan, ExecContext& ctx);

/// Runs the analytics operator of a kTableFunction node over its already
/// materialized relation inputs (table_function.cc).
Result<TablePtr> ExecuteTableFunctionWithInputs(const PlanNode& plan,
                                                std::vector<TablePtr> inputs,
                                                ExecContext& ctx);

}  // namespace soda

#endif  // SODA_EXEC_EXECUTOR_H_
