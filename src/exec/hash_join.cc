#include "exec/hash_join.h"

#include <atomic>

#include "exec/hash_kernels.h"
#include "util/first_error.h"
#include "util/parallel.h"

namespace soda {

namespace {

/// Fault/cancellation site for hash-table construction.
constexpr char kJoinBuildSite[] = "exec.join_build";
/// Fault/cancellation site for cross-join expansion.
constexpr char kCrossJoinSite[] = "exec.cross_join";

}  // namespace

uint64_t HashCell(const Column& col, size_t row) {
  uint64_t h = 0;
  HashColumn(col, row, row + 1, &h);
  return h;
}

bool CellsEqual(const Column& a, size_t ra, const Column& b, size_t rb) {
  if (a.IsNull(ra) || b.IsNull(rb)) return false;  // SQL: NULL != NULL
  if (a.type() == DataType::kVarchar || b.type() == DataType::kVarchar) {
    return a.type() == b.type() && a.GetString(ra) == b.GetString(rb);
  }
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    return a.GetNumeric(ra) == b.GetNumeric(rb);
  }
  return a.GetBigInt(ra) == b.GetBigInt(rb);
}

Result<std::shared_ptr<JoinHashTable>> JoinHashTable::Build(
    TablePtr build, std::vector<size_t> key_cols, QueryGuard* guard) {
  SODA_RETURN_NOT_OK(GuardProbe(guard, kJoinBuildSite));
  auto ht = std::make_shared<JoinHashTable>();
  ht->build_ = std::move(build);
  ht->key_cols_ = std::move(key_cols);
  const size_t n = ht->build_->num_rows();

  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  // Charge the table's arrays before allocating them: bucket heads, the
  // per-row chain, and the per-row hashes.
  SODA_RETURN_NOT_OK(GuardReserve(
      guard,
      buckets * sizeof(uint32_t) + n * (sizeof(uint32_t) + sizeof(uint64_t)),
      kJoinBuildSite));
  ht->mask_ = buckets - 1;
  ht->head_.assign(buckets, kInvalid);
  ht->next_.assign(n, kInvalid);
  ht->hashes_.resize(n);

  std::vector<const Column*> cols(ht->key_cols_.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    cols[c] = &ht->build_->column(ht->key_cols_[c]);
  }

  // Morsel-parallel two-phase body: hash the morsel with the columnar
  // kernels, then publish each row with a CAS on its bucket head. next_[i]
  // is written only by row i's owner, so the chain itself is race-free;
  // chain order depends on the interleaving (join results are set-equal,
  // not order-stable, across worker counts).
  FirstError first_error;
  JoinHashTable* t = ht.get();
  Status par = ParallelFor(
      guard, n,
      [t, &cols, guard, &first_error](size_t begin, size_t end, size_t) {
        if (first_error.failed()) return;
        Status st = GuardProbe(guard, kJoinBuildSite);
        if (!st.ok()) {
          first_error.Record(std::move(st));
          return;
        }
        HashRows(cols, begin, end, &t->hashes_[begin]);
        for (size_t i = begin; i < end; ++i) {
          const uint64_t slot = t->hashes_[i] & t->mask_;
          std::atomic_ref<uint32_t> head(t->head_[slot]);
          uint32_t old = head.load(std::memory_order_relaxed);
          do {
            t->next_[i] = old;
          } while (!head.compare_exchange_weak(old, static_cast<uint32_t>(i),
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
        }
      });
  SODA_RETURN_NOT_OK(first_error.Take());
  SODA_RETURN_NOT_OK(par);
  return ht;
}

void JoinHashTable::ProbeRow(uint64_t hash, const DataChunk& chunk,
                             const std::vector<size_t>& probe_keys,
                             size_t row,
                             std::vector<uint32_t>* matches) const {
  for (uint32_t i = head_[hash & mask_]; i != kInvalid; i = next_[i]) {
    if (hashes_[i] != hash) continue;
    bool equal = true;
    for (size_t c = 0; c < key_cols_.size(); ++c) {
      if (!CellsEqual(chunk.column(probe_keys[c]), row,
                      build_->column(key_cols_[c]), i)) {
        equal = false;
        break;
      }
    }
    if (equal) matches->push_back(i);
  }
}

HashJoinProbeTransform::HashJoinProbeTransform(
    std::shared_ptr<const JoinHashTable> table, std::vector<size_t> probe_keys,
    Schema out_schema)
    : table_(std::move(table)),
      probe_keys_(std::move(probe_keys)),
      out_schema_(std::move(out_schema)) {}

Status HashJoinProbeTransform::Apply(DataChunk& chunk,
                                     const Emit& emit) const {
  const Table& build = table_->build_table();
  const size_t left_cols = chunk.num_columns();
  const size_t n = chunk.num_rows();

  // Hash the whole chunk's keys up front (columnar kernels), then gather
  // match pairs into selection vectors and materialize with one bulk
  // gather per column — no per-row match buffers, no per-cell dispatch.
  std::vector<const Column*> cols(probe_keys_.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    cols[c] = &chunk.column(probe_keys_[c]);
  }
  std::vector<uint64_t> hashes(n);
  HashRows(cols, 0, n, hashes.data());

  std::vector<uint32_t> probe_sel, build_sel;
  probe_sel.reserve(kChunkCapacity);
  build_sel.reserve(kChunkCapacity);
  auto flush = [&]() -> Status {
    DataChunk out(out_schema_);
    for (size_t c = 0; c < left_cols; ++c) {
      out.column(c).AppendGather(chunk.column(c), probe_sel.data(),
                                 probe_sel.size());
    }
    for (size_t c = 0; c < build.num_columns(); ++c) {
      out.column(left_cols + c).AppendGather(build.column(c),
                                             build_sel.data(),
                                             build_sel.size());
    }
    probe_sel.clear();
    build_sel.clear();
    return emit(out);
  };

  std::vector<uint32_t> matches;
  // analyze:allow(guard-probe: n is one morsel chunk; ParallelFor probes exec.morsel)
  for (size_t row = 0; row < n; ++row) {
    matches.clear();
    table_->ProbeRow(hashes[row], chunk, probe_keys_, row, &matches);
    for (uint32_t m : matches) {
      probe_sel.push_back(static_cast<uint32_t>(row));
      build_sel.push_back(m);
      if (probe_sel.size() >= kChunkCapacity) SODA_RETURN_NOT_OK(flush());
    }
  }
  if (!probe_sel.empty()) SODA_RETURN_NOT_OK(flush());
  return Status::OK();
}

CrossJoinTransform::CrossJoinTransform(TablePtr right, Schema out_schema)
    : right_(std::move(right)), out_schema_(std::move(out_schema)) {}

Status CrossJoinTransform::Apply(DataChunk& chunk, const Emit& emit) const {
  const Table& right = *right_;
  const size_t left_cols = chunk.num_columns();
  const size_t rn = right.num_rows();
  // The calling worker's guard (installed by the pipeline's ParallelFor
  // MemoryScope); covers cancellation/deadline/faults for the quadratic
  // expansion, which can dwarf the morsel-boundary probes upstream.
  QueryGuard* guard = QueryGuard::Current();
  DataChunk out(out_schema_);
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    size_t emitted = 0;
    while (emitted < rn) {
      SODA_RETURN_NOT_OK(GuardProbe(guard, kCrossJoinSite));
      size_t batch = std::min(rn - emitted, kChunkCapacity - out.num_rows());
      // Repeat the left row `batch` times, then splice the right slice.
      for (size_t c = 0; c < left_cols; ++c) {
        out.column(c).AppendRepeated(chunk.column(c), row, batch);
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        out.column(left_cols + c).AppendSlice(right.column(c), emitted, batch);
      }
      emitted += batch;
      if (out.num_rows() >= kChunkCapacity) {
        SODA_RETURN_NOT_OK(emit(out));
        out = DataChunk(out_schema_);
      }
    }
  }
  if (out.num_rows() > 0) SODA_RETURN_NOT_OK(emit(out));
  return Status::OK();
}

}  // namespace soda
