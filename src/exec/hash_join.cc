#include "exec/hash_join.h"

#include <bit>
#include <cmath>
#include <functional>

namespace soda {

namespace {

uint64_t Mix(uint64_t x) {
  // SplitMix64 finalizer.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashDoubleCanonical(double d) {
  // Integral doubles hash like the corresponding int64; -0.0 like 0.0.
  if (d == 0.0) return Mix(0);
  double r = std::nearbyint(d);
  if (r == d && std::fabs(d) < 9.2e18) {
    return Mix(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  return Mix(std::bit_cast<uint64_t>(d));
}

}  // namespace

uint64_t HashCell(const Column& col, size_t row) {
  if (col.IsNull(row)) return 0x9E3779B97F4A7C15ULL;  // arbitrary NULL tag
  switch (col.type()) {
    case DataType::kBool:
    case DataType::kBigInt:
      return Mix(static_cast<uint64_t>(col.GetBigInt(row)));
    case DataType::kDouble:
      return HashDoubleCanonical(col.GetDouble(row));
    case DataType::kVarchar:
      return std::hash<std::string>{}(col.GetString(row));
    default:
      return 0;
  }
}

bool CellsEqual(const Column& a, size_t ra, const Column& b, size_t rb) {
  if (a.IsNull(ra) || b.IsNull(rb)) return false;  // SQL: NULL != NULL
  if (a.type() == DataType::kVarchar || b.type() == DataType::kVarchar) {
    return a.type() == b.type() && a.GetString(ra) == b.GetString(rb);
  }
  if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
    return a.GetNumeric(ra) == b.GetNumeric(rb);
  }
  return a.GetBigInt(ra) == b.GetBigInt(rb);
}

Result<std::shared_ptr<JoinHashTable>> JoinHashTable::Build(
    TablePtr build, std::vector<size_t> key_cols) {
  auto ht = std::make_shared<JoinHashTable>();
  ht->build_ = std::move(build);
  ht->key_cols_ = std::move(key_cols);
  const size_t n = ht->build_->num_rows();

  size_t buckets = 16;
  while (buckets < n * 2) buckets <<= 1;
  ht->mask_ = buckets - 1;
  ht->head_.assign(buckets, kInvalid);
  ht->next_.assign(n, kInvalid);
  ht->hashes_.resize(n);

  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (size_t k : ht->key_cols_) {
      h = h * 31 + HashCell(ht->build_->column(k), i);
    }
    ht->hashes_[i] = h;
    uint64_t slot = h & ht->mask_;
    ht->next_[i] = ht->head_[slot];
    ht->head_[slot] = static_cast<uint32_t>(i);
  }
  return ht;
}

void JoinHashTable::Probe(const DataChunk& chunk,
                          const std::vector<size_t>& probe_keys, size_t row,
                          std::vector<uint32_t>* matches) const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t k : probe_keys) {
    h = h * 31 + HashCell(chunk.column(k), row);
  }
  for (uint32_t i = head_[h & mask_]; i != kInvalid; i = next_[i]) {
    if (hashes_[i] != h) continue;
    bool equal = true;
    for (size_t c = 0; c < key_cols_.size(); ++c) {
      if (!CellsEqual(chunk.column(probe_keys[c]), row,
                      build_->column(key_cols_[c]), i)) {
        equal = false;
        break;
      }
    }
    if (equal) matches->push_back(i);
  }
}

HashJoinProbeTransform::HashJoinProbeTransform(
    std::shared_ptr<const JoinHashTable> table, std::vector<size_t> probe_keys,
    Schema out_schema)
    : table_(std::move(table)),
      probe_keys_(std::move(probe_keys)),
      out_schema_(std::move(out_schema)) {}

Status HashJoinProbeTransform::Apply(DataChunk& chunk,
                                     const Emit& emit) const {
  const Table& build = table_->build_table();
  const size_t left_cols = chunk.num_columns();
  DataChunk out(out_schema_);
  std::vector<uint32_t> matches;
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    matches.clear();
    table_->Probe(chunk, probe_keys_, row, &matches);
    for (uint32_t m : matches) {
      for (size_t c = 0; c < left_cols; ++c) {
        out.column(c).AppendFrom(chunk.column(c), row);
      }
      for (size_t c = 0; c < build.num_columns(); ++c) {
        out.column(left_cols + c).AppendFrom(build.column(c), m);
      }
      if (out.num_rows() >= kChunkCapacity) {
        SODA_RETURN_NOT_OK(emit(out));
        out = DataChunk(out_schema_);
      }
    }
  }
  if (out.num_rows() > 0) SODA_RETURN_NOT_OK(emit(out));
  return Status::OK();
}

CrossJoinTransform::CrossJoinTransform(TablePtr right, Schema out_schema)
    : right_(std::move(right)), out_schema_(std::move(out_schema)) {}

Status CrossJoinTransform::Apply(DataChunk& chunk, const Emit& emit) const {
  const Table& right = *right_;
  const size_t left_cols = chunk.num_columns();
  const size_t rn = right.num_rows();
  DataChunk out(out_schema_);
  for (size_t row = 0; row < chunk.num_rows(); ++row) {
    size_t emitted = 0;
    while (emitted < rn) {
      size_t batch = std::min(rn - emitted, kChunkCapacity - out.num_rows());
      // Repeat the left row `batch` times, then splice the right slice.
      for (size_t c = 0; c < left_cols; ++c) {
        for (size_t b = 0; b < batch; ++b) {
          out.column(c).AppendFrom(chunk.column(c), row);
        }
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        out.column(left_cols + c).AppendSlice(right.column(c), emitted, batch);
      }
      emitted += batch;
      if (out.num_rows() >= kChunkCapacity) {
        SODA_RETURN_NOT_OK(emit(out));
        out = DataChunk(out_schema_);
      }
    }
  }
  if (out.num_rows() > 0) SODA_RETURN_NOT_OK(emit(out));
  return Status::OK();
}

}  // namespace soda
