/// \file hash_join.h
/// Hash table for equi-joins and the join/cross-join probe transforms.

#ifndef SODA_EXEC_HASH_JOIN_H_
#define SODA_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "storage/table.h"

namespace soda {

/// Hashes one cell of a column to a 64-bit value; doubles with integral
/// values hash equal to the corresponding BIGINT so mixed-type keys work
/// after binder-inserted casts (keys are always cast to a common type, so
/// this is belt-and-braces).
uint64_t HashCell(const Column& col, size_t row);

/// True when two cells compare SQL-equal (NULL never equals anything).
bool CellsEqual(const Column& a, size_t ra, const Column& b, size_t rb);

/// Immutable chaining hash table over the build side of an equi-join.
/// Built once (single-threaded; build sides are small in our workloads),
/// probed concurrently.
class JoinHashTable {
 public:
  static Result<std::shared_ptr<JoinHashTable>> Build(
      TablePtr build, std::vector<size_t> key_cols);

  /// Appends the indices of build rows whose keys match probe row
  /// `(chunk, row)` to `matches`.
  void Probe(const DataChunk& chunk, const std::vector<size_t>& probe_keys,
             size_t row, std::vector<uint32_t>* matches) const;

  const Table& build_table() const { return *build_; }

 private:
  TablePtr build_;
  std::vector<size_t> key_cols_;
  // Chaining layout: head_[hash & mask] -> first row + next_ chain.
  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> hashes_;
  uint64_t mask_ = 0;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
};

/// Streaming probe: emits probe-row ++ build-row concatenations.
class HashJoinProbeTransform : public Transform {
 public:
  HashJoinProbeTransform(std::shared_ptr<const JoinHashTable> table,
                         std::vector<size_t> probe_keys, Schema out_schema);
  Status Apply(DataChunk& chunk, const Emit& emit) const override;
  std::string name() const override { return "HashJoinProbe"; }

 private:
  std::shared_ptr<const JoinHashTable> table_;
  std::vector<size_t> probe_keys_;
  Schema out_schema_;
};

/// Streaming nested-loop expansion against a materialized right side.
class CrossJoinTransform : public Transform {
 public:
  CrossJoinTransform(TablePtr right, Schema out_schema);
  Status Apply(DataChunk& chunk, const Emit& emit) const override;
  std::string name() const override { return "CrossJoin"; }

 private:
  TablePtr right_;
  Schema out_schema_;
};

}  // namespace soda

#endif  // SODA_EXEC_HASH_JOIN_H_
