/// \file hash_join.h
/// Hash table for equi-joins and the join/cross-join probe transforms.

#ifndef SODA_EXEC_HASH_JOIN_H_
#define SODA_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "storage/table.h"
#include "util/query_guard.h"

namespace soda {

/// Hashes one cell of a column to a 64-bit value; doubles with integral
/// values hash equal to the corresponding BIGINT so mixed-type keys work
/// after binder-inserted casts (keys are always cast to a common type, so
/// this is belt-and-braces). Scalar wrapper over the columnar kernels in
/// exec/hash_kernels.h — batch code should call those directly.
uint64_t HashCell(const Column& col, size_t row);

/// True when two cells compare SQL-equal (NULL never equals anything).
bool CellsEqual(const Column& a, size_t ra, const Column& b, size_t rb);

/// Immutable chaining hash table over the build side of an equi-join.
///
/// Built morsel-parallel: workers hash their morsels with the columnar
/// kernels, then publish rows into the shared bucket array with a CAS on
/// the bucket head (`next_` is per-row, so insertion is lock-free and
/// wait-free per row). Probed concurrently after Build returns.
class JoinHashTable {
 public:
  /// Builds the table over `build`'s `key_cols`. The guard (may be null)
  /// is probed at every morsel under the "exec.join_build" site and
  /// charged for the table's bucket/chain/hash arrays, so a 100M-row
  /// build is cancellable and memory-accounted.
  static Result<std::shared_ptr<JoinHashTable>> Build(
      TablePtr build, std::vector<size_t> key_cols,
      QueryGuard* guard = nullptr);

  /// Appends the indices of build rows whose keys match probe row
  /// `(chunk, row)` to `matches`. `hash` is the row's combined key hash
  /// (from HashRows over the probe key columns).
  void ProbeRow(uint64_t hash, const DataChunk& chunk,
                const std::vector<size_t>& probe_keys, size_t row,
                std::vector<uint32_t>* matches) const;

  const Table& build_table() const { return *build_; }
  size_t num_buckets() const { return head_.size(); }

  /// Bytes retained by this table: bucket/chain/hash arrays plus the
  /// pinned build-side table. This is what the hash-table recycler
  /// charges against its byte budget, because a cached entry keeps the
  /// build table alive even after the catalog republishes it.
  size_t MemoryUsage() const {
    return head_.capacity() * sizeof(uint32_t) +
           next_.capacity() * sizeof(uint32_t) +
           hashes_.capacity() * sizeof(uint64_t) + build_->MemoryUsage();
  }

 private:
  TablePtr build_;
  std::vector<size_t> key_cols_;
  // Chaining layout: head_[hash & mask] -> first row + next_ chain.
  // head_ entries are published with std::atomic_ref CAS during Build and
  // read plain afterwards (Build's ParallelFor join is the release fence).
  std::vector<uint32_t> head_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> hashes_;
  uint64_t mask_ = 0;
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
};

/// Streaming probe: emits probe-row ++ build-row concatenations.
/// Vectorized: the whole chunk's key hashes are computed up front with the
/// columnar kernels, matches are gathered into selection vectors, and the
/// output is materialized with one bulk gather per column.
class HashJoinProbeTransform : public Transform {
 public:
  HashJoinProbeTransform(std::shared_ptr<const JoinHashTable> table,
                         std::vector<size_t> probe_keys, Schema out_schema);
  Status Apply(DataChunk& chunk, const Emit& emit) const override;
  std::string name() const override { return "HashJoinProbe"; }

 private:
  std::shared_ptr<const JoinHashTable> table_;
  std::vector<size_t> probe_keys_;
  Schema out_schema_;
};

/// Streaming nested-loop expansion against a materialized right side.
/// Probes the calling worker's guard under "exec.cross_join" per output
/// batch, so quadratic blowups stay cancellable.
class CrossJoinTransform : public Transform {
 public:
  CrossJoinTransform(TablePtr right, Schema out_schema);
  Status Apply(DataChunk& chunk, const Emit& emit) const override;
  std::string name() const override { return "CrossJoin"; }

 private:
  TablePtr right_;
  Schema out_schema_;
};

}  // namespace soda

#endif  // SODA_EXEC_HASH_JOIN_H_
