#include "exec/hash_kernels.h"

#include <bit>
#include <cmath>
#include <functional>

namespace soda {

namespace {

/// Integral doubles hash like the corresponding int64; -0.0 like 0.0.
/// Keeps mixed-type keys consistent after binder-inserted casts.
uint64_t HashDoubleCanonical(double d) {
  if (d == 0.0) return MixHash(0);
  double r = std::nearbyint(d);
  if (r == d && std::fabs(d) < 9.2e18) {
    return MixHash(static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  return MixHash(std::bit_cast<uint64_t>(d));
}

/// Shared skeleton: `cell(i)` produces the cell hash for row i, `fold`
/// merges it into the output slot. The validity test is hoisted so dense
/// columns run a branch-free inner loop.
template <typename CellFn, typename FoldFn>
void ForEachCellHash(const Column& col, size_t begin, size_t end,
                     uint64_t* out, CellFn cell, FoldFn fold) {
  const std::vector<uint8_t>& validity = col.Validity();
  if (validity.empty()) {
    for (size_t i = begin; i < end; ++i) fold(out[i - begin], cell(i));
    return;
  }
  const uint8_t* valid = validity.data();
  for (size_t i = begin; i < end; ++i) {
    fold(out[i - begin], valid[i] ? cell(i) : kNullHash);
  }
}

template <typename FoldFn>
void HashColumnImpl(const Column& col, size_t begin, size_t end,
                    uint64_t* out, FoldFn fold) {
  switch (col.type()) {
    case DataType::kBool:
    case DataType::kBigInt: {
      const int64_t* data = col.I64Data();
      ForEachCellHash(
          col, begin, end, out,
          [data](size_t i) { return MixHash(static_cast<uint64_t>(data[i])); },
          fold);
      return;
    }
    case DataType::kDouble: {
      const double* data = col.F64Data();
      ForEachCellHash(
          col, begin, end, out,
          [data](size_t i) { return HashDoubleCanonical(data[i]); }, fold);
      return;
    }
    case DataType::kVarchar: {
      const std::vector<std::string>& strs = col.Strings();
      ForEachCellHash(
          col, begin, end, out,
          [&strs](size_t i) { return std::hash<std::string>{}(strs[i]); },
          fold);
      return;
    }
    default: {
      ForEachCellHash(
          col, begin, end, out, [](size_t) { return uint64_t{0}; }, fold);
      return;
    }
  }
}

}  // namespace

void HashColumn(const Column& col, size_t begin, size_t end, uint64_t* out) {
  HashColumnImpl(col, begin, end, out,
                 [](uint64_t& slot, uint64_t cell) { slot = cell; });
}

void HashColumnCombine(const Column& col, size_t begin, size_t end,
                       uint64_t* inout) {
  HashColumnImpl(col, begin, end, inout, [](uint64_t& slot, uint64_t cell) {
    slot = CombineHash(slot, cell);
  });
}

void HashRows(const std::vector<const Column*>& cols, size_t begin,
              size_t end, uint64_t* out) {
  if (cols.empty()) {
    for (size_t i = 0; i < end - begin; ++i) out[i] = kHashSeed;
    return;
  }
  HashColumn(*cols[0], begin, end, out);
  for (size_t c = 1; c < cols.size(); ++c) {
    HashColumnCombine(*cols[c], begin, end, out);
  }
}

uint64_t HashRow(const std::vector<const Column*>& cols, size_t row) {
  uint64_t h = kHashSeed;
  HashRows(cols, row, row + 1, &h);
  return h;
}

}  // namespace soda
