/// \file hash_kernels.h
/// Columnar hash kernels shared by the pipeline breakers (join build,
/// join probe, hash aggregation).
///
/// The paper's performance argument (§6.1) hinges on operator inner loops
/// running at memory bandwidth. Hashing a key column one cell at a time
/// through type dispatch (the old `HashCell` per-row path) costs a switch
/// and a validity branch per cell; these kernels hoist the dispatch out of
/// the loop and hash whole column ranges with typed inner loops, writing
/// 64-bit hashes into a caller-provided array. Multi-column keys are
/// combined with a mix-after-combine scheme (`h' = Mix(h ^ cell)`): unlike
/// the old linear `h*31 + cell` combiner, constructed collisions in one
/// column cannot cancel against another column's contribution (the
/// combiner is re-randomized through the full-avalanche finalizer at every
/// step).

#ifndef SODA_EXEC_HASH_KERNELS_H_
#define SODA_EXEC_HASH_KERNELS_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace soda {

/// Seed for the row-hash fold (FNV offset basis, kept from the old
/// combiner so single-column hashes stay recognizable in debuggers).
inline constexpr uint64_t kHashSeed = 0xCBF29CE484222325ULL;

/// Hash of a NULL cell; any fixed tag works (NULLs never compare equal in
/// joins, and group-equality re-checks the cells).
inline constexpr uint64_t kNullHash = 0x9E3779B97F4A7C15ULL;

/// SplitMix64 finalizer: a full-avalanche 64-bit bijection.
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Folds one cell hash into a running row hash. Mix-after-combine: the
/// result avalanches before the next column is folded in, so per-column
/// collisions do not survive the combine (regression-tested against the
/// old `h*31 + cell` scheme's constructible collisions).
inline uint64_t CombineHash(uint64_t h, uint64_t cell) {
  return MixHash(h ^ cell);
}

/// Writes the cell hashes of rows [begin, end) of `col` to
/// `out[0 .. end-begin)`. Typed inner loops; NULL cells hash to kNullHash.
void HashColumn(const Column& col, size_t begin, size_t end, uint64_t* out);

/// Folds the cell hashes of rows [begin, end) of `col` into
/// `inout[0 .. end-begin)` via CombineHash.
void HashColumnCombine(const Column& col, size_t begin, size_t end,
                       uint64_t* inout);

/// Combined key hash for rows [begin, end) over `cols` (first column
/// initializes, the rest fold in). Zero columns (global aggregates) write
/// kHashSeed everywhere.
void HashRows(const std::vector<const Column*>& cols, size_t begin,
              size_t end, uint64_t* out);

/// Scalar row hash, consistent with HashRows (used by merge paths that
/// touch one row at a time).
uint64_t HashRow(const std::vector<const Column*>& cols, size_t row);

}  // namespace soda

#endif  // SODA_EXEC_HASH_KERNELS_H_
