#include "exec/ht_recycler.h"

namespace soda {

Result<std::shared_ptr<const JoinHashTable>> HtRecycler::Lookup(
    uint64_t key, QueryGuard* guard) {
  // Inline literal so lint rule 5 ties this probe to the registry.
  SODA_RETURN_NOT_OK(GuardProbe(guard, "cache.ht_recycle"));
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::shared_ptr<const JoinHashTable>();
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->table;
}

void HtRecycler::Publish(uint64_t key,
                         std::shared_ptr<const JoinHashTable> table,
                         std::vector<PlanDependency> deps) {
  if (table == nullptr) return;
  for (const PlanDependency& d : deps) {
    // A recycled table bypasses the per-morsel CheckReadable gate, so a
    // quarantined build side must never enter the cache.
    if (d.quarantined) return;
  }
  const size_t bytes = table->MemoryUsage();
  MutexLock lock(&mu_);
  if (bytes > budget_) return;
  if (index_.count(key) != 0) return;  // lost a publish race; keep first
  EvictDownToLocked(budget_ - bytes);
  lru_.push_front(Entry{key, std::move(table), std::move(deps), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
}

void HtRecycler::InvalidateTable(const std::string& table) {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool depends = false;
    for (const PlanDependency& d : it->deps) {
      if (d.table == table) {
        depends = true;
        break;
      }
    }
    if (depends) {
      bytes_ -= it->bytes;
      ++evictions_;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void HtRecycler::EvictAll() {
  MutexLock lock(&mu_);
  EvictDownToLocked(0);
}

void HtRecycler::SetBudget(size_t bytes) {
  MutexLock lock(&mu_);
  budget_ = bytes;
  EvictDownToLocked(budget_);
}

HtRecycler::Stats HtRecycler::stats() const {
  MutexLock lock(&mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = static_cast<int64_t>(bytes_);
  s.entries = static_cast<int64_t>(lru_.size());
  return s;
}

void HtRecycler::EvictDownToLocked(size_t cap) {
  while (bytes_ > cap && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    ++evictions_;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace soda
