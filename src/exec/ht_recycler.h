/// \file ht_recycler.h
/// Join hash-table recycler: a bounded, byte-charged LRU of completed
/// build-side hash tables keyed by build-fragment fingerprint
/// (DESIGN.md §11).
///
/// A morsel-parallel join build is the dominant cost of repeated join
/// traffic; once a build completes, its immutable JoinHashTable is
/// published here under `fingerprint(build subtree) ⊕ right_keys`. The
/// fingerprint embeds every scanned table's catalog publication version
/// and schema hash, so any DML/DDL that republishes a base table
/// changes the key and the stale entry simply stops matching —
/// eviction (InvalidateTable / EvictAll / LRU pressure) only frees
/// memory, it is never load-bearing for correctness. Quarantined build
/// sides are refused at publish time because a recycled table would
/// bypass the per-morsel CheckReadable gate.
///
/// Locking: `mu_` is a leaf in the engine lock order (write_mu_ →
/// commit_mu_ → leaves); no callback or catalog call is made under it.

#ifndef SODA_EXEC_HT_RECYCLER_H_
#define SODA_EXEC_HT_RECYCLER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/hash_join.h"
#include "exec/plan_fingerprint.h"
#include "util/mutex.h"
#include "util/query_guard.h"
#include "util/status.h"

namespace soda {

/// Default recycler budget (64 MiB); overridable per session with
/// `SET soda.ht_cache_mb`.
inline constexpr size_t kDefaultHtCacheBytes = 64ull << 20;

class HtRecycler {
 public:
  /// Counter snapshot for soda_status().
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;
    int64_t entries = 0;
  };

  explicit HtRecycler(size_t budget_bytes = kDefaultHtCacheBytes)
      : budget_(budget_bytes) {}

  /// Looks up a completed build by fragment key. Probes `guard` (may be
  /// null) under "cache.ht_recycle" so lookups are fault-injectable and
  /// cancellable. Returns nullptr on miss; hits refresh LRU recency.
  Result<std::shared_ptr<const JoinHashTable>> Lookup(uint64_t key,
                                                      QueryGuard* guard);

  /// Publishes a completed build. Refused (silently) when any dependency
  /// is quarantined or the entry alone exceeds the budget. Evicts
  /// least-recently-used entries until the budget holds.
  void Publish(uint64_t key, std::shared_ptr<const JoinHashTable> table,
               std::vector<PlanDependency> deps);

  /// Drops every entry whose build side read `table` (catalog change
  /// listener hook — frees memory eagerly; key mismatch already
  /// guarantees the stale entries could never be served).
  void InvalidateTable(const std::string& table);

  /// Drops everything (CHECKPOINT, SET soda.ht_cache_mb, tests).
  void EvictAll();

  /// Re-budgets the cache, evicting down to the new cap.
  void SetBudget(size_t bytes);

  Stats stats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    std::shared_ptr<const JoinHashTable> table;
    std::vector<PlanDependency> deps;
    size_t bytes = 0;
  };

  void EvictDownToLocked(size_t cap) SODA_REQUIRES(mu_);

  mutable Mutex mu_;
  size_t budget_ SODA_GUARDED_BY(mu_);
  /// MRU at front; LRU evicted from the back.
  std::list<Entry> lru_ SODA_GUARDED_BY(mu_);
  std::map<uint64_t, std::list<Entry>::iterator> index_ SODA_GUARDED_BY(mu_);
  size_t bytes_ SODA_GUARDED_BY(mu_) = 0;
  int64_t hits_ SODA_GUARDED_BY(mu_) = 0;
  int64_t misses_ SODA_GUARDED_BY(mu_) = 0;
  int64_t evictions_ SODA_GUARDED_BY(mu_) = 0;
};

}  // namespace soda

#endif  // SODA_EXEC_HT_RECYCLER_H_
