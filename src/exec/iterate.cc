/// \file iterate.cc
/// The paper's non-appending ITERATE construct (§5.1, Listing 1):
///
///   SELECT * FROM ITERATE((init), (step), (stop));
///
/// A temporary relation named `iterate` initially holds the result of
/// `init`. Each round, `stop` is evaluated against the current state; if
/// it produces at least one row (EXISTS semantics) iteration ends and the
/// current state is the operator's result. Otherwise `step` — which may
/// reference `iterate` — *replaces* the state. Peak memory is therefore
/// 2·n tuples (previous + next state) instead of the recursive CTE's n·i.

#include <optional>

#include "exec/executor.h"

namespace soda {

Result<TablePtr> ExecuteIterate(const PlanNode& plan, ExecContext& ctx) {
  const std::string& name = plan.binding_name;  // "iterate"
  SODA_ASSIGN_OR_RETURN(TablePtr current, ExecutePlan(*plan.children[0], ctx));
  ctx.stats.cumulative_materialized_tuples += current->num_rows();

  auto saved = ctx.bindings.find(name) != ctx.bindings.end()
                   ? std::optional<TablePtr>(ctx.bindings[name])
                   : std::nullopt;
  auto restore = [&] {
    ctx.bindings.erase(name);
    if (saved) ctx.bindings[name] = *saved;
  };

  for (size_t iteration = 0;; ++iteration) {
    if (iteration >= ctx.max_iterations) {
      restore();
      return IterationCapExceeded("ITERATE", iteration, ctx.max_iterations);
    }
    // Governance probe per step: a divergent loop is cancellable, killed
    // by a deadline, and stopped by the memory budget (paper §5.1).
    if (Status st = ctx.Probe("iterate.step"); !st.ok()) {
      restore();
      return st;
    }
    ctx.bindings[name] = current;

    auto stop = ExecutePlan(*plan.children[2], ctx);
    if (!stop.ok()) {
      restore();
      return stop.status();
    }
    if ((*stop)->num_rows() > 0) break;  // stop condition fulfilled

    auto next = ExecutePlan(*plan.children[1], ctx);
    if (!next.ok()) {
      restore();
      return next.status();
    }
    // Non-appending: the new state replaces the old one; only the two of
    // them are ever live simultaneously.
    ctx.stats.AccountBoundTuples(current->num_rows() + (*next)->num_rows());
    ctx.stats.cumulative_materialized_tuples += (*next)->num_rows();
    ctx.stats.iterations_run++;
    // Empty -> empty is a fixpoint: no stop condition over an empty state
    // can ever fire, so iterating further cannot change anything.
    bool empty_fixpoint =
        current->num_rows() == 0 && (*next)->num_rows() == 0;
    current = next.MoveValueOrDie();
    if (empty_fixpoint) break;
  }

  restore();
  return current;
}

}  // namespace soda
