/// \file operators.cc
/// Pipeline-breaking relational operators: ORDER BY and LIMIT sinks.
///
/// Sort keys are decoded into typed vectors and compared through raw
/// payload arrays (no per-element Value boxing); LIMIT collects
/// sequence-tagged chunks and trips its done() flag once offset+limit rows
/// exist, so the pipeline stops scanning.

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "exec/executor.h"
#include "expr/evaluator.h"
#include "util/parallel.h"

namespace soda {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;
constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

// --- typed sort core ------------------------------------------------------

/// Raw view over one key column for the sort inner loop.
struct TypedKeyView {
  bool descending = false;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const std::vector<std::string>* str = nullptr;
  const uint8_t* validity = nullptr;  // null = all valid
};

TypedKeyView MakeKeyView(const Column& col, bool descending) {
  TypedKeyView v;
  v.descending = descending;
  if (col.type() == DataType::kVarchar) {
    v.str = &col.Strings();
  } else if (col.type() == DataType::kDouble) {
    v.f64 = col.F64Data();
  } else {
    v.i64 = col.I64Data();
  }
  if (!col.Validity().empty()) v.validity = col.Validity().data();
  return v;
}

/// Three-way compare with the same ordering as Value::operator< (NULLs
/// sort before values, varchar by string compare) — except BIGINT keys
/// compare exactly instead of through the boxed double conversion the old
/// comparator paid per element.
int CompareKey(const TypedKeyView& k, uint32_t a, uint32_t b) {
  const bool na = k.validity && k.validity[a] == 0;
  const bool nb = k.validity && k.validity[b] == 0;
  if (na || nb) {
    if (na && nb) return 0;
    return na ? -1 : 1;
  }
  if (k.str) {
    const std::string& x = (*k.str)[a];
    const std::string& y = (*k.str)[b];
    if (x < y) return -1;
    if (y < x) return 1;
    return 0;
  }
  if (k.f64) {
    const double x = k.f64[a];
    const double y = k.f64[b];
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  const int64_t x = k.i64[a];
  const int64_t y = k.i64[b];
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

/// Stable sort permutation of `[0, n)` by the evaluated key columns.
std::vector<uint32_t> SortOrder(const std::vector<Column>& keys,
                                const std::vector<SortKey>& specs, size_t n) {
  std::vector<TypedKeyView> views;
  views.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    views.push_back(MakeKeyView(keys[k], specs[k].descending));
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (const auto& v : views) {
      const int c = CompareKey(v, a, b);
      if (c != 0) return v.descending ? c > 0 : c < 0;
    }
    return false;
  });
  return order;
}

/// Rebuilds `input` in `order`. The row-wise rebuild bypasses
/// Table::AppendChunk, so the output (same footprint as the input) is
/// charged to the memory budget up front.
Result<TablePtr> RebuildSorted(const Table& input,
                               const std::vector<uint32_t>& order,
                               const Schema& schema, QueryGuard* guard) {
  SODA_RETURN_NOT_OK(GuardReserve(guard, input.MemoryUsage(), "exec.sort"));
  auto out = std::make_shared<Table>("sorted", schema);
  out->Reserve(order.size());
  for (uint32_t r : order) {
    for (size_t c = 0; c < input.num_columns(); ++c) {
      out->column(c).AppendFrom(input.column(c), r);
    }
  }
  return out;
}

std::string SortName(const PlanNode& plan) {
  std::string s = "Sort [";
  for (size_t i = 0; i < plan.sort_keys.size(); ++i) {
    if (i) s += ", ";
    s += plan.sort_keys[i].expr->ToString();
    if (plan.sort_keys[i].descending) s += " DESC";
  }
  return s + "]";
}

// --- ORDER BY sink --------------------------------------------------------

/// Materializes input rows and their evaluated key columns per worker,
/// merges in worker order, and sorts once at Finalize.
class SortSink : public TableSink {
 public:
  explicit SortSink(const PlanNode& plan) : plan_(plan) {
    locals_.resize(NumWorkers());
  }

  Status Consume(DataChunk& chunk, const SinkContext& sctx) override {
    auto& local = locals_[sctx.worker_id];
    if (!local) {
      local = std::make_unique<Local>();
      local->data = std::make_unique<Table>("sort.partial", plan_.schema);
      local->keys.reserve(plan_.sort_keys.size());
      for (const auto& k : plan_.sort_keys) {
        local->keys.emplace_back(k.expr->type);
      }
    }
    for (size_t k = 0; k < plan_.sort_keys.size(); ++k) {
      Column part;
      SODA_RETURN_NOT_OK(
          EvaluateExpression(*plan_.sort_keys[k].expr, chunk, &part));
      local->keys[k].AppendSlice(part, 0, part.size());
    }
    return local->data->AppendChunk(chunk);
  }

  Status Finalize() override {
    Local* only = nullptr;
    size_t populated = 0;
    for (auto& l : locals_) {
      if (!l) continue;
      ++populated;
      only = l.get();
    }
    Table merged_data("sort.merged", plan_.schema);
    std::vector<Column> merged_keys;
    const Table* data;
    const std::vector<Column>* keys;
    if (populated == 1) {
      data = only->data.get();
      keys = &only->keys;
    } else {
      for (const auto& k : plan_.sort_keys) {
        merged_keys.emplace_back(k.expr->type);
      }
      for (auto& l : locals_) {
        if (!l) continue;
        for (size_t c = 0; c < merged_data.num_columns(); ++c) {
          merged_data.column(c).AppendSlice(l->data->column(c), 0,
                                            l->data->num_rows());
        }
        for (size_t k = 0; k < merged_keys.size(); ++k) {
          merged_keys[k].AppendSlice(l->keys[k], 0, l->keys[k].size());
        }
        l.reset();
      }
      data = &merged_data;
      keys = &merged_keys;
    }
    std::vector<uint32_t> order =
        SortOrder(*keys, plan_.sort_keys, data->num_rows());
    SODA_ASSIGN_OR_RETURN(
        result_,
        RebuildSorted(*data, order, plan_.schema, QueryGuard::Current()));
    locals_.clear();
    return Status::OK();
  }

  std::string name() const override { return SortName(plan_); }
  TablePtr result() const override { return result_; }

 private:
  struct Local {
    std::unique_ptr<Table> data;
    std::vector<Column> keys;  ///< evaluated sort keys, row-aligned to data
  };
  const PlanNode& plan_;
  std::vector<std::unique_ptr<Local>> locals_;
  TablePtr result_;
};

// --- LIMIT sink -----------------------------------------------------------

/// Buffers sequence-tagged chunks until offset+limit rows exist, then
/// trips done() so workers stop scanning. Finalize reassembles source
/// order by sequence and slices out [offset, offset+limit).
class LimitSink : public TableSink {
 public:
  explicit LimitSink(const PlanNode& plan)
      : plan_(plan),
        offset_(plan.offset > 0 ? static_cast<size_t>(plan.offset) : 0),
        target_(plan.limit < 0
                    ? kUnlimited
                    : offset_ + static_cast<size_t>(plan.limit)) {
    partials_.resize(NumWorkers());
    if (target_ == 0) done_.store(true);
  }

  Status Consume(DataChunk& chunk, const SinkContext& sctx) override {
    if (target_ != kUnlimited && collected_.load(kRelaxed) >= target_) {
      return Status::OK();  // raced past the cutoff; drop the chunk
    }
    const size_t rows = chunk.num_rows();
    // The buffered chunks bypass Table appends, so charge them explicitly.
    SODA_RETURN_NOT_OK(GuardReserve(QueryGuard::Current(),
                                    chunk.MemoryUsage(), "exec.limit"));
    partials_[sctx.worker_id].push_back({sctx.sequence, std::move(chunk)});
    if (target_ != kUnlimited &&
        collected_.fetch_add(rows, kRelaxed) + rows >= target_) {
      done_.store(true, std::memory_order_release);
    }
    return Status::OK();
  }

  bool done() const override {
    return done_.load(std::memory_order_acquire);
  }

  Status Finalize() override {
    std::vector<SeqChunk*> all;
    for (auto& w : partials_) {
      for (auto& e : w) all.push_back(&e);
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const SeqChunk* a, const SeqChunk* b) {
                       return a->seq < b->seq;
                     });
    result_ = std::make_shared<Table>("limit", plan_.schema);
    size_t skip = offset_;
    size_t want =
        plan_.limit < 0 ? kUnlimited : static_cast<size_t>(plan_.limit);
    for (SeqChunk* e : all) {
      if (want == 0) break;
      const size_t n = e->chunk.num_rows();
      if (skip >= n) {
        skip -= n;
        continue;
      }
      const size_t start = skip;
      skip = 0;
      const size_t take = std::min(n - start, want);
      if (want != kUnlimited) want -= take;
      if (start == 0 && take == n) {
        SODA_RETURN_NOT_OK(result_->AppendChunk(e->chunk));
      } else {
        DataChunk sliced;
        for (size_t c = 0; c < e->chunk.num_columns(); ++c) {
          Column col(e->chunk.column(c).type());
          col.AppendSlice(e->chunk.column(c), start, take);
          sliced.AddColumn(std::move(col));
        }
        SODA_RETURN_NOT_OK(result_->AppendChunk(sliced));
      }
    }
    partials_.clear();
    return Status::OK();
  }

  std::string name() const override {
    std::string s = "Limit " + (plan_.limit < 0
                                    ? std::string("ALL")
                                    : std::to_string(plan_.limit));
    if (plan_.offset > 0) s += " OFFSET " + std::to_string(plan_.offset);
    return s;
  }

  TablePtr result() const override { return result_; }

 private:
  struct SeqChunk {
    uint64_t seq;
    DataChunk chunk;
  };
  const PlanNode& plan_;
  const size_t offset_;
  const size_t target_;  ///< offset + limit; kUnlimited when LIMIT ALL
  std::vector<std::vector<SeqChunk>> partials_;
  std::atomic<size_t> collected_{0};
  std::atomic<bool> done_{false};
  TablePtr result_;
};

}  // namespace

Result<TablePtr> SortTable(const Table& input, const PlanNode& plan,
                           ExecContext& ctx) {
  const size_t n = input.num_rows();

  // Evaluate the sort keys over the full input (chunk-wise).
  std::vector<Column> keys;
  keys.reserve(plan.sort_keys.size());
  for (const auto& k : plan.sort_keys) {
    keys.emplace_back(k.expr->type);
  }
  DataChunk chunk;
  for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
    SODA_RETURN_NOT_OK(ctx.Probe("exec.sort"));
    input.ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      Column part;
      SODA_RETURN_NOT_OK(
          EvaluateExpression(*plan.sort_keys[k].expr, chunk, &part));
      keys[k].AppendSlice(part, 0, part.size());
    }
  }

  std::vector<uint32_t> order = SortOrder(keys, plan.sort_keys, n);
  return RebuildSorted(input, order, plan.schema, ctx.guard);
}

std::shared_ptr<TableSink> MakeSortSink(const PlanNode& plan) {
  return std::make_shared<SortSink>(plan);
}

std::shared_ptr<TableSink> MakeLimitSink(const PlanNode& plan) {
  return std::make_shared<LimitSink>(plan);
}

}  // namespace soda
