/// \file operators.cc
/// Small pipeline-breaking relational operators: ORDER BY.

#include <algorithm>
#include <numeric>

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace soda {

Result<TablePtr> ExecuteSort(const PlanNode& plan, ExecContext& ctx) {
  SODA_ASSIGN_OR_RETURN(TablePtr child, ExecutePlan(*plan.children[0], ctx));
  const size_t n = child->num_rows();

  // Evaluate the sort keys over the full input (chunk-wise).
  std::vector<Column> keys;
  keys.reserve(plan.sort_keys.size());
  for (const auto& k : plan.sort_keys) {
    keys.emplace_back(k.expr->type);
  }
  DataChunk chunk;
  for (size_t offset = 0; offset < n; offset += kChunkCapacity) {
    SODA_RETURN_NOT_OK(ctx.Probe("exec.sort"));
    child->ScanSlice(offset, std::min(kChunkCapacity, n - offset), &chunk);
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      Column part;
      SODA_RETURN_NOT_OK(
          EvaluateExpression(*plan.sort_keys[k].expr, chunk, &part));
      keys[k].AppendSlice(part, 0, part.size());
    }
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      Value va = keys[k].GetValue(a);
      Value vb = keys[k].GetValue(b);
      if (va == vb) continue;
      bool less = va < vb;
      return plan.sort_keys[k].descending ? !less : less;
    }
    return false;
  });

  // The row-wise rebuild below bypasses Table::AppendChunk, so charge the
  // output (same footprint as the input) to the memory budget up front.
  SODA_RETURN_NOT_OK(
      GuardReserve(ctx.guard, child->MemoryUsage(), "exec.sort"));
  auto out = std::make_shared<Table>("sorted", plan.schema);
  out->Reserve(n);
  for (uint32_t r : order) {
    for (size_t c = 0; c < child->num_columns(); ++c) {
      out->column(c).AppendFrom(child->column(c), r);
    }
  }
  return out;
}

}  // namespace soda
