/// \file physical_plan.cc
/// Lowering of the logical plan into pipelines and their scheduler.

#include "exec/physical_plan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "exec/hash_join.h"
#include "exec/ht_recycler.h"
#include "exec/plan_fingerprint.h"
#include "expr/evaluator.h"
#include "util/first_error.h"
#include "util/parallel.h"

namespace soda {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr auto kRelaxed = std::memory_order_relaxed;

// --- streaming transforms -------------------------------------------------

/// Streaming WHERE: evaluates the predicate and compacts the chunk.
class FilterTransform : public Transform {
 public:
  explicit FilterTransform(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  Status Apply(DataChunk& chunk, const Emit& emit) const override {
    std::vector<uint32_t> selection;
    SODA_RETURN_NOT_OK(EvaluatePredicate(*predicate_, chunk, &selection));
    if (selection.size() == chunk.num_rows()) return emit(chunk);
    if (selection.empty()) return Status::OK();
    DataChunk out;
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      Column col(chunk.column(c).type());
      col.Reserve(selection.size());
      for (uint32_t i : selection) col.AppendFrom(chunk.column(c), i);
      out.AddColumn(std::move(col));
    }
    return emit(out);
  }

  std::string name() const override {
    return "Filter [" + predicate_->ToString() + "]";
  }

 private:
  ExprPtr predicate_;
};

/// Streaming SELECT-list evaluation. Emits exactly one row per input row,
/// in order, so it preserves cardinality (LIMIT can bound the scan through
/// it).
class ProjectTransform : public Transform {
 public:
  explicit ProjectTransform(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}

  Status Apply(DataChunk& chunk, const Emit& emit) const override {
    DataChunk out;
    for (const auto& e : exprs_) {
      Column col;
      SODA_RETURN_NOT_OK(EvaluateExpression(*e, chunk, &col));
      out.AddColumn(std::move(col));
    }
    return emit(out);
  }

  bool preserves_cardinality() const override { return true; }

  std::string name() const override {
    std::string s = "Project [";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i) s += ", ";
      s += exprs_[i]->ToString();
    }
    return s + "]";
  }

 private:
  std::vector<ExprPtr> exprs_;
};

// --- lowering helpers -----------------------------------------------------

PhysOpPtr Op(std::string name) {
  return std::make_shared<PhysicalOperator>(std::move(name));
}

Result<TablePtr> ExecuteValues(const PlanNode& plan) {
  auto table = std::make_shared<Table>("values", plan.schema);
  // analyze:allow(guard-probe: statement-literal rows; AppendRow charges storage.append)
  for (const auto& row : plan.rows) {
    SODA_RETURN_NOT_OK(table->AppendRow(row));
  }
  return table;
}

std::string SourceName(const PlanNode& node) {
  if (node.kind == PlanKind::kScan) {
    std::string s = "Scan " + node.table_name;
    if (!node.scan_predicates.empty()) {
      s += " pushed[";
      for (size_t i = 0; i < node.scan_predicates.size(); ++i) {
        if (i) s += ", ";
        const size_t c = node.scan_predicates[i].column;
        s += node.scan_predicates[i].ToString(
            c < node.schema.num_fields() ? node.schema.field(c).name
                                         : "#" + std::to_string(c));
      }
      s += "]";
    }
    if (node.scan_total_partitions > 0) {
      s += " [partitions: " + std::to_string(node.scan_partitions.size()) +
           "/" + std::to_string(node.scan_total_partitions) + " scanned]";
    }
    return s;
  }
  return "Binding " + node.binding_name;
}

/// Deferred resolution of a base relation (catalog table or runtime
/// binding): lowering must not touch data, and CTE/ITERATE bindings change
/// between executions of the same plan subtree.
std::function<Result<TablePtr>(ExecContext&)> MakeSourceResolver(
    const PlanNode& node) {
  if (node.kind == PlanKind::kScan) {
    return [&node](ExecContext& ctx) -> Result<TablePtr> {
      return ctx.catalog->GetTable(node.table_name);
    };
  }
  return [&node](ExecContext& ctx) -> Result<TablePtr> {
    auto it = ctx.bindings.find(node.binding_name);
    if (it == ctx.bindings.end()) {
      return Status::Internal("unbound relation: " + node.binding_name);
    }
    return it->second;
  };
}

std::string ExprListString(const std::vector<ExprPtr>& exprs) {
  std::string s = "[";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i) s += ", ";
    s += exprs[i]->ToString();
  }
  return s + "]";
}

std::string JoinProbeName(const PlanNode& node) {
  if (node.left_keys.empty()) return "CrossJoin";
  std::string s = "HashJoinProbe [";
  for (size_t i = 0; i < node.left_keys.size(); ++i) {
    if (i) s += ", ";
    s += "#" + std::to_string(node.left_keys[i]) + "=#" +
         std::to_string(node.right_keys[i]);
  }
  return s + "]";
}

// --- join hash-table recycling (DESIGN.md §11) ----------------------------

/// Per-execution hand-off between a build pipeline's skip gate and the
/// probe pipeline's prepare closure. Both capture the same slot; the gate
/// fills it, the prepare consumes it. A PhysicalPlan executes at most
/// once, so the slot carries no cross-execution state.
struct RecycleSlot {
  bool checked = false;  ///< the gate ran and computed key/deps
  uint64_t key = 0;
  std::vector<PlanDependency> deps;
  std::shared_ptr<const JoinHashTable> ht;  ///< non-null on a cache hit
};

/// A build fragment is recyclable only when its result is a pure function
/// of versioned catalog state: runtime bindings (CTE working tables,
/// ITERATE state) and table functions vary per execution and must never
/// be served across queries.
bool RecyclableBuild(const PlanNode& node) {
  if (node.kind == PlanKind::kBindingRef ||
      node.kind == PlanKind::kTableFunction ||
      node.kind == PlanKind::kRecursiveCte || node.kind == PlanKind::kIterate) {
    return false;
  }
  for (const PlanPtr& c : node.children) {
    if (!RecyclableBuild(*c)) return false;
  }
  return true;
}

/// Folds the join's build-key columns into the fragment fingerprint: two
/// joins over the same build subtree with different key sets need
/// different hash tables.
uint64_t MixJoinKeys(uint64_t h, const std::vector<size_t>& keys) {
  for (size_t k : keys) {
    h ^= k + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string FormatTime(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

}  // namespace

// --- lowering -------------------------------------------------------------

/// Walks the logical plan, appending pipelines to `plan_` in dependency
/// order. `Complete` lowers a subtree to a pipeline producing a full
/// relation; `Stream` lowers a subtree to an *open* pipeline (source +
/// transforms, no sink) a breaker can attach its sink to.
class PhysicalPlanBuilder {
 public:
  Result<PhysicalPlan> Build(const PlanNode& root) {
    SODA_ASSIGN_OR_RETURN(size_t idx, Complete(root));
    (void)idx;
    return std::move(plan_);
  }

 private:
  size_t Push(PhysicalPipeline p) {
    plan_.pipelines_.push_back(std::move(p));
    return plan_.pipelines_.size() - 1;
  }

  /// Open pipeline for a streaming subtree: scans, bindings, and chains of
  /// filter/project/join-probe. Any other node materializes via Complete
  /// and becomes the open pipeline's source.
  Result<PhysicalPipeline> Stream(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan:
      case PlanKind::kBindingRef: {
        PhysicalPipeline p;
        p.table_source = MakeSourceResolver(node);
        if (node.kind == PlanKind::kScan) p.scan_node = &node;
        p.source_op = Op(SourceName(node));
        return p;
      }
      case PlanKind::kFilter: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        auto t = std::make_shared<FilterTransform>(node.predicate->Clone());
        p.transform_ops.push_back(Op(t->name()));
        p.transforms.push_back(std::move(t));
        return p;
      }
      case PlanKind::kProject: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        // Pure column selections directly over a base relation fuse into
        // the scan: the source materializes only the referenced columns,
        // so sealed tables never decode dropped segments (the common
        // aggregate-input shape `Project [args] over Scan`).
        const PlanNode& child = *node.children[0];
        bool all_refs =
            (child.kind == PlanKind::kScan ||
             child.kind == PlanKind::kBindingRef) &&
            p.transforms.empty();
        if (all_refs) {
          for (const auto& e : node.exprs) {
            if (e->kind != ExprKind::kColumnRef) {
              all_refs = false;
              break;
            }
          }
        }
        if (all_refs) {
          p.scan_columns.clear();
          p.scan_columns.reserve(node.exprs.size());
          for (const auto& e : node.exprs) {
            p.scan_columns.push_back(e->column_index);
          }
          p.source_op = Op(SourceName(child) + " project " +
                          ExprListString(node.exprs));
          return p;
        }
        std::vector<ExprPtr> exprs;
        exprs.reserve(node.exprs.size());
        for (const auto& e : node.exprs) exprs.push_back(e->Clone());
        auto t = std::make_shared<ProjectTransform>(std::move(exprs));
        p.transform_ops.push_back(Op(t->name()));
        p.transforms.push_back(std::move(t));
        return p;
      }
      case PlanKind::kJoin: {
        // The build (right) side is its own pipeline, finished before this
        // one starts; the probe side extends the open pipeline — joins only
        // break the pipeline on one side, as in HyPer. The probe transform
        // slot stays null until the prepare closure builds the hash table
        // from the build pipeline's result.
        SODA_ASSIGN_OR_RETURN(size_t build_idx, Complete(*node.children[1]));
        // Hash-join builds over recyclable fragments get a skip gate on
        // the build pipeline: a recycler hit elides both the build-side
        // materialization and the morsel-parallel exec.join_build pass.
        auto recycle = std::make_shared<RecycleSlot>();
        if (!node.left_keys.empty() && RecyclableBuild(*node.children[1])) {
          plan_.pipelines_[build_idx].skip_if =
              [&node, recycle](ExecContext& ctx) -> Result<bool> {
            if (ctx.ht_recycler == nullptr || ctx.catalog == nullptr) {
              return false;
            }
            std::vector<PlanDependency> deps;
            uint64_t key =
                FingerprintPlan(*node.children[1], *ctx.catalog, &deps);
            key = MixJoinKeys(key, node.right_keys);
            for (const PlanDependency& d : deps) {
              // Quarantined build sides neither hit nor publish: a
              // recycled table would bypass the CheckReadable gate.
              if (d.quarantined) return false;
            }
            SODA_ASSIGN_OR_RETURN(
                std::shared_ptr<const JoinHashTable> ht,
                ctx.ht_recycler->Lookup(key, ctx.guard));
            recycle->checked = true;
            recycle->key = key;
            recycle->deps = std::move(deps);
            recycle->ht = std::move(ht);
            return recycle->ht != nullptr;
          };
        }
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        const size_t slot = p.transforms.size();
        p.transforms.push_back(nullptr);
        p.transform_ops.push_back(Op(JoinProbeName(node)));
        const size_t prep_idx = p.prepares.size();
        Schema concat =
            node.children[0]->schema.Concat(node.children[1]->schema);
        p.prepares.push_back(
            [&node, build_idx, slot, prep_idx, concat, recycle](
                PhysicalPlan& pp, PhysicalPipeline& self,
                ExecContext& ctx) -> Status {
              if (recycle->ht) {
                self.transforms[slot] =
                    std::make_shared<HashJoinProbeTransform>(
                        recycle->ht, node.left_keys, concat);
                ++ctx.stats.recycled_joins;
                return Status::OK();
              }
              TablePtr build = pp.pipeline(build_idx).result;
              if (!build) {
                return Status::Internal("join build input not materialized");
              }
              if (prep_idx < self.prepare_ops.size()) {
                self.prepare_ops[prep_idx]->metrics.rows_in.fetch_add(
                    build->num_rows(), kRelaxed);
              }
              if (node.left_keys.empty()) {
                self.transforms[slot] = std::make_shared<CrossJoinTransform>(
                    std::move(build), concat);
              } else {
                SODA_ASSIGN_OR_RETURN(
                    std::shared_ptr<JoinHashTable> ht,
                    JoinHashTable::Build(std::move(build), node.right_keys,
                                         ctx.guard));
                if (ctx.ht_recycler != nullptr && recycle->checked) {
                  ctx.ht_recycler->Publish(recycle->key, ht,
                                           std::move(recycle->deps));
                }
                self.transforms[slot] =
                    std::make_shared<HashJoinProbeTransform>(
                        std::move(ht), node.left_keys, concat);
              }
              return Status::OK();
            });
        p.prepare_ops.push_back(
            Op(node.left_keys.empty() ? "CrossJoinBuild" : "HashBuild"));
        p.inputs.push_back(build_idx);
        if (node.predicate) {
          auto t = std::make_shared<FilterTransform>(node.predicate->Clone());
          p.transform_ops.push_back(Op(t->name()));
          p.transforms.push_back(std::move(t));
        }
        return p;
      }
      default: {
        // Pipeline breaker below: finish it, then stream its result.
        SODA_ASSIGN_OR_RETURN(size_t idx, Complete(node));
        PhysicalPipeline p;
        p.input_pipeline = idx;
        p.inputs.push_back(idx);
        p.source_op = Op("P" + std::to_string(idx));
        return p;
      }
    }
  }

  /// Pipeline producing the subtree's full relation; returns its index.
  Result<size_t> Complete(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan:
      case PlanKind::kBindingRef: {
        // Base relations are returned by reference, never copied.
        PhysicalPipeline p;
        auto resolve = MakeSourceResolver(node);
        p.op = Op(SourceName(node));
        p.op_fn = [resolve](PhysicalPlan&, ExecContext& ctx) {
          return resolve(ctx);
        };
        return Push(std::move(p));
      }
      case PlanKind::kValues: {
        PhysicalPipeline p;
        p.op = Op("Values (" + std::to_string(node.rows.size()) + " rows)");
        p.op_fn = [&node](PhysicalPlan&, ExecContext&) {
          return ExecuteValues(node);
        };
        return Push(std::move(p));
      }
      case PlanKind::kProject: {
        // Fast path for pure column selections over a base relation (e.g.
        // the `(SELECT x1..xd FROM data)` inputs of analytics operators,
        // which HyPer would fuse into the operator's own materialization):
        // one bulk column copy instead of chunked pipeline copies.
        const PlanNode& child = *node.children[0];
        bool all_refs = true;
        for (const auto& e : node.exprs) {
          if (e->kind != ExprKind::kColumnRef) {
            all_refs = false;
            break;
          }
        }
        if (all_refs && (child.kind == PlanKind::kScan ||
                         child.kind == PlanKind::kBindingRef)) {
          PhysicalPipeline p;
          auto resolve = MakeSourceResolver(child);
          p.op = Op("Project " + ExprListString(node.exprs) +
                    " (column copy)");
          p.op_fn = [&node, resolve](PhysicalPlan&,
                                     ExecContext& ctx) -> Result<TablePtr> {
            SODA_ASSIGN_OR_RETURN(TablePtr source, resolve(ctx));
            auto out = std::make_shared<Table>("project", node.schema);
            size_t bytes = 0;
            for (const auto& e : node.exprs) {
              bytes += source->column(e->column_index).MemoryUsage();
            }
            SODA_RETURN_NOT_OK(
                GuardReserve(ctx.guard, bytes, "exec.project"));
            for (size_t i = 0; i < node.exprs.size(); ++i) {
              const Column& src = source->column(node.exprs[i]->column_index);
              Column col(src.type());
              col.AppendSlice(src, 0, source->num_rows());
              SODA_RETURN_NOT_OK(out->SetColumn(i, std::move(col)));
            }
            ctx.stats.cumulative_materialized_tuples += out->num_rows();
            return out;
          };
          return Push(std::move(p));
        }
        [[fallthrough]];
      }
      case PlanKind::kFilter:
      case PlanKind::kJoin: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(node));
        p.sink = std::make_shared<MaterializeSink>(node.schema);
        p.sink_op = Op(p.sink->name());
        p.count_materialization = true;
        return Push(std::move(p));
      }
      case PlanKind::kAggregate: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        p.sink = MakeAggregateSink(node);
        p.sink_op = Op(p.sink->name());
        p.count_materialization = true;
        return Push(std::move(p));
      }
      case PlanKind::kSort: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        if (p.transforms.empty() && p.prepares.empty() &&
            p.scan_columns.empty()) {
          // Transform-free ORDER BY: sort the source relation directly
          // instead of copying it through a sink first.
          PhysicalPipeline q;
          q.inputs = p.inputs;
          auto src = p.table_source;
          const size_t in = p.input_pipeline;
          auto sink_for_name = MakeSortSink(node);
          q.op = Op(sink_for_name->name());
          q.op_fn = [&node, src, in](PhysicalPlan& pp,
                                     ExecContext& ctx) -> Result<TablePtr> {
            TablePtr t;
            if (src) {
              SODA_ASSIGN_OR_RETURN(t, src(ctx));
            } else {
              t = pp.pipeline(in).result;
              if (!t) return Status::Internal("sort input not materialized");
            }
            return SortTable(*t, node, ctx);
          };
          return Push(std::move(q));
        }
        p.sink = MakeSortSink(node);
        p.sink_op = Op(p.sink->name());
        return Push(std::move(p));
      }
      case PlanKind::kLimit: {
        SODA_ASSIGN_OR_RETURN(PhysicalPipeline p, Stream(*node.children[0]));
        // When every transform preserves cardinality, offset+limit output
        // rows need exactly offset+limit source rows: bound the scan
        // itself (deterministic O(k) path). Otherwise the sink's done()
        // flag stops workers once enough rows were collected.
        bool bounded = node.limit >= 0;
        for (const auto& t : p.transforms) {
          if (!t || !t->preserves_cardinality()) {
            bounded = false;
            break;
          }
        }
        if (bounded) {
          const size_t off =
              node.offset > 0 ? static_cast<size_t>(node.offset) : 0;
          p.scan_limit = off + static_cast<size_t>(node.limit);
        }
        p.sink = MakeLimitSink(node);
        p.sink_op = Op(p.sink->name());
        return Push(std::move(p));
      }
      case PlanKind::kUnionAll: {
        // All children feed one shared sink; a final source-less pipeline
        // closes it. Chunks append straight into the sink — the old
        // path materialized every child and then re-copied it (and charged
        // the QueryGuard for both).
        auto shared = std::make_shared<MaterializeSink>(node.schema);
        auto shared_op = Op("UnionAll (materialize)");
        std::vector<size_t> child_idx;
        child_idx.reserve(node.children.size());
        for (const auto& child : node.children) {
          SODA_ASSIGN_OR_RETURN(PhysicalPipeline cp, Stream(*child));
          if (cp.transforms.empty() && cp.prepares.empty()) {
            // Transform-free child: append chunk-wise on the scheduler
            // thread (keeps child order, lands in one sink partial that
            // Finalize can adopt without a copy).
            PhysicalPipeline q;
            q.inputs = cp.inputs;
            auto src = cp.table_source;
            auto cols = std::make_shared<std::vector<size_t>>(
                std::move(cp.scan_columns));
            const size_t in = cp.input_pipeline;
            q.op = Op("UnionAppend (" + cp.source_op->name + ")");
            q.op_fn = [src, in, cols, shared, shared_op](
                          PhysicalPlan& pp,
                          ExecContext& ctx) -> Result<TablePtr> {
              TablePtr t;
              if (src) {
                SODA_ASSIGN_OR_RETURN(t, src(ctx));
              } else {
                t = pp.pipeline(in).result;
                if (!t) {
                  return Status::Internal("union input not materialized");
                }
              }
              const size_t n = t->num_rows();
              DataChunk chunk;
              for (size_t off = 0; off < n; off += kChunkCapacity) {
                SODA_RETURN_NOT_OK(ctx.Probe("exec.union"));
                const size_t count = std::min(kChunkCapacity, n - off);
                t->ScanSlice(off, count, &chunk,
                             cols->empty() ? nullptr : cols.get());
                shared_op->metrics.rows_in.fetch_add(count, kRelaxed);
                shared_op->metrics.chunks.fetch_add(1, kRelaxed);
                SinkContext sctx;
                sctx.sequence = off;
                SODA_RETURN_NOT_OK(shared->Consume(chunk, sctx));
              }
              return TablePtr();
            };
            child_idx.push_back(Push(std::move(q)));
          } else {
            cp.sink = shared;
            cp.sink_op = shared_op;
            cp.finalize_sink = false;
            child_idx.push_back(Push(std::move(cp)));
          }
        }
        PhysicalPipeline fin;
        fin.sink = shared;
        fin.sink_op = shared_op;
        fin.finalize_sink = true;
        fin.inputs = child_idx;
        // Every union funnels through this merge point, so probe here:
        // the per-chunk probe above only covers transform-free children.
        // The null display slot keeps the probe out of EXPLAIN output.
        fin.prepares.push_back(
            [](PhysicalPlan&, PhysicalPipeline&, ExecContext& ctx) {
              return ctx.Probe("exec.union");
            });
        fin.prepare_ops.push_back(nullptr);
        return Push(std::move(fin));
      }
      case PlanKind::kRecursiveCte: {
        PhysicalPipeline p;
        p.op = Op("RecursiveCte " + node.binding_name);
        p.op_fn = [&node](PhysicalPlan&, ExecContext& ctx) {
          return ExecuteRecursiveCte(node, ctx);
        };
        return Push(std::move(p));
      }
      case PlanKind::kIterate: {
        PhysicalPipeline p;
        p.op = Op("Iterate");
        p.op_fn = [&node](PhysicalPlan&, ExecContext& ctx) {
          return ExecuteIterate(node, ctx);
        };
        return Push(std::move(p));
      }
      case PlanKind::kTableFunction: {
        // The analytics operator's relation inputs are pipelines of this
        // same plan (paper Fig. 3); the operator runs once they finished.
        std::vector<size_t> in_idx;
        in_idx.reserve(node.children.size());
        for (const auto& child : node.children) {
          SODA_ASSIGN_OR_RETURN(size_t idx, Complete(*child));
          in_idx.push_back(idx);
        }
        PhysicalPipeline p;
        p.inputs = in_idx;
        p.op = Op("TableFunction " + node.function_name);
        p.op_fn = [&node, in_idx](PhysicalPlan& pp,
                                  ExecContext& ctx) -> Result<TablePtr> {
          std::vector<TablePtr> inputs;
          inputs.reserve(in_idx.size());
          for (size_t i : in_idx) {
            if (!pp.pipeline(i).result) {
              return Status::Internal(
                  "table function input not materialized");
            }
            inputs.push_back(pp.pipeline(i).result);
          }
          return ExecuteTableFunctionWithInputs(node, std::move(inputs),
                                                ctx);
        };
        return Push(std::move(p));
      }
    }
    return Status::Internal("unknown plan kind");
  }

  PhysicalPlan plan_;
};

Result<PhysicalPlan> LowerPlan(const PlanNode& plan) {
  PhysicalPlanBuilder builder;
  return builder.Build(plan);
}

// --- scheduling -----------------------------------------------------------

Status PhysicalPlan::Execute(ExecContext& ctx) {
  // Evaluate the recycler gates before anything runs: gates depend only
  // on the context (a cache lookup), never on upstream results, and a
  // skipped build pipeline also skips every earlier pipeline that feeds
  // skipped pipelines exclusively. That elides the *whole* derived build
  // subtree — a recycled build over `(SELECT ... GROUP BY ...)` skips the
  // aggregation of the base table, not just the final hash-table pass.
  std::vector<char> skipped(pipelines_.size(), 0);
  bool any_skipped = false;
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    if (!pipelines_[i].skip_if) continue;
    SODA_ASSIGN_OR_RETURN(bool skip, pipelines_[i].skip_if(ctx));
    skipped[i] = skip ? 1 : 0;
    any_skipped |= skip;
  }
  if (any_skipped) {
    // Consumers always have a larger index (pipelines are in dependency
    // order), so one backward sweep settles the transitive closure: a
    // pipeline with consumers, all of which are skipped, is dead.
    for (size_t i = pipelines_.size(); i-- > 0;) {
      if (skipped[i]) continue;
      bool has_consumer = false;
      bool has_live_consumer = false;
      for (size_t k = i + 1; k < pipelines_.size() && !has_live_consumer;
           ++k) {
        const PhysicalPipeline& c = pipelines_[k];
        bool consumes = c.input_pipeline == i;
        for (size_t in : c.inputs) consumes |= in == i;
        if (!consumes) continue;
        has_consumer = true;
        has_live_consumer = !skipped[k];
      }
      if (has_consumer && !has_live_consumer) skipped[i] = 1;
    }
  }
  size_t index = 0;
  for (auto& p : pipelines_) {
    SODA_RETURN_NOT_OK(ctx.Probe("exec.pipeline"));
    if (skipped[index++]) continue;
    const uint64_t bytes_before =
        ctx.guard ? ctx.guard->bytes_reserved() : 0;
    for (size_t j = 0; j < p.prepares.size(); ++j) {
      const uint64_t t0 = NowNanos();
      Status st = p.prepares[j](*this, p, ctx);
      if (j < p.prepare_ops.size() && p.prepare_ops[j]) {
        p.prepare_ops[j]->metrics.nanos.fetch_add(NowNanos() - t0, kRelaxed);
      }
      SODA_RETURN_NOT_OK(st);
    }
    if (p.op_fn) {
      const uint64_t t0 = NowNanos();
      SODA_ASSIGN_OR_RETURN(p.result, p.op_fn(*this, ctx));
      if (p.op) {
        p.op->metrics.nanos.fetch_add(NowNanos() - t0, kRelaxed);
        if (p.result) {
          p.op->metrics.rows_out.fetch_add(p.result->num_rows(), kRelaxed);
        }
      }
    } else {
      if (p.table_source || p.input_pipeline != PhysicalPipeline::kNoInput) {
        SODA_RETURN_NOT_OK(RunStreaming(p, ctx));
      }
      if (p.sink && p.finalize_sink) {
        const uint64_t t0 = NowNanos();
        SODA_RETURN_NOT_OK(p.sink->Finalize());
        p.result = p.sink->result();
        if (p.sink_op) {
          p.sink_op->metrics.nanos.fetch_add(NowNanos() - t0, kRelaxed);
          if (p.result) {
            p.sink_op->metrics.rows_out.fetch_add(p.result->num_rows(),
                                                  kRelaxed);
          }
        }
        if (p.count_materialization && p.result) {
          ctx.stats.cumulative_materialized_tuples += p.result->num_rows();
        }
      }
    }
    if (ctx.guard) {
      p.bytes_reserved = ctx.guard->bytes_reserved() - bytes_before;
    }
  }
  return Status::OK();
}

Status PhysicalPlan::RunStreaming(PhysicalPipeline& p, ExecContext& ctx) {
  for (const auto& t : p.transforms) {
    if (!t) return Status::Internal("unprepared transform in pipeline");
  }
  TablePtr source_table;
  if (p.table_source) {
    SODA_ASSIGN_OR_RETURN(source_table, p.table_source(ctx));
  } else {
    source_table = pipelines_[p.input_pipeline].result;
    if (!source_table) {
      return Status::Internal("pipeline input not materialized");
    }
  }
  const Table& source = *source_table;

  // Whole-table quarantine gate, up front: a table-level quarantined stub
  // has zero rows, so the per-chunk CheckReadable below would never run
  // and `SELECT count(*)` would silently read 0 from lost data.
  // CheckReadable(0, 0) reports table-level quarantine and nothing else.
  SODA_RETURN_NOT_OK(source.CheckReadable(0, 0));

  // Partition pruning (sealed partitioned scans only): the scan iterates a
  // *virtual* row space — the concatenation of the kept partitions'
  // physical row ranges — so ParallelFor still sees one dense range and
  // morsel distribution is unchanged. The plan's partition count must
  // match the table's (it always does: SELECT pins one catalog snapshot
  // for planning and execution); on mismatch pruning is skipped, which is
  // merely slower, never wrong.
  struct ScanRange {
    size_t virt_begin;  // first virtual row of this range
    size_t phys_begin;  // corresponding physical row
    size_t rows;
  };
  std::vector<ScanRange> ranges;
  bool pruned = false;
  const PlanNode* scan = p.scan_node;
  if (scan && scan->scan_total_partitions > 0 && source.sealed() &&
      source.partition_offsets().size() == scan->scan_total_partitions + 1 &&
      scan->scan_partitions.size() < scan->scan_total_partitions) {
    SODA_RETURN_NOT_OK(ctx.Probe("storage.partition_prune"));
    const auto& po = source.partition_offsets();
    size_t virt = 0;
    for (size_t part : scan->scan_partitions) {
      const size_t rows = po[part + 1] - po[part];
      if (rows == 0) continue;
      ranges.push_back({virt, po[part], rows});
      virt += rows;
    }
    pruned = true;
  }
  const size_t virt_rows =
      pruned ? (ranges.empty() ? 0 : ranges.back().virt_begin +
                                         ranges.back().rows)
             : source.num_rows();
  const size_t total = std::min(virt_rows, p.scan_limit);

  // Pushed predicates evaluate on the encoded payload (dict codes, FOR
  // data) before any decode; the downstream Filter re-checks the full
  // predicate, so a scan that cannot use them just returns more rows.
  const std::vector<ScanPredicate>* pushed =
      scan && !scan->scan_predicates.empty() && source.sealed()
          ? &scan->scan_predicates
          : nullptr;

  Sink& sink = *p.sink;

  FirstError first_error;

  // Guard-aware: every morsel boundary probes cancellation / deadline /
  // memory budget / fault injection, and worker-side table appends are
  // charged to the query's accountant.
  Status guard_status = ParallelFor(
      ctx.guard, total,
      [&](size_t begin, size_t end, size_t worker_id) {
        if (first_error.failed()) return;
        if (source.sealed()) {
          Status st = ctx.Probe("storage.segment_decode");
          if (!st.ok()) {
            first_error.Record(std::move(st));
            return;
          }
        }
        for (size_t offset = begin; offset < end;) {
          if (first_error.failed()) return;
          // Cross-worker early exit (LIMIT): enough rows collected, the
          // remaining source rows are never even scanned.
          if (sink.done()) return;
          size_t count = std::min(kChunkCapacity, end - offset);
          size_t phys = offset;
          if (pruned) {
            // Map the virtual offset into its physical range; chunks never
            // straddle a range boundary (partition boundaries are also
            // row-group boundaries, so this keeps decodes group-local).
            const auto it =
                std::upper_bound(ranges.begin(), ranges.end(), offset,
                                 [](size_t v, const ScanRange& r) {
                                   return v < r.virt_begin;
                                 }) -
                1;
            phys = it->phys_begin + (offset - it->virt_begin);
            count = std::min(count, it->virt_begin + it->rows - offset);
          }
          // Quarantine gate, after the pruning remap: a query whose kept
          // partitions are healthy proceeds even when another partition's
          // row group is quarantined (degraded reads, DESIGN.md §10).
          Status readable = source.CheckReadable(phys, count);
          if (!readable.ok()) {
            first_error.Record(std::move(readable));
            return;
          }
          const uint64_t t0 = NowNanos();
          DataChunk chunk;
          const std::vector<size_t>* proj =
              p.scan_columns.empty() ? nullptr : &p.scan_columns;
          if (!pushed ||
              !source.ScanSliceFiltered(phys, count, *pushed, &chunk, proj)) {
            source.ScanSlice(phys, count, &chunk, proj);
          }
          if (p.source_op) {
            auto& m = p.source_op->metrics;
            m.rows_out.fetch_add(chunk.num_rows(), kRelaxed);
            m.chunks.fetch_add(1, kRelaxed);
            m.nanos.fetch_add(NowNanos() - t0, kRelaxed);
          }
          SinkContext sctx;
          sctx.worker_id = worker_id;
          sctx.sequence = offset;  // source order, shared by derived chunks

          // Apply the transform chain with continuation-style emits,
          // metering rows/chunks/time at every stage boundary. Times are
          // inclusive of the downstream chain a stage pushed into.
          std::function<Status(DataChunk&, size_t)> apply =
              [&](DataChunk& c, size_t idx) -> Status {
            if (c.num_rows() == 0) return Status::OK();
            if (idx == p.transforms.size()) {
              auto& m = p.sink_op->metrics;
              m.rows_in.fetch_add(c.num_rows(), kRelaxed);
              m.chunks.fetch_add(1, kRelaxed);
              const uint64_t s0 = NowNanos();
              Status st = sink.Consume(c, sctx);
              m.nanos.fetch_add(NowNanos() - s0, kRelaxed);
              return st;
            }
            auto& m = p.transform_ops[idx]->metrics;
            m.rows_in.fetch_add(c.num_rows(), kRelaxed);
            m.chunks.fetch_add(1, kRelaxed);
            const uint64_t s0 = NowNanos();
            Status st = p.transforms[idx]->Apply(
                c, [&](DataChunk& next) -> Status {
                  m.rows_out.fetch_add(next.num_rows(), kRelaxed);
                  return apply(next, idx + 1);
                });
            m.nanos.fetch_add(NowNanos() - s0, kRelaxed);
            return st;
          };
          Status st = apply(chunk, 0);
          if (!st.ok()) {
            first_error.Record(std::move(st));
            return;
          }
          offset += count;
        }
      },
      /*morsel_size=*/kChunkCapacity * 8);

  SODA_RETURN_NOT_OK(first_error.Take());
  SODA_RETURN_NOT_OK(guard_status);
  return Status::OK();
}

// --- display --------------------------------------------------------------

namespace {

enum class StageKind { kPrepare, kOp, kSource, kTransform, kSink };

struct StageRow {
  const PhysicalOperator* op;
  StageKind kind;
  bool shared_sink = false;
};

std::vector<StageRow> CollectStages(const PhysicalPipeline& p) {
  std::vector<StageRow> rows;
  for (const auto& op : p.prepare_ops) {
    if (op) rows.push_back({op.get(), StageKind::kPrepare, false});
  }
  if (p.op) rows.push_back({p.op.get(), StageKind::kOp, false});
  if (p.source_op) rows.push_back({p.source_op.get(), StageKind::kSource, false});
  for (const auto& op : p.transform_ops) {
    if (op) rows.push_back({op.get(), StageKind::kTransform, false});
  }
  if (p.sink_op && !p.op_fn) {
    rows.push_back({p.sink_op.get(), StageKind::kSink, !p.finalize_sink});
  }
  return rows;
}

}  // namespace

std::string PhysicalPlan::ToString(bool analyze) const {
  std::string out;
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    const PhysicalPipeline& p = pipelines_[i];
    std::string header = "P" + std::to_string(i);
    if (!p.inputs.empty()) {
      header += " [<-";
      for (size_t j = 0; j < p.inputs.size(); ++j) {
        header += (j ? ", P" : " P") + std::to_string(p.inputs[j]);
      }
      header += "]";
    }
    std::vector<StageRow> rows = CollectStages(p);
    if (!analyze) {
      out += header + ": ";
      bool first = true;
      // analyze:allow(guard-probe: EXPLAIN rendering; plan-shaped, not data-shaped)
      for (const auto& r : rows) {
        if (r.kind == StageKind::kPrepare) continue;  // shown via [<- Pk]
        if (!first) out += " -> ";
        out += r.op->name;
        if (r.shared_sink) out += " (shared)";
        first = false;
      }
      out += "\n";
      continue;
    }
    out += header + ":\n";
    // analyze:allow(guard-probe: EXPLAIN rendering; plan-shaped, not data-shaped)
    for (const auto& r : rows) {
      const OperatorMetrics& m = r.op->metrics;
      std::string line = "  " + r.op->name;
      if (r.shared_sink) line += " (shared)";
      if (line.size() < 46) line.append(46 - line.size(), ' ');
      if (r.kind == StageKind::kTransform || r.kind == StageKind::kSink ||
          r.kind == StageKind::kPrepare) {
        line += " rows_in=" + std::to_string(m.rows_in.load(kRelaxed));
      }
      if (r.kind != StageKind::kPrepare) {
        line += " rows_out=" + std::to_string(m.rows_out.load(kRelaxed));
      }
      if (r.kind == StageKind::kSource || r.kind == StageKind::kTransform ||
          r.kind == StageKind::kSink) {
        line += " chunks=" + std::to_string(m.chunks.load(kRelaxed));
      }
      line += " time=" + FormatTime(m.nanos.load(kRelaxed));
      out += line + "\n";
    }
    out += "  bytes_reserved=" + std::to_string(p.bytes_reserved) + "\n";
  }
  return out;
}

}  // namespace soda
