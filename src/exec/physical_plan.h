/// \file physical_plan.h
/// The physical plan: a whole query lowered once into a DAG of pipelines.
///
/// `LowerPlan` walks the optimized logical plan and decomposes it into
/// `PhysicalPipeline`s — each a source (table scan, runtime binding, or a
/// previously finished pipeline's output), a chain of streaming
/// `Transform`s, and a pipeline-breaking `Sink` — executed in dependency
/// order by `PhysicalPlan::Execute`. This replaces the old recursive
/// `ExecutePlan -> TablePtr` interpreter that materialized a full relation
/// at every plan-node boundary: aggregates, sorts, limits and UNION ALL now
/// consume their input pipeline directly, and the analytics table functions
/// (paper §6) are physical operators whose relation inputs are pipelines of
/// the same plan — the paper's Fig. 3 property made literal in the engine.
///
/// Every operator carries `OperatorMetrics` (rows in/out, chunks, wall
/// time); `EXPLAIN <stmt>` prints the pipeline decomposition and
/// `EXPLAIN ANALYZE <stmt>` executes the plan and reports the metrics —
/// the harness every perf PR proves itself against.
///
/// Lowering performs no execution and touches no data: all table
/// resolution, hash-table builds, and lambda compilation happen inside
/// `Execute` (or the per-pipeline `prepares` closures), which is what lets
/// plain EXPLAIN print pipelines without running the query.
///
/// Lifetime: a PhysicalPlan holds pointers into the logical plan it was
/// lowered from; the PlanNode tree must outlive it.

#ifndef SODA_EXEC_PHYSICAL_PLAN_H_
#define SODA_EXEC_PHYSICAL_PLAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "exec/executor.h"
#include "sql/logical_plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace soda {

/// Per-operator runtime counters; updated with relaxed atomics from every
/// worker thread of the operator's pipeline.
struct OperatorMetrics {
  std::atomic<uint64_t> rows_in{0};   ///< rows entering the operator
  std::atomic<uint64_t> rows_out{0};  ///< rows emitted / in the result
  std::atomic<uint64_t> chunks{0};    ///< chunks processed
  std::atomic<uint64_t> nanos{0};     ///< wall time, inclusive of the
                                      ///< downstream chain it pushed into
                                      ///< (like Postgres' "actual time")
};

/// One display/metrics row of the physical plan (a source, transform,
/// prepare step, sink, or whole-relation operator).
struct PhysicalOperator {
  explicit PhysicalOperator(std::string n) : name(std::move(n)) {}
  std::string name;
  OperatorMetrics metrics;
};
using PhysOpPtr = std::shared_ptr<PhysicalOperator>;

class PhysicalPlan;

/// One schedulable unit. Exactly one of these forms:
///  - streaming: a source (`table_source` or `input_pipeline`) pushed
///    through `transforms` into `sink`;
///  - finalize-only: `sink` set but no source (closes a sink shared by
///    earlier pipelines, e.g. UNION ALL);
///  - operator: `op_fn` computes the result relation directly (scans
///    returned by reference, VALUES, ITERATE, recursive CTEs, analytics
///    table functions).
struct PhysicalPipeline {
  static constexpr size_t kNoInput = std::numeric_limits<size_t>::max();
  static constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();

  // --- streaming form -----------------------------------------------------
  /// Resolves the source relation at run time (catalog scan / binding).
  std::function<Result<TablePtr>(ExecContext&)> table_source;
  /// Index of the pipeline whose result feeds this one (when no
  /// `table_source`).
  size_t input_pipeline = kNoInput;
  /// Scan at most this many source rows (bounded LIMIT over a
  /// cardinality-preserving chain).
  size_t scan_limit = kUnbounded;
  /// The logical scan node feeding this pipeline, when the source is a
  /// base-table scan: carries pushed predicates and the pruned partition
  /// set. Null for bindings and pipeline-fed sources. Points into the
  /// logical plan (which must outlive the PhysicalPlan).
  const PlanNode* scan_node = nullptr;
  /// Fused scan projection: physical column indexes the scan materializes,
  /// in output order (a pure-column-ref Project collapsed into the scan, so
  /// sealed tables never decode dropped columns). Empty = all columns.
  std::vector<size_t> scan_columns;
  PhysOpPtr source_op;

  /// The transform chain. Entries may be null until a `prepares` closure
  /// fills them (join probes wait for their build pipeline's result);
  /// `transform_ops` always has matching display entries.
  std::vector<std::shared_ptr<const Transform>> transforms;
  std::vector<PhysOpPtr> transform_ops;

  /// Run after all dependencies finished, before streaming starts (hash
  /// join builds). May patch `transforms` slots of this pipeline.
  std::vector<std::function<Status(PhysicalPlan&, PhysicalPipeline&,
                                   ExecContext&)>>
      prepares;
  std::vector<PhysOpPtr> prepare_ops;

  /// The breaker. Possibly shared with sibling pipelines (UNION ALL);
  /// only the pipeline with `finalize_sink` set closes it and publishes
  /// `result`.
  std::shared_ptr<TableSink> sink;
  bool finalize_sink = true;
  /// Adds the finalized row count to
  /// `ctx.stats.cumulative_materialized_tuples` (kept compatible with the
  /// pre-physical-plan accounting used by the §5.1 ablation).
  bool count_materialization = false;
  PhysOpPtr sink_op;

  // --- operator form ------------------------------------------------------
  std::function<Result<TablePtr>(PhysicalPlan&, ExecContext&)> op_fn;
  PhysOpPtr op;

  /// Pre-execution gate, evaluated once before *any* pipeline runs:
  /// returning true skips the whole pipeline (its `result` stays null)
  /// and, transitively, every earlier pipeline feeding skipped pipelines
  /// exclusively. Installed on hash-join build pipelines whose table may
  /// come from the recycler — the dependent probe prepare knows how to
  /// proceed without the result, and the build's upstream subtree (e.g.
  /// an aggregation producing a derived build side) is elided with it.
  /// Gates must depend only on the context, never on pipeline results.
  std::function<Result<bool>(ExecContext&)> skip_if;

  /// Pipelines whose results this one reads (join builds, table-function
  /// inputs); shown by EXPLAIN. Always indices of earlier pipelines.
  std::vector<size_t> inputs;

  // --- filled by Execute --------------------------------------------------
  TablePtr result;
  uint64_t bytes_reserved = 0;  ///< QueryGuard bytes charged while running
};

/// The lowered query: pipelines in dependency order (every pipeline only
/// reads results of earlier ones), executed sequentially; morsel
/// parallelism lives inside each pipeline.
class PhysicalPlan {
 public:
  /// Runs every pipeline. On failure the already-produced intermediate
  /// results are dropped with the plan; the error Status is returned as-is
  /// (cancellation, deadline, memory budget, and injected faults at the
  /// "exec.pipeline" probe site all surface here).
  Status Execute(ExecContext& ctx);

  /// The root pipeline's relation; valid after a successful Execute.
  TablePtr result() const {
    return pipelines_.empty() ? nullptr : pipelines_.back().result;
  }

  size_t num_pipelines() const { return pipelines_.size(); }
  PhysicalPipeline& pipeline(size_t i) { return pipelines_[i]; }
  const PhysicalPipeline& pipeline(size_t i) const { return pipelines_[i]; }

  /// Pipeline decomposition, one line per pipeline ("P0: Scan t -> Filter
  /// [...] -> Materialize"). With `analyze`, one line per operator with
  /// rows/chunks/time and per-pipeline reserved bytes.
  std::string ToString(bool analyze = false) const;

 private:
  friend class PhysicalPlanBuilder;

  Status RunStreaming(PhysicalPipeline& p, ExecContext& ctx);

  std::vector<PhysicalPipeline> pipelines_;
};

/// Lowers a logical plan into pipelines. Pure: executes nothing, reads no
/// tables. `plan` must outlive the returned PhysicalPlan.
Result<PhysicalPlan> LowerPlan(const PlanNode& plan);

}  // namespace soda

#endif  // SODA_EXEC_PHYSICAL_PLAN_H_
