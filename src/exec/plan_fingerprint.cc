#include "exec/plan_fingerprint.h"

namespace soda {

namespace {

/// FNV-1a, the same shape the executor's hash kernels use for strings —
/// cheap, order-sensitive, and stable across runs (no pointer mixing).
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

class Mixer {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

void MixValue(Mixer& m, const Value& v) {
  m.U64(static_cast<uint64_t>(v.type()));
  m.U64(v.is_null() ? 1 : 0);
  if (!v.is_null()) m.Str(v.ToString());
}

void MixExpr(Mixer& m, const Expression& e) {
  // The bound rendering is already canonical: column references print as
  // name#index, literals as values, parameters as $n.
  m.Str(e.ToString());
  m.U64(static_cast<uint64_t>(e.type));
}

void MixNode(Mixer& m, const PlanNode& node, const Catalog& snapshot,
             std::vector<PlanDependency>* deps) {
  m.U64(static_cast<uint64_t>(node.kind));
  m.U64(HashSchema(node.schema));

  if (node.kind == PlanKind::kScan) {
    m.Str(node.table_name);
    uint64_t version = 0;
    uint64_t schema_hash = 0;
    bool quarantined = false;
    Result<TablePtr> t = snapshot.GetTable(node.table_name);
    if (t.ok()) {
      version = (*t)->version();
      schema_hash = HashSchema((*t)->schema());
      quarantined = (*t)->quarantined();
    }
    m.U64(version);
    m.U64(schema_hash);
    if (deps != nullptr) {
      bool seen = false;
      for (const PlanDependency& d : *deps) {
        if (d.table == node.table_name) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        deps->push_back({node.table_name, version, schema_hash, quarantined});
      }
    }
  }
  for (const ScanPredicate& p : node.scan_predicates) {
    m.U64(p.column);
    m.U64(static_cast<uint64_t>(p.op));
    MixValue(m, p.constant);
  }
  m.U64(node.scan_total_partitions);
  for (size_t p : node.scan_partitions) m.U64(p);

  m.U64(node.rows.size());
  // analyze:allow(guard-probe: VALUES literals; size bounded by the SQL text)
  for (const auto& row : node.rows) {
    // analyze:allow(guard-probe: VALUES literals; size bounded by the SQL text)
    for (const Value& v : row) MixValue(m, v);
  }

  if (node.predicate) MixExpr(m, *node.predicate);
  m.U64(node.exprs.size());
  for (const ExprPtr& e : node.exprs) MixExpr(m, *e);

  for (size_t k : node.left_keys) m.U64(k);
  m.U64(node.left_keys.size());
  for (size_t k : node.right_keys) m.U64(k);
  m.U64(node.right_keys.size());

  m.U64(node.num_group_cols);
  for (const AggregateSpec& a : node.aggregates) {
    m.Str(a.function);
    m.I64(a.arg_index);
    m.U64(static_cast<uint64_t>(a.result_type));
  }
  for (const SortKey& k : node.sort_keys) {
    MixExpr(m, *k.expr);
    m.U64(k.descending ? 1 : 0);
  }
  m.I64(node.limit);
  m.I64(node.offset);

  m.Str(node.binding_name);
  m.Str(node.function_name);
  for (const Value& v : node.scalar_args) MixValue(m, v);
  for (const BoundLambda& l : node.lambdas) {
    MixExpr(m, *l.body);
    m.U64(l.a_width);
  }

  m.U64(node.children.size());
  for (const PlanPtr& c : node.children) MixNode(m, *c, snapshot, deps);
}

Status SubstituteInExpr(Expression* e, const std::vector<Value>& args) {
  if (e->kind == ExprKind::kParameter) {
    const size_t slot = e->column_index;
    if (slot == 0 || slot > args.size()) {
      return Status::InvalidArgument(
          "EXECUTE provides " + std::to_string(args.size()) +
          " parameter(s) but the statement references $" +
          std::to_string(slot));
    }
    const DataType type = e->type;
    e->kind = ExprKind::kLiteral;
    e->literal = args[slot - 1];
    e->type = type;  // the value was cast to the bound type at EXECUTE
    e->column_index = 0;
    return Status::OK();
  }
  for (const ExprPtr& c : e->children) {
    SODA_RETURN_NOT_OK(SubstituteInExpr(c.get(), args));
  }
  return Status::OK();
}

}  // namespace

uint64_t HashSchema(const Schema& schema) {
  Mixer m;
  m.U64(schema.num_fields());
  for (const Field& f : schema.fields()) {
    m.Str(f.name);
    m.U64(static_cast<uint64_t>(f.type));
    m.Str(f.qualifier);
  }
  return m.hash();
}

uint64_t FingerprintPlan(const PlanNode& plan, const Catalog& snapshot,
                         std::vector<PlanDependency>* deps) {
  Mixer m;
  MixNode(m, plan, snapshot, deps);
  return m.hash();
}

Status SubstituteParams(PlanNode* plan, const std::vector<Value>& args) {
  if (plan->predicate) {
    SODA_RETURN_NOT_OK(SubstituteInExpr(plan->predicate.get(), args));
  }
  for (const ExprPtr& e : plan->exprs) {
    SODA_RETURN_NOT_OK(SubstituteInExpr(e.get(), args));
  }
  for (const SortKey& k : plan->sort_keys) {
    SODA_RETURN_NOT_OK(SubstituteInExpr(k.expr.get(), args));
  }
  for (const BoundLambda& l : plan->lambdas) {
    SODA_RETURN_NOT_OK(SubstituteInExpr(l.body.get(), args));
  }
  for (const PlanPtr& c : plan->children) {
    SODA_RETURN_NOT_OK(SubstituteParams(c.get(), args));
  }
  return Status::OK();
}

}  // namespace soda
