/// \file plan_fingerprint.h
/// Canonical fingerprints of logical plan DAGs (DESIGN.md §11).
///
/// The fingerprint is the cache key shared by the plan cache and the join
/// hash-table recycler (mirroring OmniSciDB's DataRecycler keying: hashed
/// query-plan DAG → cached artifact). It folds in, per node:
///   - the node kind and every execution-relevant scalar field (keys,
///     group counts, limits, scalar args, pushed predicates, pruned
///     partitions),
///   - the bound expression shapes (rendered with column indices and $n
///     parameter slots — two queries differing only in parameter VALUES
///     share a fingerprint, differing in parameter POSITIONS do not),
///   - for every base-table scan: the table name, its catalog publication
///     version, and a hash of its schema. DML/DDL republishes tables with
///     fresh versions (stage-and-swap ReplaceTable), and DROP+CREATE with
///     a different schema changes the schema hash even if versions were
///     ever reused — so stale artifacts can never be served by key match.

#ifndef SODA_EXEC_PLAN_FINGERPRINT_H_
#define SODA_EXEC_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/logical_plan.h"
#include "storage/catalog.h"
#include "types/value.h"
#include "util/status.h"

namespace soda {

/// One base table a fingerprinted plan reads. `version` and `schema_hash`
/// pin the exact published incarnation; `quarantined` records whether any
/// part of it was quarantined at fingerprint time (quarantined tables are
/// never served from caches — a recycled hash table would bypass the
/// per-morsel CheckReadable gate).
struct PlanDependency {
  std::string table;
  uint64_t version = 0;
  uint64_t schema_hash = 0;
  bool quarantined = false;
};

/// Order-sensitive structural hash of a schema (field names, types,
/// qualifiers).
uint64_t HashSchema(const Schema& schema);

/// Fingerprints `plan` against `snapshot` (the statement's pinned catalog
/// snapshot — versions come from the tables the statement will actually
/// read). Appends one PlanDependency per distinct scanned table to `deps`
/// (may be null).
uint64_t FingerprintPlan(const PlanNode& plan, const Catalog& snapshot,
                         std::vector<PlanDependency>* deps);

/// Replaces every kParameter expression in `plan` (in place — callers
/// clone the shared cached plan first) with a literal from `args`, whose
/// slot i value must already be cast to the parameter's bound type.
/// Fails with InvalidArgument when a slot exceeds args.size().
Status SubstituteParams(PlanNode* plan, const std::vector<Value>& args);

}  // namespace soda

#endif  // SODA_EXEC_PLAN_FINGERPRINT_H_
