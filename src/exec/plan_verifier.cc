#include "exec/plan_verifier.h"

#include <string>
#include <unordered_map>

#include "exec/executor.h"

namespace soda {

namespace {

Status Violation(const std::string& where, const std::string& problem) {
  return Status::Internal("plan verifier: " + where + ": " + problem);
}

/// Checks a bound expression tree against the schema it reads from.
/// `where` names the plan operator for diagnostics.
Status VerifyExpr(const Expression& expr, const Schema& input,
                  const std::string& where) {
  if (expr.type == DataType::kInvalid) {
    return Violation(where, "expression '" + expr.ToString() +
                                "' has invalid result type");
  }
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      if (expr.column_index >= input.num_fields()) {
        return Violation(
            where, "column reference #" + std::to_string(expr.column_index) +
                       " out of bounds for input of " +
                       std::to_string(input.num_fields()) + " columns");
      }
      const Field& f = input.field(expr.column_index);
      if (f.type != expr.type) {
        return Violation(
            where, "column reference #" + std::to_string(expr.column_index) +
                       " typed " + DataTypeToString(expr.type) +
                       " but input column is " + DataTypeToString(f.type));
      }
      break;
    }
    case ExprKind::kLiteral:
      break;
    case ExprKind::kBinary: {
      if (expr.children.size() != 2) {
        return Violation(where, "binary expression with " +
                                    std::to_string(expr.children.size()) +
                                    " children");
      }
      if ((IsComparison(expr.binary_op) || IsLogical(expr.binary_op)) &&
          expr.type != DataType::kBool) {
        return Violation(where, "comparison '" + expr.ToString() +
                                    "' does not produce BOOLEAN");
      }
      break;
    }
    case ExprKind::kUnary:
    case ExprKind::kCast: {
      if (expr.children.size() != 1) {
        return Violation(where, "unary/cast expression with " +
                                    std::to_string(expr.children.size()) +
                                    " children");
      }
      break;
    }
    case ExprKind::kFunction:
      break;
    case ExprKind::kParameter:
      // Prepared-plan placeholder: legal in a stored plan (it is replaced
      // by a literal before execution) as long as it carries a concrete
      // type — the kInvalid check above already rejects untyped ones.
      if (!expr.children.empty()) {
        return Violation(where, "parameter with children");
      }
      break;
    case ExprKind::kCase: {
      // children = [when1, then1, ..., else]; the else branch is always
      // bound, so the count is odd.
      if (expr.children.empty() || expr.children.size() % 2 == 0) {
        return Violation(where, "CASE expression with " +
                                    std::to_string(expr.children.size()) +
                                    " children (expected odd count)");
      }
      break;
    }
  }
  for (const ExprPtr& child : expr.children) {
    SODA_RETURN_NOT_OK(VerifyExpr(*child, input, where));
  }
  return Status::OK();
}

Status CheckChildCount(const PlanNode& plan, size_t want) {
  if (plan.children.size() != want) {
    return Violation(PlanKindToString(plan.kind),
                     "expected " + std::to_string(want) + " children, has " +
                         std::to_string(plan.children.size()));
  }
  return Status::OK();
}

/// `schema` must be positionally type-compatible with `other`.
Status CheckTypesEqual(const PlanNode& plan, const Schema& other,
                       const std::string& what) {
  if (!plan.schema.TypesEqual(other)) {
    return Violation(PlanKindToString(plan.kind),
                     "output schema " + plan.schema.ToString() +
                         " does not match " + what + " " + other.ToString());
  }
  return Status::OK();
}

}  // namespace

Status VerifyLogicalPlan(const PlanNode& plan) {
  const std::string where = PlanKindToString(plan.kind);
  switch (plan.kind) {
    case PlanKind::kScan: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 0));
      if (plan.table_name.empty()) {
        return Violation(where, "scan without a table name");
      }
      for (const ScanPredicate& pred : plan.scan_predicates) {
        if (pred.column >= plan.schema.num_fields()) {
          return Violation(where,
                           "pushed predicate on column #" +
                               std::to_string(pred.column) +
                               " out of bounds for " +
                               std::to_string(plan.schema.num_fields()) +
                               " columns");
        }
        if (pred.constant.is_null()) {
          return Violation(where,
                           "pushed predicate with a NULL constant (never "
                           "matches; must not be pushed)");
        }
        // The storage layer evaluates pushed predicates on the encoded
        // payload without coercion; the optimizer must have normalized
        // the constant to the column's payload family.
        const DataType col = plan.schema.field(pred.column).type;
        const DataType want = col == DataType::kBool ? DataType::kBigInt : col;
        if (pred.constant.type() != want) {
          return Violation(
              where, "pushed predicate constant typed " +
                         std::string(DataTypeToString(pred.constant.type())) +
                         " for column of type " + DataTypeToString(col));
        }
      }
      if (plan.scan_total_partitions == 0) {
        if (!plan.scan_partitions.empty()) {
          return Violation(where,
                           "partition list set but total partitions is 0");
        }
      } else {
        size_t prev = 0;
        bool first = true;
        for (size_t p : plan.scan_partitions) {
          if (p >= plan.scan_total_partitions) {
            return Violation(where,
                             "partition #" + std::to_string(p) +
                                 " out of bounds for " +
                                 std::to_string(plan.scan_total_partitions) +
                                 " partitions");
          }
          if (!first && p <= prev) {
            return Violation(where,
                             "partition list is not strictly ascending");
          }
          prev = p;
          first = false;
        }
      }
      break;
    }
    case PlanKind::kValues: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 0));
      // analyze:allow(guard-probe: VALUES literals; size bounded by the SQL text)
      for (size_t r = 0; r < plan.rows.size(); ++r) {
        if (plan.rows[r].size() != plan.schema.num_fields()) {
          return Violation(where, "row " + std::to_string(r) + " has " +
                                      std::to_string(plan.rows[r].size()) +
                                      " values for a " +
                                      std::to_string(plan.schema.num_fields()) +
                                      "-column schema");
        }
      }
      break;
    }
    case PlanKind::kFilter: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 1));
      if (!plan.predicate) return Violation(where, "missing predicate");
      const Schema& child = plan.children[0]->schema;
      SODA_RETURN_NOT_OK(VerifyExpr(*plan.predicate, child, where));
      if (plan.predicate->type != DataType::kBool) {
        return Violation(where, "predicate '" + plan.predicate->ToString() +
                                    "' is not BOOLEAN");
      }
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, child, "child schema"));
      break;
    }
    case PlanKind::kProject: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 1));
      if (plan.exprs.size() != plan.schema.num_fields()) {
        return Violation(where, std::to_string(plan.exprs.size()) +
                                    " expressions for a " +
                                    std::to_string(plan.schema.num_fields()) +
                                    "-column schema");
      }
      const Schema& child = plan.children[0]->schema;
      for (size_t i = 0; i < plan.exprs.size(); ++i) {
        SODA_RETURN_NOT_OK(VerifyExpr(*plan.exprs[i], child, where));
        if (plan.exprs[i]->type != plan.schema.field(i).type) {
          return Violation(
              where, "expression " + std::to_string(i) + " produces " +
                         DataTypeToString(plan.exprs[i]->type) +
                         " but schema field is " +
                         DataTypeToString(plan.schema.field(i).type));
        }
      }
      break;
    }
    case PlanKind::kJoin: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 2));
      const Schema& left = plan.children[0]->schema;
      const Schema& right = plan.children[1]->schema;
      if (plan.left_keys.size() != plan.right_keys.size()) {
        return Violation(where,
                         "key arity mismatch: " +
                             std::to_string(plan.left_keys.size()) +
                             " left vs " +
                             std::to_string(plan.right_keys.size()) +
                             " right");
      }
      for (size_t k : plan.left_keys) {
        if (k >= left.num_fields()) {
          return Violation(where, "left key #" + std::to_string(k) +
                                      " out of bounds for " +
                                      std::to_string(left.num_fields()) +
                                      " columns");
        }
      }
      for (size_t k : plan.right_keys) {
        if (k >= right.num_fields()) {
          return Violation(where, "right key #" + std::to_string(k) +
                                      " out of bounds for " +
                                      std::to_string(right.num_fields()) +
                                      " columns");
        }
      }
      Schema concat = left.Concat(right);
      SODA_RETURN_NOT_OK(
          CheckTypesEqual(plan, concat, "concatenated child schemas"));
      if (plan.predicate) {
        SODA_RETURN_NOT_OK(VerifyExpr(*plan.predicate, concat, where));
        if (plan.predicate->type != DataType::kBool) {
          return Violation(where, "residual predicate is not BOOLEAN");
        }
      }
      break;
    }
    case PlanKind::kAggregate: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 1));
      const Schema& child = plan.children[0]->schema;
      if (plan.num_group_cols > child.num_fields()) {
        return Violation(where, std::to_string(plan.num_group_cols) +
                                    " group columns but child has only " +
                                    std::to_string(child.num_fields()));
      }
      const size_t want =
          plan.num_group_cols + plan.aggregates.size();
      if (plan.schema.num_fields() != want) {
        return Violation(
            where, "schema has " + std::to_string(plan.schema.num_fields()) +
                       " columns, expected " + std::to_string(want) +
                       " (groups + aggregates)");
      }
      for (size_t i = 0; i < plan.aggregates.size(); ++i) {
        const AggregateSpec& spec = plan.aggregates[i];
        if (spec.arg_index >= 0 &&
            static_cast<size_t>(spec.arg_index) >= child.num_fields()) {
          return Violation(
              where, spec.function + " argument column #" +
                         std::to_string(spec.arg_index) +
                         " out of bounds for " +
                         std::to_string(child.num_fields()) + " columns");
        }
        if (plan.schema.field(plan.num_group_cols + i).type !=
            spec.result_type) {
          return Violation(
              where, spec.function + " result type " +
                         DataTypeToString(spec.result_type) +
                         " does not match schema field " +
                         DataTypeToString(
                             plan.schema.field(plan.num_group_cols + i)
                                 .type));
        }
      }
      break;
    }
    case PlanKind::kSort: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 1));
      const Schema& child = plan.children[0]->schema;
      if (plan.sort_keys.empty()) {
        return Violation(where, "sort without keys");
      }
      for (const SortKey& key : plan.sort_keys) {
        if (!key.expr) return Violation(where, "sort key without expression");
        SODA_RETURN_NOT_OK(VerifyExpr(*key.expr, child, where));
      }
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, child, "child schema"));
      break;
    }
    case PlanKind::kLimit: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 1));
      if (plan.limit < -1) {
        return Violation(where,
                         "negative limit " + std::to_string(plan.limit));
      }
      if (plan.offset < 0) {
        return Violation(where,
                         "negative offset " + std::to_string(plan.offset));
      }
      SODA_RETURN_NOT_OK(
          CheckTypesEqual(plan, plan.children[0]->schema, "child schema"));
      break;
    }
    case PlanKind::kUnionAll: {
      if (plan.children.size() < 2) {
        return Violation(where, "union of " +
                                    std::to_string(plan.children.size()) +
                                    " branches (expected >= 2)");
      }
      for (size_t i = 0; i < plan.children.size(); ++i) {
        SODA_RETURN_NOT_OK(CheckTypesEqual(
            plan, plan.children[i]->schema,
            "branch " + std::to_string(i) + " schema"));
      }
      break;
    }
    case PlanKind::kRecursiveCte: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 2));
      if (plan.binding_name.empty()) {
        return Violation(where, "recursive CTE without a binding name");
      }
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, plan.children[0]->schema,
                                         "initializer schema"));
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, plan.children[1]->schema,
                                         "recursive step schema"));
      break;
    }
    case PlanKind::kIterate: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 3));
      if (plan.binding_name.empty()) {
        return Violation(where, "ITERATE without a binding name");
      }
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, plan.children[0]->schema,
                                         "initializer schema"));
      SODA_RETURN_NOT_OK(CheckTypesEqual(plan, plan.children[1]->schema,
                                         "step schema"));
      break;
    }
    case PlanKind::kBindingRef: {
      SODA_RETURN_NOT_OK(CheckChildCount(plan, 0));
      if (plan.binding_name.empty()) {
        return Violation(where, "binding reference without a name");
      }
      break;
    }
    case PlanKind::kTableFunction: {
      if (plan.function_name.empty()) {
        return Violation(where, "table function without a name");
      }
      break;
    }
  }
  if (plan.kind != PlanKind::kScan &&
      (!plan.scan_predicates.empty() || !plan.scan_partitions.empty() ||
       plan.scan_total_partitions != 0)) {
    return Violation(where,
                     "scan pushdown/pruning fields set on a non-scan node");
  }
  for (const PlanPtr& child : plan.children) {
    SODA_RETURN_NOT_OK(VerifyLogicalPlan(*child));
  }
  return Status::OK();
}

Status VerifyPhysicalPlan(const PhysicalPlan& plan) {
  // First pass: per-pipeline structure + dependency-order (acyclicity).
  // Pipelines are stored in dependency order, so any edge to a pipeline
  // at the same or a later index is a cycle or forward reference.
  for (size_t i = 0; i < plan.num_pipelines(); ++i) {
    const PhysicalPipeline& p = plan.pipeline(i);
    const std::string where = "pipeline P" + std::to_string(i);

    for (size_t dep : p.inputs) {
      if (dep >= i) {
        return Violation(where, "input P" + std::to_string(dep) +
                                    " is not an earlier pipeline (cyclic or "
                                    "forward dependency)");
      }
    }
    if (p.input_pipeline != PhysicalPipeline::kNoInput &&
        p.input_pipeline >= i) {
      return Violation(where,
                       "source pipeline P" + std::to_string(p.input_pipeline) +
                           " is not an earlier pipeline (cyclic or forward "
                           "dependency)");
    }

    const bool streaming = p.table_source != nullptr ||
                           p.input_pipeline != PhysicalPipeline::kNoInput;
    if (p.op_fn) {
      if (p.sink || streaming) {
        return Violation(where,
                         "operator form mixed with a streaming source/sink");
      }
      continue;
    }
    if (!p.sink) {
      return Violation(where, "pipeline has neither op_fn nor sink");
    }
    if (p.table_source && p.input_pipeline != PhysicalPipeline::kNoInput) {
      return Violation(where, "both a table source and an input pipeline");
    }
    if (p.transforms.size() != p.transform_ops.size()) {
      return Violation(where,
                       "transform/display arity mismatch (" +
                           std::to_string(p.transforms.size()) + " vs " +
                           std::to_string(p.transform_ops.size()) + ")");
    }
    if (p.prepares.size() != p.prepare_ops.size()) {
      return Violation(where,
                       "prepare/display arity mismatch (" +
                           std::to_string(p.prepares.size()) + " vs " +
                           std::to_string(p.prepare_ops.size()) + ")");
    }
    if (streaming && !p.sink_op) {
      return Violation(where, "streaming pipeline without a sink operator");
    }
    for (size_t t = 0; t < p.transforms.size(); ++t) {
      // A null transform slot is legal only when a prepare closure will
      // patch it before streaming starts (join probes).
      if (!p.transforms[t] && p.prepares.empty()) {
        const std::string name =
            p.transform_ops[t] ? p.transform_ops[t]->name : "?";
        return Violation(where, "transform " + std::to_string(t) + " (" +
                                    name + ") is unpatched and the pipeline "
                                    "has no prepare step");
      }
    }
    if (streaming && !p.finalize_sink) {
      // A feeder into a shared sink: some later pipeline must finalize it
      // (checked in the sink pass below).
      continue;
    }
  }

  // Second pass: sink contract. Every sink is finalized exactly once, a
  // sink shared by several pipelines must be a MaterializeSink (aggregate
  // / sort / limit sinks are fed only by their own declared pipeline), and
  // the finalizing pipeline must come after every feeder.
  std::unordered_map<const Sink*, std::vector<size_t>> users;
  std::unordered_map<const Sink*, size_t> finalizers;
  for (size_t i = 0; i < plan.num_pipelines(); ++i) {
    const PhysicalPipeline& p = plan.pipeline(i);
    if (!p.sink) continue;
    users[p.sink.get()].push_back(i);
    if (p.finalize_sink) {
      auto [it, inserted] = finalizers.emplace(p.sink.get(), i);
      if (!inserted) {
        return Violation("pipeline P" + std::to_string(i),
                         "sink '" + p.sink->name() +
                             "' already finalized by P" +
                             std::to_string(it->second));
      }
    }
  }
  for (const auto& [sink, pipelines] : users) {
    auto fin = finalizers.find(sink);
    if (fin == finalizers.end()) {
      return Violation("pipeline P" + std::to_string(pipelines.front()),
                       "sink '" + sink->name() + "' is never finalized");
    }
    if (fin->second != pipelines.back()) {
      return Violation(
          "pipeline P" + std::to_string(fin->second),
          "sink '" + sink->name() + "' finalized before feeder P" +
              std::to_string(pipelines.back()) + " ran");
    }
    if (pipelines.size() > 1 &&
        dynamic_cast<const MaterializeSink*>(sink) == nullptr) {
      return Violation("pipeline P" + std::to_string(pipelines.front()),
                       "sink '" + sink->name() + "' shared by " +
                           std::to_string(pipelines.size()) +
                           " pipelines but only MaterializeSink may be "
                           "shared");
    }
  }
  return Status::OK();
}

Status VerifyPlan(const PlanNode& logical, const PhysicalPlan& physical) {
  SODA_RETURN_NOT_OK(VerifyLogicalPlan(logical));
  return VerifyPhysicalPlan(physical);
}

}  // namespace soda
