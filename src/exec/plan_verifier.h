/// \file plan_verifier.h
/// Static verification of query plans before execution.
///
/// A lowered plan that violates a structural invariant — a cyclic
/// pipeline dependency, a sink finalized twice, a column reference past
/// its input schema — used to be caught only when it crashed or produced
/// garbage mid-execution. The verifier walks both plan representations
/// up front:
///
///  - `VerifyLogicalPlan` checks the typed plan IR, where schemas live:
///    child-count per node kind, schema/type agreement across every
///    parent→child edge, expression output types against child schemas,
///    column-index bounds, aggregate/join arity.
///  - `VerifyPhysicalPlan` checks the pipeline DAG the lowering produced:
///    acyclicity (inputs must be earlier pipelines), exclusivity of the
///    streaming/finalize/operator forms, transform/display arity,
///    unpatched transform slots, and the sink contract (every sink
///    finalized exactly once; only MaterializeSink may be shared across
///    pipelines — an aggregate/sort/limit sink is fed only by its own
///    declared pipeline).
///
/// Violations are `kInternal` (they indicate a lowering bug, not a user
/// error) and name the offending operator. Execution verifies every plan
/// when `ExecContext::verify_plans` is set (the default; `SET
/// soda.verify_plans = off` disables it per session) and always in
/// debug (!NDEBUG) builds. `EXPLAIN` prints the verdict.

#ifndef SODA_EXEC_PLAN_VERIFIER_H_
#define SODA_EXEC_PLAN_VERIFIER_H_

#include "exec/physical_plan.h"
#include "sql/logical_plan.h"
#include "util/status.h"

namespace soda {

/// Debug builds verify every plan regardless of the session knob.
#ifndef NDEBUG
inline constexpr bool kPlanVerifierAlwaysOn = true;
#else
inline constexpr bool kPlanVerifierAlwaysOn = false;
#endif

/// Fault/robustness probe site for the verification step.
inline constexpr char kVerifyPlanSite[] = "exec.verify_plan";

/// Structural + type checks over the logical plan IR (recursive).
Status VerifyLogicalPlan(const PlanNode& plan);

/// Structural checks over a lowered pipeline DAG.
Status VerifyPhysicalPlan(const PhysicalPlan& plan);

/// Both layers; the form ExecutePlan runs before executing a query.
Status VerifyPlan(const PlanNode& logical, const PhysicalPlan& physical);

}  // namespace soda

#endif  // SODA_EXEC_PLAN_VERIFIER_H_
