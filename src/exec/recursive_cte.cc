/// \file recursive_cte.cc
/// SQL:1999 `WITH RECURSIVE` execution — the *appending* fixpoint
/// iteration the paper uses as its layer-3 baseline (§5.1): the recursive
/// term sees the previous iteration's rows (the working table) and every
/// iteration's output is appended to the final result, so the relation
/// grows to n*i tuples over i iterations.

#include <optional>

#include "exec/executor.h"

namespace soda {

Result<TablePtr> ExecuteRecursiveCte(const PlanNode& plan, ExecContext& ctx) {
  SODA_ASSIGN_OR_RETURN(TablePtr init, ExecutePlan(*plan.children[0], ctx));

  auto result = std::make_shared<Table>(plan.binding_name, plan.schema);
  for (size_t c = 0; c < init->num_columns(); ++c) {
    result->column(c).AppendSlice(init->column(c), 0, init->num_rows());
  }
  ctx.stats.cumulative_materialized_tuples += init->num_rows();

  TablePtr working = init;
  // Save/restore any outer binding of the same name (nested CTEs).
  auto saved = ctx.bindings.find(plan.binding_name) != ctx.bindings.end()
                   ? std::optional<TablePtr>(ctx.bindings[plan.binding_name])
                   : std::nullopt;

  auto restore = [&] {
    ctx.bindings.erase(plan.binding_name);
    if (saved) ctx.bindings[plan.binding_name] = *saved;
  };

  size_t iterations = 0;
  while (working->num_rows() > 0) {
    if (++iterations > ctx.max_iterations) {
      restore();
      return IterationCapExceeded("recursive CTE '" + plan.binding_name + "'",
                                  iterations - 1, ctx.max_iterations);
    }
    // Governance probe per step; divergent recursions abort cleanly
    // instead of appending until the process dies (paper §5.1).
    if (Status st = ctx.Probe("cte.step"); !st.ok()) {
      restore();
      return st;
    }
    ctx.bindings[plan.binding_name] = working;
    auto step = ExecutePlan(*plan.children[1], ctx);
    if (!step.ok()) {
      restore();
      return step.status();
    }
    working = step.MoveValueOrDie();
    // The appending copy below bypasses Table::AppendChunk, so charge the
    // growth to the memory budget explicitly.
    if (Status st = GuardReserve(ctx.guard, working->MemoryUsage(),
                                 "cte.append");
        !st.ok()) {
      restore();
      return st;
    }
    for (size_t c = 0; c < working->num_columns(); ++c) {
      result->column(c).AppendSlice(working->column(c), 0,
                                    working->num_rows());
    }
    ctx.stats.cumulative_materialized_tuples += working->num_rows();
    // Appending semantics: the result keeps every iteration, and the
    // working table rides on top (paper §5.1's memory argument).
    ctx.stats.AccountBoundTuples(result->num_rows() + working->num_rows());
    ctx.stats.iterations_run++;
  }

  restore();
  return result;
}

}  // namespace soda
