#include "exec/table_function.h"

#include "analytics/connected_components.h"
#include "analytics/kmeans.h"
#include "analytics/naive_bayes.h"
#include "analytics/pagerank.h"
#include "analytics/stats.h"
#include "exec/executor.h"
#include "expr/lambda_kernel.h"
#include "util/fault_sites.h"

namespace soda {

bool IsTableFunction(const std::string& lower_name) {
  return lower_name == "kmeans" || lower_name == "pagerank" ||
         lower_name == "naive_bayes_train" ||
         lower_name == "naive_bayes_predict" || lower_name == "summarize" ||
         lower_name == "connected_components" ||
         lower_name == "soda_fault_sites" || lower_name == "soda_status";
}

Result<TableFunctionSignature> GetTableFunctionSignature(
    const std::string& name) {
  if (name == "kmeans") {
    // Distance lambda is binary over (data, centers); scalars are
    // max_iterations and the optional min-change-fraction stop criterion
    // (§6.1's softened convergence).
    return TableFunctionSignature{2, 0, 2, 1, {{0, 1}}};
  }
  if (name == "pagerank") {
    // Edge-weight lambda is unary over (edges).
    return TableFunctionSignature{1, 0, 3, 1, {{0}}};
  }
  if (name == "naive_bayes_train") {
    return TableFunctionSignature{1, 0, 0, 0, {}};
  }
  if (name == "naive_bayes_predict") {
    return TableFunctionSignature{2, 0, 0, 0, {}};
  }
  if (name == "summarize") {
    return TableFunctionSignature{1, 0, 0, 0, {}};
  }
  if (name == "connected_components") {
    return TableFunctionSignature{1, 0, 0, 0, {}};
  }
  if (name == "soda_fault_sites") {
    // Introspection: zero arguments, emits the fault-site registry.
    return TableFunctionSignature{0, 0, 0, 0, {}};
  }
  if (name == "soda_status") {
    // Operations introspection: zero arguments, one row per health metric.
    return TableFunctionSignature{0, 0, 0, 0, {}};
  }
  return Status::KeyError("unknown table function: " + name);
}

namespace {

Status RequireAllNumeric(const Schema& schema, const std::string& what) {
  for (const auto& f : schema.fields()) {
    if (!IsNumeric(f.type)) {
      return Status::TypeError(what + " requires numeric columns; '" +
                               f.name + "' is " + DataTypeToString(f.type));
    }
  }
  return Status::OK();
}

}  // namespace

Result<Schema> InferTableFunctionSchema(
    const std::string& name, const std::vector<Schema>& relation_schemas,
    const std::vector<Value>& scalar_args) {
  SODA_ASSIGN_OR_RETURN(TableFunctionSignature sig,
                        GetTableFunctionSignature(name));
  if (relation_schemas.size() != sig.num_relations) {
    return Status::BindError(name + " expects " +
                             std::to_string(sig.num_relations) +
                             " relation argument(s), got " +
                             std::to_string(relation_schemas.size()));
  }
  if (scalar_args.size() < sig.min_scalars ||
      scalar_args.size() > sig.max_scalars) {
    return Status::BindError(name + ": wrong number of scalar arguments");
  }

  if (name == "kmeans") {
    const Schema& data = relation_schemas[0];
    const Schema& centers = relation_schemas[1];
    SODA_RETURN_NOT_OK(RequireAllNumeric(data, "kmeans"));
    SODA_RETURN_NOT_OK(RequireAllNumeric(centers, "kmeans"));
    if (data.num_fields() != centers.num_fields()) {
      return Status::BindError(
          "kmeans: data and centers must have matching column counts");
    }
    Schema out;
    out.AddField(Field("cluster", DataType::kBigInt));
    for (const auto& f : centers.fields()) {
      out.AddField(Field(f.name, DataType::kDouble));
    }
    return out;
  }
  if (name == "pagerank" || name == "connected_components") {
    const Schema& edges = relation_schemas[0];
    if (edges.num_fields() < 2 ||
        edges.field(0).type != DataType::kBigInt ||
        edges.field(1).type != DataType::kBigInt) {
      return Status::BindError(
          name + ": edge input must start with BIGINT (src, dst) columns");
    }
    if (name == "connected_components") {
      return Schema({Field("vertex", DataType::kBigInt),
                     Field("component", DataType::kBigInt)});
    }
    return Schema({Field("vertex", DataType::kBigInt),
                   Field("rank", DataType::kDouble)});
  }
  if (name == "naive_bayes_train" || name == "summarize") {
    const Schema& labeled = relation_schemas[0];
    if (labeled.num_fields() < 2 ||
        labeled.field(0).type != DataType::kBigInt) {
      return Status::BindError(
          name + ": input must be (label BIGINT, attributes NUMERIC...)");
    }
    for (size_t i = 1; i < labeled.num_fields(); ++i) {
      if (!IsNumeric(labeled.field(i).type)) {
        return Status::BindError(name + ": attribute columns must be numeric");
      }
    }
    if (name == "summarize") {
      return Schema({Field("class", DataType::kBigInt),
                     Field("attr", DataType::kBigInt),
                     Field("cnt", DataType::kBigInt),
                     Field("sum", DataType::kDouble),
                     Field("sumsq", DataType::kDouble),
                     Field("mean", DataType::kDouble),
                     Field("stddev", DataType::kDouble)});
    }
    return NaiveBayesModelSchema();
  }
  if (name == "soda_fault_sites") {
    return Schema({Field("site", DataType::kVarchar),
                   Field("description", DataType::kVarchar)});
  }
  if (name == "soda_status") {
    return Schema({Field("metric", DataType::kVarchar),
                   Field("value", DataType::kBigInt)});
  }
  if (name == "naive_bayes_predict") {
    if (!relation_schemas[0].TypesEqual(NaiveBayesModelSchema())) {
      return Status::BindError(
          "naive_bayes_predict: first input must be a model relation " +
          NaiveBayesModelSchema().ToString());
    }
    const Schema& data = relation_schemas[1];
    SODA_RETURN_NOT_OK(RequireAllNumeric(data, "naive_bayes_predict"));
    Schema out = data;
    out.AddField(Field("predicted", DataType::kBigInt));
    return out;
  }
  return Status::KeyError("unknown table function: " + name);
}

Result<TablePtr> ExecuteTableFunctionWithInputs(const PlanNode& plan,
                                                std::vector<TablePtr> inputs,
                                                ExecContext& ctx) {
  // Relation inputs arrive pre-materialized by the physical plan's input
  // pipelines (paper Fig. 2a: arbitrarily pre-processed input).

  // Compile lambdas into kernels (plan-time bound bodies -> flat numeric
  // programs; see expr/lambda_kernel.h).
  std::vector<LambdaKernel> kernels;
  kernels.reserve(plan.lambdas.size());
  for (const auto& l : plan.lambdas) {
    SODA_ASSIGN_OR_RETURN(LambdaKernel k,
                          LambdaKernel::Compile(*l.body, l.a_width));
    kernels.push_back(std::move(k));
  }

  const std::string& name = plan.function_name;
  if (name == "kmeans") {
    KMeansOptions options;
    if (!plan.scalar_args.empty()) {
      options.max_iterations = plan.scalar_args[0].AsBigInt();
    }
    if (plan.scalar_args.size() > 1) {
      options.min_change_fraction = plan.scalar_args[1].AsDouble();
    }
    if (!kernels.empty()) options.distance = &kernels[0];
    options.guard = ctx.guard;
    SODA_ASSIGN_OR_RETURN(KMeansResult result,
                          RunKMeans(*inputs[0], *inputs[1], options));
    ctx.stats.iterations_run += static_cast<size_t>(result.iterations_run);
    return result.centers;
  }
  if (name == "pagerank") {
    PageRankOptions options;
    if (plan.scalar_args.size() > 0) {
      options.damping = plan.scalar_args[0].AsDouble();
    }
    if (plan.scalar_args.size() > 1) {
      options.epsilon = plan.scalar_args[1].AsDouble();
    }
    if (plan.scalar_args.size() > 2) {
      options.max_iterations = plan.scalar_args[2].AsBigInt();
    }
    if (!kernels.empty()) options.edge_weight = &kernels[0];
    options.guard = ctx.guard;
    PageRankStats stats;
    SODA_ASSIGN_OR_RETURN(TablePtr result,
                          RunPageRank(*inputs[0], options, &stats));
    ctx.stats.iterations_run += static_cast<size_t>(stats.iterations_run);
    return result;
  }
  if (name == "naive_bayes_train") {
    return TrainNaiveBayes(*inputs[0], ctx.guard);
  }
  if (name == "naive_bayes_predict") {
    return PredictNaiveBayes(*inputs[0], *inputs[1], ctx.guard);
  }
  if (name == "summarize") {
    return SummarizeByClass(*inputs[0], ctx.guard);
  }
  if (name == "connected_components") {
    ConnectedComponentsStats stats;
    SODA_ASSIGN_OR_RETURN(
        TablePtr result,
        RunConnectedComponents(*inputs[0], &stats, ctx.guard));
    ctx.stats.iterations_run += static_cast<size_t>(stats.iterations_run);
    return result;
  }
  if (name == "soda_fault_sites") {
    // SELECT * FROM SODA_FAULT_SITES(): one row per registered fault
    // site, straight from the compile-time registry. Keeps SQL-level
    // introspection and the robustness-matrix coverage test honest.
    auto table = std::make_shared<Table>(
        "soda_fault_sites", Schema({Field("site", DataType::kVarchar),
                                    Field("description", DataType::kVarchar)}));
    for (const FaultSiteInfo& info : kFaultSites) {
      SODA_RETURN_NOT_OK(table->AppendRow(
          {Value::Varchar(info.site), Value::Varchar(info.description)}));
    }
    return table;
  }
  if (name == "soda_status") {
    // SELECT * FROM SODA_STATUS(): engine health counters (WAL size,
    // checkpoint/scrub progress, quarantine extent) as metric/value rows.
    if (!ctx.status_provider) {
      return Status::InvalidArgument(
          "soda_status() requires an engine execution context");
    }
    const EngineStatusSnapshot s = ctx.status_provider();
    auto table = std::make_shared<Table>(
        "soda_status", Schema({Field("metric", DataType::kVarchar),
                               Field("value", DataType::kBigInt)}));
    const std::pair<const char*, int64_t> metrics[] = {
        {"durable", s.durable ? 1 : 0},
        {"wal_bytes", s.wal_bytes},
        {"wal_records", s.wal_records},
        {"last_checkpoint_lsn", s.last_checkpoint_lsn},
        {"checkpoint_count", s.checkpoint_count},
        {"auto_checkpoint_count", s.auto_checkpoint_count},
        {"scrub_pass_count", s.scrub_pass_count},
        {"quarantined_row_groups", s.quarantined_row_groups},
        {"quarantined_tables", s.quarantined_tables},
        {"plan_cache_hits", s.plan_cache_hits},
        {"plan_cache_misses", s.plan_cache_misses},
        {"plan_cache_entries", s.plan_cache_entries},
        {"ht_cache_hits", s.ht_cache_hits},
        {"ht_cache_misses", s.ht_cache_misses},
        {"ht_cache_evictions", s.ht_cache_evictions},
        {"ht_cache_bytes", s.ht_cache_bytes},
    };
    for (const auto& [metric, value] : metrics) {
      SODA_RETURN_NOT_OK(table->AppendRow(
          {Value::Varchar(metric), Value::BigInt(value)}));
    }
    return table;
  }
  return Status::Internal("unknown table function at execution: " + name);
}

}  // namespace soda
