/// \file table_function.h
/// Registry of analytics table functions — the SQL surface of the paper's
/// physical operators (§6, Listing 2/3).
///
/// Calling convention (positional, mixed): relation arguments are
/// parenthesized subqueries, lambda arguments are λ-expressions, scalar
/// arguments are constant expressions. The binder groups them by kind in
/// order of appearance.
///
/// Functions:
///   KMEANS((data), (initial_centers) [, λ(a,b) dist] [, max_iter])
///   PAGERANK((edges) [, damping [, epsilon [, max_iter]]] [, λ(e) weight])
///   NAIVE_BAYES_TRAIN((labeled))           -- first column = class label
///   NAIVE_BAYES_PREDICT((model), (data))
///   SUMMARIZE((labeled))                    -- stats building block (§6.2)
///   SODA_FAULT_SITES()                      -- introspection: the fault
///                                              injection registry
///                                              (util/fault_sites.h)

#ifndef SODA_EXEC_TABLE_FUNCTION_H_
#define SODA_EXEC_TABLE_FUNCTION_H_

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace soda {

/// True if `lower_name` names a registered analytics table function.
bool IsTableFunction(const std::string& lower_name);

/// Static shape of one table function, consulted by the binder.
struct TableFunctionSignature {
  size_t num_relations;   ///< required relation arguments
  size_t min_scalars;
  size_t max_scalars;
  size_t max_lambdas;
  /// For each possible lambda: which relation args form its tuple
  /// parameters (indices into the relation list). One entry = unary
  /// lambda, two = binary.
  std::vector<std::vector<size_t>> lambda_param_relations;
};

/// Signature lookup; KeyError for unknown names.
Result<TableFunctionSignature> GetTableFunctionSignature(
    const std::string& lower_name);

/// Computes the output schema from the bound inputs (the binder's last
/// step). Validates input schemas (e.g. numeric columns for k-Means).
Result<Schema> InferTableFunctionSchema(
    const std::string& lower_name, const std::vector<Schema>& relation_schemas,
    const std::vector<Value>& scalar_args);

}  // namespace soda

#endif  // SODA_EXEC_TABLE_FUNCTION_H_
