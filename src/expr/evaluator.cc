#include "expr/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// Gathers a numeric column into a double buffer (no-op cast for kDouble).
void ToDoubles(const Column& c, std::vector<double>* out) {
  size_t n = c.size();
  out->resize(n);
  if (c.type() == DataType::kDouble) {
    std::memcpy(out->data(), c.F64Data(), n * sizeof(double));
  } else {
    const int64_t* src = c.I64Data();
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<double>(src[i]);
  }
}

/// Merged validity of two columns; empty result means all-valid.
std::vector<uint8_t> MergeValidity(const Column& a, const Column& b) {
  const auto& va = a.Validity();
  const auto& vb = b.Validity();
  if (va.empty() && vb.empty()) return {};
  size_t n = a.size();
  std::vector<uint8_t> out(n, 1);
  for (size_t i = 0; i < n; ++i) {
    bool valid = (va.empty() || va[i]) && (vb.empty() || vb[i]);
    out[i] = valid ? 1 : 0;
  }
  return out;
}

/// Builds a column from raw numeric payload + validity.
Column MakeNumericColumn(DataType type, const std::vector<double>& f64,
                         const std::vector<int64_t>& i64,
                         std::vector<uint8_t> validity) {
  Column out(type);
  size_t n = (type == DataType::kDouble) ? f64.size() : i64.size();
  out.Reserve(n);
  if (validity.empty()) {
    if (type == DataType::kDouble) {
      for (size_t i = 0; i < n; ++i) out.AppendDouble(f64[i]);
    } else {
      for (size_t i = 0; i < n; ++i) out.AppendBigInt(i64[i]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (!validity[i]) {
        out.AppendNull();
      } else if (type == DataType::kDouble) {
        out.AppendDouble(f64[i]);
      } else {
        out.AppendBigInt(i64[i]);
      }
    }
  }
  return out;
}

Status EvalBinaryNumeric(const Expression& expr, const Column& l,
                         const Column& r, Column* out) {
  size_t n = l.size();
  std::vector<uint8_t> validity = MergeValidity(l, r);
  BinaryOp op = expr.binary_op;

  if (expr.type == DataType::kBigInt) {
    // Both operands are integer columns.
    const int64_t* a = l.I64Data();
    const int64_t* b = r.I64Data();
    std::vector<int64_t> res(n);
    switch (op) {
      case BinaryOp::kAdd:
        for (size_t i = 0; i < n; ++i) res[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        for (size_t i = 0; i < n; ++i) res[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        for (size_t i = 0; i < n; ++i) res[i] = a[i] * b[i];
        break;
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        // Division by zero yields NULL (see evaluator.h).
        if (validity.empty()) validity.assign(n, 1);
        for (size_t i = 0; i < n; ++i) {
          if (b[i] == 0) {
            validity[i] = 0;
            res[i] = 0;
          } else {
            res[i] = (op == BinaryOp::kDiv) ? a[i] / b[i] : a[i] % b[i];
          }
        }
        break;
      default:
        return Status::Internal("unexpected integer binary op");
    }
    *out = MakeNumericColumn(DataType::kBigInt, {}, res, std::move(validity));
    return Status::OK();
  }

  // Double arithmetic.
  std::vector<double> a, b;
  ToDoubles(l, &a);
  ToDoubles(r, &b);
  std::vector<double> res(n);
  switch (op) {
    case BinaryOp::kAdd:
      for (size_t i = 0; i < n; ++i) res[i] = a[i] + b[i];
      break;
    case BinaryOp::kSub:
      for (size_t i = 0; i < n; ++i) res[i] = a[i] - b[i];
      break;
    case BinaryOp::kMul:
      for (size_t i = 0; i < n; ++i) res[i] = a[i] * b[i];
      break;
    case BinaryOp::kDiv:
      for (size_t i = 0; i < n; ++i) res[i] = a[i] / b[i];
      break;
    case BinaryOp::kMod:
      for (size_t i = 0; i < n; ++i) res[i] = std::fmod(a[i], b[i]);
      break;
    case BinaryOp::kPow:
      for (size_t i = 0; i < n; ++i) res[i] = std::pow(a[i], b[i]);
      break;
    default:
      return Status::Internal("unexpected double binary op");
  }
  *out = MakeNumericColumn(DataType::kDouble, res, {}, std::move(validity));
  return Status::OK();
}

Status EvalComparison(const Expression& expr, const Column& l, const Column& r,
                      Column* out) {
  size_t n = l.size();
  std::vector<uint8_t> validity = MergeValidity(l, r);
  std::vector<int64_t> res(n);
  BinaryOp op = expr.binary_op;

  auto apply = [&](auto&& cmp) {
    switch (op) {
      case BinaryOp::kEq:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) == 0;
        break;
      case BinaryOp::kNe:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) != 0;
        break;
      case BinaryOp::kLt:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) < 0;
        break;
      case BinaryOp::kLe:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) <= 0;
        break;
      case BinaryOp::kGt:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) > 0;
        break;
      case BinaryOp::kGe:
        for (size_t i = 0; i < n; ++i) res[i] = cmp(i) >= 0;
        break;
      default:
        break;
    }
  };

  if (l.type() == DataType::kVarchar) {
    const auto& a = l.Strings();
    const auto& b = r.Strings();
    apply([&](size_t i) { return a[i].compare(b[i]); });
  } else if (l.type() == DataType::kBigInt && r.type() == DataType::kBigInt) {
    const int64_t* a = l.I64Data();
    const int64_t* b = r.I64Data();
    apply([&](size_t i) { return (a[i] > b[i]) - (a[i] < b[i]); });
  } else {
    std::vector<double> a, b;
    ToDoubles(l, &a);
    ToDoubles(r, &b);
    apply([&](size_t i) { return (a[i] > b[i]) - (a[i] < b[i]); });
  }
  Column result(DataType::kBool);
  result.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!validity.empty() && !validity[i]) {
      result.AppendNull();
    } else {
      result.AppendBool(res[i] != 0);
    }
  }
  *out = std::move(result);
  return Status::OK();
}

Status EvalLogical(const Expression& expr, const Column& l, const Column& r,
                   Column* out) {
  size_t n = l.size();
  Column result(DataType::kBool);
  result.Reserve(n);
  const int64_t* a = l.I64Data();
  const int64_t* b = r.I64Data();
  // NULL is treated as FALSE inside logical connectives (evaluator.h).
  for (size_t i = 0; i < n; ++i) {
    bool av = !l.IsNull(i) && a[i] != 0;
    bool bv = !r.IsNull(i) && b[i] != 0;
    result.AppendBool(expr.binary_op == BinaryOp::kAnd ? (av && bv)
                                                       : (av || bv));
  }
  *out = std::move(result);
  return Status::OK();
}

Status EvalConcat(const Column& l, const Column& r, Column* out) {
  size_t n = l.size();
  Column result(DataType::kVarchar);
  result.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      result.AppendNull();
    } else {
      result.AppendString(l.GetValue(i).ToString() +
                          r.GetValue(i).ToString());
    }
  }
  *out = std::move(result);
  return Status::OK();
}

/// SQL LIKE matching: % = any sequence, _ = any single character.
bool LikeMatch(const char* s, const char* se, const char* p, const char* pe) {
  while (p != pe) {
    if (*p == '%') {
      ++p;
      if (p == pe) return true;
      for (const char* t = s; t <= se; ++t) {
        if (LikeMatch(t, se, p, pe)) return true;
      }
      return false;
    }
    if (s == se) return false;
    if (*p != '_' && *p != *s) return false;
    ++p;
    ++s;
  }
  return s == se;
}

Status EvalFunction(const Expression& expr, std::vector<Column> args,
                    size_t n, Column* out) {
  const std::string& fn = expr.function_name;

  // isnull never propagates NULL — it *reports* it.
  if (fn == "isnull") {
    Column result(DataType::kBool);
    result.Reserve(n);
    for (size_t i = 0; i < n; ++i) result.AppendBool(args[0].IsNull(i));
    *out = std::move(result);
    return Status::OK();
  }
  if (fn == "like") {
    Column result(DataType::kBool);
    result.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (args[0].IsNull(i) || args[1].IsNull(i)) {
        result.AppendNull();
        continue;
      }
      const std::string& s = args[0].GetString(i);
      const std::string& p = args[1].GetString(i);
      result.AppendBool(LikeMatch(s.data(), s.data() + s.size(), p.data(),
                                  p.data() + p.size()));
    }
    *out = std::move(result);
    return Status::OK();
  }

  // String functions first.
  if (fn == "length" || fn == "lower" || fn == "upper" || fn == "substr") {
    const Column& s = args[0];
    Column result(expr.type);
    result.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (s.IsNull(i)) {
        result.AppendNull();
        continue;
      }
      const std::string& v = s.GetString(i);
      if (fn == "length") {
        result.AppendBigInt(static_cast<int64_t>(v.size()));
      } else if (fn == "lower") {
        result.AppendString(ToLower(v));
      } else if (fn == "upper") {
        result.AppendString(ToUpper(v));
      } else {  // substr(s, start[, len]) with 1-based start
        int64_t start = args[1].GetBigInt(i);
        size_t begin = start > 0 ? static_cast<size_t>(start - 1) : 0;
        size_t len = args.size() == 3 && !args[2].IsNull(i)
                         ? static_cast<size_t>(std::max<int64_t>(
                               0, args[2].GetBigInt(i)))
                         : std::string::npos;
        result.AppendString(begin < v.size() ? v.substr(begin, len) : "");
      }
    }
    *out = std::move(result);
    return Status::OK();
  }

  // Numeric functions: operate in double space, cast back when the result
  // type is integral.
  std::vector<std::vector<double>> in(args.size());
  std::vector<uint8_t> validity;
  for (size_t a = 0; a < args.size(); ++a) {
    ToDoubles(args[a], &in[a]);
    if (!args[a].Validity().empty()) {
      if (validity.empty()) validity.assign(n, 1);
      for (size_t i = 0; i < n; ++i) {
        if (args[a].IsNull(i)) validity[i] = 0;
      }
    }
  }
  std::vector<double> res(n);
  if (fn == "abs") {
    for (size_t i = 0; i < n; ++i) res[i] = std::fabs(in[0][i]);
  } else if (fn == "sqrt") {
    for (size_t i = 0; i < n; ++i) res[i] = std::sqrt(in[0][i]);
  } else if (fn == "exp") {
    for (size_t i = 0; i < n; ++i) res[i] = std::exp(in[0][i]);
  } else if (fn == "ln" || fn == "log") {
    for (size_t i = 0; i < n; ++i) res[i] = std::log(in[0][i]);
  } else if (fn == "floor") {
    for (size_t i = 0; i < n; ++i) res[i] = std::floor(in[0][i]);
  } else if (fn == "ceil") {
    for (size_t i = 0; i < n; ++i) res[i] = std::ceil(in[0][i]);
  } else if (fn == "round") {
    for (size_t i = 0; i < n; ++i) res[i] = std::nearbyint(in[0][i]);
  } else if (fn == "sign") {
    for (size_t i = 0; i < n; ++i) {
      res[i] = (in[0][i] > 0) - (in[0][i] < 0);
    }
  } else if (fn == "pow" || fn == "power") {
    for (size_t i = 0; i < n; ++i) res[i] = std::pow(in[0][i], in[1][i]);
  } else if (fn == "mod") {
    for (size_t i = 0; i < n; ++i) res[i] = std::fmod(in[0][i], in[1][i]);
  } else if (fn == "least" || fn == "greatest") {
    bool is_least = fn == "least";
    for (size_t i = 0; i < n; ++i) {
      double best = in[0][i];
      for (size_t a = 1; a < in.size(); ++a) {
        best = is_least ? std::min(best, in[a][i]) : std::max(best, in[a][i]);
      }
      res[i] = best;
    }
  } else {
    return Status::Internal("unimplemented scalar function: " + fn);
  }

  if (expr.type == DataType::kDouble) {
    *out = MakeNumericColumn(DataType::kDouble, res, {}, std::move(validity));
  } else {
    std::vector<int64_t> ires(n);
    for (size_t i = 0; i < n; ++i) ires[i] = static_cast<int64_t>(res[i]);
    *out = MakeNumericColumn(expr.type, {}, ires, std::move(validity));
  }
  return Status::OK();
}

Status EvalCast(const Expression& expr, const Column& child, size_t n,
                Column* out) {
  Column result(expr.type);
  result.Reserve(n);
  // Fast numeric paths.
  if (IsNumeric(expr.type) && IsNumeric(child.type()) &&
      child.Validity().empty()) {
    if (expr.type == DataType::kDouble) {
      for (size_t i = 0; i < n; ++i) result.AppendDouble(child.GetNumeric(i));
    } else {
      for (size_t i = 0; i < n; ++i) {
        result.AppendBigInt(static_cast<int64_t>(child.GetNumeric(i)));
      }
    }
    *out = std::move(result);
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (child.IsNull(i)) {
      result.AppendNull();
      continue;
    }
    SODA_ASSIGN_OR_RETURN(Value v, child.GetValue(i).CastTo(expr.type));
    result.AppendValue(v);
  }
  *out = std::move(result);
  return Status::OK();
}

}  // namespace

Status EvaluateExpression(const Expression& expr, const DataChunk& input,
                          Column* out) {
  size_t n = input.num_rows();
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      SODA_DCHECK(expr.column_index < input.num_columns());
      Column result(input.column(expr.column_index).type());
      result.AppendSlice(input.column(expr.column_index), 0, n);
      *out = std::move(result);
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      Column result(expr.type == DataType::kInvalid ? DataType::kBigInt
                                                    : expr.type);
      result.Reserve(n);
      for (size_t i = 0; i < n; ++i) result.AppendValue(expr.literal);
      *out = std::move(result);
      return Status::OK();
    }
    case ExprKind::kBinary: {
      Column l, r;
      SODA_RETURN_NOT_OK(EvaluateExpression(*expr.children[0], input, &l));
      SODA_RETURN_NOT_OK(EvaluateExpression(*expr.children[1], input, &r));
      if (IsLogical(expr.binary_op)) return EvalLogical(expr, l, r, out);
      if (IsComparison(expr.binary_op)) return EvalComparison(expr, l, r, out);
      if (expr.binary_op == BinaryOp::kConcat) return EvalConcat(l, r, out);
      return EvalBinaryNumeric(expr, l, r, out);
    }
    case ExprKind::kUnary: {
      Column c;
      SODA_RETURN_NOT_OK(EvaluateExpression(*expr.children[0], input, &c));
      Column result(expr.type);
      result.Reserve(n);
      if (expr.unary_op == UnaryOp::kNot) {
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) {
            result.AppendNull();
          } else {
            result.AppendBool(c.GetBigInt(i) == 0);
          }
        }
      } else {  // negate
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) {
            result.AppendNull();
          } else if (expr.type == DataType::kDouble) {
            result.AppendDouble(-c.GetNumeric(i));
          } else {
            result.AppendBigInt(-c.GetBigInt(i));
          }
        }
      }
      *out = std::move(result);
      return Status::OK();
    }
    case ExprKind::kFunction: {
      std::vector<Column> args(expr.children.size());
      for (size_t i = 0; i < expr.children.size(); ++i) {
        SODA_RETURN_NOT_OK(
            EvaluateExpression(*expr.children[i], input, &args[i]));
      }
      return EvalFunction(expr, std::move(args), n, out);
    }
    case ExprKind::kCase: {
      // Eager evaluation of all branches, then per-row select.
      size_t num_when = expr.children.size() / 2;
      std::vector<Column> conds(num_when), thens(num_when);
      for (size_t w = 0; w < num_when; ++w) {
        SODA_RETURN_NOT_OK(
            EvaluateExpression(*expr.children[2 * w], input, &conds[w]));
        SODA_RETURN_NOT_OK(
            EvaluateExpression(*expr.children[2 * w + 1], input, &thens[w]));
      }
      Column else_col;
      SODA_RETURN_NOT_OK(
          EvaluateExpression(*expr.children.back(), input, &else_col));
      Column result(expr.type);
      result.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Column* chosen = &else_col;
        for (size_t w = 0; w < num_when; ++w) {
          if (!conds[w].IsNull(i) && conds[w].GetBigInt(i) != 0) {
            chosen = &thens[w];
            break;
          }
        }
        if (chosen->type() == expr.type) {
          result.AppendFrom(*chosen, i);
        } else {
          SODA_ASSIGN_OR_RETURN(Value v,
                                chosen->GetValue(i).CastTo(expr.type));
          result.AppendValue(v);
        }
      }
      *out = std::move(result);
      return Status::OK();
    }
    case ExprKind::kCast: {
      Column c;
      SODA_RETURN_NOT_OK(EvaluateExpression(*expr.children[0], input, &c));
      return EvalCast(expr, c, n, out);
    }
    case ExprKind::kParameter:
      // EXECUTE substitutes literals into a clone of the prepared plan
      // before lowering; a parameter reaching the evaluator is a bug.
      return Status::Internal("unsubstituted parameter $" +
                              std::to_string(expr.column_index) +
                              " reached execution");
  }
  return Status::Internal("unknown expression kind");
}

Status EvaluatePredicate(const Expression& expr, const DataChunk& input,
                         std::vector<uint32_t>* selection) {
  Column result;
  SODA_RETURN_NOT_OK(EvaluateExpression(expr, input, &result));
  if (result.type() != DataType::kBool) {
    return Status::TypeError("predicate must be boolean, got " +
                             std::string(DataTypeToString(result.type())));
  }
  size_t n = input.num_rows();
  const int64_t* data = result.I64Data();
  for (size_t i = 0; i < n; ++i) {
    if (!result.IsNull(i) && data[i] != 0) {
      selection->push_back(static_cast<uint32_t>(i));
    }
  }
  return Status::OK();
}

Result<Value> EvaluateConstantExpression(const Expression& expr) {
  if (!expr.IsConstant()) {
    return Status::InvalidArgument("expression is not constant");
  }
  // Evaluate over a one-row chunk of zero columns: literals broadcast to
  // the chunk's cardinality, so a single dummy column provides n=1.
  DataChunk chunk;
  Column dummy(DataType::kBigInt);
  dummy.AppendBigInt(0);
  chunk.AddColumn(std::move(dummy));
  Column out;
  SODA_RETURN_NOT_OK(EvaluateExpression(expr, chunk, &out));
  if (out.size() != 1) return Status::Internal("constant eval arity");
  return out.GetValue(0);
}

}  // namespace soda
