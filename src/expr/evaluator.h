/// \file evaluator.h
/// Vectorized evaluation of bound expressions over DataChunks.
///
/// This is soda's substitute for HyPer's LLVM-compiled data-centric
/// pipelines (DESIGN.md §3): each expression node processes a whole chunk
/// at a time over raw column arrays, so per-row virtual dispatch is
/// eliminated — the property the paper attributes to compiled lambdas
/// ("because all code is compiled together, no virtual function calls are
/// involved", §7).
///
/// NULL semantics (simplified three-valued logic, documented deviation):
/// any NULL operand yields a NULL result for arithmetic, comparisons and
/// functions; logical AND/OR treat NULL as FALSE; integer division by zero
/// yields NULL (so eager CASE evaluation is total).

#ifndef SODA_EXPR_EVALUATOR_H_
#define SODA_EXPR_EVALUATOR_H_

#include "expr/expression.h"
#include "storage/data_chunk.h"
#include "util/status.h"

namespace soda {

/// Evaluates `expr` for every row of `input`; `*out` receives a fresh
/// column of `input.num_rows()` results of type `expr.type`.
Status EvaluateExpression(const Expression& expr, const DataChunk& input,
                          Column* out);

/// Evaluates a filter predicate and appends the indices of rows where it is
/// TRUE (NULL counts as not-selected) to `selection`.
Status EvaluatePredicate(const Expression& expr, const DataChunk& input,
                         std::vector<uint32_t>* selection);

/// Scalar interpretation of a constant expression (no column refs).
Result<Value> EvaluateConstantExpression(const Expression& expr);

}  // namespace soda

#endif  // SODA_EXPR_EVALUATOR_H_
