#include "expr/expression.h"

#include "util/logging.h"

namespace soda {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kPow:
      return "^";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

ExprPtr Expression::ColumnRef(size_t index, DataType type, std::string name) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kColumnRef;
  e->type = type;
  e->column_index = index;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expression::Literal(Value v) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr Expression::Binary(BinaryOp op, ExprPtr l, ExprPtr r, DataType type) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kBinary;
  e->type = type;
  e->binary_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Expression::Unary(UnaryOp op, ExprPtr child, DataType type) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kUnary;
  e->type = type;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expression::Function(std::string name, std::vector<ExprPtr> args,
                             DataType type) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kFunction;
  e->type = type;
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expression::Case(std::vector<ExprPtr> children, DataType type) {
  SODA_DCHECK(children.size() % 2 == 1);  // pairs + else
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kCase;
  e->type = type;
  e->children = std::move(children);
  return e;
}

ExprPtr Expression::Cast(ExprPtr child, DataType target) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kCast;
  e->type = target;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expression::Parameter(size_t slot, DataType type) {
  auto e = std::make_unique<Expression>();
  e->kind = ExprKind::kParameter;
  e->type = type;
  e->column_index = slot;
  return e;
}

ExprPtr Expression::Clone() const {
  auto e = std::make_unique<Expression>();
  e->kind = kind;
  e->type = type;
  e->column_index = column_index;
  e->column_name = column_name;
  e->literal = literal;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  e->function_name = function_name;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string Expression::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      // The index is part of the rendering: two same-named columns from
      // different relations must never print equal (the binder compares
      // bound-expression strings to match GROUP BY expressions).
      return (column_name.empty() ? "" : column_name) + "#" +
             std::to_string(column_index);
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpToString(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNegate ? "-" : "NOT ") +
             children[0]->ToString();
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (size_t i = 0; i + 1 < children.size(); i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      out += " ELSE " + children.back()->ToString() + " END";
      return out;
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             DataTypeToString(type) + ")";
    case ExprKind::kParameter:
      return "$" + std::to_string(column_index);
  }
  return "?";
}

bool Expression::IsConstant() const {
  // Parameters are not foldable: their value arrives at EXECUTE time.
  if (kind == ExprKind::kColumnRef || kind == ExprKind::kParameter) {
    return false;
  }
  for (const auto& c : children) {
    if (!c->IsConstant()) return false;
  }
  return true;
}

}  // namespace soda
