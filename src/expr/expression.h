/// \file expression.h
/// Bound (resolved, typed) scalar expressions.
///
/// The SQL binder turns parser expressions into this representation:
/// column references are positional indices into the operator's input
/// schema, every node carries its result type. Lambda expressions (§7 of
/// the paper) bind to the concatenation of their tuple parameters'
/// schemas, so a bound lambda body is an ordinary `Expression` and reuses
/// the whole evaluation stack.

#ifndef SODA_EXPR_EXPRESSION_H_
#define SODA_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace soda {

enum class ExprKind {
  kColumnRef,  ///< input column by position
  kLiteral,    ///< constant
  kBinary,     ///< arithmetic / comparison / logical / concat
  kUnary,      ///< negate / not
  kFunction,   ///< scalar function call by name
  kCase,       ///< CASE WHEN ... THEN ... [ELSE ...] END
  kCast,       ///< CAST(child AS type)
  kParameter,  ///< typed $n placeholder in a prepared plan (never executed:
               ///< EXECUTE substitutes a literal before the plan runs)
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kPow,     ///< `^` — the paper's Listing 3 uses (a.x-b.x)^2
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kConcat,  ///< `||`
};

enum class UnaryOp { kNegate, kNot };

const char* BinaryOpToString(BinaryOp op);
bool IsComparison(BinaryOp op);
bool IsLogical(BinaryOp op);

struct Expression;
using ExprPtr = std::unique_ptr<Expression>;

/// A bound expression tree node.
struct Expression {
  ExprKind kind;
  DataType type = DataType::kInvalid;

  // kColumnRef; kParameter reuses this field as the 1-based $n slot
  size_t column_index = 0;
  std::string column_name;  ///< for diagnostics / output naming

  // kLiteral
  Value literal;

  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNegate;

  // kFunction
  std::string function_name;  ///< lower-cased

  // kCase: children = [when1, then1, when2, then2, ..., else]; the else
  // branch is always present (bound to NULL literal when omitted).
  // kCast: target type in `type`, single child.
  std::vector<ExprPtr> children;

  // --- factories ---------------------------------------------------------
  static ExprPtr ColumnRef(size_t index, DataType type, std::string name = "");
  static ExprPtr Literal(Value v);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r, DataType type);
  static ExprPtr Unary(UnaryOp op, ExprPtr child, DataType type);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args,
                          DataType type);
  static ExprPtr Case(std::vector<ExprPtr> children, DataType type);
  static ExprPtr Cast(ExprPtr child, DataType target);
  static ExprPtr Parameter(size_t slot, DataType type);

  ExprPtr Clone() const;
  std::string ToString() const;

  /// True when no kColumnRef occurs in the tree (then the expression can be
  /// folded to a literal).
  bool IsConstant() const;
};

}  // namespace soda

#endif  // SODA_EXPR_EXPRESSION_H_
