#include "expr/fold.h"

#include "expr/evaluator.h"

namespace soda {

namespace {

bool IsLiteralBool(const Expression& e, bool value) {
  return e.kind == ExprKind::kLiteral && !e.literal.is_null() &&
         e.literal.type() == DataType::kBool &&
         e.literal.bool_value() == value;
}

bool IsLiteralNumber(const Expression& e, double value) {
  return e.kind == ExprKind::kLiteral && !e.literal.is_null() &&
         IsNumeric(e.literal.type()) && e.literal.AsDouble() == value;
}

}  // namespace

ExprPtr FoldConstants(ExprPtr expr) {
  for (auto& child : expr->children) {
    child = FoldConstants(std::move(child));
  }

  if (expr->kind != ExprKind::kColumnRef && expr->kind != ExprKind::kLiteral &&
      expr->IsConstant()) {
    auto value = EvaluateConstantExpression(*expr);
    if (value.ok()) {
      DataType t = expr->type;
      auto lit = Expression::Literal(value.MoveValueOrDie());
      lit->type = t;
      return lit;
    }
    return expr;  // leave failing constants for runtime
  }

  if (expr->kind == ExprKind::kBinary) {
    Expression& l = *expr->children[0];
    Expression& r = *expr->children[1];
    switch (expr->binary_op) {
      case BinaryOp::kAnd:
        if (IsLiteralBool(l, true)) return std::move(expr->children[1]);
        if (IsLiteralBool(r, true)) return std::move(expr->children[0]);
        if (IsLiteralBool(l, false) || IsLiteralBool(r, false)) {
          return Expression::Literal(Value::Bool(false));
        }
        break;
      case BinaryOp::kOr:
        if (IsLiteralBool(l, false)) return std::move(expr->children[1]);
        if (IsLiteralBool(r, false)) return std::move(expr->children[0]);
        if (IsLiteralBool(l, true) || IsLiteralBool(r, true)) {
          return Expression::Literal(Value::Bool(true));
        }
        break;
      case BinaryOp::kAdd:
        // x + 0 (only when no type change is implied).
        if (IsLiteralNumber(r, 0.0) && expr->children[0]->type == expr->type) {
          return std::move(expr->children[0]);
        }
        if (IsLiteralNumber(l, 0.0) && expr->children[1]->type == expr->type) {
          return std::move(expr->children[1]);
        }
        break;
      case BinaryOp::kMul:
        if (IsLiteralNumber(r, 1.0) && expr->children[0]->type == expr->type) {
          return std::move(expr->children[0]);
        }
        if (IsLiteralNumber(l, 1.0) && expr->children[1]->type == expr->type) {
          return std::move(expr->children[1]);
        }
        break;
      default:
        break;
    }
  }
  return expr;
}

}  // namespace soda
