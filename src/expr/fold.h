/// \file fold.h
/// Constant folding over bound expressions (part of the optimizer's
/// expression rewrites, paper §5.2).

#ifndef SODA_EXPR_FOLD_H_
#define SODA_EXPR_FOLD_H_

#include "expr/expression.h"
#include "util/status.h"

namespace soda {

/// Replaces constant subtrees by literal nodes. Also applies cheap
/// algebraic identities (x + 0, x * 1, TRUE AND p, ...). Returns the
/// (possibly new) root. Folding is best-effort: a constant subtree whose
/// evaluation fails (e.g. 1/0) is left intact so the error surfaces at
/// execution time with row context.
ExprPtr FoldConstants(ExprPtr expr);

}  // namespace soda

#endif  // SODA_EXPR_FOLD_H_
