#include "expr/lambda_kernel.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace soda {

void LambdaKernel::Push(Op op, uint32_t arg, size_t* depth, int delta) {
  code_.push_back({op, arg});
  *depth = static_cast<size_t>(static_cast<long>(*depth) + delta);
  max_stack_ = std::max(max_stack_, *depth);
}

Status LambdaKernel::Emit(const Expression& e, size_t a_width, size_t* depth) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      if (!IsNumeric(e.type) && e.type != DataType::kBool) {
        return Status::TypeError(
            "lambda kernels support numeric columns only, got " +
            std::string(DataTypeToString(e.type)) + " for " + e.column_name);
      }
      if (e.column_index < a_width) {
        Push(Op::kPushA, static_cast<uint32_t>(e.column_index), depth, +1);
      } else {
        Push(Op::kPushB, static_cast<uint32_t>(e.column_index - a_width),
             depth, +1);
      }
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      if (e.literal.is_null()) {
        return Status::TypeError("NULL literals not allowed in lambdas");
      }
      constants_.push_back(e.literal.AsDouble());
      Push(Op::kPushConst, static_cast<uint32_t>(constants_.size() - 1),
           depth, +1);
      return Status::OK();
    }
    case ExprKind::kBinary: {
      SODA_RETURN_NOT_OK(Emit(*e.children[0], a_width, depth));
      SODA_RETURN_NOT_OK(Emit(*e.children[1], a_width, depth));
      Op op;
      switch (e.binary_op) {
        case BinaryOp::kAdd: op = Op::kAdd; break;
        case BinaryOp::kSub: op = Op::kSub; break;
        case BinaryOp::kMul: op = Op::kMul; break;
        case BinaryOp::kDiv: op = Op::kDiv; break;
        case BinaryOp::kMod: op = Op::kMod; break;
        case BinaryOp::kPow: op = Op::kPow; break;
        case BinaryOp::kEq: op = Op::kEq; break;
        case BinaryOp::kNe: op = Op::kNe; break;
        case BinaryOp::kLt: op = Op::kLt; break;
        case BinaryOp::kLe: op = Op::kLe; break;
        case BinaryOp::kGt: op = Op::kGt; break;
        case BinaryOp::kGe: op = Op::kGe; break;
        case BinaryOp::kAnd: op = Op::kAnd; break;
        case BinaryOp::kOr: op = Op::kOr; break;
        default:
          return Status::TypeError("operator not supported in lambda: " +
                                   std::string(BinaryOpToString(e.binary_op)));
      }
      Push(op, 0, depth, -1);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      SODA_RETURN_NOT_OK(Emit(*e.children[0], a_width, depth));
      Push(e.unary_op == UnaryOp::kNegate ? Op::kNeg : Op::kNot, 0, depth, 0);
      return Status::OK();
    }
    case ExprKind::kParameter:
      return Status::TypeError("parameters not supported in lambdas");
    case ExprKind::kFunction: {
      const std::string& fn = e.function_name;
      if (fn == "least" || fn == "greatest") {
        SODA_RETURN_NOT_OK(Emit(*e.children[0], a_width, depth));
        for (size_t i = 1; i < e.children.size(); ++i) {
          SODA_RETURN_NOT_OK(Emit(*e.children[i], a_width, depth));
          Push(fn == "least" ? Op::kMin : Op::kMax, 0, depth, -1);
        }
        return Status::OK();
      }
      for (const auto& c : e.children) {
        SODA_RETURN_NOT_OK(Emit(*c, a_width, depth));
      }
      if (fn == "abs") {
        Push(Op::kAbs, 0, depth, 0);
      } else if (fn == "sqrt") {
        Push(Op::kSqrt, 0, depth, 0);
      } else if (fn == "exp") {
        Push(Op::kExp, 0, depth, 0);
      } else if (fn == "ln" || fn == "log") {
        Push(Op::kLn, 0, depth, 0);
      } else if (fn == "floor") {
        Push(Op::kFloor, 0, depth, 0);
      } else if (fn == "ceil") {
        Push(Op::kCeil, 0, depth, 0);
      } else if (fn == "round") {
        Push(Op::kRound, 0, depth, 0);
      } else if (fn == "sign") {
        Push(Op::kSign, 0, depth, 0);
      } else if (fn == "pow" || fn == "power") {
        Push(Op::kPow, 0, depth, -1);
      } else if (fn == "mod") {
        Push(Op::kMod, 0, depth, -1);
      } else {
        return Status::TypeError("function not supported in lambda: " + fn);
      }
      return Status::OK();
    }
    case ExprKind::kCase: {
      // Lower CASE to nested selects, emitted right-to-left:
      //   select(cond_i, then_i, rest)
      // Start with the else branch on the stack, then wrap each WHEN from
      // the last to the first. kSelect pops (cond, then, else) in emit
      // order cond,then,else -> we emit cond, then, else and pop 2.
      size_t num_when = e.children.size() / 2;
      // Build recursively: emit cond1, then1, (cond2, then2, (..., else,
      // select), select), select.
      // Simpler: recursive lambda.
      std::function<Status(size_t)> emit_from = [&](size_t w) -> Status {
        if (w == num_when) return Emit(*e.children.back(), a_width, depth);
        SODA_RETURN_NOT_OK(Emit(*e.children[2 * w], a_width, depth));
        SODA_RETURN_NOT_OK(Emit(*e.children[2 * w + 1], a_width, depth));
        SODA_RETURN_NOT_OK(emit_from(w + 1));
        Push(Op::kSelect, 0, depth, -2);
        return Status::OK();
      };
      return emit_from(0);
    }
    case ExprKind::kCast: {
      if (!IsNumeric(e.type) && e.type != DataType::kBool) {
        return Status::TypeError("non-numeric cast in lambda");
      }
      SODA_RETURN_NOT_OK(Emit(*e.children[0], a_width, depth));
      if (e.type == DataType::kBigInt) Push(Op::kRound, 0, depth, 0);
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind in lambda");
}

namespace {

bool GetConstant(const Expression& e, double* v) {
  if (e.kind != ExprKind::kLiteral || e.literal.is_null() ||
      !IsNumeric(e.literal.type())) {
    return false;
  }
  *v = e.literal.AsDouble();
  return true;
}

}  // namespace

bool LambdaKernel::DetectDistanceForm(const Expression& body, size_t a_width,
                                      SpecialForm* form,
                                      std::vector<DiffTerm>* terms) {
  auto operand = [&](const Expression& e, Operand* out) {
    if (e.kind != ExprKind::kColumnRef) return false;
    if (!IsNumeric(e.type) && e.type != DataType::kBool) return false;
    if (e.column_index < a_width) {
      out->index = static_cast<uint32_t>(e.column_index);
      out->from_b = false;
    } else {
      out->index = static_cast<uint32_t>(e.column_index - a_width);
      out->from_b = true;
    }
    return true;
  };
  auto diff = [&](const Expression& e, DiffTerm* t) {
    return e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kSub &&
           operand(*e.children[0], &t->x) && operand(*e.children[1], &t->y);
  };
  // Core term shapes: (x-y)^2 / pow(x-y, 2) / abs(x-y).
  auto core = [&](const Expression& e, SpecialForm* f, DiffTerm* t) {
    double exponent;
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kPow &&
        GetConstant(*e.children[1], &exponent) && exponent == 2.0 &&
        diff(*e.children[0], t)) {
      *f = SpecialForm::kSumSquaredDiffs;
      return true;
    }
    if (e.kind == ExprKind::kFunction &&
        (e.function_name == "pow" || e.function_name == "power") &&
        e.children.size() == 2 && GetConstant(*e.children[1], &exponent) &&
        exponent == 2.0 && diff(*e.children[0], t)) {
      *f = SpecialForm::kSumSquaredDiffs;
      return true;
    }
    if (e.kind == ExprKind::kFunction && e.function_name == "abs" &&
        e.children.size() == 1 && diff(*e.children[0], t)) {
      *f = SpecialForm::kSumAbsDiffs;
      return true;
    }
    return false;
  };
  // Term: core, optionally scaled by a constant on either side.
  auto term = [&](const Expression& e, SpecialForm* f, DiffTerm* t) {
    if (core(e, f, t)) return true;
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kMul) {
      double w;
      if (GetConstant(*e.children[0], &w) && core(*e.children[1], f, t)) {
        t->weight = w;
        return true;
      }
      if (GetConstant(*e.children[1], &w) && core(*e.children[0], f, t)) {
        t->weight = w;
        return true;
      }
    }
    return false;
  };

  // Flatten the +-tree and parse every leaf as a term of one family.
  std::vector<const Expression*> stack = {&body};
  SpecialForm detected = SpecialForm::kNone;
  while (!stack.empty()) {
    const Expression* e = stack.back();
    stack.pop_back();
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAdd) {
      stack.push_back(e->children[0].get());
      stack.push_back(e->children[1].get());
      continue;
    }
    SpecialForm f = SpecialForm::kNone;
    DiffTerm t;
    if (!term(*e, &f, &t)) return false;
    if (detected == SpecialForm::kNone) detected = f;
    if (f != detected) return false;  // mixed families -> VM
    terms->push_back(t);
  }
  if (terms->empty()) return false;
  *form = detected;
  return true;
}

void LambdaKernel::Peephole() {
  constexpr uint32_t kMaxIdx = (1u << 14) - 1;
  std::vector<Instr> out;
  out.reserve(code_.size());
  auto is_push_col = [](const Instr& i) {
    return i.op == Op::kPushA || i.op == Op::kPushB;
  };
  for (const Instr& ins : code_) {
    // [PushX x][PushY y][kSub] -> kPushDiff(x, y)
    if (ins.op == Op::kSub && out.size() >= 2 &&
        is_push_col(out[out.size() - 2]) && is_push_col(out.back()) &&
        out[out.size() - 2].arg <= kMaxIdx && out.back().arg <= kMaxIdx) {
      Instr y = out.back();
      out.pop_back();
      Instr x = out.back();
      out.pop_back();
      uint32_t arg = x.arg | (x.op == Op::kPushB ? 1u << 14 : 0) |
                     (y.arg << 15) | (y.op == Op::kPushB ? 1u << 29 : 0);
      out.push_back({Op::kPushDiff, arg});
      continue;
    }
    // [X][PushConst 2.0][kPow] -> [X][kSquareTop]
    if (ins.op == Op::kPow && !out.empty() &&
        out.back().op == Op::kPushConst &&
        constants_[out.back().arg] == 2.0) {
      out.pop_back();
      out.push_back({Op::kSquareTop, 0});
      continue;
    }
    out.push_back(ins);
  }
  code_ = std::move(out);
}

Result<LambdaKernel> LambdaKernel::Compile(const Expression& body,
                                           size_t a_width) {
  LambdaKernel k;
  size_t depth = 0;
  SODA_RETURN_NOT_OK(k.Emit(body, a_width, &depth));
  if (depth != 1) {
    return Status::Internal("lambda program stack imbalance");
  }
  if (k.max_stack_ > 64) {
    return Status::InvalidArgument("lambda expression too deeply nested");
  }
  // Tier 1: pattern-compile the common distance families to a native term
  // loop (our stand-in for HyPer's LLVM-compiled lambdas, see header).
  if (DetectDistanceForm(body, a_width, &k.form_, &k.terms_)) {
    return k;
  }
  k.terms_.clear();
  // Tier 2: fuse frequent instruction pairs in the register VM.
  k.Peephole();
  return k;
}

double LambdaKernel::Eval(const double* a, const double* b) const {
  // Tier 1: pattern-compiled distance families run as a native loop.
  if (form_ == SpecialForm::kSumSquaredDiffs) {
    double acc = 0;
    for (const DiffTerm& t : terms_) {
      double diff = (t.x.from_b ? b : a)[t.x.index] -
                    (t.y.from_b ? b : a)[t.y.index];
      acc += t.weight * diff * diff;
    }
    return acc;
  }
  if (form_ == SpecialForm::kSumAbsDiffs) {
    double acc = 0;
    for (const DiffTerm& t : terms_) {
      double diff = (t.x.from_b ? b : a)[t.x.index] -
                    (t.y.from_b ? b : a)[t.y.index];
      acc += t.weight * std::fabs(diff);
    }
    return acc;
  }

  double stack[64];
  size_t sp = 0;
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kPushA:
        stack[sp++] = a[ins.arg];
        break;
      case Op::kPushB:
        stack[sp++] = b[ins.arg];
        break;
      case Op::kPushConst:
        stack[sp++] = constants_[ins.arg];
        break;
      case Op::kPushDiff: {
        const double* xs = (ins.arg & (1u << 14)) ? b : a;
        const double* ys = (ins.arg & (1u << 29)) ? b : a;
        stack[sp++] = xs[ins.arg & 0x3FFF] - ys[(ins.arg >> 15) & 0x3FFF];
        break;
      }
      case Op::kSquareTop:
        stack[sp - 1] *= stack[sp - 1];
        break;
      case Op::kAdd:
        stack[sp - 2] += stack[sp - 1];
        --sp;
        break;
      case Op::kSub:
        stack[sp - 2] -= stack[sp - 1];
        --sp;
        break;
      case Op::kMul:
        stack[sp - 2] *= stack[sp - 1];
        --sp;
        break;
      case Op::kDiv:
        stack[sp - 2] /= stack[sp - 1];
        --sp;
        break;
      case Op::kMod:
        stack[sp - 2] = std::fmod(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::kPow: {
        double e = stack[sp - 1];
        double base = stack[sp - 2];
        // Fast paths for the small integer exponents lambdas typically use.
        if (e == 2.0) {
          stack[sp - 2] = base * base;
        } else if (e == 1.0) {
          stack[sp - 2] = base;
        } else {
          stack[sp - 2] = std::pow(base, e);
        }
        --sp;
        break;
      }
      case Op::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case Op::kAbs:
        stack[sp - 1] = std::fabs(stack[sp - 1]);
        break;
      case Op::kSqrt:
        stack[sp - 1] = std::sqrt(stack[sp - 1]);
        break;
      case Op::kExp:
        stack[sp - 1] = std::exp(stack[sp - 1]);
        break;
      case Op::kLn:
        stack[sp - 1] = std::log(stack[sp - 1]);
        break;
      case Op::kFloor:
        stack[sp - 1] = std::floor(stack[sp - 1]);
        break;
      case Op::kCeil:
        stack[sp - 1] = std::ceil(stack[sp - 1]);
        break;
      case Op::kRound:
        stack[sp - 1] = std::nearbyint(stack[sp - 1]);
        break;
      case Op::kSign:
        stack[sp - 1] = (stack[sp - 1] > 0) - (stack[sp - 1] < 0);
        break;
      case Op::kMin:
        stack[sp - 2] = std::min(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::kMax:
        stack[sp - 2] = std::max(stack[sp - 2], stack[sp - 1]);
        --sp;
        break;
      case Op::kEq:
        stack[sp - 2] = stack[sp - 2] == stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kNe:
        stack[sp - 2] = stack[sp - 2] != stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kLt:
        stack[sp - 2] = stack[sp - 2] < stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kLe:
        stack[sp - 2] = stack[sp - 2] <= stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kGt:
        stack[sp - 2] = stack[sp - 2] > stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kGe:
        stack[sp - 2] = stack[sp - 2] >= stack[sp - 1] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kAnd:
        stack[sp - 2] =
            (stack[sp - 2] != 0.0 && stack[sp - 1] != 0.0) ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kOr:
        stack[sp - 2] =
            (stack[sp - 2] != 0.0 || stack[sp - 1] != 0.0) ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kNot:
        stack[sp - 1] = stack[sp - 1] == 0.0 ? 1.0 : 0.0;
        break;
      case Op::kSelect: {
        double else_v = stack[sp - 1];
        double then_v = stack[sp - 2];
        double cond = stack[sp - 3];
        stack[sp - 3] = cond != 0.0 ? then_v : else_v;
        sp -= 2;
        break;
      }
    }
  }
  return stack[0];
}

}  // namespace soda
