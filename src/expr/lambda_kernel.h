/// \file lambda_kernel.h
/// Compilation of numeric lambda bodies into flat register programs.
///
/// The paper's analytics operators accept user lambdas (e.g. a distance
/// metric for k-Means, §7) and compile them *into* the operator so the
/// inner loop pays no interpretation or virtual-call cost. soda's
/// equivalent: a bound lambda body over the concatenated tuple schemas
/// (a.*, b.*) is lowered once, at plan time, into a postfix program over a
/// small double-register stack. `LambdaKernel::Eval(a, b)` then runs with
/// only array indexing and arithmetic — no allocation, no dispatch through
/// `Expression`, no boxing.
///
/// Only numeric lambdas are compilable (column refs of BIGINT/DOUBLE/BOOL,
/// arithmetic, comparisons, logical ops, numeric functions, CASE). That
/// covers every lambda the paper shows; operators fall back to a
/// BindError for anything else.
///
/// HyPer JIT-compiles any lambda to native code via LLVM. soda's
/// substitute is two-tier (DESIGN.md §3): bodies matching the common
/// distance families — weighted sums of squared differences or of
/// absolute differences, which cover L2, L1/k-Medians, and per-coordinate
/// weighted metrics — are *pattern-compiled* into a native term loop;
/// everything else runs on the register VM with peephole-fused
/// super-instructions (diff, square). The ablation benchmark
/// bench_ablation_lambda_overhead measures both tiers against the
/// hard-coded metric.

#ifndef SODA_EXPR_LAMBDA_KERNEL_H_
#define SODA_EXPR_LAMBDA_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "util/status.h"

namespace soda {

/// A compiled numeric scalar program over two input tuples.
class LambdaKernel {
 public:
  /// Compiles `body`, whose column refs index the concatenation of tuple
  /// `a` (indices [0, a_width)) and tuple `b` (indices [a_width, ...)).
  static Result<LambdaKernel> Compile(const Expression& body, size_t a_width);

  /// Evaluates for one (a, b) tuple pair given as dense double arrays.
  double Eval(const double* a, const double* b) const;

  /// Upper bound of stack slots the program uses (for diagnostics).
  size_t max_stack() const { return max_stack_; }
  size_t num_instructions() const { return code_.size(); }

  /// True when the body was pattern-compiled to a native distance loop
  /// (exposed for tests and the §7 ablation).
  bool is_pattern_compiled() const { return form_ != SpecialForm::kNone; }

 private:
  enum class Op : uint8_t {
    kPushA,     // push a[arg]
    kPushB,     // push b[arg]
    kPushConst, // push constants_[arg]
    kPushDiff,  // fused: push operand(arg.x) - operand(arg.y)
    kSquareTop, // fused: top = top * top
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kPow,
    kNeg,
    kAbs,
    kSqrt,
    kExp,
    kLn,
    kFloor,
    kCeil,
    kRound,
    kSign,
    kMin,
    kMax,
    kEq,   // comparisons produce 1.0 / 0.0
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kSelect,  // pops else, then, cond; pushes cond!=0 ? then : else
  };

  struct Instr {
    Op op;
    uint32_t arg = 0;
  };

  /// Operand descriptor: index plus which tuple array it reads.
  /// Packed into Instr::arg for kPushDiff as x | (y << 15) | flags.
  struct Operand {
    uint32_t index = 0;
    bool from_b = false;
  };

  enum class SpecialForm { kNone, kSumSquaredDiffs, kSumAbsDiffs };

  /// One term of a pattern-compiled distance: weight * f(x - y).
  struct DiffTerm {
    Operand x, y;
    double weight = 1.0;
  };

  Status Emit(const Expression& e, size_t a_width, size_t* depth);
  void Push(Op op, uint32_t arg, size_t* depth, int delta);
  void Peephole();
  static bool DetectDistanceForm(const Expression& body, size_t a_width,
                                 SpecialForm* form,
                                 std::vector<DiffTerm>* terms);

  std::vector<Instr> code_;
  std::vector<double> constants_;
  size_t max_stack_ = 0;
  SpecialForm form_ = SpecialForm::kNone;
  std::vector<DiffTerm> terms_;
};

}  // namespace soda

#endif  // SODA_EXPR_LAMBDA_KERNEL_H_
