#include "expr/type_inference.h"

#include <set>

namespace soda {

namespace {
Status IncompatibleTypes(const std::string& what, DataType l, DataType r) {
  return Status::TypeError("incompatible types for " + what + ": " +
                           DataTypeToString(l) + " vs " +
                           DataTypeToString(r));
}
}  // namespace

Result<DataType> InferBinaryType(BinaryOp op, DataType l, DataType r) {
  if (IsLogical(op)) {
    if (l != DataType::kBool || r != DataType::kBool) {
      return IncompatibleTypes("logical operator", l, r);
    }
    return DataType::kBool;
  }
  if (IsComparison(op)) {
    DataType common = CommonType(l, r);
    if (common == DataType::kInvalid) {
      return IncompatibleTypes("comparison", l, r);
    }
    return DataType::kBool;
  }
  if (op == BinaryOp::kConcat) {
    // Either side may be coerced to string.
    return DataType::kVarchar;
  }
  // Arithmetic.
  if (!IsNumeric(l) || !IsNumeric(r)) {
    return IncompatibleTypes("arithmetic", l, r);
  }
  if (op == BinaryOp::kPow) return DataType::kDouble;
  if (l == DataType::kBigInt && r == DataType::kBigInt) {
    return DataType::kBigInt;
  }
  return DataType::kDouble;
}

Result<DataType> InferUnaryType(UnaryOp op, DataType child) {
  if (op == UnaryOp::kNot) {
    if (child != DataType::kBool) {
      return Status::TypeError("NOT requires a boolean operand");
    }
    return DataType::kBool;
  }
  if (!IsNumeric(child)) {
    return Status::TypeError("unary minus requires a numeric operand");
  }
  return child;
}

namespace {
const std::set<std::string>& ScalarFunctions() {
  static const std::set<std::string> kFns = {
      "abs",  "sqrt",  "pow",      "power", "exp",   "ln",    "log",
      "floor", "ceil", "round",    "least", "greatest", "mod", "sign",
      "length", "lower", "upper",  "substr", "like", "isnull"};
  return kFns;
}

const std::set<std::string>& AggregateFunctions() {
  static const std::set<std::string> kFns = {"count", "sum",    "avg", "min",
                                             "max",   "stddev", "var"};
  return kFns;
}
}  // namespace

bool IsScalarFunction(const std::string& name) {
  return ScalarFunctions().count(name) > 0;
}

bool IsAggregateFunction(const std::string& name) {
  return AggregateFunctions().count(name) > 0;
}

Result<DataType> InferFunctionType(const std::string& name,
                                   const std::vector<DataType>& args) {
  auto require_arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::TypeError(name + " expects " + std::to_string(n) +
                               " argument(s), got " +
                               std::to_string(args.size()));
    }
    return Status::OK();
  };
  auto all_numeric = [&]() -> Status {
    for (DataType t : args) {
      if (!IsNumeric(t)) {
        return Status::TypeError(name + " expects numeric arguments");
      }
    }
    return Status::OK();
  };

  if (name == "abs" || name == "sign") {
    SODA_RETURN_NOT_OK(require_arity(1));
    SODA_RETURN_NOT_OK(all_numeric());
    return args[0];
  }
  if (name == "sqrt" || name == "exp" || name == "ln" || name == "log") {
    SODA_RETURN_NOT_OK(require_arity(1));
    SODA_RETURN_NOT_OK(all_numeric());
    return DataType::kDouble;
  }
  if (name == "floor" || name == "ceil" || name == "round") {
    SODA_RETURN_NOT_OK(require_arity(1));
    SODA_RETURN_NOT_OK(all_numeric());
    return DataType::kBigInt;
  }
  if (name == "pow" || name == "power") {
    SODA_RETURN_NOT_OK(require_arity(2));
    SODA_RETURN_NOT_OK(all_numeric());
    return DataType::kDouble;
  }
  if (name == "mod") {
    SODA_RETURN_NOT_OK(require_arity(2));
    SODA_RETURN_NOT_OK(all_numeric());
    return (args[0] == DataType::kBigInt && args[1] == DataType::kBigInt)
               ? DataType::kBigInt
               : DataType::kDouble;
  }
  if (name == "least" || name == "greatest") {
    if (args.empty()) {
      return Status::TypeError(name + " expects at least one argument");
    }
    SODA_RETURN_NOT_OK(all_numeric());
    DataType out = args[0];
    for (DataType t : args) out = CommonType(out, t);
    return out;
  }
  if (name == "length") {
    SODA_RETURN_NOT_OK(require_arity(1));
    if (args[0] != DataType::kVarchar) {
      return Status::TypeError("length expects a VARCHAR argument");
    }
    return DataType::kBigInt;
  }
  if (name == "lower" || name == "upper") {
    SODA_RETURN_NOT_OK(require_arity(1));
    if (args[0] != DataType::kVarchar) {
      return Status::TypeError(name + " expects a VARCHAR argument");
    }
    return DataType::kVarchar;
  }
  if (name == "like") {
    SODA_RETURN_NOT_OK(require_arity(2));
    if (args[0] != DataType::kVarchar || args[1] != DataType::kVarchar) {
      return Status::TypeError("like expects (VARCHAR, VARCHAR)");
    }
    return DataType::kBool;
  }
  if (name == "isnull") {
    SODA_RETURN_NOT_OK(require_arity(1));
    return DataType::kBool;  // any argument type
  }
  if (name == "substr") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::TypeError("substr expects 2 or 3 arguments");
    }
    if (args[0] != DataType::kVarchar || args[1] != DataType::kBigInt ||
        (args.size() == 3 && args[2] != DataType::kBigInt)) {
      return Status::TypeError("substr expects (VARCHAR, BIGINT[, BIGINT])");
    }
    return DataType::kVarchar;
  }
  return Status::TypeError("unknown function: " + name);
}

Result<DataType> InferAggregateType(const std::string& name, DataType arg) {
  if (name == "count") return DataType::kBigInt;
  if (name == "min" || name == "max") return arg;
  if (!IsNumeric(arg)) {
    return Status::TypeError(name + " expects a numeric argument");
  }
  if (name == "sum") return arg;
  if (name == "avg" || name == "stddev" || name == "var") {
    return DataType::kDouble;
  }
  return Status::TypeError("unknown aggregate: " + name);
}

}  // namespace soda
