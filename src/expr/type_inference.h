/// \file type_inference.h
/// Result-type rules for operators and the scalar function registry.
///
/// The paper's lambdas rely on types being "automatically inferred by the
/// database system" (§7) — these rules are what performs that inference,
/// both for regular SQL expressions and for lambda bodies.

#ifndef SODA_EXPR_TYPE_INFERENCE_H_
#define SODA_EXPR_TYPE_INFERENCE_H_

#include <string>
#include <vector>

#include "expr/expression.h"
#include "types/data_type.h"
#include "util/status.h"

namespace soda {

/// Result type of `l op r`; TypeError if the operand types are
/// incompatible. Arithmetic on two kBigInt stays kBigInt (except `/` and
/// `^`, which produce kDouble, following PostgreSQL for `/`... no:
/// integer `/` truncates in PostgreSQL; soda matches that, `^` is always
/// kDouble). Comparisons and logical ops produce kBool.
Result<DataType> InferBinaryType(BinaryOp op, DataType l, DataType r);

/// Result type of unary op.
Result<DataType> InferUnaryType(UnaryOp op, DataType child);

/// Scalar function signature lookup: validates arity/argument types and
/// returns the result type. Known functions: abs, sqrt, pow, power, exp,
/// ln, log, floor, ceil, round, least, greatest, mod, sign, length, lower,
/// upper, substr.
Result<DataType> InferFunctionType(const std::string& name,
                                   const std::vector<DataType>& args);

/// True if `name` is a known scalar function.
bool IsScalarFunction(const std::string& name);

/// True if `name` is a known aggregate function (count, sum, avg, min,
/// max, stddev, var — handled by the aggregation operator, not the scalar
/// evaluator).
bool IsAggregateFunction(const std::string& name);

/// Result type of an aggregate over an argument type. `count` ignores the
/// argument type.
Result<DataType> InferAggregateType(const std::string& name, DataType arg);

}  // namespace soda

#endif  // SODA_EXPR_TYPE_INFERENCE_H_
