#include "graph/csr.h"

#include <atomic>

#include "util/parallel.h"

namespace soda {

Result<CsrGraph> CsrBuilder::Build(const std::vector<int64_t>& src,
                                   const std::vector<int64_t>& dst,
                                   const std::vector<double>* weights) {
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("edge list arity mismatch");
  }
  if (weights && weights->size() != src.size()) {
    return Status::InvalidArgument("edge weight arity mismatch");
  }
  const size_t e = src.size();

  // Pass 1: densify vertex ids. The id mapping is an inherently sequential
  // hash build; everything after it is parallel.
  CsrGraph g;
  std::unordered_map<int64_t, uint32_t> dense;
  dense.reserve(e / 4 + 16);
  auto intern = [&](int64_t id) -> uint32_t {
    auto [it, inserted] = dense.emplace(
        id, static_cast<uint32_t>(g.original_ids_.size()));
    if (inserted) g.original_ids_.push_back(id);
    return it->second;
  };
  std::vector<uint32_t> s(e), d(e);
  for (size_t i = 0; i < e; ++i) {
    s[i] = intern(src[i]);
    d[i] = intern(dst[i]);
  }
  const size_t v = g.original_ids_.size();

  // Pass 2: count out-degrees (parallel with atomics), prefix-sum.
  std::vector<std::atomic<uint64_t>> degree(v);
  for (auto& x : degree) x.store(0, std::memory_order_relaxed);
  ParallelFor(e, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      degree[s[i]].fetch_add(1, std::memory_order_relaxed);
    }
  });
  g.offsets_.resize(v + 1);
  g.offsets_[0] = 0;
  for (size_t i = 0; i < v; ++i) {
    g.offsets_[i + 1] = g.offsets_[i] + degree[i].load();
  }

  // Pass 3: scatter targets (parallel; per-vertex write cursors).
  std::vector<std::atomic<uint64_t>> cursor(v);
  for (size_t i = 0; i < v; ++i) {
    cursor[i].store(g.offsets_[i], std::memory_order_relaxed);
  }
  g.targets_.resize(e);
  if (weights) g.weights_.resize(e);
  ParallelFor(e, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      uint64_t slot = cursor[s[i]].fetch_add(1, std::memory_order_relaxed);
      g.targets_[slot] = d[i];
      if (weights) g.weights_[slot] = (*weights)[i];
    }
  });
  return g;
}

}  // namespace soda
