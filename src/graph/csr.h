/// \file csr.h
/// Compressed sparse row graph representation (paper §6.3).
///
/// The PageRank operator "ensures [efficient neighbor traversal] by
/// efficiently creating a temporary compressed sparse row (CSR)
/// representation that is optimized for the query at hand. We avoid
/// storage overhead and an access indirection ... by re-labeling all
/// vertices and doing a direct mapping." This module implements exactly
/// that: a parallel builder that densifies arbitrary int64 vertex ids into
/// [0, V), the CSR arrays, and the reverse mapping used to translate
/// internal ids back to the original ids after the computation.

#ifndef SODA_GRAPH_CSR_H_
#define SODA_GRAPH_CSR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace soda {

/// Immutable CSR adjacency structure with dense internal vertex ids.
class CsrGraph {
 public:
  /// Number of vertices (dense ids are [0, num_vertices())).
  size_t num_vertices() const { return offsets_.size() - 1; }
  size_t num_edges() const { return targets_.size(); }

  /// Neighbor list of dense vertex `v` as a (begin, end) pointer pair.
  const uint32_t* NeighborsBegin(uint32_t v) const {
    return targets_.data() + offsets_[v];
  }
  const uint32_t* NeighborsEnd(uint32_t v) const {
    return targets_.data() + offsets_[v + 1];
  }
  size_t OutDegree(uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Original id for dense id `v` (the reverse mapping operator of §6.3).
  int64_t OriginalId(uint32_t v) const { return original_ids_[v]; }
  const std::vector<int64_t>& original_ids() const { return original_ids_; }

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<uint32_t>& targets() const { return targets_; }

  /// Optional per-edge weights, parallel to `targets()`. Empty when the
  /// graph was built without an edge-weight lambda.
  const std::vector<double>& weights() const { return weights_; }
  bool has_weights() const { return !weights_.empty(); }

  size_t MemoryUsage() const {
    return offsets_.size() * sizeof(uint64_t) +
           targets_.size() * sizeof(uint32_t) +
           original_ids_.size() * sizeof(int64_t) +
           weights_.size() * sizeof(double);
  }

 private:
  friend class CsrBuilder;
  std::vector<uint64_t> offsets_;     // V+1 entries
  std::vector<uint32_t> targets_;     // E entries (dense ids)
  std::vector<int64_t> original_ids_; // dense id -> original id
  std::vector<double> weights_;       // optional, E entries
};

/// Builds a CsrGraph from an edge list of original (src, dst) id pairs.
class CsrBuilder {
 public:
  /// Densifies ids, counts degrees, and fills adjacency using a two-pass
  /// counting build (parallel counting + prefix sum + parallel scatter).
  /// `src` and `dst` must have equal length. Optional `weights` must be
  /// parallel to the edges.
  static Result<CsrGraph> Build(const std::vector<int64_t>& src,
                                const std::vector<int64_t>& dst,
                                const std::vector<double>* weights = nullptr);

 private:
  CsrBuilder() = default;
};

}  // namespace soda

#endif  // SODA_GRAPH_CSR_H_
