#include "graph/ldbc_generator.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace soda {

std::vector<LdbcScale> PaperLdbcScales() {
  return {
      {"ldbc-small", 11000, 41},
      {"ldbc-medium", 73000, 63},
      {"ldbc-large", 499000, 92},
  };
}

GeneratedGraph GenerateSocialGraph(size_t num_vertices, size_t avg_degree,
                                   uint64_t seed) {
  GeneratedGraph g;
  g.num_vertices = num_vertices;
  if (num_vertices == 0) return g;
  avg_degree = std::max<size_t>(1, avg_degree);

  Rng rng(seed);

  // Sparse, shuffled original ids, like LDBC person ids.
  std::vector<int64_t> ids(num_vertices);
  for (size_t i = 0; i < num_vertices; ++i) {
    ids[i] = static_cast<int64_t>(i) * 7 + 13;  // sparse
  }
  for (size_t i = num_vertices - 1; i > 0; --i) {
    std::swap(ids[i], ids[rng.Below(i + 1)]);
  }

  // Undirected edges: avg_degree counts directed edges per vertex, so we
  // create avg_degree/2 undirected edges per vertex and emit both
  // directions.
  size_t undirected_per_vertex = std::max<size_t>(1, avg_degree / 2);
  size_t target_undirected = num_vertices * undirected_per_vertex;
  g.src.reserve(2 * target_undirected);
  g.dst.reserve(2 * target_undirected);

  // Preferential attachment with community locality: each new vertex links
  // to (a) an endpoint of a random existing edge (degree-proportional) or
  // (b) a vertex in its local community window — yielding the heavy tail +
  // clustering of social graphs.
  std::vector<uint32_t> endpoint_pool;
  endpoint_pool.reserve(2 * target_undirected);
  const size_t community = 64;

  auto add_edge = [&](uint32_t a, uint32_t b) {
    if (a == b) return;
    g.src.push_back(ids[a]);
    g.dst.push_back(ids[b]);
    g.src.push_back(ids[b]);
    g.dst.push_back(ids[a]);
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
  };

  // Seed clique so the pool is non-empty.
  size_t seed_n = std::min<size_t>(num_vertices, 3);
  for (size_t i = 0; i < seed_n; ++i) {
    for (size_t j = i + 1; j < seed_n; ++j) {
      add_edge(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }

  for (size_t vtx = seed_n; vtx < num_vertices; ++vtx) {
    for (size_t k = 0; k < undirected_per_vertex; ++k) {
      uint32_t peer;
      if (rng.NextDouble() < 0.5 && vtx > 1) {
        // Community link: a nearby (in generation order) vertex.
        size_t lo = vtx > community ? vtx - community : 0;
        peer = static_cast<uint32_t>(lo + rng.Below(vtx - lo));
      } else {
        // Preferential attachment: endpoint of a random existing edge.
        peer = endpoint_pool[rng.Below(endpoint_pool.size())];
      }
      add_edge(static_cast<uint32_t>(vtx), peer);
    }
  }

  g.num_edges = g.src.size();
  return g;
}

}  // namespace soda
