/// \file ldbc_generator.h
/// Synthetic social-network graph generator.
///
/// The paper evaluates PageRank on LDBC SNB person-knows-person graphs
/// (§8.1.3) of ~11k/452k, ~73k/4.6M, and ~499k/46M vertices/edges. The
/// LDBC datagen is a Hadoop-era Java pipeline; as a substitution (see
/// DESIGN.md §3) this generator produces undirected graphs with the two
/// properties PageRank cost depends on — the |V|/|E| ratio of the SNB
/// person graph (avg degree ~40-90) and a heavy-tailed, community-
/// clustered degree distribution — using a preferential-attachment model
/// with random community rewiring.

#ifndef SODA_GRAPH_LDBC_GENERATOR_H_
#define SODA_GRAPH_LDBC_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace soda {

/// An undirected edge list with (sparse, shuffled) original vertex ids —
/// shuffled so that the CSR builder's re-labeling path is actually
/// exercised, like LDBC's non-dense person ids.
struct GeneratedGraph {
  std::vector<int64_t> src;
  std::vector<int64_t> dst;
  size_t num_vertices = 0;
  size_t num_edges = 0;  ///< directed edge count == src.size()
};

/// Named presets mirroring the paper's three LDBC scales (full) and
/// CI-sized downscales of the same shape.
struct LdbcScale {
  const char* name;
  size_t vertices;
  size_t avg_degree;  ///< directed (paper: 452k/11k≈41, 4.6M/73k≈63, 46M/499k≈92)
};

/// The three scales from Fig. 5 (left).
std::vector<LdbcScale> PaperLdbcScales();

/// Generates an undirected (both directions materialized) social graph.
/// `avg_degree` counts directed edges per vertex. Deterministic in `seed`.
GeneratedGraph GenerateSocialGraph(size_t num_vertices, size_t avg_degree,
                                   uint64_t seed = 42);

}  // namespace soda

#endif  // SODA_GRAPH_LDBC_GENERATOR_H_
