#include "server/admission.h"

#include <algorithm>

namespace soda {

AdmissionSlot& AdmissionSlot::operator=(AdmissionSlot&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionSlot::Release() {
  if (controller_) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {}

Result<AdmissionSlot> AdmissionController::Admit() {
  // The watermark consults the catalog outside mu_ so the lock order
  // stays strictly admission.mu_ -> (nothing); Catalog::mu_ is a leaf
  // that must never wait on us.
  size_t resident = 0;
  if (options_.memory_watermark_bytes > 0 && options_.memory_usage) {
    resident = options_.memory_usage();
  }

  MutexLock lock(&mu_);
  if (draining_) {
    ++stats_.rejected_draining;
    return Status::ResourceExhausted(
        "server draining: no new statements admitted");
  }
  if (options_.memory_watermark_bytes > 0 &&
      resident > options_.memory_watermark_bytes) {
    ++stats_.shed_watermark;
    return Status::ResourceExhausted(
        "global memory watermark exceeded (" + std::to_string(resident) +
        " of " + std::to_string(options_.memory_watermark_bytes) +
        " bytes resident); statement shed");
  }
  if (active_ < options_.max_concurrent_statements) {
    ++active_;
    ++stats_.admitted;
    return AdmissionSlot(this);
  }
  if (waiting_ >= options_.max_queued_statements) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        "admission queue full (" +
        std::to_string(options_.max_concurrent_statements) + " running, " +
        std::to_string(waiting_) + " queued); statement shed");
  }

  // Bounded wait for a slot. WaitFor re-checks under the lock, so a
  // spurious wakeup cannot over-admit.
  ++waiting_;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.max_queue_wait_ms);
  bool admitted = false;
  while (true) {
    if (draining_) break;
    if (active_ < options_.max_concurrent_statements) {
      admitted = true;
      break;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    (void)slot_free_.WaitFor(
        &mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now));
  }
  --waiting_;
  if (!admitted) {
    if (draining_) {
      ++stats_.rejected_draining;
      return Status::ResourceExhausted(
          "server draining: no new statements admitted");
    }
    ++stats_.shed_queue_timeout;
    return Status::ResourceExhausted(
        "no admission slot freed within " +
        std::to_string(options_.max_queue_wait_ms) + " ms; statement shed");
  }
  ++active_;
  ++stats_.admitted;
  return AdmissionSlot(this);
}

void AdmissionController::ReleaseSlot() {
  MutexLock lock(&mu_);
  --active_;
  slot_free_.NotifyOne();
  if (active_ == 0) quiesced_.NotifyAll();
}

void AdmissionController::BeginDrain() {
  MutexLock lock(&mu_);
  draining_ = true;
  // Wake every queued waiter so it observes the drain and rejects.
  slot_free_.NotifyAll();
  if (active_ == 0) quiesced_.NotifyAll();
}

bool AdmissionController::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

size_t AdmissionController::AwaitQuiesce(int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(std::max<int64_t>(0, timeout_ms));
  MutexLock lock(&mu_);
  while (active_ > 0) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    (void)quiesced_.WaitFor(
        &mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now));
  }
  return active_;
}

size_t AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace soda
