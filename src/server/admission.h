/// \file admission.h
/// Statement admission control: the server-side face of the PR-1 query
/// governor.
///
/// The governor bounds what one statement may consume (deadline, memory
/// budget); the admission controller bounds how many statements run at
/// once and how many may wait. Together they turn overload into fast,
/// typed rejections (kResourceExhausted + a retry-after hint) instead of
/// an unbounded queue marching toward OOM:
///
///   admit  -> a slot is free (or frees within max_queue_wait_ms)
///   shed   -> queue full, queue wait expired, or the global memory
///             watermark is hit -> immediate kResourceExhausted
///   drain  -> server shutting down -> kResourceExhausted("draining"),
///             no retry hint (clients should fail over, not hammer)
///
/// State machine (DESIGN.md §7):
///
///     [accepting] --BeginDrain()--> [draining] --active==0--> quiesced
///
/// In `accepting`, Admit() hands out RAII slots; in `draining`, Admit()
/// rejects everything while already-admitted statements run to
/// completion (or are cancelled by the server once the drain deadline
/// passes — that part is the server's job, see server.cc).

#ifndef SODA_SERVER_ADMISSION_H_
#define SODA_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "util/mutex.h"
#include "util/status.h"

namespace soda {

struct AdmissionOptions {
  /// Statements allowed to execute concurrently (the worker-slot pool).
  size_t max_concurrent_statements = 4;
  /// Statements allowed to wait for a slot; beyond this, shed instantly.
  size_t max_queued_statements = 8;
  /// How long one queued statement may wait before it is shed.
  int64_t max_queue_wait_ms = 1000;
  /// Global resident-memory watermark; 0 disables. Checked at admission
  /// via `memory_usage` (typically Catalog::TotalMemoryUsage), so a
  /// database already at the watermark sheds new work instead of letting
  /// statements pile materializations on top.
  size_t memory_watermark_bytes = 0;
  std::function<size_t()> memory_usage;
  /// Retry hint stamped into shed responses.
  int64_t retry_after_ms = 100;
};

struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_timeout = 0;
  uint64_t shed_watermark = 0;
  uint64_t rejected_draining = 0;
};

class AdmissionController;

/// RAII statement slot: releasing it (destruction) wakes one queued
/// waiter. Move-only; a default-constructed slot holds nothing.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionSlot&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept;
  ~AdmissionSlot() { Release(); }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool held() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionSlot(AdmissionController* c) : controller_(c) {}
  AdmissionController* controller_ = nullptr;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Tries to admit one statement. Returns a held slot, or
  /// kResourceExhausted when shed/draining (the message says which; use
  /// `retry_after_hint_ms` for the wire hint). Blocks at most
  /// `max_queue_wait_ms`.
  Result<AdmissionSlot> Admit() SODA_EXCLUDES(mu_);

  /// Stops admitting; already-held slots stay valid until released.
  void BeginDrain() SODA_EXCLUDES(mu_);
  bool draining() const SODA_EXCLUDES(mu_);

  /// Blocks until every admitted statement released its slot or
  /// `timeout_ms` elapsed; returns the number still active.
  size_t AwaitQuiesce(int64_t timeout_ms) SODA_EXCLUDES(mu_);

  size_t active() const SODA_EXCLUDES(mu_);
  AdmissionStats stats() const SODA_EXCLUDES(mu_);

  /// The hint stamped into shed responses (-1 when draining: the client
  /// should fail over rather than retry here).
  int64_t retry_after_hint_ms() const { return options_.retry_after_ms; }

 private:
  friend class AdmissionSlot;
  void ReleaseSlot() SODA_EXCLUDES(mu_);

  const AdmissionOptions options_;
  mutable Mutex mu_;
  CondVar slot_free_;  // signals: active_ dropped below the cap
  CondVar quiesced_;   // signals: active_ reached 0
  size_t active_ SODA_GUARDED_BY(mu_) = 0;
  size_t waiting_ SODA_GUARDED_BY(mu_) = 0;
  bool draining_ SODA_GUARDED_BY(mu_) = false;
  AdmissionStats stats_ SODA_GUARDED_BY(mu_);
};

}  // namespace soda

#endif  // SODA_SERVER_ADMISSION_H_
