#include "server/protocol.h"

#include <cstring>

#include "storage/serde.h"

namespace soda {

namespace {

/// StatusCode values cross the wire as u8; reject anything outside the
/// enum so a corrupt frame cannot forge an impossible code.
Result<StatusCode> StatusCodeFromWire(uint8_t v) {
  if (v > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::ExecutionError("protocol: invalid status code " +
                                  std::to_string(v));
  }
  return static_cast<StatusCode>(v);
}

}  // namespace

Status WriteFrame(const Socket& sock, MsgType type, const std::string& body) {
  // One contiguous buffer -> one send() on the fast path (no partial
  // header/body interleaving for concurrent readers to misparse).
  std::string wire;
  wire.reserve(5 + body.size());
  uint32_t len = static_cast<uint32_t>(body.size() + 1);
  wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
  wire.push_back(static_cast<char>(type));
  wire.append(body);
  return sock.WriteFull(wire.data(), wire.size());
}

Result<Frame> ReadFrame(const Socket& sock, size_t max_frame_bytes) {
  uint32_t len = 0;
  SODA_RETURN_NOT_OK(sock.ReadFull(&len, sizeof(len)));
  if (len == 0) {
    return Status::ExecutionError("protocol: empty frame");
  }
  if (len > max_frame_bytes) {
    return Status::ExecutionError(
        "protocol: frame of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }
  std::string payload(len, '\0');
  SODA_RETURN_NOT_OK(sock.ReadFull(payload.data(), payload.size()));
  BinaryReader r(payload);
  SODA_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.body = payload.substr(1);
  return frame;
}

std::string EncodeQuery(const std::string& sql) {
  BinaryWriter w;
  w.Str(sql);
  return w.Take();
}

Result<std::string> DecodeQuery(const Frame& frame) {
  if (frame.type != MsgType::kQuery) {
    return Status::ExecutionError(
        "protocol: expected a query frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  BinaryReader r(frame.body);
  SODA_ASSIGN_OR_RETURN(std::string sql, r.Str());
  if (!r.AtEnd()) {
    return Status::ExecutionError("protocol: trailing bytes after query");
  }
  return sql;
}

std::string EncodePrepare(const std::string& name, const std::string& sql) {
  BinaryWriter w;
  w.Str(name);
  w.Str(sql);
  return w.Take();
}

Result<PrepareRequest> DecodePrepare(const Frame& frame) {
  if (frame.type != MsgType::kPrepare) {
    return Status::ExecutionError(
        "protocol: expected a prepare frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  BinaryReader r(frame.body);
  PrepareRequest req;
  SODA_ASSIGN_OR_RETURN(req.name, r.Str());
  SODA_ASSIGN_OR_RETURN(req.sql, r.Str());
  if (!r.AtEnd()) {
    return Status::ExecutionError("protocol: trailing bytes after prepare");
  }
  return req;
}

std::string EncodeExecutePrepared(const std::string& name,
                                  const std::vector<Value>& params) {
  BinaryWriter w;
  w.Str(name);
  w.U32(static_cast<uint32_t>(params.size()));
  for (const Value& v : params) {
    if (v.is_null()) {
      w.U8(0);
    } else if (v.type() == DataType::kDouble) {
      w.U8(2);
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      w.U64(bits);
    } else if (v.type() == DataType::kVarchar) {
      w.U8(3);
      w.Str(v.varchar_value());
    } else if (v.type() == DataType::kBool) {
      w.U8(4);
      w.U8(v.bool_value() ? 1 : 0);
    } else {
      // Integers (and anything else the shell parsed numerically) travel
      // as bigint; the server casts to the declared parameter type.
      w.U8(1);
      w.I64(v.AsBigInt());
    }
  }
  return w.Take();
}

Result<ExecutePreparedRequest> DecodeExecutePrepared(const Frame& frame) {
  if (frame.type != MsgType::kExecutePrepared) {
    return Status::ExecutionError(
        "protocol: expected an execute frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  BinaryReader r(frame.body);
  ExecutePreparedRequest req;
  SODA_ASSIGN_OR_RETURN(req.name, r.Str());
  SODA_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  req.params.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SODA_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
    switch (tag) {
      case 0:
        req.params.push_back(Value::Null());
        break;
      case 1: {
        SODA_ASSIGN_OR_RETURN(int64_t v, r.I64());
        req.params.push_back(Value::BigInt(v));
        break;
      }
      case 2: {
        SODA_ASSIGN_OR_RETURN(uint64_t bits, r.U64());
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        req.params.push_back(Value::Double(d));
        break;
      }
      case 3: {
        SODA_ASSIGN_OR_RETURN(std::string s, r.Str());
        req.params.push_back(Value::Varchar(std::move(s)));
        break;
      }
      case 4: {
        SODA_ASSIGN_OR_RETURN(uint8_t b, r.U8());
        req.params.push_back(Value::Bool(b != 0));
        break;
      }
      default:
        return Status::ExecutionError("protocol: invalid parameter tag " +
                                      std::to_string(tag));
    }
  }
  if (!r.AtEnd()) {
    return Status::ExecutionError("protocol: trailing bytes after execute");
  }
  return req;
}

std::string EncodeHello(uint64_t session_id, const std::string& banner) {
  BinaryWriter w;
  w.U64(session_id);
  w.Str(banner);
  return w.Take();
}

std::string EncodeResult(const TablePtr& table) {
  BinaryWriter w;
  w.U8(table ? 1 : 0);
  if (table) WriteTable(*table, &w);
  return w.Take();
}

std::string EncodeError(const Status& status, int64_t retry_after_ms) {
  BinaryWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  w.I64(retry_after_ms);
  return w.Take();
}

std::string EncodeGoodbye(const std::string& reason) {
  BinaryWriter w;
  w.Str(reason);
  return w.Take();
}

Result<ServerReply> DecodeServerReply(const Frame& frame) {
  ServerReply reply;
  reply.type = frame.type;
  BinaryReader r(frame.body);
  switch (frame.type) {
    case MsgType::kHello: {
      SODA_ASSIGN_OR_RETURN(reply.session_id, r.U64());
      SODA_ASSIGN_OR_RETURN(reply.text, r.Str());
      return reply;
    }
    case MsgType::kResult: {
      SODA_ASSIGN_OR_RETURN(uint8_t has_table, r.U8());
      if (has_table) {
        SODA_ASSIGN_OR_RETURN(reply.table, ReadTable(&r));
      }
      return reply;
    }
    case MsgType::kError: {
      SODA_ASSIGN_OR_RETURN(uint8_t code, r.U8());
      SODA_ASSIGN_OR_RETURN(StatusCode sc, StatusCodeFromWire(code));
      SODA_ASSIGN_OR_RETURN(std::string message, r.Str());
      SODA_ASSIGN_OR_RETURN(reply.retry_after_ms, r.I64());
      reply.status = Status(sc, message);
      return reply;
    }
    case MsgType::kGoodbye: {
      SODA_ASSIGN_OR_RETURN(reply.text, r.Str());
      return reply;
    }
    case MsgType::kQuery:
    case MsgType::kPrepare:
    case MsgType::kExecutePrepared:
      break;
  }
  return Status::ExecutionError(
      "protocol: unexpected server frame type " +
      std::to_string(static_cast<int>(frame.type)));
}

}  // namespace soda
