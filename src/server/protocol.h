/// \file protocol.h
/// soda's length-framed wire protocol (version 1).
///
/// Every message is one frame:
///
///   [u32 payload_len (LE)] [u8 msg_type] [payload ...]
///
/// payloads use the same bounds-checked binary codec as the WAL and
/// checkpoints (storage/serde.h), so a truncated or hostile frame
/// surfaces as a clean Status, never a crash. Frames larger than
/// `max_frame_bytes` are rejected before any allocation.
///
/// Client -> server:
///   kQuery    Str sql                       one SQL statement
///   kPrepare  Str name, Str sql             register a PREPARE under this
///                                           session (sql is the full
///                                           PREPARE statement text)
///   kExecutePrepared
///             Str name, U32 n,              execute a prepared statement
///             n x [U8 tag, payload]         with typed parameter values:
///                                           tag 0 = null (no payload),
///                                           1 = I64 bigint, 2 = F64 double,
///                                           3 = Str varchar, 4 = U8 bool
///
/// Server -> client:
///   kHello    U64 session_id, Str banner    sent once after accept
///   kResult   U8 has_table [, Table]        statement succeeded
///   kError    U8 status_code, Str message,
///             I64 retry_after_ms            statement failed; a
///                                           non-negative retry hint means
///                                           "transient overload — retry"
///   kGoodbye  Str reason                    server-initiated close (idle
///                                           timeout, graceful drain)
///
/// Result tables reuse the columnar serde Table format byte-for-byte, so
/// a client materializes a result with one ReadTable call.

#ifndef SODA_SERVER_PROTOCOL_H_
#define SODA_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "types/value.h"
#include "util/socket.h"
#include "util/status.h"

namespace soda {

enum class MsgType : uint8_t {
  kQuery = 0x01,
  kPrepare = 0x02,
  kExecutePrepared = 0x03,
  kHello = 0x10,
  kResult = 0x11,
  kError = 0x12,
  kGoodbye = 0x13,
};

/// Default cap on one frame's payload. Generous for result sets, small
/// enough that a hostile length prefix cannot OOM the server.
inline constexpr size_t kDefaultMaxFrameBytes = size_t{64} << 20;

/// One decoded frame: the type byte plus the raw payload after it.
struct Frame {
  MsgType type;
  std::string body;
};

/// Writes `[len][type][body]` as a single buffered send.
Status WriteFrame(const Socket& sock, MsgType type, const std::string& body);

/// Reads one frame; enforces `max_frame_bytes` before allocating.
Result<Frame> ReadFrame(const Socket& sock, size_t max_frame_bytes);

// --- typed encode/decode helpers -----------------------------------------

std::string EncodeQuery(const std::string& sql);
Result<std::string> DecodeQuery(const Frame& frame);

/// PREPARE over the wire: the statement name (for the client's own
/// bookkeeping) plus the full PREPARE statement text the server runs.
std::string EncodePrepare(const std::string& name, const std::string& sql);
struct PrepareRequest {
  std::string name;
  std::string sql;
};
Result<PrepareRequest> DecodePrepare(const Frame& frame);

/// EXECUTE over the wire: the statement name plus typed parameter values
/// (null / bigint / double / varchar / bool — the engine casts to the
/// prepared statement's declared types server-side).
std::string EncodeExecutePrepared(const std::string& name,
                                  const std::vector<Value>& params);
struct ExecutePreparedRequest {
  std::string name;
  std::vector<Value> params;
};
Result<ExecutePreparedRequest> DecodeExecutePrepared(const Frame& frame);

std::string EncodeHello(uint64_t session_id, const std::string& banner);
std::string EncodeResult(const TablePtr& table);  ///< null = row-less OK
std::string EncodeError(const Status& status, int64_t retry_after_ms);
std::string EncodeGoodbye(const std::string& reason);

/// Everything a client learns from one server reply.
struct ServerReply {
  MsgType type;
  Status status = Status::OK();  ///< non-OK only for kError
  int64_t retry_after_ms = -1;   ///< >= 0: transient, retry after this
  TablePtr table;                ///< non-null only for kResult with rows
  uint64_t session_id = 0;       ///< kHello only
  std::string text;              ///< banner (kHello) / reason (kGoodbye)
};

/// Decodes any server->client frame (client side).
Result<ServerReply> DecodeServerReply(const Frame& frame);

}  // namespace soda

#endif  // SODA_SERVER_PROTOCOL_H_
