#include "server/server.h"

#include <chrono>
#include <utility>

#include "sql/parser.h"
#include "util/query_guard.h"

namespace soda {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char kBanner[] = "soda-server proto=1";

}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      admission_(options_.admission),
      sessions_(options_.max_sessions) {}

Server::~Server() {
  // analyze:allow(status: dtor cannot propagate; Shutdown is OK here)
  if (running()) (void)Shutdown();
}

EngineOptions Server::SessionDefaults() const {
  EngineOptions defaults = engine_->options();
  if (options_.statement_timeout_ms >= 0) {
    defaults.timeout_ms = options_.statement_timeout_ms;
  }
  if (options_.statement_memory_limit_bytes >= 0) {
    defaults.memory_limit_bytes = options_.statement_memory_limit_bytes;
  }
  return defaults;
}

Status Server::Start() {
  if (running()) return Status::InvalidArgument("server already running");
  auto listener = ListenSocket::Bind(options_.host, options_.port,
                                     /*backlog=*/128);
  SODA_RETURN_NOT_OK(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedThreads();
    auto ready = listener_.WaitAcceptable(options_.poll_interval_ms);
    if (!ready.ok()) break;  // listener broken; drain path still works
    if (!*ready) continue;
    // analyze:allow(status: injected-fault message is synthetic; stats_ counts it)
    if (!FaultInjector::Global().Probe("server.accept").ok()) {
      // Injected accept failure: count it and carry on. The pending
      // connection stays in the backlog and is picked up next round —
      // a transient accept() error must never kill the server.
      stats_.accept_faults.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto sock = listener_.Accept();
    if (!sock.ok()) continue;  // e.g. client gone between poll and accept
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);

    auto session = sessions_.Create(sock->PeerName(), SessionDefaults());
    if (!session.ok()) {
      // Reject fast with a typed reply; the frame is tiny, so this
      // cannot stall the accept thread on a slow client.
      stats_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      // analyze:allow(status: best-effort reject notice; peer may be gone)
      (void)WriteFrame(*sock, MsgType::kError,
                       EncodeError(session.status(),
                                   admission_.retry_after_hint_ms()));
      continue;
    }

    auto shared_sock = std::make_shared<Socket>(std::move(*sock));
    uint64_t id = (*session)->id();
    std::thread handler([this, s = std::move(*session),
                         shared_sock]() mutable {
      SessionLoop(std::move(s), std::move(shared_sock));
    });
    {
      MutexLock lock(&threads_mu_);
      session_threads_.emplace(id, std::move(handler));
    }
  }
}

void Server::SessionLoop(SessionPtr session, std::shared_ptr<Socket> sock) {
  session->Touch(NowMs());
  Status st = WriteFrame(*sock, MsgType::kHello,
                         EncodeHello(session->id(), kBanner));
  while (st.ok()) {
    if (stopping_.load(std::memory_order_acquire)) {
      // analyze:allow(status: farewell frame is best-effort; session ends anyway)
      (void)WriteFrame(*sock, MsgType::kGoodbye,
                       EncodeGoodbye("server draining"));
      break;
    }
    if (options_.idle_timeout_ms > 0 &&
        NowMs() - session->last_active_ms() > options_.idle_timeout_ms) {
      // analyze:allow(status: farewell frame is best-effort; session ends anyway)
      (void)WriteFrame(*sock, MsgType::kGoodbye,
                       EncodeGoodbye("idle timeout"));
      break;
    }
    auto readable = sock->WaitReadable(options_.poll_interval_ms);
    if (!readable.ok()) break;
    if (!*readable) continue;

    // analyze:allow(status: injected-fault message is synthetic; stats_ counts it)
    if (!FaultInjector::Global().Probe("server.read").ok()) {
      // Injected torn read: the request boundary is lost, so the only
      // safe recovery is to drop the connection. The session object is
      // removed below; budgets were never acquired.
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    auto frame = ReadFrame(*sock, options_.max_frame_bytes);
    if (!frame.ok()) break;  // clean EOF or torn frame: close
    session->Touch(NowMs());
    bool keep_going;
    if (frame->type == MsgType::kQuery) {
      auto sql = DecodeQuery(*frame);
      if (!sql.ok()) {
        st = WriteFrame(*sock, MsgType::kError,
                        EncodeError(sql.status(), /*retry_after_ms=*/-1));
        continue;
      }
      keep_going = RunStatement(session, *sock, *sql);
    } else if (frame->type == MsgType::kPrepare) {
      auto req = DecodePrepare(*frame);
      if (!req.ok()) {
        st = WriteFrame(*sock, MsgType::kError,
                        EncodeError(req.status(), /*retry_after_ms=*/-1));
        continue;
      }
      keep_going = RunPrepare(session, *sock, *req);
    } else if (frame->type == MsgType::kExecutePrepared) {
      auto req = DecodeExecutePrepared(*frame);
      if (!req.ok()) {
        st = WriteFrame(*sock, MsgType::kError,
                        EncodeError(req.status(), /*retry_after_ms=*/-1));
        continue;
      }
      keep_going = RunExecutePrepared(session, *sock, *req);
    } else {
      st = WriteFrame(
          *sock, MsgType::kError,
          EncodeError(Status::InvalidArgument("expected a query frame"),
                      /*retry_after_ms=*/-1));
      continue;
    }
    if (!keep_going) break;
    session->Touch(NowMs());
  }
  sessions_.Remove(session->id());
  NoteThreadFinished(session->id());
}

bool Server::RunStatement(const SessionPtr& session, const Socket& sock,
                          const std::string& sql) {
  return RunAdmitted(session, sock, [&](const ExecOptions& exec) {
    return engine_->Execute(sql, exec);
  });
}

bool Server::RunPrepare(const SessionPtr& session, const Socket& sock,
                        const PrepareRequest& req) {
  // Unadmitted, so only PREPARE (parse + bind, no execution) may travel
  // in this frame — anything else must go through kQuery's admission.
  auto stmt = ParseStatement(req.sql);
  Status st = stmt.status();
  if (st.ok() && stmt->kind != StatementKind::kPrepare) {
    st = Status::InvalidArgument(
        "kPrepare frame must carry a PREPARE statement");
  }
  if (st.ok()) {
    ExecOptions exec;
    exec.session_options = &session->options();
    exec.prepared = &session->prepared();
    st = engine_->Execute(req.sql, exec).status();
  }
  session->CountStatement();
  if (st.ok()) {
    stats_.statements_ok.fetch_add(1, std::memory_order_relaxed);
    // analyze:allow(status: bool is the keep-session signal; failed write = peer gone)
    return WriteFrame(sock, MsgType::kResult, EncodeResult(nullptr)).ok();
  }
  stats_.statements_error.fetch_add(1, std::memory_order_relaxed);
  // analyze:allow(status: bool is the keep-session signal; failed write = peer gone)
  return WriteFrame(sock, MsgType::kError,
                    EncodeError(st, /*retry_after_ms=*/-1))
      .ok();
}

bool Server::RunExecutePrepared(const SessionPtr& session, const Socket& sock,
                                const ExecutePreparedRequest& req) {
  return RunAdmitted(session, sock, [&](const ExecOptions& exec) {
    return engine_->ExecutePrepared(req.name, req.params, exec);
  });
}

bool Server::RunAdmitted(
    const SessionPtr& session, const Socket& sock,
    const std::function<Result<QueryResult>(const ExecOptions&)>& run) {
  auto slot = admission_.Admit();
  if (!slot.ok()) {
    stats_.statements_shed.fetch_add(1, std::memory_order_relaxed);
    int64_t hint =
        admission_.draining() ? -1 : admission_.retry_after_hint_ms();
    // A shed statement does not end the session: the client may retry
    // after the hint on the same connection.
    // analyze:allow(status: bool is the keep-session signal; failed write = peer gone)
    return WriteFrame(sock, MsgType::kError, EncodeError(slot.status(), hint))
        .ok();
  }

  std::shared_ptr<CancelHandle> handle = session->BeginStatement();
  ExecOptions exec;
  exec.cancel = handle.get();
  exec.session_options = &session->options();
  exec.prepared = &session->prepared();

  // Disconnect watcher: while the statement runs, poll the socket so an
  // abandoned query is cancelled promptly and its slot + budgets are
  // reclaimed instead of running to completion for nobody.
  struct Watch {
    Mutex mu;
    CondVar done_cv;
    bool stop = false;
    std::atomic<bool> disconnected{false};
  } watch;
  std::thread watcher([&] {
    MutexLock lock(&watch.mu);
    while (!watch.stop) {
      if (watch.done_cv.WaitFor(&watch.mu, std::chrono::milliseconds(25),
                                [&] { return watch.stop; })) {
        break;
      }
      if (sock.PeerClosed()) {
        watch.disconnected.store(true, std::memory_order_release);
        handle->Cancel();
        break;
      }
    }
  });

  auto result = run(exec);

  {
    MutexLock lock(&watch.mu);
    watch.stop = true;
    watch.done_cv.NotifyAll();
  }
  watcher.join();
  session->EndStatement();
  session->CountStatement();
  slot->Release();  // free the admission slot before replying

  if (watch.disconnected.load(std::memory_order_acquire)) {
    stats_.disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
    return false;  // peer is gone; nothing to write
  }
  if (result.ok()) {
    stats_.statements_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.statements_error.fetch_add(1, std::memory_order_relaxed);
    if (result.status().code() == StatusCode::kCancelled &&
        stopping_.load(std::memory_order_acquire)) {
      stats_.drain_cancels.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // analyze:allow(status: injected-fault message is synthetic; stats_ counts it)
  if (!FaultInjector::Global().Probe("server.write").ok()) {
    // Injected torn write: the reply boundary is lost mid-frame; close
    // so the client re-syncs on reconnect rather than misparse.
    stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string body = result.ok()
                         ? EncodeResult(result->table())
                         : EncodeError(result.status(), /*retry_after_ms=*/-1);
  MsgType type = result.ok() ? MsgType::kResult : MsgType::kError;
  // analyze:allow(status: bool is the keep-session signal; failed write = peer gone)
  return WriteFrame(sock, type, body).ok();
}

Status Server::Shutdown() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return Status::OK();

  // 1. Stop taking new work: accept loop exits, admission rejects.
  stopping_.store(true, std::memory_order_release);
  admission_.BeginDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // 2. Let in-flight statements finish inside the drain budget.
  size_t still_active = admission_.AwaitQuiesce(options_.drain_timeout_ms);

  // 3. Past the budget: cancel stragglers. Session loops then observe
  //    stopping_, say goodbye, and unwind on their own.
  if (still_active > 0) sessions_.CancelAll();

  // 4. Every handler joined before we return — no thread outlives us.
  JoinAllSessionThreads();
  return Status::OK();
}

void Server::NoteThreadFinished(uint64_t session_id) {
  MutexLock lock(&threads_mu_);
  finished_threads_.push_back(session_id);
}

void Server::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    MutexLock lock(&threads_mu_);
    for (uint64_t id : finished_threads_) {
      auto it = session_threads_.find(id);
      if (it != session_threads_.end()) {
        done.push_back(std::move(it->second));
        session_threads_.erase(it);
      }
    }
    finished_threads_.clear();
  }
  // These threads have already run NoteThreadFinished, so the joins are
  // (near-)instant; still, join outside threads_mu_ on principle.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::JoinAllSessionThreads() {
  std::map<uint64_t, std::thread> all;
  {
    MutexLock lock(&threads_mu_);
    all.swap(session_threads_);
    finished_threads_.clear();
  }
  for (auto& [_, t] : all) {
    if (t.joinable()) t.join();
  }
}

}  // namespace soda
