/// \file server.h
/// The soda network server: a TCP front end over one resident Engine,
/// built for multi-tenant robustness (the paper's "one system fits all"
/// engine, serving-scale edition — see ROADMAP.md and Shark in
/// PAPERS.md).
///
/// Threading model:
///  - one accept thread (bounded poll loop, so shutdown is observed
///    within `poll_interval_ms`);
///  - one connection-handler thread per session (capped by
///    `max_sessions`; excess connections are rejected fast with a typed
///    error frame, never queued);
///  - one short-lived watcher thread per *executing* statement (capped
///    by the admission slots) that polls the client socket and trips the
///    statement's CancelHandle the moment the peer disconnects, so an
///    abandoned query stops consuming slots and budgets.
///
/// Robustness spec (DESIGN.md §7):
///  - every statement runs under a per-session QueryGuard (deadline +
///    memory budget from the session's SET state) and a pinned catalog
///    snapshot (readers never block writers, MVCC-lite);
///  - overload sheds: AdmissionController turns slot/queue/watermark
///    pressure into immediate kResourceExhausted replies with a
///    retry-after hint;
///  - graceful drain: Shutdown() stops accepting, lets in-flight
///    statements finish within `drain_timeout_ms`, then cancels the
///    stragglers — and always joins every thread before returning;
///  - fault sites `server.accept` / `server.read` / `server.write` /
///    `server.session` make each failure mode deterministically
///    injectable (tests/server_test.cc).

#ifndef SODA_SERVER_SERVER_H_
#define SODA_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/session.h"
#include "util/mutex.h"
#include "util/socket.h"

namespace soda {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by Server::port().
  uint16_t port = 0;
  /// Connected-session cap; connections beyond it are rejected fast.
  size_t max_sessions = 64;
  /// Statement admission control (slots, queue, watermark).
  AdmissionOptions admission;
  /// Close sessions idle longer than this; 0 = never.
  int64_t idle_timeout_ms = 0;
  /// How long Shutdown() lets in-flight statements finish before
  /// cancelling them.
  int64_t drain_timeout_ms = 5000;
  /// Per-statement defaults stamped into every new session's options
  /// (the multi-tenant budgets); -1 = inherit the engine's defaults.
  /// Sessions may tighten/loosen their own via SET soda.*.
  int64_t statement_timeout_ms = -1;
  int64_t statement_memory_limit_bytes = -1;
  /// Upper bound on one request/response frame.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Granularity at which blocked threads re-check shutdown/idle state.
  int poll_interval_ms = 50;
};

/// Monotonic counters; every field is written with relaxed atomics (they
/// are operator-facing telemetry, not synchronization).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> sessions_rejected{0};
  std::atomic<uint64_t> statements_ok{0};
  std::atomic<uint64_t> statements_error{0};
  std::atomic<uint64_t> statements_shed{0};
  std::atomic<uint64_t> disconnect_cancels{0};
  std::atomic<uint64_t> drain_cancels{0};
  std::atomic<uint64_t> accept_faults{0};
  std::atomic<uint64_t> read_faults{0};
  std::atomic<uint64_t> write_faults{0};
};

class Server {
 public:
  /// `engine` must outlive the server and is shared with any local
  /// callers (the server adds no exclusive ownership).
  Server(Engine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts accepting. Fails (and leaves the server stopped)
  /// if the address cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting, finish or cancel in-flight
  /// statements within `drain_timeout_ms`, close every session, join
  /// every thread. Idempotent; safe from any thread (including a signal
  /// handler's forwarding thread, but NOT from async-signal context).
  Status Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  size_t active_sessions() const { return sessions_.count(); }
  AdmissionStats admission_stats() const { return admission_.stats(); }
  const ServerStats& stats() const { return stats_; }

 private:
  void AcceptLoop();
  void SessionLoop(SessionPtr session, std::shared_ptr<Socket> sock);
  /// Admits, executes, and answers one statement. Returns false when the
  /// connection must close (peer gone or the reply could not be sent).
  bool RunStatement(const SessionPtr& session, const Socket& sock,
                    const std::string& sql);
  /// kPrepare frame: registers a prepared statement in the session's
  /// registry. Runs WITHOUT admission — it is pure metadata work (parse +
  /// bind, no execution), so a loaded server can still prepare.
  bool RunPrepare(const SessionPtr& session, const Socket& sock,
                  const PrepareRequest& req);
  /// kExecutePrepared frame: admitted + watched like RunStatement, but
  /// enters the engine through ExecutePrepared (no SQL text).
  bool RunExecutePrepared(const SessionPtr& session, const Socket& sock,
                          const ExecutePreparedRequest& req);
  /// Shared admission + disconnect-watcher + reply plumbing.
  bool RunAdmitted(
      const SessionPtr& session, const Socket& sock,
      const std::function<Result<QueryResult>(const ExecOptions&)>& run);

  void NoteThreadFinished(uint64_t session_id) SODA_EXCLUDES(threads_mu_);
  void ReapFinishedThreads() SODA_EXCLUDES(threads_mu_);
  void JoinAllSessionThreads() SODA_EXCLUDES(threads_mu_);

  EngineOptions SessionDefaults() const;

  Engine* const engine_;
  const ServerOptions options_;

  ListenSocket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  AdmissionController admission_;
  SessionManager sessions_;
  ServerStats stats_;

  std::thread accept_thread_;
  Mutex threads_mu_;
  std::map<uint64_t, std::thread> session_threads_
      SODA_GUARDED_BY(threads_mu_);
  std::vector<uint64_t> finished_threads_ SODA_GUARDED_BY(threads_mu_);
};

}  // namespace soda

#endif  // SODA_SERVER_SERVER_H_
