#include "server/session.h"

#include "util/query_guard.h"

namespace soda {

Result<SessionPtr> SessionManager::Create(const std::string& peer,
                                          const EngineOptions& defaults) {
  SODA_RETURN_NOT_OK(FaultInjector::Global().Probe("server.session"));
  MutexLock lock(&mu_);
  if (sessions_.size() >= max_sessions_) {
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(max_sessions_) +
        " active); connection shed");
  }
  uint64_t id = next_id_++;
  auto session = std::make_shared<Session>(id, peer, defaults);
  sessions_.emplace(id, session);
  return session;
}

void SessionManager::Remove(uint64_t id) {
  MutexLock lock(&mu_);
  sessions_.erase(id);
}

size_t SessionManager::count() const {
  MutexLock lock(&mu_);
  return sessions_.size();
}

void SessionManager::CancelAll() {
  std::vector<SessionPtr> snapshot = Snapshot();
  // Cancel outside mu_: CancelActiveStatement takes the session's own
  // lock, and holding both invites an ordering knot for no benefit.
  for (const SessionPtr& s : snapshot) s->CancelActiveStatement();
}

std::vector<SessionPtr> SessionManager::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SessionPtr> out;
  out.reserve(sessions_.size());
  for (const auto& [_, s] : sessions_) out.push_back(s);
  return out;
}

}  // namespace soda
