/// \file session.h
/// Server sessions: one per connected client, carrying the client's SET
/// state, its in-flight statement's cancellation handle, and activity
/// timestamps for idle harvesting.
///
/// A `Session` is shared between the connection-handler thread (the only
/// writer of `options`) and controller threads (the server's drain path
/// and the disconnect watcher), which only touch the thread-safe members
/// (`Cancel*`, timestamps). Per-session `SET soda.*` state lives in
/// `options`: the engine consults it via `ExecOptions::session_options`,
/// so one tenant tightening its own budgets never affects another.

#ifndef SODA_SERVER_SESSION_H_
#define SODA_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/mutex.h"
#include "util/status.h"

namespace soda {

class Session {
 public:
  Session(uint64_t id, std::string peer, EngineOptions options)
      : id_(id), peer_(std::move(peer)), options_(std::move(options)) {}

  uint64_t id() const { return id_; }
  const std::string& peer() const { return peer_; }

  /// Per-session engine options (SET state). Only the session's own
  /// connection thread reads or writes this — never share it.
  EngineOptions& options() { return options_; }

  /// Per-session prepared statements (PREPARE/EXECUTE over the wire).
  /// Passed to the engine via ExecOptions::prepared, so one connection's
  /// statements are invisible to another's; harvested with the session.
  /// PreparedRegistry is internally synchronized, but like `options_`
  /// only the session's own connection thread uses it.
  PreparedRegistry& prepared() { return prepared_; }

  /// Installs a fresh cancellation handle for the next statement and
  /// returns it. The old handle is dropped (a tripped CancelToken stays
  /// tripped forever, so handles are per-statement).
  std::shared_ptr<CancelHandle> BeginStatement() SODA_EXCLUDES(mu_) {
    auto handle = std::make_shared<CancelHandle>();
    MutexLock lock(&mu_);
    active_cancel_ = handle;
    return handle;
  }

  void EndStatement() SODA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    active_cancel_.reset();
  }

  /// Trips the in-flight statement's cancel handle (no-op when idle).
  /// Safe from any thread; used by disconnect detection and drain.
  void CancelActiveStatement() SODA_EXCLUDES(mu_) {
    std::shared_ptr<CancelHandle> handle;
    {
      MutexLock lock(&mu_);
      handle = active_cancel_;
    }
    if (handle) handle->Cancel();
  }

  void Touch(int64_t now_ms) {
    last_active_ms_.store(now_ms, std::memory_order_relaxed);
  }
  int64_t last_active_ms() const {
    return last_active_ms_.load(std::memory_order_relaxed);
  }

  uint64_t statements_run() const {
    return statements_run_.load(std::memory_order_relaxed);
  }
  void CountStatement() {
    statements_run_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const uint64_t id_;
  const std::string peer_;
  EngineOptions options_;  // connection-thread-local; see class comment
  PreparedRegistry prepared_;  // connection-thread-local; see accessor

  mutable Mutex mu_;
  std::shared_ptr<CancelHandle> active_cancel_ SODA_GUARDED_BY(mu_);
  std::atomic<int64_t> last_active_ms_{0};
  std::atomic<uint64_t> statements_run_{0};
};

using SessionPtr = std::shared_ptr<Session>;

/// Registry of live sessions. Admission of *sessions* happens here (the
/// `max_sessions` cap and the `server.session` fault site); admission of
/// *statements* is AdmissionController's job.
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Registers a new session (probes the `server.session` fault site).
  /// kResourceExhausted when the session cap is reached.
  Result<SessionPtr> Create(const std::string& peer,
                            const EngineOptions& defaults)
      SODA_EXCLUDES(mu_);

  void Remove(uint64_t id) SODA_EXCLUDES(mu_);

  size_t count() const SODA_EXCLUDES(mu_);

  /// Cancels every session's in-flight statement (drain deadline path).
  void CancelAll() SODA_EXCLUDES(mu_);

  std::vector<SessionPtr> Snapshot() const SODA_EXCLUDES(mu_);

 private:
  const size_t max_sessions_;
  mutable Mutex mu_;
  uint64_t next_id_ SODA_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, SessionPtr> sessions_ SODA_GUARDED_BY(mu_);
};

}  // namespace soda

#endif  // SODA_SERVER_SESSION_H_
