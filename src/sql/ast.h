/// \file ast.h
/// Unbound parse trees produced by the SQL parser and consumed by the
/// binder.

#ifndef SODA_SQL_AST_H_
#define SODA_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"  // reuses BinaryOp / UnaryOp enums
#include "types/data_type.h"
#include "types/value.h"

namespace soda {

// --- expressions ----------------------------------------------------------

enum class ParseExprKind {
  kLiteral,
  kColumnRef,  ///< [qualifier.]name
  kStar,       ///< * or qualifier.*  (select list only)
  kBinary,
  kUnary,
  kFunctionCall,
  kCase,
  kCast,
  kLambda,     ///< λ(p1[, p2]) body  (table function arguments only)
  kParameter,  ///< $n placeholder (PREPARE bodies only)
};

struct ParseExpr;
using ParseExprPtr = std::unique_ptr<ParseExpr>;

struct ParseExpr {
  ParseExprKind kind;

  Value literal;                       // kLiteral
  std::string qualifier, name;         // kColumnRef / kStar / kFunctionCall
  BinaryOp binary_op = BinaryOp::kAdd; // kBinary
  UnaryOp unary_op = UnaryOp::kNegate; // kUnary
  std::vector<ParseExprPtr> children;  // operands / args / case items
  bool case_has_else = false;          // kCase
  DataType cast_type = DataType::kInvalid;  // kCast
  std::vector<std::string> lambda_params;   // kLambda
  std::string source_text;             // kLambda: original text for messages
  size_t param_index = 0;              // kParameter: 1-based $n slot

  explicit ParseExpr(ParseExprKind k) : kind(k) {}
};

// --- statements -----------------------------------------------------------

struct SelectStmt;
using SelectPtr = std::unique_ptr<SelectStmt>;

/// One item of the select list.
struct SelectItem {
  ParseExprPtr expr;
  std::string alias;  ///< empty = derive from expression
};

/// A FROM-clause relation.
struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

enum class TableRefKind {
  kNamed,          ///< base table or CTE
  kSubquery,       ///< (SELECT ...) alias
  kIterate,        ///< ITERATE((init), (step), (stop))  — paper §5.1
  kTableFunction,  ///< KMEANS(...), PAGERANK(...), ...   — paper §6
  kJoin,           ///< A JOIN B ON p, or A, B (cross)
};

/// An argument of a table function: exactly one member is set.
struct TableFunctionArg {
  SelectPtr subquery;   ///< relation argument
  ParseExprPtr expr;    ///< scalar or lambda argument
};

struct TableRef {
  TableRefKind kind;
  std::string name;   // kNamed / kTableFunction
  std::string alias;  // all kinds
  SelectPtr subquery;                   // kSubquery
  SelectPtr init, step, stop;           // kIterate
  std::vector<TableFunctionArg> args;   // kTableFunction
  TableRefPtr left, right;              // kJoin
  ParseExprPtr join_condition;          // kJoin (null = cross join)

  explicit TableRef(TableRefKind k) : kind(k) {}
};

struct OrderItem {
  ParseExprPtr expr;
  bool descending = false;
};

struct CteDef {
  std::string name;
  std::vector<std::string> column_aliases;  ///< optional
  SelectPtr query;
};

struct SelectStmt {
  std::vector<CteDef> ctes;
  bool recursive = false;  ///< WITH RECURSIVE

  bool distinct = false;  ///< SELECT DISTINCT
  std::vector<SelectItem> items;
  TableRefPtr from;  ///< null = no FROM (e.g. SELECT 7 "x")
  ParseExprPtr where;
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  int64_t offset = 0;

  /// UNION ALL chaining: `this UNION ALL *union_next` (left-deep list).
  SelectPtr union_next;
};

struct CreateTableStmt {
  std::string name;
  std::vector<std::pair<std::string, DataType>> columns;
  bool if_not_exists = false;
  SelectPtr as_select;  ///< CREATE TABLE name AS <select> (columns empty)

  /// PARTITION BY clause (column-list form only):
  ///   PARTITION BY HASH(col) PARTITIONS n
  ///   PARTITION BY RANGE(col) (b1, b2, ...)   -- ascending upper bounds
  enum class PartitionKind { kNone, kHash, kRange };
  PartitionKind partition_kind = PartitionKind::kNone;
  std::string partition_column;
  int64_t partition_count = 0;            ///< hash only
  std::vector<int64_t> partition_bounds;  ///< range only
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ParseExprPtr>> values_rows;  ///< INSERT .. VALUES
  SelectPtr select;                                    ///< INSERT .. SELECT
};

struct DropTableStmt {
  std::string name;
  bool if_exists = false;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ParseExprPtr>> assignments;
  ParseExprPtr where;  ///< null = all rows
};

struct DeleteStmt {
  std::string table;
  ParseExprPtr where;  ///< null = all rows
};

/// SET <name> = <integer | identifier> — engine-level session knobs. The
/// dotted name is stored verbatim (lower-cased); the engine validates it
/// against the supported settings (soda.timeout_ms, soda.memory_limit_mb,
/// soda.max_iterations, soda.wal_fsync, soda.wal_group_bytes). Enum-valued
/// knobs (soda.wal_fsync = on|off|group) set `text_value`/`has_text`.
struct SetStmt {
  std::string name;
  int64_t value = 0;
  std::string text_value;
  bool has_text = false;
};

struct Statement;

/// PREPARE name [(TYPE, ...)] AS <select | insert>. Parameter types may be
/// declared up front; undeclared slots are inferred at bind time from the
/// expression context ($n = col takes col's type).
struct PrepareStmt {
  std::string name;
  std::vector<DataType> param_types;  ///< declared types (may be empty)
  std::unique_ptr<Statement> body;    ///< kSelect or kInsert only
};

/// EXECUTE name [(expr, ...)]. Arguments are constant expressions, folded
/// and cast to the prepared statement's parameter types at execute time.
struct ExecuteStmt {
  std::string name;
  std::vector<ParseExprPtr> args;
};

/// DEALLOCATE [PREPARE] name.
struct DeallocateStmt {
  std::string name;
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kInsert,
  kDropTable,
  kUpdate,
  kDelete,
  kExplain,     ///< EXPLAIN [ANALYZE] <select>
  kSet,         ///< SET soda.<knob> = <value>
  kCheckpoint,  ///< CHECKPOINT — persist all tables, truncate the WAL
  kScrub,       ///< SCRUB — verify segment + checkpoint checksums now
  kPrepare,     ///< PREPARE name [(types)] AS <stmt>
  kExecute,     ///< EXECUTE name [(args)]
  kDeallocate,  ///< DEALLOCATE [PREPARE] name
};

struct Statement {
  StatementKind kind;
  SelectPtr select;  ///< also the target of kExplain
  /// EXPLAIN ANALYZE: execute the statement and report per-operator
  /// metrics alongside the plan (only meaningful for kExplain).
  bool explain_analyze = false;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<PrepareStmt> prepare;
  std::unique_ptr<ExecuteStmt> execute;
  std::unique_ptr<DeallocateStmt> deallocate;
};

}  // namespace soda

#endif  // SODA_SQL_AST_H_
