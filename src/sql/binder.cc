#include "sql/binder.h"

#include <set>

#include "exec/table_function.h"
#include "expr/evaluator.h"
#include "expr/fold.h"
#include "expr/type_inference.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// True if the parse tree contains an aggregate function call.
bool ContainsAggregate(const ParseExpr& e) {
  if (e.kind == ParseExprKind::kFunctionCall && IsAggregateFunction(e.name)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

/// Collects aggregate calls in evaluation order.
void CollectAggregates(const ParseExpr& e,
                       std::vector<const ParseExpr*>* out) {
  if (e.kind == ParseExprKind::kFunctionCall && IsAggregateFunction(e.name)) {
    out->push_back(&e);
    return;  // nested aggregates rejected later
  }
  for (const auto& c : e.children) CollectAggregates(*c, out);
}

/// Output column name for an unaliased select item.
std::string DeriveName(const ParseExpr& e, size_t index) {
  switch (e.kind) {
    case ParseExprKind::kColumnRef:
      return e.name;
    case ParseExprKind::kFunctionCall:
      return e.name;
    case ParseExprKind::kCast:
      return DeriveName(*e.children[0], index);
    default:
      return "_col" + std::to_string(index + 1);
  }
}

}  // namespace

/// State for binding select items / HAVING in the presence of GROUP BY.
struct Binder::AggContext {
  const Schema* input_schema = nullptr;      ///< pre-aggregation schema
  std::vector<std::string> group_reprs;      ///< ToString of bound group exprs
  std::vector<DataType> group_types;
  std::vector<std::string> group_names;
  std::map<const ParseExpr*, size_t> agg_index;  ///< call -> aggregate slot
  std::vector<AggregateSpec> specs;
  Binder* binder = nullptr;
};

Result<PlanPtr> Binder::BindSelectStatement(const SelectStmt& stmt) {
  return BindSelect(stmt);
}

Status Binder::BindCtes(const SelectStmt& stmt) {
  for (const auto& cte : stmt.ctes) {
    const SelectStmt& q = *cte.query;
    PlanPtr plan;
    if (stmt.recursive && q.union_next) {
      // WITH RECURSIVE name AS (init UNION ALL step).
      if (q.union_next->union_next) {
        return Status::BindError(
            "recursive CTE '" + cte.name +
            "' must have exactly two UNION ALL branches (init and step)");
      }
      // Bind the initial branch without the recursive binding in scope.
      // Build a temporary SelectStmt view for the init branch only.
      SODA_ASSIGN_OR_RETURN(PlanPtr init, BindSelectCore(q));

      // Rename columns per the CTE alias list.
      Schema binding_schema = init->schema;
      if (!cte.column_aliases.empty()) {
        if (cte.column_aliases.size() != binding_schema.num_fields()) {
          return Status::BindError("CTE column alias count mismatch for '" +
                                   cte.name + "'");
        }
        std::vector<Field> fields;
        for (size_t i = 0; i < binding_schema.num_fields(); ++i) {
          fields.emplace_back(cte.column_aliases[i],
                              binding_schema.field(i).type);
        }
        binding_schema = Schema(std::move(fields));
      }
      binding_schema = binding_schema.WithQualifier(cte.name);

      // The step sees the working table under the CTE's name.
      auto saved = runtime_bindings_;
      runtime_bindings_[cte.name] = binding_schema;
      auto step = BindSelectCore(*q.union_next);
      runtime_bindings_ = std::move(saved);
      SODA_RETURN_NOT_OK(step.status());

      if (!(*step)->schema.TypesEqual(binding_schema)) {
        return Status::BindError(
            "recursive CTE '" + cte.name +
            "' branches have incompatible types: " + init->schema.ToString() +
            " vs " + (*step)->schema.ToString());
      }

      auto node = std::make_unique<PlanNode>(PlanKind::kRecursiveCte);
      node->binding_name = cte.name;
      node->schema = binding_schema;
      node->children.push_back(std::move(init));
      node->children.push_back(std::move(step.ValueOrDie()));
      plan = std::move(node);
    } else {
      SODA_ASSIGN_OR_RETURN(plan, BindSelect(q));
      if (!cte.column_aliases.empty()) {
        if (cte.column_aliases.size() != plan->schema.num_fields()) {
          return Status::BindError("CTE column alias count mismatch for '" +
                                   cte.name + "'");
        }
        std::vector<Field> fields;
        for (size_t i = 0; i < plan->schema.num_fields(); ++i) {
          fields.emplace_back(cte.column_aliases[i],
                              plan->schema.field(i).type);
        }
        plan->schema = Schema(std::move(fields));
      }
      plan->schema = plan->schema.WithQualifier(cte.name);
    }
    ctes_[cte.name] = std::move(plan);
  }
  return Status::OK();
}

Result<PlanPtr> Binder::BindSelect(const SelectStmt& stmt) {
  // CTEs are visible to the main query and to later CTEs; save/restore the
  // scope so sibling queries are unaffected.
  auto saved_ctes = ctes_;
  Status st = BindCtes(stmt);
  if (!st.ok()) {
    ctes_ = std::move(saved_ctes);
    return st;
  }

  auto bind_branches = [&]() -> Result<PlanPtr> {
    SODA_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectCore(stmt));
    if (stmt.union_next) {
      auto node = std::make_unique<PlanNode>(PlanKind::kUnionAll);
      node->schema = plan->schema;
      node->children.push_back(std::move(plan));
      for (const SelectStmt* branch = stmt.union_next.get(); branch;
           branch = branch->union_next.get()) {
        SODA_ASSIGN_OR_RETURN(PlanPtr b, BindSelectCore(*branch));
        if (!b->schema.TypesEqual(node->schema)) {
          return Status::BindError(
              "UNION ALL branches have incompatible types: " +
              node->schema.ToString() + " vs " + b->schema.ToString());
        }
        node->children.push_back(std::move(b));
      }
      plan = std::move(node);
    }

    // ORDER BY over the select output (ordinals, aliases, or expressions).
    // Keys referencing *input* columns not present in the output (e.g.
    // `SELECT b FROM t ORDER BY a`) are supported by threading hidden sort
    // columns through the top projection and dropping them afterwards.
    if (!stmt.order_by.empty()) {
      const size_t visible = plan->schema.num_fields();
      std::vector<ExprPtr> hidden;  // bound over the projection's input
      auto node = std::make_unique<PlanNode>(PlanKind::kSort);
      for (const auto& item : stmt.order_by) {
        SortKey key;
        key.descending = item.descending;
        if (item.expr->kind == ParseExprKind::kLiteral &&
            !item.expr->literal.is_null() &&
            item.expr->literal.type() == DataType::kBigInt) {
          int64_t ordinal = item.expr->literal.bigint_value();
          if (ordinal < 1 || ordinal > static_cast<int64_t>(visible)) {
            return Status::BindError("ORDER BY ordinal out of range: " +
                                     std::to_string(ordinal));
          }
          size_t idx = static_cast<size_t>(ordinal - 1);
          key.expr = Expression::ColumnRef(idx, plan->schema.field(idx).type,
                                           plan->schema.field(idx).name);
          node->sort_keys.push_back(std::move(key));
          continue;
        }
        auto bound = BindExpr(*item.expr, plan->schema);
        if (!bound.ok() && item.expr->kind == ParseExprKind::kColumnRef &&
            !item.expr->qualifier.empty()) {
          // Output columns are unqualified; allow `ORDER BY t.c` to match
          // the output column `c`.
          ParseExpr unqualified(ParseExprKind::kColumnRef);
          unqualified.name = item.expr->name;
          bound = BindExpr(unqualified, plan->schema);
        }
        if (!bound.ok() && plan->kind == PlanKind::kProject) {
          // Hidden sort column bound against the projection input.
          auto input_bound =
              BindExpr(*item.expr, plan->children[0]->schema);
          if (input_bound.ok()) {
            size_t idx = visible + hidden.size();
            key.expr = Expression::ColumnRef(idx, (*input_bound)->type,
                                             "_sort" + std::to_string(idx));
            hidden.push_back(std::move(input_bound.ValueOrDie()));
            node->sort_keys.push_back(std::move(key));
            continue;
          }
        }
        SODA_RETURN_NOT_OK(bound.status());
        key.expr = std::move(bound.ValueOrDie());
        node->sort_keys.push_back(std::move(key));
      }

      if (!hidden.empty()) {
        // Extend the projection, sort, then drop the hidden columns.
        for (size_t h = 0; h < hidden.size(); ++h) {
          plan->schema.AddField(Field("_sort" + std::to_string(visible + h),
                                      hidden[h]->type));
          plan->exprs.push_back(std::move(hidden[h]));
        }
        node->schema = plan->schema;
        node->children.push_back(std::move(plan));
        plan = std::move(node);
        std::vector<ExprPtr> keep;
        Schema keep_schema;
        for (size_t i = 0; i < visible; ++i) {
          const Field& f = plan->schema.field(i);
          keep.push_back(Expression::ColumnRef(i, f.type, f.name));
          keep_schema.AddField(f);
        }
        plan = MakeProject(std::move(plan), std::move(keep),
                           std::move(keep_schema));
      } else {
        node->schema = plan->schema;
        node->children.push_back(std::move(plan));
        plan = std::move(node);
      }
    }

    if (stmt.limit >= 0 || stmt.offset > 0) {
      plan = MakeLimit(std::move(plan), stmt.limit, stmt.offset);
    }
    return plan;
  };

  auto result = bind_branches();
  ctes_ = std::move(saved_ctes);
  return result;
}

namespace {

/// SELECT DISTINCT: dedupe by grouping on every output column (an
/// aggregation with no aggregate functions).
PlanPtr WrapDistinct(PlanPtr input) {
  auto agg = std::make_unique<PlanNode>(PlanKind::kAggregate);
  agg->num_group_cols = input->schema.num_fields();
  agg->schema = input->schema;
  agg->children.push_back(std::move(input));
  return agg;
}

}  // namespace

Result<PlanPtr> Binder::BindSelectCore(const SelectStmt& stmt) {
  // FROM.
  PlanPtr plan;
  bool has_from = stmt.from != nullptr;
  if (has_from) {
    SODA_ASSIGN_OR_RETURN(plan, BindTableRef(*stmt.from));
  } else {
    // SELECT without FROM: a single-row dummy relation.
    auto values = std::make_unique<PlanNode>(PlanKind::kValues);
    values->schema = Schema({Field("_dummy", DataType::kBigInt)});
    values->rows.push_back({Value::BigInt(0)});
    plan = std::move(values);
  }
  const Schema input_schema = plan->schema;

  // WHERE.
  if (stmt.where) {
    SODA_ASSIGN_OR_RETURN(ExprPtr pred, BindExpr(*stmt.where, input_schema));
    if (pred->type != DataType::kBool) {
      return Status::BindError("WHERE clause must be boolean");
    }
    plan = MakeFilter(std::move(plan), std::move(pred));
  }

  // Aggregation?
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr->kind != ParseExprKind::kStar &&
        ContainsAggregate(*item.expr)) {
      has_agg = true;
    }
  }
  if (stmt.having) has_agg = true;

  if (!has_agg) {
    // Plain projection.
    std::vector<ExprPtr> exprs;
    Schema out_schema;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.expr->kind == ParseExprKind::kStar) {
        if (!has_from) {
          return Status::BindError("SELECT * requires a FROM clause");
        }
        for (size_t f = 0; f < input_schema.num_fields(); ++f) {
          const Field& fld = input_schema.field(f);
          if (!item.expr->qualifier.empty() &&
              fld.qualifier != ToLower(item.expr->qualifier)) {
            continue;
          }
          exprs.push_back(Expression::ColumnRef(f, fld.type, fld.name));
          out_schema.AddField(Field(fld.name, fld.type));
        }
        continue;
      }
      SODA_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*item.expr, input_schema));
      std::string name =
          item.alias.empty() ? DeriveName(*item.expr, i) : item.alias;
      out_schema.AddField(Field(name, e->type));
      exprs.push_back(FoldConstants(std::move(e)));
    }
    if (exprs.empty()) return Status::BindError("empty select list");
    plan = MakeProject(std::move(plan), std::move(exprs),
                       std::move(out_schema));
    return stmt.distinct ? WrapDistinct(std::move(plan)) : std::move(plan);
  }

  // --- aggregation path ---------------------------------------------------
  AggContext agg;
  agg.input_schema = &input_schema;
  agg.binder = this;

  // Bind GROUP BY expressions.
  std::vector<ExprPtr> pre_exprs;
  Schema pre_schema;
  for (size_t g = 0; g < stmt.group_by.size(); ++g) {
    SODA_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*stmt.group_by[g], input_schema));
    agg.group_reprs.push_back(e->ToString());
    agg.group_types.push_back(e->type);
    std::string name = stmt.group_by[g]->kind == ParseExprKind::kColumnRef
                           ? stmt.group_by[g]->name
                           : "_g" + std::to_string(g + 1);
    agg.group_names.push_back(name);
    pre_schema.AddField(Field(name, e->type));
    pre_exprs.push_back(std::move(e));
  }

  // Collect aggregate calls from select items and HAVING.
  std::vector<const ParseExpr*> calls;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ParseExprKind::kStar) {
      return Status::BindError("SELECT * cannot be combined with GROUP BY");
    }
    CollectAggregates(*item.expr, &calls);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &calls);

  const size_t num_groups = agg.group_reprs.size();
  for (const ParseExpr* call : calls) {
    AggregateSpec spec;
    spec.function = call->name;
    if (call->children.size() != 1) {
      return Status::BindError("aggregate " + call->name +
                               " expects exactly one argument");
    }
    const ParseExpr& arg = *call->children[0];
    if (ContainsAggregate(arg)) {
      return Status::BindError("nested aggregate functions are not allowed");
    }
    if (arg.kind == ParseExprKind::kStar) {
      if (call->name != "count") {
        return Status::BindError("only count(*) accepts '*'");
      }
      spec.arg_index = -1;
      spec.result_type = DataType::kBigInt;
    } else {
      SODA_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(arg, input_schema));
      SODA_ASSIGN_OR_RETURN(spec.result_type,
                            InferAggregateType(call->name, bound->type));
      spec.arg_index =
          static_cast<int>(num_groups + (pre_exprs.size() - num_groups));
      pre_schema.AddField(
          Field("_a" + std::to_string(pre_exprs.size()), bound->type));
      pre_exprs.push_back(std::move(bound));
    }
    agg.agg_index[call] = agg.specs.size();
    agg.specs.push_back(std::move(spec));
  }

  // Ensure at least one column in the pre-projection (count(*) only case).
  if (pre_exprs.empty()) {
    pre_exprs.push_back(Expression::Literal(Value::BigInt(0)));
    pre_schema.AddField(Field("_dummy", DataType::kBigInt));
  }
  plan = MakeProject(std::move(plan), std::move(pre_exprs), pre_schema);

  auto agg_node = std::make_unique<PlanNode>(PlanKind::kAggregate);
  agg_node->num_group_cols = num_groups;
  agg_node->aggregates = agg.specs;
  Schema agg_schema;
  for (size_t g = 0; g < num_groups; ++g) {
    agg_schema.AddField(Field(agg.group_names[g], agg.group_types[g]));
  }
  for (size_t s = 0; s < agg.specs.size(); ++s) {
    agg_schema.AddField(
        Field("_agg" + std::to_string(s + 1), agg.specs[s].result_type));
  }
  agg_node->schema = agg_schema;
  agg_node->children.push_back(std::move(plan));
  plan = std::move(agg_node);

  // HAVING: bound in the aggregate scope, applied above the aggregation.
  if (stmt.having) {
    SODA_ASSIGN_OR_RETURN(ExprPtr pred, BindAggScopeExpr(*stmt.having, agg));
    if (pred->type != DataType::kBool) {
      return Status::BindError("HAVING clause must be boolean");
    }
    plan = MakeFilter(std::move(plan), std::move(pred));
  }

  // Final projection of the select items in the aggregate scope.
  std::vector<ExprPtr> exprs;
  Schema out_schema;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    SODA_ASSIGN_OR_RETURN(ExprPtr e, BindAggScopeExpr(*item.expr, agg));
    std::string name =
        item.alias.empty() ? DeriveName(*item.expr, i) : item.alias;
    out_schema.AddField(Field(name, e->type));
    exprs.push_back(FoldConstants(std::move(e)));
  }
  plan = MakeProject(std::move(plan), std::move(exprs), std::move(out_schema));
  return stmt.distinct ? WrapDistinct(std::move(plan)) : std::move(plan);
}

Result<PlanPtr> Binder::BindTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kNamed: {
      std::string name = ToLower(ref.name);
      std::string alias = ref.alias.empty() ? name : ref.alias;
      // CTE?
      if (auto it = ctes_.find(name); it != ctes_.end()) {
        PlanPtr plan = it->second->Clone();
        plan->schema = plan->schema.WithQualifier(alias);
        return plan;
      }
      // Runtime binding (recursive CTE working table / `iterate`)?
      if (auto it = runtime_bindings_.find(name);
          it != runtime_bindings_.end()) {
        auto node = std::make_unique<PlanNode>(PlanKind::kBindingRef);
        node->binding_name = name;
        node->schema = it->second.WithQualifier(alias);
        return node;
      }
      // Base table.
      auto table = catalog_->GetTable(name);
      if (!table.ok()) {
        return Status::BindError("unknown relation: " + name);
      }
      return MakeScan(name, (*table)->schema().WithQualifier(alias));
    }
    case TableRefKind::kSubquery: {
      SODA_ASSIGN_OR_RETURN(PlanPtr plan, BindSelect(*ref.subquery));
      if (!ref.alias.empty()) {
        plan->schema = plan->schema.WithQualifier(ref.alias);
      }
      return plan;
    }
    case TableRefKind::kIterate:
      return BindIterate(ref);
    case TableRefKind::kTableFunction:
      return BindTableFunction(ref);
    case TableRefKind::kJoin: {
      SODA_ASSIGN_OR_RETURN(PlanPtr left, BindTableRef(*ref.left));
      SODA_ASSIGN_OR_RETURN(PlanPtr right, BindTableRef(*ref.right));
      auto node = std::make_unique<PlanNode>(PlanKind::kJoin);
      node->schema = left->schema.Concat(right->schema);
      if (ref.join_condition) {
        SODA_ASSIGN_OR_RETURN(ExprPtr pred,
                              BindExpr(*ref.join_condition, node->schema));
        if (pred->type != DataType::kBool) {
          return Status::BindError("JOIN condition must be boolean");
        }
        node->predicate = std::move(pred);
      }
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<PlanPtr> Binder::BindIterate(const TableRef& ref) {
  SODA_ASSIGN_OR_RETURN(PlanPtr init, BindSelect(*ref.init));
  Schema state_schema = init->schema.WithQualifier("iterate");

  auto saved = runtime_bindings_;
  runtime_bindings_["iterate"] = state_schema;
  auto step = BindSelect(*ref.step);
  auto stop = BindSelect(*ref.stop);
  runtime_bindings_ = std::move(saved);
  SODA_RETURN_NOT_OK(step.status());
  SODA_RETURN_NOT_OK(stop.status());

  if (!(*step)->schema.TypesEqual(state_schema)) {
    return Status::BindError(
        "ITERATE step schema " + (*step)->schema.ToString() +
        " is incompatible with the initialization schema " +
        init->schema.ToString());
  }

  auto node = std::make_unique<PlanNode>(PlanKind::kIterate);
  node->binding_name = "iterate";
  node->schema = ref.alias.empty()
                     ? state_schema
                     : init->schema.WithQualifier(ref.alias);
  node->children.push_back(std::move(init));
  node->children.push_back(std::move(step.ValueOrDie()));
  node->children.push_back(std::move(stop.ValueOrDie()));
  return node;
}

Result<PlanPtr> Binder::BindTableFunction(const TableRef& ref) {
  std::string name = ToLower(ref.name);
  SODA_ASSIGN_OR_RETURN(TableFunctionSignature sig,
                        GetTableFunctionSignature(name));

  // Partition arguments by kind, preserving per-kind order.
  std::vector<PlanPtr> relations;
  std::vector<const ParseExpr*> lambda_args;
  std::vector<Value> scalar_args;
  for (const auto& arg : ref.args) {
    if (arg.subquery) {
      SODA_ASSIGN_OR_RETURN(PlanPtr plan, BindSelect(*arg.subquery));
      relations.push_back(std::move(plan));
    } else if (arg.expr->kind == ParseExprKind::kLambda) {
      lambda_args.push_back(arg.expr.get());
    } else {
      // Scalar parameters must be constants (paper Listing 2/3: damping
      // factor, epsilon, max iterations).
      SODA_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*arg.expr, Schema()));
      SODA_ASSIGN_OR_RETURN(Value v, EvaluateConstantExpression(*bound));
      scalar_args.push_back(std::move(v));
    }
  }

  if (lambda_args.size() > sig.max_lambdas) {
    return Status::BindError(name + " accepts at most " +
                             std::to_string(sig.max_lambdas) +
                             " lambda argument(s)");
  }
  if (relations.size() != sig.num_relations) {
    return Status::BindError(name + " expects " +
                             std::to_string(sig.num_relations) +
                             " relation argument(s), got " +
                             std::to_string(relations.size()));
  }

  std::vector<Schema> relation_schemas;
  relation_schemas.reserve(relations.size());
  for (const auto& r : relations) relation_schemas.push_back(r->schema);

  auto node = std::make_unique<PlanNode>(PlanKind::kTableFunction);
  node->function_name = name;
  node->scalar_args = scalar_args;

  // Bind lambdas: parameters are tuple variables over the relation inputs
  // designated by the signature (paper §7: "the operator expects a lambda
  // function that takes two tuple variables as input arguments").
  for (size_t li = 0; li < lambda_args.size(); ++li) {
    const ParseExpr& lam = *lambda_args[li];
    const std::vector<size_t>& param_rels = sig.lambda_param_relations[li];
    if (lam.lambda_params.size() != param_rels.size()) {
      return Status::BindError(
          name + ": lambda must take " + std::to_string(param_rels.size()) +
          " tuple parameter(s), got " +
          std::to_string(lam.lambda_params.size()));
    }
    Schema lambda_schema;
    size_t a_width = 0;
    for (size_t p = 0; p < param_rels.size(); ++p) {
      Schema part =
          relation_schemas[param_rels[p]].WithQualifier(lam.lambda_params[p]);
      if (p == 0) a_width = part.num_fields();
      lambda_schema = lambda_schema.Concat(part);
    }
    SODA_ASSIGN_OR_RETURN(ExprPtr body,
                          BindExpr(*lam.children[0], lambda_schema));
    if (!IsNumeric(body->type)) {
      return Status::BindError(
          name + ": lambda must return a numeric value, got " +
          DataTypeToString(body->type));
    }
    BoundLambda bound;
    bound.body = FoldConstants(std::move(body));
    bound.a_width = a_width;
    bound.source_text = lam.source_text;
    node->lambdas.push_back(std::move(bound));
  }

  SODA_ASSIGN_OR_RETURN(
      Schema out_schema,
      InferTableFunctionSchema(name, relation_schemas, scalar_args));
  node->schema =
      out_schema.WithQualifier(ref.alias.empty() ? name : ref.alias);
  for (auto& r : relations) node->children.push_back(std::move(r));
  return node;
}

Result<ExprPtr> Binder::BindScalar(const ParseExpr& expr,
                                   const Schema& schema) {
  return BindExpr(expr, schema);
}

Result<ExprPtr> Binder::BindExpr(const ParseExpr& expr, const Schema& schema) {
  switch (expr.kind) {
    case ParseExprKind::kLiteral:
      return Expression::Literal(expr.literal);
    case ParseExprKind::kColumnRef: {
      SODA_ASSIGN_OR_RETURN(size_t idx,
                            schema.FindField(expr.qualifier, expr.name));
      return Expression::ColumnRef(idx, schema.field(idx).type,
                                   expr.name);
    }
    case ParseExprKind::kStar:
      return Status::BindError("'*' is only allowed in the select list");
    case ParseExprKind::kParameter: {
      if (param_types_ == nullptr) {
        return Status::BindError(
            "parameter placeholders ($n) are only allowed inside PREPARE");
      }
      const size_t slot = expr.param_index;
      if (slot > param_types_->size()) {
        param_types_->resize(slot, DataType::kInvalid);
      }
      const DataType t = (*param_types_)[slot - 1];
      if (t == DataType::kInvalid) {
        return Status::BindError(
            "cannot infer the type of parameter $" + std::to_string(slot) +
            "; declare it (PREPARE name (TYPE, ...) AS ...) or cast it "
            "(CAST($" + std::to_string(slot) + " AS TYPE))");
      }
      return Expression::Parameter(slot, t);
    }
    case ParseExprKind::kBinary: {
      // An undeclared parameter takes the type of its peer operand:
      // `a = $1` types $1 as a's type before the slot is bound.
      InferParamFromPeer(*expr.children[0], *expr.children[1], schema);
      InferParamFromPeer(*expr.children[1], *expr.children[0], schema);
      SODA_ASSIGN_OR_RETURN(ExprPtr l, BindExpr(*expr.children[0], schema));
      SODA_ASSIGN_OR_RETURN(ExprPtr r, BindExpr(*expr.children[1], schema));
      SODA_ASSIGN_OR_RETURN(DataType t,
                            InferBinaryType(expr.binary_op, l->type, r->type));
      return Expression::Binary(expr.binary_op, std::move(l), std::move(r), t);
    }
    case ParseExprKind::kUnary: {
      SODA_ASSIGN_OR_RETURN(ExprPtr c, BindExpr(*expr.children[0], schema));
      SODA_ASSIGN_OR_RETURN(DataType t, InferUnaryType(expr.unary_op, c->type));
      return Expression::Unary(expr.unary_op, std::move(c), t);
    }
    case ParseExprKind::kFunctionCall: {
      if (IsAggregateFunction(expr.name)) {
        return Status::BindError(
            "aggregate function '" + expr.name +
            "' is not allowed here (only in SELECT list or HAVING)");
      }
      std::vector<ExprPtr> args;
      std::vector<DataType> arg_types;
      for (const auto& c : expr.children) {
        SODA_ASSIGN_OR_RETURN(ExprPtr a, BindExpr(*c, schema));
        arg_types.push_back(a->type);
        args.push_back(std::move(a));
      }
      SODA_ASSIGN_OR_RETURN(DataType t,
                            InferFunctionType(expr.name, arg_types));
      return Expression::Function(expr.name, std::move(args), t);
    }
    case ParseExprKind::kCase: {
      size_t num_when = expr.children.size() / 2;
      std::vector<ExprPtr> children;
      DataType result = DataType::kInvalid;
      for (size_t w = 0; w < num_when; ++w) {
        SODA_ASSIGN_OR_RETURN(ExprPtr cond,
                              BindExpr(*expr.children[2 * w], schema));
        if (cond->type != DataType::kBool) {
          return Status::BindError("CASE WHEN condition must be boolean");
        }
        SODA_ASSIGN_OR_RETURN(ExprPtr then,
                              BindExpr(*expr.children[2 * w + 1], schema));
        result = result == DataType::kInvalid
                     ? then->type
                     : CommonType(result, then->type);
        children.push_back(std::move(cond));
        children.push_back(std::move(then));
      }
      ExprPtr else_expr;
      if (expr.case_has_else) {
        SODA_ASSIGN_OR_RETURN(else_expr,
                              BindExpr(*expr.children.back(), schema));
        result = CommonType(result, else_expr->type);
      } else {
        else_expr = Expression::Literal(Value::Null());
        else_expr->type = result;
      }
      if (result == DataType::kInvalid) {
        return Status::BindError("CASE branches have incompatible types");
      }
      children.push_back(std::move(else_expr));
      return Expression::Case(std::move(children), result);
    }
    case ParseExprKind::kCast: {
      // CAST($n AS T) is the explicit escape hatch for typing a slot no
      // peer operand can type.
      SetParamType(*expr.children[0], expr.cast_type);
      SODA_ASSIGN_OR_RETURN(ExprPtr c, BindExpr(*expr.children[0], schema));
      return Expression::Cast(std::move(c), expr.cast_type);
    }
    case ParseExprKind::kLambda:
      return Status::BindError(
          "lambda expressions are only allowed as analytics operator "
          "arguments (paper §7)");
  }
  return Status::Internal("unknown parse expression kind");
}

void Binder::SetParamType(const ParseExpr& expr, DataType type) {
  if (param_types_ == nullptr || expr.kind != ParseExprKind::kParameter ||
      type == DataType::kInvalid) {
    return;
  }
  const size_t slot = expr.param_index;
  if (slot > param_types_->size()) {
    param_types_->resize(slot, DataType::kInvalid);
  }
  if ((*param_types_)[slot - 1] == DataType::kInvalid) {
    (*param_types_)[slot - 1] = type;
  }
}

void Binder::InferParamFromPeer(const ParseExpr& param, const ParseExpr& peer,
                                const Schema& schema) {
  if (param_types_ == nullptr || param.kind != ParseExprKind::kParameter) {
    return;
  }
  const size_t slot = param.param_index;
  if (slot <= param_types_->size() &&
      (*param_types_)[slot - 1] != DataType::kInvalid) {
    return;  // already declared or inferred
  }
  // Best-effort: a peer that fails to bind (or is itself untyped) leaves
  // the slot unknown; the kParameter case reports the actionable error.
  auto bound = BindExpr(peer, schema);
  if (bound.ok()) SetParamType(param, (*bound)->type);
}

Result<ExprPtr> Binder::BindAggScopeExpr(const ParseExpr& expr,
                                         AggContext& agg) {
  // Aggregate call -> reference into the aggregate node's output.
  if (expr.kind == ParseExprKind::kFunctionCall &&
      IsAggregateFunction(expr.name)) {
    auto it = agg.agg_index.find(&expr);
    if (it == agg.agg_index.end()) {
      return Status::Internal("uncollected aggregate call");
    }
    const AggregateSpec& spec = agg.specs[it->second];
    return Expression::ColumnRef(agg.group_reprs.size() + it->second,
                                 spec.result_type, expr.name);
  }

  // Structural match against a GROUP BY expression.
  {
    auto bound = BindExpr(expr, *agg.input_schema);
    if (bound.ok()) {
      std::string repr = (*bound)->ToString();
      for (size_t g = 0; g < agg.group_reprs.size(); ++g) {
        if (agg.group_reprs[g] == repr) {
          return Expression::ColumnRef(g, agg.group_types[g],
                                       agg.group_names[g]);
        }
      }
      // Constants are fine outside the group list.
      if ((*bound)->IsConstant()) return std::move(bound.ValueOrDie());
    }
  }

  // Recurse into composite expressions, rebuilding bound nodes.
  switch (expr.kind) {
    case ParseExprKind::kBinary: {
      SODA_ASSIGN_OR_RETURN(ExprPtr l, BindAggScopeExpr(*expr.children[0], agg));
      SODA_ASSIGN_OR_RETURN(ExprPtr r, BindAggScopeExpr(*expr.children[1], agg));
      SODA_ASSIGN_OR_RETURN(DataType t,
                            InferBinaryType(expr.binary_op, l->type, r->type));
      return Expression::Binary(expr.binary_op, std::move(l), std::move(r), t);
    }
    case ParseExprKind::kUnary: {
      SODA_ASSIGN_OR_RETURN(ExprPtr c, BindAggScopeExpr(*expr.children[0], agg));
      SODA_ASSIGN_OR_RETURN(DataType t, InferUnaryType(expr.unary_op, c->type));
      return Expression::Unary(expr.unary_op, std::move(c), t);
    }
    case ParseExprKind::kFunctionCall: {
      std::vector<ExprPtr> args;
      std::vector<DataType> arg_types;
      for (const auto& c : expr.children) {
        SODA_ASSIGN_OR_RETURN(ExprPtr a, BindAggScopeExpr(*c, agg));
        arg_types.push_back(a->type);
        args.push_back(std::move(a));
      }
      SODA_ASSIGN_OR_RETURN(DataType t,
                            InferFunctionType(expr.name, arg_types));
      return Expression::Function(expr.name, std::move(args), t);
    }
    case ParseExprKind::kCase: {
      size_t num_when = expr.children.size() / 2;
      std::vector<ExprPtr> children;
      DataType result = DataType::kInvalid;
      for (size_t w = 0; w < num_when; ++w) {
        SODA_ASSIGN_OR_RETURN(ExprPtr cond,
                              BindAggScopeExpr(*expr.children[2 * w], agg));
        SODA_ASSIGN_OR_RETURN(ExprPtr then,
                              BindAggScopeExpr(*expr.children[2 * w + 1], agg));
        result = result == DataType::kInvalid
                     ? then->type
                     : CommonType(result, then->type);
        children.push_back(std::move(cond));
        children.push_back(std::move(then));
      }
      ExprPtr else_expr;
      if (expr.case_has_else) {
        SODA_ASSIGN_OR_RETURN(else_expr,
                              BindAggScopeExpr(*expr.children.back(), agg));
        result = CommonType(result, else_expr->type);
      } else {
        else_expr = Expression::Literal(Value::Null());
        else_expr->type = result;
      }
      children.push_back(std::move(else_expr));
      return Expression::Case(std::move(children), result);
    }
    case ParseExprKind::kCast: {
      SODA_ASSIGN_OR_RETURN(ExprPtr c, BindAggScopeExpr(*expr.children[0], agg));
      return Expression::Cast(std::move(c), expr.cast_type);
    }
    case ParseExprKind::kParameter:
      // Parameters are scalars; bind them like any non-grouped constant
      // (HAVING count(*) > $1).
      return BindExpr(expr, *agg.input_schema);
    case ParseExprKind::kColumnRef:
      return Status::BindError(
          "column '" + expr.name +
          "' must appear in the GROUP BY clause or inside an aggregate");
    default:
      return Status::BindError(
          "expression not allowed in aggregate context");
  }
}

}  // namespace soda
