/// \file binder.h
/// Semantic analysis: turns parse trees into bound plan IR.
///
/// Responsibilities: name resolution against the catalog / CTE scope /
/// runtime bindings (`iterate`, recursive CTE working tables), type
/// inference and implicit numeric coercion, aggregate extraction
/// (GROUP BY planning), star expansion, lambda binding against the
/// operator input schemas (paper §7: "the lambda expressions' input and
/// output data types are automatically inferred by the database system"),
/// and table-function schema inference.

#ifndef SODA_SQL_BINDER_H_
#define SODA_SQL_BINDER_H_

#include <map>
#include <string>

#include "sql/ast.h"
#include "sql/logical_plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace soda {

class Binder {
 public:
  explicit Binder(Catalog* catalog) : catalog_(catalog) {}

  /// Binds a full SELECT statement (with CTEs, unions, order/limit).
  Result<PlanPtr> BindSelectStatement(const SelectStmt& stmt);

  /// Binds a scalar expression against a schema (used by INSERT..VALUES
  /// and tests). Aggregates are rejected.
  Result<ExprPtr> BindScalar(const ParseExpr& expr, const Schema& schema);

  /// Enables $n parameter placeholders (PREPARE bodies). `types` holds the
  /// declared parameter types by 1-based slot (kInvalid = undeclared); the
  /// binder grows it on demand and writes back types it infers from
  /// context ($n = col takes col's type, CAST($n AS T) takes T). Without
  /// this call, parameters are rejected with a bind error. The pointer
  /// must outlive the bind.
  void set_param_types(std::vector<DataType>* types) { param_types_ = types; }

 private:
  struct AggContext;

  Result<PlanPtr> BindSelect(const SelectStmt& stmt);
  Result<PlanPtr> BindSelectCore(const SelectStmt& stmt);
  Result<PlanPtr> BindTableRef(const TableRef& ref);
  Result<PlanPtr> BindTableFunction(const TableRef& ref);
  Result<PlanPtr> BindIterate(const TableRef& ref);
  Status BindCtes(const SelectStmt& stmt);

  Result<ExprPtr> BindExpr(const ParseExpr& expr, const Schema& schema);
  Result<ExprPtr> BindAggScopeExpr(const ParseExpr& expr, AggContext& agg);

  /// Records `type` for an undeclared parameter slot (no-op otherwise).
  void SetParamType(const ParseExpr& expr, DataType type);
  /// Types an undeclared parameter operand from its peer (`a = $1`).
  void InferParamFromPeer(const ParseExpr& param, const ParseExpr& peer,
                          const Schema& schema);

  Catalog* catalog_;
  /// CTE definitions in scope: plans cloned per reference. Shared pointers
  /// so the scope map is copyable for save/restore around nested queries.
  std::map<std::string, std::shared_ptr<PlanNode>> ctes_;
  /// Relations bound at runtime (recursive CTE working table, `iterate`).
  std::map<std::string, Schema> runtime_bindings_;
  /// Parameter slot types ($n placeholders); null outside PREPARE.
  std::vector<DataType>* param_types_ = nullptr;
};

}  // namespace soda

#endif  // SODA_SQL_BINDER_H_
