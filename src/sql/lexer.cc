#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace soda {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenType t, size_t at, std::string text = "") {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.offset = at;
    tokens.push_back(std::move(tok));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;

    // λ (U+03BB, UTF-8 0xCE 0xBB)
    if (static_cast<unsigned char>(c) == 0xCE && i + 1 < n &&
        static_cast<unsigned char>(sql[i + 1]) == 0xBB) {
      push(TokenType::kLambda, start, "λ");
      i += 2;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = ToLower(std::string_view(sql).substr(i, j - i));
      if (word == "lambda") {
        push(TokenType::kLambda, start, word);
      } else {
        push(TokenType::kIdent, start, word);
      }
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j])))
            ++j;
        }
      }
      std::string num = sql.substr(i, j - i);
      Token tok;
      tok.offset = start;
      tok.text = num;
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    // $n parameter placeholder (PREPARE bodies). The slot is 1-based and
    // must be all digits; a bare '$' is rejected here rather than in the
    // parser so the error names the offset.
    if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j == i + 1) {
        return Status::ParseError(
            "expected digits after '$' at offset " + std::to_string(start));
      }
      std::string num = sql.substr(i + 1, j - i - 1);
      Token tok;
      tok.type = TokenType::kParam;
      tok.offset = start;
      tok.text = "$" + num;
      tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      if (tok.int_value < 1) {
        return Status::ParseError("parameter slots are 1-based: $" + num);
      }
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }

    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      for (;;) {
        if (j >= n) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          break;
        }
        text += sql[j++];
      }
      push(TokenType::kString, start, std::move(text));
      i = j + 1;
      continue;
    }

    if (c == '"') {
      std::string text;
      size_t j = i + 1;
      while (j < n && sql[j] != '"') text += sql[j++];
      if (j >= n) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kQuotedIdent, start, std::move(text));
      i = j + 1;
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && sql[i + 1] == b;
    };
    if (two('<', '>') || two('!', '=')) {
      push(TokenType::kNe, start);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenType::kLe, start);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenType::kGe, start);
      i += 2;
      continue;
    }
    if (two('|', '|')) {
      push(TokenType::kConcat, start);
      i += 2;
      continue;
    }

    TokenType t;
    switch (c) {
      case '(': t = TokenType::kLParen; break;
      case ')': t = TokenType::kRParen; break;
      case ',': t = TokenType::kComma; break;
      case '.': t = TokenType::kDot; break;
      case ';': t = TokenType::kSemicolon; break;
      case '*': t = TokenType::kStar; break;
      case '+': t = TokenType::kPlus; break;
      case '-': t = TokenType::kMinus; break;
      case '/': t = TokenType::kSlash; break;
      case '%': t = TokenType::kPercent; break;
      case '^': t = TokenType::kCaret; break;
      case '=': t = TokenType::kEq; break;
      case '<': t = TokenType::kLt; break;
      case '>': t = TokenType::kGt; break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    push(t, start);
    ++i;
  }
  push(TokenType::kEof, n);
  return tokens;
}

std::string TokenToString(const Token& token) {
  switch (token.type) {
    case TokenType::kEof:
      return "<end of input>";
    case TokenType::kIdent:
    case TokenType::kQuotedIdent:
      return "identifier '" + token.text + "'";
    case TokenType::kInteger:
    case TokenType::kFloat:
      return "number '" + token.text + "'";
    case TokenType::kString:
      return "string '" + token.text + "'";
    case TokenType::kLambda:
      return "λ";
    case TokenType::kParam:
      return "parameter '" + token.text + "'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kStar: return "'*'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kCaret: return "'^'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kConcat: return "'||'";
  }
  return "?";
}

}  // namespace soda
