/// \file lexer.h
/// SQL tokenizer. Identifiers are case-insensitive (folded to lower case);
/// double-quoted identifiers preserve case and may serve as aliases
/// (Listing 1: `SELECT 7 "x"`); the lambda introducer is either the `λ`
/// code point or the keyword `lambda` (paper §7, Listing 3).

#ifndef SODA_SQL_LEXER_H_
#define SODA_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace soda {

enum class TokenType {
  kEof,
  kIdent,      ///< identifier or keyword (lower-cased in `text`)
  kQuotedIdent,///< "quoted" identifier (case preserved)
  kInteger,
  kFloat,
  kString,     ///< 'string literal'
  kLambda,     ///< λ or the keyword lambda
  kParam,      ///< $n parameter placeholder (1-based slot in `int_value`)
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kCaret,
  kEq,
  kNe,       ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,   ///< ||
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      ///< identifier / literal text
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;     ///< byte offset in the input, for error messages
};

/// Tokenizes `sql`. Comments (`-- ...`) and whitespace are skipped. The
/// result always ends with a kEof token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// Human-readable token description for parse errors.
std::string TokenToString(const Token& token);

}  // namespace soda

#endif  // SODA_SQL_LEXER_H_
