#include "sql/logical_plan.h"

namespace soda {

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kUnionAll:
      return "UnionAll";
    case PlanKind::kRecursiveCte:
      return "RecursiveCte";
    case PlanKind::kIterate:
      return "Iterate";
    case PlanKind::kBindingRef:
      return "BindingRef";
    case PlanKind::kTableFunction:
      return "TableFunction";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + PlanKindToString(kind);
  switch (kind) {
    case PlanKind::kScan: {
      out += " " + table_name;
      if (!scan_predicates.empty()) {
        out += " pushed[";
        for (size_t i = 0; i < scan_predicates.size(); ++i) {
          if (i) out += ", ";
          const size_t c = scan_predicates[i].column;
          out += scan_predicates[i].ToString(
              c < schema.num_fields() ? schema.field(c).name
                                      : "#" + std::to_string(c));
        }
        out += "]";
      }
      if (scan_total_partitions > 0) {
        out += " [partitions: " + std::to_string(scan_partitions.size()) +
               "/" + std::to_string(scan_total_partitions) + " scanned]";
      }
      break;
    }
    case PlanKind::kValues:
      out += " (" + std::to_string(rows.size()) + " rows)";
      break;
    case PlanKind::kFilter:
      out += " [" + predicate->ToString() + "]";
      break;
    case PlanKind::kProject: {
      out += " [";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i) out += ", ";
        out += exprs[i]->ToString();
      }
      out += "]";
      break;
    }
    case PlanKind::kJoin: {
      if (left_keys.empty()) {
        out += " cross";
      } else {
        out += " on";
        for (size_t i = 0; i < left_keys.size(); ++i) {
          out += " L#" + std::to_string(left_keys[i]) + "=R#" +
                 std::to_string(right_keys[i]);
        }
      }
      if (predicate) out += " residual[" + predicate->ToString() + "]";
      break;
    }
    case PlanKind::kAggregate: {
      out += " groups=" + std::to_string(num_group_cols) + " [";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i) out += ", ";
        out += aggregates[i].function;
        out += aggregates[i].arg_index < 0
                   ? "(*)"
                   : "(#" + std::to_string(aggregates[i].arg_index) + ")";
      }
      out += "]";
      break;
    }
    case PlanKind::kSort: {
      out += " [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) out += ", ";
        out += sort_keys[i].expr->ToString();
        if (sort_keys[i].descending) out += " DESC";
      }
      out += "]";
      break;
    }
    case PlanKind::kLimit:
      out += " " + std::to_string(limit);
      if (offset) out += " offset " + std::to_string(offset);
      break;
    case PlanKind::kRecursiveCte:
    case PlanKind::kBindingRef:
      out += " " + binding_name;
      break;
    case PlanKind::kTableFunction: {
      out += " " + function_name;
      if (!lambdas.empty()) {
        out += " lambdas[";
        for (size_t i = 0; i < lambdas.size(); ++i) {
          if (i) out += "; ";
          out += lambdas[i].body->ToString();
        }
        out += "]";
      }
      break;
    }
    default:
      break;
  }
  out += " " + schema.ToString() + "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

PlanPtr PlanNode::Clone() const {
  auto n = std::make_unique<PlanNode>(kind);
  n->schema = schema;
  n->table_name = table_name;
  n->scan_predicates = scan_predicates;
  n->scan_partitions = scan_partitions;
  n->scan_total_partitions = scan_total_partitions;
  n->rows = rows;
  if (predicate) n->predicate = predicate->Clone();
  n->exprs.reserve(exprs.size());
  for (const auto& e : exprs) n->exprs.push_back(e->Clone());
  n->left_keys = left_keys;
  n->right_keys = right_keys;
  n->num_group_cols = num_group_cols;
  n->aggregates = aggregates;
  n->sort_keys.reserve(sort_keys.size());
  for (const auto& k : sort_keys) {
    n->sort_keys.push_back(SortKey{k.expr->Clone(), k.descending});
  }
  n->limit = limit;
  n->offset = offset;
  n->binding_name = binding_name;
  n->function_name = function_name;
  n->scalar_args = scalar_args;
  n->lambdas.reserve(lambdas.size());
  for (const auto& l : lambdas) {
    n->lambdas.push_back(BoundLambda{l.body->Clone(), l.a_width, l.source_text});
  }
  n->children.reserve(children.size());
  for (const auto& c : children) n->children.push_back(c->Clone());
  return n;
}

PlanPtr MakeScan(std::string table, Schema schema) {
  auto n = std::make_unique<PlanNode>(PlanKind::kScan);
  n->table_name = std::move(table);
  n->schema = std::move(schema);
  return n;
}

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>(PlanKind::kFilter);
  n->schema = child->schema;
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs, Schema schema) {
  auto n = std::make_unique<PlanNode>(PlanKind::kProject);
  n->schema = std::move(schema);
  n->exprs = std::move(exprs);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeLimit(PlanPtr child, int64_t limit, int64_t offset) {
  auto n = std::make_unique<PlanNode>(PlanKind::kLimit);
  n->schema = child->schema;
  n->limit = limit;
  n->offset = offset;
  n->children.push_back(std::move(child));
  return n;
}

}  // namespace soda
