/// \file logical_plan.h
/// The query plan IR.
///
/// soda uses a single plan representation: the binder produces it, the
/// optimizer rewrites it (paper §5.2), and the executor interprets it with
/// morsel-parallel push pipelines (paper §3). The paper's "physical
/// analytics operators" (§6) appear as kTableFunction nodes whose
/// execution dispatches into src/analytics/ — exactly the property Fig. 3
/// shows: relational and analytical operators coexist in one optimizable
/// plan, and lambdas are plan expressions subject to the same binding and
/// optimization as any other expression.

#ifndef SODA_SQL_LOGICAL_PLAN_H_
#define SODA_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "storage/segment.h"
#include "types/schema.h"
#include "types/value.h"

namespace soda {

enum class PlanKind {
  kScan,          ///< base table scan
  kValues,        ///< literal rows (SELECT without FROM, INSERT .. VALUES)
  kFilter,        ///< predicate over child
  kProject,       ///< expressions over child
  kJoin,          ///< hash equi-join (keys) or cross join (no keys), with optional residual predicate
  kAggregate,     ///< hash aggregation; child is a Project of group exprs + agg args
  kSort,          ///< ORDER BY
  kLimit,         ///< LIMIT / OFFSET
  kUnionAll,      ///< bag union of type-compatible children
  kRecursiveCte,  ///< SQL:1999 appending fixpoint iteration (paper §5.1 baseline)
  kIterate,       ///< the paper's non-appending ITERATE construct (§5.1)
  kBindingRef,    ///< reference to a named relation bound at runtime (CTE working table / `iterate`)
  kTableFunction, ///< analytics physical operator invocation (§6)
};

const char* PlanKindToString(PlanKind kind);

/// One aggregate computation inside a kAggregate node.
struct AggregateSpec {
  std::string function;   ///< count / sum / avg / min / max / stddev / var
  int arg_index = -1;     ///< column index into child output; -1 = count(*)
  DataType result_type = DataType::kInvalid;
};

/// One ORDER BY key.
struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// A lambda argument to a table function (paper §7): the bound body plus
/// the split point between the first and second tuple parameter's columns.
struct BoundLambda {
  ExprPtr body;
  size_t a_width = 0;      ///< columns of the first tuple parameter
  std::string source_text; ///< for diagnostics / plan printing
};

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

/// A node of the plan IR. Field usage depends on `kind`; unused fields
/// stay default-constructed.
struct PlanNode {
  PlanKind kind;
  Schema schema;  ///< output schema
  std::vector<PlanPtr> children;

  // kScan
  std::string table_name;
  /// Pushed-down `col <op> constant` conjuncts (sql/optimizer.cc). The
  /// scan uses them to skip/trim encoded segments; the originating Filter
  /// stays in the plan and re-checks, so they are pure accelerators.
  std::vector<ScanPredicate> scan_predicates;
  /// Partition pruning result for scans of partitioned tables: the
  /// (sorted, unique) partition ids the scan must read, out of
  /// `scan_total_partitions`. total == 0 means the table is unpartitioned
  /// (both fields stay empty/zero on every non-scan node).
  std::vector<size_t> scan_partitions;
  size_t scan_total_partitions = 0;

  // kValues
  std::vector<std::vector<Value>> rows;

  // kFilter (and kJoin residual)
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;

  // kJoin: equi-key column indices into left/right child outputs; both
  // empty => cross join. `predicate` (over the concatenated schema) holds
  // any residual condition.
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;

  // kAggregate
  size_t num_group_cols = 0;
  std::vector<AggregateSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;   ///< -1 = unlimited
  int64_t offset = 0;

  // kRecursiveCte / kIterate / kBindingRef
  std::string binding_name;  ///< CTE name; "iterate" for kIterate state

  // kTableFunction
  std::string function_name;        ///< kmeans / pagerank / ...
  std::vector<Value> scalar_args;   ///< non-relational, non-lambda args
  std::vector<BoundLambda> lambdas;

  explicit PlanNode(PlanKind k) : kind(k) {}

  /// Pretty-printed plan tree (EXPLAIN-style), for tests and debugging.
  std::string ToString(int indent = 0) const;

  PlanPtr Clone() const;
};

/// Convenience constructors keeping schemas consistent.
PlanPtr MakeScan(std::string table, Schema schema);
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs, Schema schema);
PlanPtr MakeLimit(PlanPtr child, int64_t limit, int64_t offset);

}  // namespace soda

#endif  // SODA_SQL_LOGICAL_PLAN_H_
