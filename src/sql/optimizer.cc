#include "sql/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "expr/fold.h"
#include "storage/partition.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace soda {

namespace {

/// Splits a predicate on AND into conjuncts.
void CollectConjuncts(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(std::move(e->children[0]), out);
    CollectConjuncts(std::move(e->children[1]), out);
    return;
  }
  out->push_back(std::move(e));
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (auto& c : conjuncts) {
    if (!result) {
      result = std::move(c);
    } else {
      result = Expression::Binary(BinaryOp::kAnd, std::move(result),
                                  std::move(c), DataType::kBool);
    }
  }
  return result;
}

/// Range of column indices referenced by an expression.
struct ColRange {
  size_t min = SIZE_MAX;
  size_t max = 0;
  bool any = false;
};

void GetColRange(const Expression& e, ColRange* r) {
  if (e.kind == ExprKind::kColumnRef) {
    r->any = true;
    r->min = std::min(r->min, e.column_index);
    r->max = std::max(r->max, e.column_index);
  }
  for (const auto& c : e.children) GetColRange(*c, r);
}

/// Shifts every column reference by `delta` (rebasing right-side
/// predicates onto the right child's schema).
void ShiftColumns(Expression* e, long delta) {
  if (e->kind == ExprKind::kColumnRef) {
    e->column_index = static_cast<size_t>(
        static_cast<long>(e->column_index) + delta);
  }
  for (auto& c : e->children) ShiftColumns(c.get(), delta);
}

bool IsTrueLiteral(const Expression& e) {
  return e.kind == ExprKind::kLiteral && !e.literal.is_null() &&
         e.literal.type() == DataType::kBool && e.literal.bool_value();
}

/// Classifies `conjuncts` relative to a join with `left_width` left
/// columns. Appends to the respective outputs; right-side and key
/// expressions are rebased as needed.
void ClassifyJoinConjuncts(std::vector<ExprPtr> conjuncts, size_t left_width,
                           std::vector<ExprPtr>* left_filters,
                           std::vector<ExprPtr>* right_filters,
                           std::vector<size_t>* left_keys,
                           std::vector<size_t>* right_keys,
                           std::vector<ExprPtr>* residual) {
  for (auto& c : conjuncts) {
    if (IsTrueLiteral(*c)) continue;
    ColRange r;
    GetColRange(*c, &r);
    if (!r.any) {
      residual->push_back(std::move(c));  // constant-ish; keep safe
      continue;
    }
    if (r.max < left_width) {
      left_filters->push_back(std::move(c));
      continue;
    }
    if (r.min >= left_width) {
      ShiftColumns(c.get(), -static_cast<long>(left_width));
      right_filters->push_back(std::move(c));
      continue;
    }
    // Spans both sides: an equi-key candidate?
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      size_t a = c->children[0]->column_index;
      size_t b = c->children[1]->column_index;
      if (a < left_width && b >= left_width) {
        left_keys->push_back(a);
        right_keys->push_back(b - left_width);
        continue;
      }
      if (b < left_width && a >= left_width) {
        left_keys->push_back(b);
        right_keys->push_back(a - left_width);
        continue;
      }
    }
    residual->push_back(std::move(c));
  }
}

// --- scan pushdown + partition pruning ------------------------------------

/// Maps a comparison onto the storage CompareOp; `flipped` when the
/// literal was on the left (`5 < x` reads as `x > 5`).
bool ToCompareOp(BinaryOp op, bool flipped, CompareOp* out) {
  switch (op) {
    case BinaryOp::kEq:
      *out = CompareOp::kEq;
      return true;
    case BinaryOp::kLt:
      *out = flipped ? CompareOp::kGt : CompareOp::kLt;
      return true;
    case BinaryOp::kLe:
      *out = flipped ? CompareOp::kGe : CompareOp::kLe;
      return true;
    case BinaryOp::kGt:
      *out = flipped ? CompareOp::kLt : CompareOp::kGt;
      return true;
    case BinaryOp::kGe:
      *out = flipped ? CompareOp::kLe : CompareOp::kGe;
      return true;
    default:
      return false;
  }
}

/// Converts a literal to the exact payload family the storage layer
/// evaluates (Table::ScanSliceFiltered rejects anything else). Lossy
/// conversions fail — the predicate then simply stays un-pushed and the
/// Filter transform handles it.
bool NormalizeConstant(const Value& literal, DataType col_type, Value* out) {
  if (literal.is_null()) return false;
  switch (col_type) {
    case DataType::kBigInt:
      if (literal.type() == DataType::kBigInt) {
        *out = literal;
        return true;
      }
      if (literal.type() == DataType::kDouble) {
        const double d = literal.double_value();
        if (d < -9.2e18 || d > 9.2e18) return false;
        const int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) != d) return false;  // not integral
        *out = Value::BigInt(i);
        return true;
      }
      return false;
    case DataType::kBool:
      if (literal.type() == DataType::kBool) {
        *out = Value::BigInt(literal.bool_value() ? 1 : 0);
        return true;
      }
      if (literal.type() == DataType::kBigInt) {
        *out = literal;
        return true;
      }
      return false;
    case DataType::kDouble:
      if (literal.type() == DataType::kDouble) {
        *out = literal;
        return true;
      }
      if (literal.type() == DataType::kBigInt) {
        *out = Value::Double(static_cast<double>(literal.bigint_value()));
        return true;
      }
      return false;
    case DataType::kVarchar:
      if (literal.type() == DataType::kVarchar) {
        *out = literal;
        return true;
      }
      return false;
    default:
      return false;
  }
}

void CollectConstConjuncts(const Expression& e,
                           std::vector<const Expression*>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    CollectConstConjuncts(*e.children[0], out);
    CollectConstConjuncts(*e.children[1], out);
    return;
  }
  out->push_back(&e);
}

/// Harvests `col <op> literal` conjuncts of `pred` into the scan's pushed
/// predicate list. The Filter keeps the full predicate — pushed copies are
/// accelerators, never the source of truth.
void ExtractScanPredicates(const Expression& pred, PlanNode* scan) {
  std::vector<const Expression*> conjuncts;
  CollectConstConjuncts(pred, &conjuncts);
  scan->scan_predicates.clear();
  for (const Expression* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->children.size() != 2) continue;
    const Expression* col = c->children[0].get();
    const Expression* lit = c->children[1].get();
    bool flipped = false;
    if (col->kind == ExprKind::kLiteral && lit->kind == ExprKind::kColumnRef) {
      std::swap(col, lit);
      flipped = true;
    }
    if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral) {
      continue;
    }
    CompareOp op;
    if (!ToCompareOp(c->binary_op, flipped, &op)) continue;
    if (col->column_index >= scan->schema.num_fields()) continue;
    ScanPredicate sp;
    sp.column = col->column_index;
    sp.op = op;
    if (!NormalizeConstant(lit->literal,
                           scan->schema.field(col->column_index).type,
                           &sp.constant)) {
      continue;
    }
    scan->scan_predicates.push_back(std::move(sp));
  }
}

/// Recomputes the scan's partition set from its pushed predicates. Hash
/// layouts prune on equality only; range layouts prune on any comparison
/// (the bounds are ascending, so a predicate selects a partition
/// interval). Predicates on other columns are ignored.
void PruneScanPartitions(PlanNode* scan, const PartitionSpec& spec) {
  scan->scan_total_partitions = spec.num_partitions;
  std::vector<uint8_t> keep(spec.num_partitions, 1);
  for (const ScanPredicate& pred : scan->scan_predicates) {
    if (pred.column != spec.column_index) continue;
    std::vector<uint8_t> allow(spec.num_partitions, 0);
    if (spec.kind == PartitionSpec::Kind::kHash) {
      if (pred.op != CompareOp::kEq) continue;
      allow[PartitionOfValue(spec, pred.constant)] = 1;
    } else {
      const int64_t v = pred.constant.AsBigInt();
      size_t lo = 0;
      size_t hi = spec.num_partitions - 1;
      bool empty = false;
      switch (pred.op) {
        case CompareOp::kEq:
          lo = hi = PartitionOfValue(spec, pred.constant);
          break;
        case CompareOp::kLe:
          hi = PartitionOfValue(spec, pred.constant);
          break;
        case CompareOp::kLt:
          if (v == INT64_MIN) {
            empty = true;
          } else {
            hi = PartitionOfValue(spec, Value::BigInt(v - 1));
          }
          break;
        case CompareOp::kGe:
          lo = PartitionOfValue(spec, pred.constant);
          break;
        case CompareOp::kGt:
          if (v == INT64_MAX) {
            empty = true;
          } else {
            lo = PartitionOfValue(spec, Value::BigInt(v + 1));
          }
          break;
      }
      if (!empty) {
        for (size_t p = lo; p <= hi && p < spec.num_partitions; ++p) {
          allow[p] = 1;
        }
      }
    }
    for (size_t p = 0; p < keep.size(); ++p) keep[p] &= allow[p];
  }
  scan->scan_partitions.clear();
  for (size_t p = 0; p < keep.size(); ++p) {
    if (keep[p]) scan->scan_partitions.push_back(p);
  }
}

/// Annotates a base-table scan: resolves the table's partition spec and
/// prunes against whatever predicates have been pushed so far. Bare scans
/// of partitioned tables report the full set (N/N scanned) so EXPLAIN
/// always shows the pruning dimension.
void AnnotateScan(PlanNode* scan, Catalog* catalog) {
  if (!catalog) return;
  Result<TablePtr> t = catalog->GetTable(scan->table_name);
  if (!t.ok()) return;
  const PartitionSpec& spec = (*t)->partition_spec();
  if (!spec.partitioned() || spec.num_partitions == 0) return;
  if (spec.column_index >= scan->schema.num_fields()) return;
  PruneScanPartitions(scan, spec);
}

void FoldNodeExpressions(PlanNode* plan) {
  if (plan->predicate) plan->predicate = FoldConstants(std::move(plan->predicate));
  for (auto& e : plan->exprs) e = FoldConstants(std::move(e));
  for (auto& k : plan->sort_keys) k.expr = FoldConstants(std::move(k.expr));
}

PlanPtr OptimizeNode(PlanPtr plan, Catalog* catalog);

/// Pushes filters into a join and extracts equi keys; `extra_conjuncts`
/// come from a Filter node sitting on top of the join (may be empty).
PlanPtr RewriteJoin(PlanPtr join, std::vector<ExprPtr> extra_conjuncts,
                    Catalog* catalog) {
  size_t left_width = join->children[0]->schema.num_fields();
  std::vector<ExprPtr> conjuncts = std::move(extra_conjuncts);
  if (join->predicate) {
    CollectConjuncts(std::move(join->predicate), &conjuncts);
    join->predicate = nullptr;
  }

  std::vector<ExprPtr> left_filters, right_filters, residual;
  ClassifyJoinConjuncts(std::move(conjuncts), left_width, &left_filters,
                        &right_filters, &join->left_keys, &join->right_keys,
                        &residual);

  if (!left_filters.empty()) {
    join->children[0] =
        MakeFilter(std::move(join->children[0]), AndAll(std::move(left_filters)));
    join->children[0] = OptimizeNode(std::move(join->children[0]), catalog);
  }
  if (!right_filters.empty()) {
    join->children[1] = MakeFilter(std::move(join->children[1]),
                                   AndAll(std::move(right_filters)));
    join->children[1] = OptimizeNode(std::move(join->children[1]), catalog);
  }
  if (!residual.empty()) {
    join->predicate = AndAll(std::move(residual));
  }

  // Build-side selection: probe the larger input, build on the smaller
  // (the hash table is built from children[1]).
  if (!join->left_keys.empty()) {
    double left_rows = EstimateRows(*join->children[0], catalog);
    double right_rows = EstimateRows(*join->children[1], catalog);
    if (left_rows < right_rows) {
      std::swap(join->children[0], join->children[1]);
      std::swap(join->left_keys, join->right_keys);
      // The concatenated output schema changes order; rebuild it and remap
      // any residual predicate.
      size_t new_left_width = join->children[0]->schema.num_fields();
      if (join->predicate) {
        // Old layout: [L (left_width), R]; new: [R', L'] where R' was R.
        // Old index i < left_width -> i + new_left_width; else i - left_width.
        struct Remap {
          size_t old_left_width;
          size_t new_left_width;
          void Apply(Expression* e) const {
            if (e->kind == ExprKind::kColumnRef) {
              if (e->column_index < old_left_width) {
                e->column_index += new_left_width;
              } else {
                e->column_index -= old_left_width;
              }
            }
            for (auto& c : e->children) Apply(c.get());
          }
        } remap{left_width, new_left_width};
        remap.Apply(join->predicate.get());
      }
      join->schema =
          join->children[0]->schema.Concat(join->children[1]->schema);
      // Keep the original output column order for parents by re-projecting.
      std::vector<ExprPtr> exprs;
      Schema original;
      size_t right_width = join->children[0]->schema.num_fields();
      for (size_t i = 0; i < left_width; ++i) {
        const Field& f = join->children[1]->schema.field(i);
        exprs.push_back(Expression::ColumnRef(right_width + i, f.type, f.name));
        original.AddField(f);
      }
      for (size_t i = 0; i < right_width; ++i) {
        const Field& f = join->children[0]->schema.field(i);
        exprs.push_back(Expression::ColumnRef(i, f.type, f.name));
        original.AddField(f);
      }
      return MakeProject(std::move(join), std::move(exprs),
                         std::move(original));
    }
  }
  return join;
}

PlanPtr OptimizeNode(PlanPtr plan, Catalog* catalog) {
  // Children first (bottom-up), except joins which are rewritten via
  // RewriteJoin below (it optimizes the children it wraps).
  for (auto& child : plan->children) {
    child = OptimizeNode(std::move(child), catalog);
  }
  FoldNodeExpressions(plan.get());

  switch (plan->kind) {
    case PlanKind::kFilter: {
      // Drop trivially-true filters.
      if (IsTrueLiteral(*plan->predicate)) {
        return std::move(plan->children[0]);
      }
      // Merge stacked filters.
      if (plan->children[0]->kind == PlanKind::kFilter) {
        PlanPtr child = std::move(plan->children[0]);
        plan->predicate =
            Expression::Binary(BinaryOp::kAnd, std::move(plan->predicate),
                               std::move(child->predicate), DataType::kBool);
        plan->children[0] = std::move(child->children[0]);
        return OptimizeNode(std::move(plan), catalog);
      }
      // Push into a join.
      if (plan->children[0]->kind == PlanKind::kJoin) {
        std::vector<ExprPtr> conjuncts;
        CollectConjuncts(std::move(plan->predicate), &conjuncts);
        return RewriteJoin(std::move(plan->children[0]), std::move(conjuncts),
                           catalog);
      }
      // Push `col <op> literal` conjuncts below a base-table scan and
      // prune partitions with them. The Filter stays (pushed predicates
      // are exact but the full predicate may have more conjuncts).
      if (plan->children[0]->kind == PlanKind::kScan) {
        ExtractScanPredicates(*plan->predicate, plan->children[0].get());
        AnnotateScan(plan->children[0].get(), catalog);
      }
      return plan;
    }
    case PlanKind::kJoin:
      return RewriteJoin(std::move(plan), {}, catalog);
    case PlanKind::kScan:
      AnnotateScan(plan.get(), catalog);
      return plan;
    default:
      return plan;
  }
}

}  // namespace

double EstimateRows(const PlanNode& plan, Catalog* catalog) {
  switch (plan.kind) {
    case PlanKind::kScan: {
      auto t = catalog ? catalog->GetTable(plan.table_name)
                       : Result<TablePtr>(Status::KeyError("no catalog"));
      return t.ok() ? static_cast<double>((*t)->num_rows()) : 1e4;
    }
    case PlanKind::kValues:
      return static_cast<double>(plan.rows.size());
    case PlanKind::kFilter:
      return EstimateRows(*plan.children[0], catalog) / 3.0 + 1.0;
    case PlanKind::kProject:
    case PlanKind::kSort:
      return EstimateRows(*plan.children[0], catalog);
    case PlanKind::kLimit: {
      double child = EstimateRows(*plan.children[0], catalog);
      return plan.limit < 0 ? child
                            : std::min(child, static_cast<double>(plan.limit));
    }
    case PlanKind::kJoin: {
      double l = EstimateRows(*plan.children[0], catalog);
      double r = EstimateRows(*plan.children[1], catalog);
      return plan.left_keys.empty() ? l * r : std::max(l, r);
    }
    case PlanKind::kAggregate: {
      double child = EstimateRows(*plan.children[0], catalog);
      return plan.num_group_cols == 0 ? 1.0 : std::sqrt(child) + 1.0;
    }
    case PlanKind::kUnionAll: {
      double sum = 0;
      for (const auto& c : plan.children) sum += EstimateRows(*c, catalog);
      return sum;
    }
    case PlanKind::kRecursiveCte:
      // Grows by roughly the init size each iteration (paper §5.2: output
      // cardinality of iterative constructs is hard to estimate).
      return EstimateRows(*plan.children[0], catalog) * 10.0;
    case PlanKind::kIterate:
      // Non-appending: cardinality is typically that of the init relation.
      return EstimateRows(*plan.children[0], catalog);
    case PlanKind::kBindingRef:
      return 1024.0;
    case PlanKind::kTableFunction:
      return 1024.0;
  }
  return 1e4;
}

PlanPtr OptimizePlan(PlanPtr plan, Catalog* catalog) {
  return OptimizeNode(std::move(plan), catalog);
}

}  // namespace soda
