/// \file optimizer.h
/// Plan rewrites (paper §5.2): constant folding, filter merging, predicate
/// pushdown through joins, equi-join key extraction from cross joins and
/// ON conditions, and hash-join build-side selection by estimated
/// cardinality.
///
/// As §5.2 observes, analytical operators (ITERATE, recursive CTEs, table
/// functions) act as optimization fences — their result depends on whole
/// inputs, so selections are not pushed through them; the optimizer simply
/// recurses into their input subplans and optimizes those independently.

#ifndef SODA_SQL_OPTIMIZER_H_
#define SODA_SQL_OPTIMIZER_H_

#include "sql/logical_plan.h"
#include "storage/catalog.h"

namespace soda {

/// Rewrites the plan in place (returns the possibly-new root).
PlanPtr OptimizePlan(PlanPtr plan, Catalog* catalog);

/// Rough output-cardinality estimate used for join build-side selection.
double EstimateRows(const PlanNode& plan, Catalog* catalog);

}  // namespace soda

#endif  // SODA_SQL_OPTIMIZER_H_
