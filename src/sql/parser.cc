#include "sql/parser.h"

#include <set>

#include "exec/table_function.h"
#include "sql/lexer.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// Words that terminate an implicit alias position.
const std::set<std::string>& ReservedWords() {
  static const std::set<std::string> kWords = {
      "select", "from",   "where", "group",  "having", "order",  "limit",
      "offset", "union",  "join",  "inner",  "cross",  "left",   "right",
      "full",   "outer",  "on",    "as",     "with",   "recursive",
      "and",    "or",     "not",   "case",   "when",   "then",   "else",
      "end",    "by",     "values","asc",    "desc",   "iterate","insert",
      "create", "drop",   "table", "into",   "cast",   "distinct",
      "update", "delete", "set",   "explain", "in",    "between", "like",
      "is",     "null"};
  return kWords;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseSingleStatement() {
    SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatementImpl());
    Match(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEof) {
      return Unexpected("end of statement");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (Peek().type != TokenType::kEof) {
      SODA_ASSIGN_OR_RETURN(Statement stmt, ParseStatementImpl());
      out.push_back(std::move(stmt));
      if (!Match(TokenType::kSemicolon)) break;
    }
    if (Peek().type != TokenType::kEof) {
      return Unexpected("';' or end of script");
    }
    return out;
  }

 private:
  // --- token helpers ------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t) {
    if (Peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (!Match(t)) return Unexpected(what);
    return Status::OK();
  }
  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && t.text == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Unexpected(kw);
    return Status::OK();
  }
  Status Unexpected(const std::string& expected) const {
    return Status::ParseError("expected " + expected + " but found " +
                              TokenToString(Peek()) + " at offset " +
                              std::to_string(Peek().offset));
  }

  // --- statements ---------------------------------------------------------
  Result<Statement> ParseStatementImpl() {
    Statement stmt;
    if (PeekKeyword("create")) {
      SODA_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      stmt.kind = StatementKind::kCreateTable;
      return stmt;
    }
    if (PeekKeyword("insert")) {
      SODA_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
      stmt.kind = StatementKind::kInsert;
      return stmt;
    }
    if (PeekKeyword("drop")) {
      SODA_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
      stmt.kind = StatementKind::kDropTable;
      return stmt;
    }
    if (PeekKeyword("update")) {
      SODA_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
      stmt.kind = StatementKind::kUpdate;
      return stmt;
    }
    if (PeekKeyword("delete")) {
      SODA_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
      stmt.kind = StatementKind::kDelete;
      return stmt;
    }
    if (PeekKeyword("set")) {
      SODA_ASSIGN_OR_RETURN(stmt.set, ParseSet());
      stmt.kind = StatementKind::kSet;
      return stmt;
    }
    if (MatchKeyword("checkpoint")) {
      stmt.kind = StatementKind::kCheckpoint;
      return stmt;
    }
    if (MatchKeyword("scrub")) {
      stmt.kind = StatementKind::kScrub;
      return stmt;
    }
    if (MatchKeyword("explain")) {
      // "analyze" is a soft keyword: only special directly after EXPLAIN,
      // so it stays usable as an identifier elsewhere.
      if (MatchKeyword("analyze")) stmt.explain_analyze = true;
      SODA_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      stmt.kind = StatementKind::kExplain;
      return stmt;
    }
    if (PeekKeyword("prepare")) {
      SODA_ASSIGN_OR_RETURN(stmt.prepare, ParsePrepare());
      stmt.kind = StatementKind::kPrepare;
      return stmt;
    }
    if (PeekKeyword("execute")) {
      SODA_ASSIGN_OR_RETURN(stmt.execute, ParseExecute());
      stmt.kind = StatementKind::kExecute;
      return stmt;
    }
    if (PeekKeyword("deallocate")) {
      SODA_ASSIGN_OR_RETURN(stmt.deallocate, ParseDeallocate());
      stmt.kind = StatementKind::kDeallocate;
      return stmt;
    }
    if (PeekKeyword("select") || PeekKeyword("with")) {
      SODA_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      stmt.kind = StatementKind::kSelect;
      return stmt;
    }
    return Unexpected(
        "a statement (SELECT/WITH/CREATE/INSERT/DROP/EXPLAIN/SET/"
        "CHECKPOINT/SCRUB/PREPARE/EXECUTE/DEALLOCATE)");
  }

  /// PREPARE name [(TYPE, ...)] AS <select | insert>.
  Result<std::unique_ptr<PrepareStmt>> ParsePrepare() {
    SODA_RETURN_NOT_OK(ExpectKeyword("prepare"));
    auto stmt = std::make_unique<PrepareStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("statement name"));
    if (Match(TokenType::kLParen)) {
      do {
        SODA_ASSIGN_OR_RETURN(std::string type_name,
                              ParseIdentifier("parameter type name"));
        SODA_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
        stmt->param_types.push_back(type);
      } while (Match(TokenType::kComma));
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    }
    SODA_RETURN_NOT_OK(ExpectKeyword("as"));
    SODA_ASSIGN_OR_RETURN(Statement body, ParseStatementImpl());
    if (body.kind != StatementKind::kSelect &&
        body.kind != StatementKind::kInsert) {
      return Status::ParseError(
          "PREPARE supports SELECT and INSERT statements only");
    }
    stmt->body = std::make_unique<Statement>(std::move(body));
    return stmt;
  }

  /// EXECUTE name [(expr, ...)].
  Result<std::unique_ptr<ExecuteStmt>> ParseExecute() {
    SODA_RETURN_NOT_OK(ExpectKeyword("execute"));
    auto stmt = std::make_unique<ExecuteStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("statement name"));
    if (Match(TokenType::kLParen)) {
      if (Peek().type != TokenType::kRParen) {
        do {
          SODA_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExpression());
          stmt->args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    }
    return stmt;
  }

  /// DEALLOCATE [PREPARE] name.
  Result<std::unique_ptr<DeallocateStmt>> ParseDeallocate() {
    SODA_RETURN_NOT_OK(ExpectKeyword("deallocate"));
    MatchKeyword("prepare");  // optional noise word, as in Postgres
    auto stmt = std::make_unique<DeallocateStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("statement name"));
    return stmt;
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    SODA_RETURN_NOT_OK(ExpectKeyword("create"));
    SODA_RETURN_NOT_OK(ExpectKeyword("table"));
    auto stmt = std::make_unique<CreateTableStmt>();
    if (PeekKeyword("if")) {
      Advance();
      SODA_RETURN_NOT_OK(ExpectKeyword("not"));
      SODA_RETURN_NOT_OK(ExpectKeyword("exists"));
      stmt->if_not_exists = true;
    }
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("table name"));
    // CREATE TABLE name AS <select>.
    if (MatchKeyword("as")) {
      SODA_ASSIGN_OR_RETURN(stmt->as_select, ParseSelect());
      return stmt;
    }
    SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    do {
      SODA_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      SODA_ASSIGN_OR_RETURN(std::string type_name,
                            ParseIdentifier("type name"));
      if (Match(TokenType::kLParen)) {  // VARCHAR(500) etc.
        while (Peek().type != TokenType::kRParen &&
               Peek().type != TokenType::kEof) {
          Advance();
        }
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
      SODA_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
      stmt->columns.emplace_back(std::move(col), type);
    } while (Match(TokenType::kComma));
    SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (MatchKeyword("partition")) {
      SODA_RETURN_NOT_OK(ExpectKeyword("by"));
      if (MatchKeyword("hash")) {
        stmt->partition_kind = CreateTableStmt::PartitionKind::kHash;
        SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        SODA_ASSIGN_OR_RETURN(stmt->partition_column,
                              ParseIdentifier("partition column"));
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        SODA_RETURN_NOT_OK(ExpectKeyword("partitions"));
        if (Peek().type != TokenType::kInteger) {
          return Unexpected("a partition count");
        }
        stmt->partition_count = Advance().int_value;
      } else if (MatchKeyword("range")) {
        stmt->partition_kind = CreateTableStmt::PartitionKind::kRange;
        SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        SODA_ASSIGN_OR_RETURN(stmt->partition_column,
                              ParseIdentifier("partition column"));
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        do {
          const bool negative = Match(TokenType::kMinus);
          if (Peek().type != TokenType::kInteger) {
            return Unexpected("a range bound (integer)");
          }
          int64_t bound = Advance().int_value;
          stmt->partition_bounds.push_back(negative ? -bound : bound);
        } while (Match(TokenType::kComma));
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      } else {
        return Unexpected("HASH or RANGE after PARTITION BY");
      }
    }
    return stmt;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    SODA_RETURN_NOT_OK(ExpectKeyword("insert"));
    SODA_RETURN_NOT_OK(ExpectKeyword("into"));
    auto stmt = std::make_unique<InsertStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKeyword("values")) {
      do {
        SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        std::vector<ParseExprPtr> row;
        do {
          SODA_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpression());
          row.push_back(std::move(e));
        } while (Match(TokenType::kComma));
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        stmt->values_rows.push_back(std::move(row));
      } while (Match(TokenType::kComma));
      return stmt;
    }
    SODA_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    SODA_RETURN_NOT_OK(ExpectKeyword("update"));
    auto stmt = std::make_unique<UpdateStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    SODA_RETURN_NOT_OK(ExpectKeyword("set"));
    do {
      SODA_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      SODA_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
      SODA_ASSIGN_OR_RETURN(ParseExprPtr value, ParseExpression());
      stmt->assignments.emplace_back(std::move(col), std::move(value));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("where")) {
      SODA_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    SODA_RETURN_NOT_OK(ExpectKeyword("delete"));
    SODA_RETURN_NOT_OK(ExpectKeyword("from"));
    auto stmt = std::make_unique<DeleteStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKeyword("where")) {
      SODA_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return stmt;
  }

  /// SET name[.name]* = [-]integer | identifier | 'string'. The value
  /// grammar is deliberately narrow — these are engine knobs, not
  /// expressions; sign is accepted so the engine can reject negatives with
  /// a clear message, and bare words ('SET soda.wal_fsync = group') cover
  /// the enum-valued knobs.
  Result<std::unique_ptr<SetStmt>> ParseSet() {
    SODA_RETURN_NOT_OK(ExpectKeyword("set"));
    auto stmt = std::make_unique<SetStmt>();
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("setting name"));
    while (Match(TokenType::kDot)) {
      SODA_ASSIGN_OR_RETURN(std::string part,
                            ParseIdentifier("setting name"));
      stmt->name += "." + part;
    }
    SODA_RETURN_NOT_OK(Expect(TokenType::kEq, "'='"));
    if (Peek().type == TokenType::kIdent ||
        Peek().type == TokenType::kString) {
      stmt->has_text = true;
      stmt->text_value = Advance().text;
      return stmt;
    }
    const bool negative = Match(TokenType::kMinus);
    if (Peek().type != TokenType::kInteger) {
      return Unexpected("an integer or identifier setting value");
    }
    stmt->value = Advance().int_value;
    if (negative) stmt->value = -stmt->value;
    return stmt;
  }

  Result<std::unique_ptr<DropTableStmt>> ParseDropTable() {
    SODA_RETURN_NOT_OK(ExpectKeyword("drop"));
    SODA_RETURN_NOT_OK(ExpectKeyword("table"));
    auto stmt = std::make_unique<DropTableStmt>();
    if (PeekKeyword("if")) {
      Advance();
      SODA_RETURN_NOT_OK(ExpectKeyword("exists"));
      stmt->if_exists = true;
    }
    SODA_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("table name"));
    return stmt;
  }

  // --- SELECT -------------------------------------------------------------
  Result<SelectPtr> ParseSelect() {
    std::vector<CteDef> ctes;
    bool recursive = false;
    if (MatchKeyword("with")) {
      recursive = MatchKeyword("recursive");
      do {
        CteDef cte;
        SODA_ASSIGN_OR_RETURN(cte.name, ParseIdentifier("CTE name"));
        if (Match(TokenType::kLParen)) {
          do {
            SODA_ASSIGN_OR_RETURN(std::string col,
                                  ParseIdentifier("column alias"));
            cte.column_aliases.push_back(std::move(col));
          } while (Match(TokenType::kComma));
          SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        }
        SODA_RETURN_NOT_OK(ExpectKeyword("as"));
        SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        SODA_ASSIGN_OR_RETURN(cte.query, ParseSelect());
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        ctes.push_back(std::move(cte));
      } while (Match(TokenType::kComma));
    }

    SODA_ASSIGN_OR_RETURN(SelectPtr stmt, ParseQueryPrimary());
    // Outer CTEs come before any the (parenthesized) core introduced.
    for (auto it = ctes.rbegin(); it != ctes.rend(); ++it) {
      stmt->ctes.insert(stmt->ctes.begin(), std::move(*it));
    }
    stmt->recursive = stmt->recursive || recursive;

    // UNION ALL chain (branches may be parenthesized query expressions).
    SelectStmt* tail = stmt.get();
    while (tail->union_next) tail = tail->union_next.get();
    while (PeekKeyword("union")) {
      Advance();
      SODA_RETURN_NOT_OK(ExpectKeyword("all"));
      SODA_ASSIGN_OR_RETURN(SelectPtr next, ParseQueryPrimary());
      tail->union_next = std::move(next);
      while (tail->union_next) tail = tail->union_next.get();
    }

    // ORDER BY / LIMIT apply to the whole union.
    if (MatchKeyword("order")) {
      SODA_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        SODA_ASSIGN_OR_RETURN(item.expr, ParseExpression());
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) return Unexpected("an integer");
      stmt->limit = Advance().int_value;
    }
    if (MatchKeyword("offset")) {
      if (Peek().type != TokenType::kInteger) return Unexpected("an integer");
      stmt->offset = Advance().int_value;
    }
    return stmt;
  }

  /// A select core or a parenthesized query expression — the form UNION
  /// ALL branches (e.g. recursive CTE bodies) are usually written in.
  Result<SelectPtr> ParseQueryPrimary() {
    if (Peek().type == TokenType::kLParen &&
        (PeekKeyword("select", 1) || PeekKeyword("with", 1) ||
         Peek(1).type == TokenType::kLParen)) {
      Advance();
      SODA_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelect());
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return stmt;
    }
    return ParseSelectCore();
  }

  Result<SelectPtr> ParseSelectCore() {
    SODA_RETURN_NOT_OK(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = MatchKeyword("distinct");
    do {
      SelectItem item;
      SODA_ASSIGN_OR_RETURN(item.expr, ParseSelectExpr());
      // Optional alias: AS name | name | "name".
      if (MatchKeyword("as")) {
        SODA_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
      } else if (Peek().type == TokenType::kQuotedIdent) {
        item.alias = ToLower(Advance().text);
      } else if (Peek().type == TokenType::kIdent &&
                 !ReservedWords().count(Peek().text)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    if (MatchKeyword("from")) {
      SODA_ASSIGN_OR_RETURN(stmt->from, ParseFromClause());
    }
    if (MatchKeyword("where")) {
      SODA_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    if (MatchKeyword("group")) {
      SODA_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        SODA_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpression());
        stmt->group_by.push_back(std::move(e));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("having")) {
      SODA_ASSIGN_OR_RETURN(stmt->having, ParseExpression());
    }
    return stmt;
  }

  /// A select-list expression: `*`, `t.*`, or a scalar expression.
  Result<ParseExprPtr> ParseSelectExpr() {
    if (Peek().type == TokenType::kStar) {
      Advance();
      return std::make_unique<ParseExpr>(ParseExprKind::kStar);
    }
    if (Peek().type == TokenType::kIdent &&
        Peek(1).type == TokenType::kDot &&
        Peek(2).type == TokenType::kStar) {
      auto star = std::make_unique<ParseExpr>(ParseExprKind::kStar);
      star->qualifier = Advance().text;
      Advance();  // .
      Advance();  // *
      return star;
    }
    return ParseExpression();
  }

  // --- FROM ---------------------------------------------------------------
  Result<TableRefPtr> ParseFromClause() {
    SODA_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
    while (Match(TokenType::kComma)) {
      SODA_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
      auto join = std::make_unique<TableRef>(TableRefKind::kJoin);
      join->left = std::move(ref);
      join->right = std::move(right);
      ref = std::move(join);
    }
    return ref;
  }

  Result<TableRefPtr> ParseTableRef() {
    SODA_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTablePrimary());
    for (;;) {
      bool cross = false;
      if (PeekKeyword("cross")) {
        Advance();
        cross = true;
      } else if (PeekKeyword("inner")) {
        Advance();
      } else if (PeekKeyword("left") || PeekKeyword("right") ||
                 PeekKeyword("full")) {
        return Status::NotImplemented("outer joins are not supported");
      } else if (!PeekKeyword("join")) {
        break;
      }
      SODA_RETURN_NOT_OK(ExpectKeyword("join"));
      SODA_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      auto join = std::make_unique<TableRef>(TableRefKind::kJoin);
      join->left = std::move(ref);
      join->right = std::move(right);
      if (!cross) {
        SODA_RETURN_NOT_OK(ExpectKeyword("on"));
        SODA_ASSIGN_OR_RETURN(join->join_condition, ParseExpression());
      }
      ref = std::move(join);
    }
    return ref;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    // (subquery) alias
    if (Peek().type == TokenType::kLParen) {
      Advance();
      SODA_ASSIGN_OR_RETURN(SelectPtr sub, ParseSelect());
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      auto ref = std::make_unique<TableRef>(TableRefKind::kSubquery);
      ref->subquery = std::move(sub);
      ParseOptionalAlias(ref.get());
      return ref;
    }
    // ITERATE((init), (step), (stop))
    if (PeekKeyword("iterate") && Peek(1).type == TokenType::kLParen) {
      Advance();
      SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      auto ref = std::make_unique<TableRef>(TableRefKind::kIterate);
      SODA_ASSIGN_OR_RETURN(ref->init, ParseParenthesizedSelect());
      SODA_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      SODA_ASSIGN_OR_RETURN(ref->step, ParseParenthesizedSelect());
      SODA_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
      SODA_ASSIGN_OR_RETURN(ref->stop, ParseParenthesizedSelect());
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      ParseOptionalAlias(ref.get());
      return ref;
    }
    if (Peek().type != TokenType::kIdent) {
      return Unexpected("a table reference");
    }
    std::string name = Peek().text;
    // Table function call.
    if (IsTableFunction(name) && Peek(1).type == TokenType::kLParen) {
      Advance();
      Advance();  // (
      auto ref = std::make_unique<TableRef>(TableRefKind::kTableFunction);
      ref->name = name;
      if (Peek().type != TokenType::kRParen) {
        do {
          TableFunctionArg arg;
          if (Peek().type == TokenType::kLParen &&
              (PeekKeyword("select", 1) || PeekKeyword("with", 1))) {
            SODA_ASSIGN_OR_RETURN(arg.subquery, ParseParenthesizedSelect());
          } else {
            SODA_ASSIGN_OR_RETURN(arg.expr, ParseExpression());
          }
          ref->args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      ParseOptionalAlias(ref.get());
      return ref;
    }
    // Plain named table / CTE.
    Advance();
    auto ref = std::make_unique<TableRef>(TableRefKind::kNamed);
    ref->name = std::move(name);
    ParseOptionalAlias(ref.get());
    return ref;
  }

  Result<SelectPtr> ParseParenthesizedSelect() {
    SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    SODA_ASSIGN_OR_RETURN(SelectPtr sub, ParseSelect());
    SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return sub;
  }

  void ParseOptionalAlias(TableRef* ref) {
    if (MatchKeyword("as")) {
      if (Peek().type == TokenType::kIdent ||
          Peek().type == TokenType::kQuotedIdent) {
        ref->alias = ToLower(Advance().text);
      }
      return;
    }
    if (Peek().type == TokenType::kQuotedIdent) {
      ref->alias = ToLower(Advance().text);
      return;
    }
    if (Peek().type == TokenType::kIdent &&
        !ReservedWords().count(Peek().text)) {
      ref->alias = Advance().text;
    }
  }

  // --- expressions (precedence climbing) -----------------------------------
  Result<ParseExprPtr> ParseExpression() { return ParseOr(); }

  Result<ParseExprPtr> ParseOr() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAnd());
    while (MatchKeyword("or")) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseAnd() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseNot());
    while (MatchKeyword("and")) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr child, ParseNot());
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kUnary);
      e->unary_op = UnaryOp::kNot;
      e->children.push_back(std::move(child));
      return e;
    }
    return ParseComparison();
  }

  Result<ParseExprPtr> ParseComparison() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseConcat());

    // IS [NOT] NULL.
    if (PeekKeyword("is")) {
      Advance();
      bool negated = MatchKeyword("not");
      SODA_RETURN_NOT_OK(ExpectKeyword("null"));
      auto call = std::make_unique<ParseExpr>(ParseExprKind::kFunctionCall);
      call->name = "isnull";
      call->children.push_back(std::move(left));
      return negated ? MakeNot(std::move(call)) : std::move(call);
    }

    // [NOT] IN / BETWEEN / LIKE — desugared to basic predicates.
    bool negated = false;
    if (PeekKeyword("not") &&
        (PeekKeyword("in", 1) || PeekKeyword("between", 1) ||
         PeekKeyword("like", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("in")) {
      SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      ParseExprPtr disjunction;
      do {
        SODA_ASSIGN_OR_RETURN(ParseExprPtr candidate, ParseExpression());
        auto eq = MakeBinary(BinaryOp::kEq, CloneParseExpr(*left),
                             std::move(candidate));
        disjunction = disjunction
                          ? MakeBinary(BinaryOp::kOr, std::move(disjunction),
                                       std::move(eq))
                          : std::move(eq);
      } while (Match(TokenType::kComma));
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return negated ? MakeNot(std::move(disjunction))
                     : std::move(disjunction);
    }
    if (MatchKeyword("between")) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr lo, ParseConcat());
      SODA_RETURN_NOT_OK(ExpectKeyword("and"));
      SODA_ASSIGN_OR_RETURN(ParseExprPtr hi, ParseConcat());
      // Clone before building: argument evaluation order is unspecified,
      // so the move must not race the clone.
      ParseExprPtr left_copy = CloneParseExpr(*left);
      auto lower = MakeBinary(BinaryOp::kGe, std::move(left_copy),
                              std::move(lo));
      auto upper = MakeBinary(BinaryOp::kLe, std::move(left), std::move(hi));
      auto range = MakeBinary(BinaryOp::kAnd, std::move(lower),
                              std::move(upper));
      return negated ? MakeNot(std::move(range)) : std::move(range);
    }
    if (MatchKeyword("like")) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr pattern, ParseConcat());
      auto call = std::make_unique<ParseExpr>(ParseExprKind::kFunctionCall);
      call->name = "like";
      call->children.push_back(std::move(left));
      call->children.push_back(std::move(pattern));
      return negated ? MakeNot(std::move(call)) : std::move(call);
    }

    BinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq: op = BinaryOp::kEq; break;
      case TokenType::kNe: op = BinaryOp::kNe; break;
      case TokenType::kLt: op = BinaryOp::kLt; break;
      case TokenType::kLe: op = BinaryOp::kLe; break;
      case TokenType::kGt: op = BinaryOp::kGt; break;
      case TokenType::kGe: op = BinaryOp::kGe; break;
      default:
        return left;
    }
    Advance();
    SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParseConcat());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ParseExprPtr> ParseConcat() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAdditive());
    while (Match(TokenType::kConcat)) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAdditive());
      left = MakeBinary(BinaryOp::kConcat, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseAdditive() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ParseExprPtr> ParseMultiplicative() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParsePower());
    for (;;) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParsePower());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ParseExprPtr> ParsePower() {
    SODA_ASSIGN_OR_RETURN(ParseExprPtr left, ParseUnary());
    if (Match(TokenType::kCaret)) {  // right-associative
      SODA_ASSIGN_OR_RETURN(ParseExprPtr right, ParsePower());
      return MakeBinary(BinaryOp::kPow, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      SODA_ASSIGN_OR_RETURN(ParseExprPtr child, ParseUnary());
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kUnary);
      e->unary_op = UnaryOp::kNegate;
      e->children.push_back(std::move(child));
      return e;
    }
    if (Match(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ParseExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        Advance();
        auto e = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
        e->literal = Value::BigInt(tok.int_value);
        return e;
      }
      case TokenType::kFloat: {
        Advance();
        auto e = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
        e->literal = Value::Double(tok.float_value);
        return e;
      }
      case TokenType::kString: {
        Advance();
        auto e = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
        e->literal = Value::Varchar(tok.text);
        return e;
      }
      case TokenType::kLParen: {
        Advance();
        SODA_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpression());
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      case TokenType::kLambda:
        return ParseLambda();
      case TokenType::kParam: {
        Advance();
        auto e = std::make_unique<ParseExpr>(ParseExprKind::kParameter);
        e->param_index = static_cast<size_t>(tok.int_value);
        e->name = tok.text;  // "$n", for error messages
        return e;
      }
      case TokenType::kQuotedIdent: {
        Advance();
        auto e = std::make_unique<ParseExpr>(ParseExprKind::kColumnRef);
        e->name = ToLower(tok.text);
        return e;
      }
      case TokenType::kIdent:
        return ParseIdentExpr();
      default:
        return Unexpected("an expression");
    }
  }

  Result<ParseExprPtr> ParseLambda() {
    size_t start = Peek().offset;
    Advance();  // λ
    auto e = std::make_unique<ParseExpr>(ParseExprKind::kLambda);
    SODA_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    do {
      SODA_ASSIGN_OR_RETURN(std::string p, ParseIdentifier("lambda parameter"));
      e->lambda_params.push_back(std::move(p));
    } while (Match(TokenType::kComma));
    SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (e->lambda_params.empty() || e->lambda_params.size() > 2) {
      return Status::ParseError(
          "lambda expressions take one or two tuple parameters");
    }
    SODA_ASSIGN_OR_RETURN(ParseExprPtr body, ParseExpression());
    e->source_text = "λ(...) at offset " + std::to_string(start);
    e->children.push_back(std::move(body));
    return e;
  }

  Result<ParseExprPtr> ParseIdentExpr() {
    std::string name = Advance().text;

    // CASE WHEN ... THEN ... [ELSE ...] END
    if (name == "case") {
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kCase);
      while (MatchKeyword("when")) {
        SODA_ASSIGN_OR_RETURN(ParseExprPtr cond, ParseExpression());
        SODA_RETURN_NOT_OK(ExpectKeyword("then"));
        SODA_ASSIGN_OR_RETURN(ParseExprPtr then, ParseExpression());
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) return Unexpected("WHEN");
      if (MatchKeyword("else")) {
        SODA_ASSIGN_OR_RETURN(ParseExprPtr els, ParseExpression());
        e->children.push_back(std::move(els));
        e->case_has_else = true;
      }
      SODA_RETURN_NOT_OK(ExpectKeyword("end"));
      return e;
    }

    // CAST(expr AS TYPE)
    if (name == "cast" && Peek().type == TokenType::kLParen) {
      Advance();
      SODA_ASSIGN_OR_RETURN(ParseExprPtr child, ParseExpression());
      SODA_RETURN_NOT_OK(ExpectKeyword("as"));
      SODA_ASSIGN_OR_RETURN(std::string type_name,
                            ParseIdentifier("type name"));
      if (Match(TokenType::kLParen)) {
        while (Peek().type != TokenType::kRParen &&
               Peek().type != TokenType::kEof) {
          Advance();
        }
        SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      }
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      SODA_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kCast);
      e->cast_type = type;
      e->children.push_back(std::move(child));
      return e;
    }

    // NULL / TRUE / FALSE literals.
    if (name == "null") {
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
      e->literal = Value::Null();
      return e;
    }
    if (name == "true" || name == "false") {
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kLiteral);
      e->literal = Value::Bool(name == "true");
      return e;
    }

    // Bare reserved words cannot start an expression — this catches
    // mistakes like `SELECT FROM t` with a clear message instead of
    // silently treating the keyword as a column name.
    if (ReservedWords().count(name)) {
      return Status::ParseError("unexpected keyword '" + name +
                                "' where an expression was expected, "
                                "near offset " +
                                std::to_string(Peek().offset));
    }

    // Function call.
    if (Peek().type == TokenType::kLParen) {
      Advance();
      auto e = std::make_unique<ParseExpr>(ParseExprKind::kFunctionCall);
      e->name = name;
      if (Peek().type == TokenType::kStar) {  // count(*)
        Advance();
        e->children.push_back(
            std::make_unique<ParseExpr>(ParseExprKind::kStar));
      } else if (Peek().type != TokenType::kRParen) {
        do {
          SODA_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExpression());
          e->children.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      SODA_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }

    // Column reference: name or qualifier.name.
    auto e = std::make_unique<ParseExpr>(ParseExprKind::kColumnRef);
    if (Peek().type == TokenType::kDot) {
      Advance();
      e->qualifier = name;
      if (Peek().type == TokenType::kIdent ||
          Peek().type == TokenType::kQuotedIdent) {
        e->name = ToLower(Advance().text);
      } else {
        return Unexpected("a column name after '.'");
      }
    } else {
      e->name = name;
    }
    return e;
  }

  Result<std::string> ParseIdentifier(const char* what) {
    if (Peek().type == TokenType::kIdent ||
        Peek().type == TokenType::kQuotedIdent) {
      return ToLower(Advance().text);
    }
    return Unexpected(what);
  }

  static ParseExprPtr MakeBinary(BinaryOp op, ParseExprPtr l, ParseExprPtr r) {
    auto e = std::make_unique<ParseExpr>(ParseExprKind::kBinary);
    e->binary_op = op;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  static ParseExprPtr MakeNot(ParseExprPtr child) {
    auto e = std::make_unique<ParseExpr>(ParseExprKind::kUnary);
    e->unary_op = UnaryOp::kNot;
    e->children.push_back(std::move(child));
    return e;
  }

  /// Deep copy, used when desugaring duplicates an operand (IN, BETWEEN).
  static ParseExprPtr CloneParseExpr(const ParseExpr& e) {
    auto out = std::make_unique<ParseExpr>(e.kind);
    out->literal = e.literal;
    out->qualifier = e.qualifier;
    out->name = e.name;
    out->binary_op = e.binary_op;
    out->unary_op = e.unary_op;
    out->case_has_else = e.case_has_else;
    out->cast_type = e.cast_type;
    out->lambda_params = e.lambda_params;
    out->source_text = e.source_text;
    out->param_index = e.param_index;
    for (const auto& c : e.children) {
      out->children.push_back(CloneParseExpr(*c));
    }
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  SODA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSingleStatement();
}

Result<std::vector<Statement>> ParseScript(const std::string& sql) {
  SODA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace soda
