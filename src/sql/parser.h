/// \file parser.h
/// Recursive-descent SQL parser covering soda's dialect:
///
///   SELECT [select list] FROM ... WHERE ... GROUP BY ... HAVING ...
///     ORDER BY ... LIMIT n [OFFSET m] [UNION ALL select]
///   WITH [RECURSIVE] name [(cols)] AS (select) [, ...] select
///   ITERATE((init), (step), (stop)) in FROM       -- paper Listing 1
///   <table function>((subquery), ..., λ(a,b) expr, literal, ...) in FROM
///   λ(a[, b]) expr  /  LAMBDA(a[, b]) expr        -- paper Listing 3
///   CREATE TABLE t (col TYPE, ...), INSERT INTO .. VALUES/SELECT,
///   DROP TABLE [IF EXISTS] t
///
/// Alias forms: `expr AS name`, `expr name`, `expr "name"` (Listing 1
/// uses `SELECT 7 "x"`).

#ifndef SODA_SQL_PARSER_H_
#define SODA_SQL_PARSER_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace soda {

/// Parses a single SQL statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(const std::string& sql);

}  // namespace soda

#endif  // SODA_SQL_PARSER_H_
