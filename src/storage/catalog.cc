#include "storage/catalog.h"

#include "util/string_util.h"

namespace soda {

Result<TablePtr> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  TablePtr table;
  std::function<void(const std::string&)> notify;
  {
    MutexLock lock(&mu_);
    if (tables_.count(key)) {
      return Status::AlreadyExists("table already exists: " + key);
    }
    table = std::make_shared<Table>(key, std::move(schema));
    table->set_version(++next_table_version_);
    tables_[key] = table;
    ++catalog_version_;
    notify = listener_;
  }
  if (notify) notify(key);
  return table;
}

Status Catalog::RegisterTable(TablePtr table) {
  std::string key;
  std::function<void(const std::string&)> notify;
  {
    MutexLock lock(&mu_);
    key = table->name();
    if (tables_.count(key)) {
      return Status::AlreadyExists("table already exists: " + key);
    }
    table->set_version(++next_table_version_);
    tables_[key] = std::move(table);
    ++catalog_version_;
    notify = listener_;
  }
  if (notify) notify(key);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::string key = ToLower(name);
  MutexLock lock(&mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::KeyError("table not found: " + key);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(&mu_);
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  std::function<void(const std::string&)> notify;
  {
    MutexLock lock(&mu_);
    if (!tables_.erase(key)) {
      return Status::KeyError("table not found: " + key);
    }
    ++catalog_version_;
    notify = listener_;
  }
  if (notify) notify(key);
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, TablePtr table) {
  std::string key = ToLower(name);
  std::function<void(const std::string&)> notify;
  {
    MutexLock lock(&mu_);
    auto it = tables_.find(key);
    if (it == tables_.end()) {
      return Status::KeyError("table not found: " + key);
    }
    // Stamp before the swap makes the table shared: the old TablePtr keeps
    // its old version for snapshot readers, the new one is distinct, so
    // every fingerprint built against the old contents goes stale.
    table->set_version(++next_table_version_);
    it->second = std::move(table);
    ++catalog_version_;
    notify = listener_;
  }
  if (notify) notify(key);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Catalog::SnapshotInto(Catalog* out) const {
  // Copy under our lock, install under the target's: the two catalogs
  // are distinct objects (a snapshot is always a fresh local), so the
  // nested acquisition cannot deadlock and both maps stay consistent.
  std::map<std::string, TablePtr> copy;
  uint64_t version;
  {
    MutexLock lock(&mu_);
    copy = tables_;
    version = catalog_version_;
  }
  MutexLock lock(&out->mu_);
  out->tables_ = std::move(copy);
  // The snapshot remembers when it was taken; cache validation compares
  // this against the version a cached plan was built at.
  out->catalog_version_ = version;
}

size_t Catalog::TotalMemoryUsage() const {
  MutexLock lock(&mu_);
  size_t bytes = 0;
  for (const auto& [_, t] : tables_) bytes += t->MemoryUsage();
  return bytes;
}

uint64_t Catalog::catalog_version() const {
  MutexLock lock(&mu_);
  return catalog_version_;
}

void Catalog::SetChangeListener(
    std::function<void(const std::string&)> listener) {
  MutexLock lock(&mu_);
  listener_ = std::move(listener);
}

}  // namespace soda
