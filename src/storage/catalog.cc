#include "storage/catalog.h"

#include "util/string_util.h"

namespace soda {

Result<TablePtr> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  MutexLock lock(&mu_);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + key);
  }
  auto table = std::make_shared<Table>(key, std::move(schema));
  tables_[key] = table;
  return table;
}

Status Catalog::RegisterTable(TablePtr table) {
  MutexLock lock(&mu_);
  const std::string& key = table->name();
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + key);
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::string key = ToLower(name);
  MutexLock lock(&mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::KeyError("table not found: " + key);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(&mu_);
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  MutexLock lock(&mu_);
  if (!tables_.erase(key)) {
    return Status::KeyError("table not found: " + key);
  }
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, TablePtr table) {
  std::string key = ToLower(name);
  MutexLock lock(&mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::KeyError("table not found: " + key);
  }
  it->second = std::move(table);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Catalog::SnapshotInto(Catalog* out) const {
  // Copy under our lock, install under the target's: the two catalogs
  // are distinct objects (a snapshot is always a fresh local), so the
  // nested acquisition cannot deadlock and both maps stay consistent.
  std::map<std::string, TablePtr> copy;
  {
    MutexLock lock(&mu_);
    copy = tables_;
  }
  MutexLock lock(&out->mu_);
  out->tables_ = std::move(copy);
}

size_t Catalog::TotalMemoryUsage() const {
  MutexLock lock(&mu_);
  size_t bytes = 0;
  for (const auto& [_, t] : tables_) bytes += t->MemoryUsage();
  return bytes;
}

}  // namespace soda
