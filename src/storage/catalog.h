/// \file catalog.h
/// The database catalog: named tables, thread-safe registration/lookup.

#ifndef SODA_STORAGE_CATALOG_H_
#define SODA_STORAGE_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/mutex.h"
#include "util/status.h"

namespace soda {

/// Owns all base tables of a database instance.
///
/// Versioning (DESIGN.md §11): the catalog owns a global monotonic version
/// counter. Every publication — CreateTable, RegisterTable, ReplaceTable —
/// stamps the table with a fresh version before it becomes visible, and
/// every publication or drop bumps the catalog version. Plan-cache and
/// hash-table-recycler fingerprints embed (table name, table version,
/// schema), so any stage-and-swap mutation invalidates them by
/// construction; the optional change listener exists purely for eager
/// memory hygiene (evicting doomed cache entries promptly).
class Catalog {
 public:
  /// Creates an empty table. Fails with AlreadyExists on a name clash.
  Result<TablePtr> CreateTable(const std::string& name, Schema schema);

  /// Registers an externally built table (bulk loading path).
  Status RegisterTable(TablePtr table);

  /// Looks a table up by name (case-insensitive).
  Result<TablePtr> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Atomically replaces a table's contents with a freshly built version
  /// (the engine's copy-on-write mutation path: UPDATE/DELETE construct a
  /// new table and swap it in, so queries holding the old TablePtr keep
  /// reading a consistent snapshot — a miniature of HyPer's snapshot
  /// mechanism, see DESIGN.md). Fails with KeyError if absent.
  Status ReplaceTable(const std::string& name, TablePtr table);

  /// Sorted list of table names.
  std::vector<std::string> TableNames() const;

  /// Copies the current name→table map into `out`, replacing its
  /// contents. Tables are immutable once registered (mutation goes
  /// through ReplaceTable's copy-on-write swap), so the copy is a
  /// consistent point-in-time snapshot of the whole database at TablePtr
  /// cost — no row data is copied. The engine pins one per SELECT so a
  /// multi-scan statement (e.g. a self-join) never sees two versions of
  /// the same table, even under concurrent DML (DESIGN.md §7).
  void SnapshotInto(Catalog* out) const;

  size_t TotalMemoryUsage() const;

  /// Monotonic counter bumped on every Create/Register/Replace/Drop. A
  /// snapshot carries the version it was taken at, so cache validation can
  /// short-circuit ("nothing changed since this entry was built").
  uint64_t catalog_version() const;

  /// Installs a callback invoked with the (lower-cased) table name after
  /// every publication or drop. Fired OUTSIDE the catalog mutex, so the
  /// listener may take its own (leaf) locks freely; it must not call back
  /// into the catalog's mutating API. One listener; engine-owned.
  void SetChangeListener(std::function<void(const std::string&)> listener);

 private:
  mutable Mutex mu_;
  std::map<std::string, TablePtr> tables_ SODA_GUARDED_BY(mu_);
  uint64_t catalog_version_ SODA_GUARDED_BY(mu_) = 0;
  uint64_t next_table_version_ SODA_GUARDED_BY(mu_) = 0;
  std::function<void(const std::string&)> listener_ SODA_GUARDED_BY(mu_);
};

}  // namespace soda

#endif  // SODA_STORAGE_CATALOG_H_
