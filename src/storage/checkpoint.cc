#include "storage/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/serde.h"
#include "util/crc32.h"
#include "util/query_guard.h"
#include "util/retry.h"

namespace soda {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4B434453;  // "SDCK"
constexpr uint32_t kCheckpointVersion = 3;  // v3: per-table CRC-framed blocks
// Read-compat floor: v2 files (previous release; unframed table payloads,
// single whole-body CRC) still load, and the next checkpoint rewrites
// them as v3. Writing always uses kCheckpointVersion.
constexpr uint32_t kCheckpointVersionLegacy = 2;

Status IoError(const std::string& what, const std::string& path) {
  return Status::ExecutionError("checkpoint: " + what + " failed for " +
                                path + ": " + std::strerror(errno));
}

/// fsyncs the directory itself so the rename is durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("open(dir)", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync(dir)", dir);
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::vector<TablePtr>& tables, uint64_t last_lsn,
                       const std::string& data_dir) {
  BinaryWriter body;
  body.U32(static_cast<uint32_t>(tables.size()));
  for (const auto& table : tables) {
    // Block header (name + schema) lives outside the CRC frame so a
    // corrupt payload can still be identified and stubbed on load.
    body.Str(table->name());
    WriteSchema(table->schema(), &body);
    BinaryWriter payload;
    WriteTable(*table, &payload);
    body.U32(static_cast<uint32_t>(payload.buffer().size()));
    body.U32(Crc32(payload.buffer().data(), payload.buffer().size()));
    body.Bytes(payload.buffer().data(), payload.buffer().size());
  }

  BinaryWriter file;
  file.U32(kCheckpointMagic);
  file.U32(kCheckpointVersion);
  file.U64(last_lsn);
  file.U32(Crc32(body.buffer().data(), body.buffer().size()));
  file.U64(body.buffer().size());
  file.Bytes(body.buffer().data(), body.buffer().size());

  const std::string tmp_path = data_dir + "/" + kCheckpointTempFileName;
  const std::string final_path = data_dir + "/" + kCheckpointFileName;

  auto fail = [&](Status st) {
    ::unlink(tmp_path.c_str());
    return st;
  };

  Status probe = RetryTransient(DefaultIoRetryPolicy(), [] {
    return GuardProbe(QueryGuard::Current(), "checkpoint.write");
  });
  if (!probe.ok()) return fail(probe);

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return IoError("open", tmp_path);
  const std::string& bytes = file.buffer();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail(IoError("write", tmp_path));
    }
    written += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail(IoError("fsync", tmp_path));
  }
  ::close(fd);

  probe = GuardProbe(QueryGuard::Current(), "checkpoint.rename");
  if (!probe.ok()) return fail(probe);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return fail(IoError("rename", final_path));
  }
  return SyncDir(data_dir);
}

Result<bool> LoadCheckpoint(const std::string& data_dir,
                            std::vector<TablePtr>* tables,
                            uint64_t* last_lsn) {
  const std::string path = data_dir + "/" + kCheckpointFileName;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return false;
    return IoError("open", path);
  }
  std::string data;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) data.append(buf, n);
  ::close(fd);
  if (n < 0) return IoError("read", path);

  BinaryReader r(data);
  SODA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  SODA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kCheckpointMagic ||
      (version != kCheckpointVersion &&
       version != kCheckpointVersionLegacy)) {
    return Status::ExecutionError("checkpoint: bad magic/version in " + path);
  }
  SODA_ASSIGN_OR_RETURN(uint64_t lsn, r.U64());
  SODA_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
  SODA_ASSIGN_OR_RETURN(uint64_t body_len, r.U64());
  if (body_len != r.remaining()) {
    return Status::ExecutionError("checkpoint: truncated body in " + path);
  }
  if (version == kCheckpointVersionLegacy) {
    // v2 has no per-table frames: the single body CRC is all-or-nothing,
    // so (unlike v3 below) a mismatch is fatal.
    if (Crc32(data.data() + (data.size() - body_len), body_len) != crc) {
      return Status::ExecutionError("checkpoint: CRC mismatch in " + path);
    }
    SODA_ASSIGN_OR_RETURN(uint32_t num_tables, r.U32());
    std::vector<TablePtr> loaded;
    loaded.reserve(num_tables);
    for (uint32_t i = 0; i < num_tables; ++i) {
      SODA_ASSIGN_OR_RETURN(TablePtr table, ReadTableLegacyV2(&r));
      loaded.push_back(std::move(table));
    }
    *tables = std::move(loaded);
    *last_lsn = lsn;
    return true;
  }
  // A body-CRC mismatch alone is NOT fatal in v3: the per-table frames
  // below localize the damage. Structural parse failures past this point
  // still hard-fail — a corrupt block header leaves nothing to recover.
  (void)crc;
  SODA_ASSIGN_OR_RETURN(uint32_t num_tables, r.U32());
  std::vector<TablePtr> loaded;
  loaded.reserve(num_tables);
  for (uint32_t i = 0; i < num_tables; ++i) {
    SODA_ASSIGN_OR_RETURN(std::string name, r.Str());
    SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
    SODA_ASSIGN_OR_RETURN(uint32_t payload_len, r.U32());
    SODA_ASSIGN_OR_RETURN(uint32_t payload_crc, r.U32());
    SODA_ASSIGN_OR_RETURN(std::string_view payload, r.View(payload_len));
    TablePtr table;
    if (Crc32(payload.data(), payload.size()) == payload_crc) {
      BinaryReader tr(payload);
      auto parsed = ReadTable(&tr);
      if (parsed.ok()) table = std::move(*parsed);
    }
    if (table == nullptr) {
      // Payload corrupt beyond the segment-level recovery inside
      // ReadTable — keep the name + schema so the catalog entry exists,
      // but quarantine every read.
      table = std::make_shared<Table>(std::move(name), std::move(schema));
      table->MarkTableQuarantined();
    }
    loaded.push_back(std::move(table));
  }
  *tables = std::move(loaded);
  *last_lsn = lsn;
  return true;
}

Result<CheckpointScrubInfo> VerifyCheckpoint(const std::string& data_dir) {
  CheckpointScrubInfo info;
  const std::string path = data_dir + "/" + kCheckpointFileName;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return info;  // absent is healthy (fresh dir)
    return IoError("open", path);
  }
  info.present = true;
  std::string data;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) data.append(buf, n);
  ::close(fd);
  if (n < 0) return IoError("read", path);

  BinaryReader r(data);
  auto structural = [&]() -> Status {
    SODA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
    SODA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
    if (magic != kCheckpointMagic ||
        (version != kCheckpointVersion &&
         version != kCheckpointVersionLegacy)) {
      return Status::DataLoss("checkpoint: bad magic/version in " + path);
    }
    SODA_ASSIGN_OR_RETURN(uint64_t lsn, r.U64());
    (void)lsn;
    SODA_ASSIGN_OR_RETURN(uint32_t body_crc, r.U32());
    SODA_ASSIGN_OR_RETURN(uint64_t body_len, r.U64());
    if (body_len != r.remaining()) {
      return Status::DataLoss("checkpoint: truncated body in " + path);
    }
    info.body_crc_ok =
        Crc32(data.data() + (data.size() - body_len), body_len) == body_crc;
    SODA_ASSIGN_OR_RETURN(uint32_t num_tables, r.U32());
    info.num_tables = num_tables;
    if (version == kCheckpointVersionLegacy) {
      // v2 blocks are unframed — the body CRC above is the only at-rest
      // check (a mismatch triggers the rewrite-from-memory heal, which
      // also upgrades the file to v3).
      return Status::OK();
    }
    for (uint32_t i = 0; i < num_tables; ++i) {
      SODA_ASSIGN_OR_RETURN(std::string name, r.Str());
      SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(&r));
      (void)schema;
      SODA_ASSIGN_OR_RETURN(uint32_t payload_len, r.U32());
      SODA_ASSIGN_OR_RETURN(uint32_t payload_crc, r.U32());
      SODA_ASSIGN_OR_RETURN(std::string_view payload, r.View(payload_len));
      if (Crc32(payload.data(), payload.size()) != payload_crc) {
        info.corrupt_tables.push_back(std::move(name));
      }
    }
    return Status::OK();
  }();
  info.structure_ok = structural.ok();
  return info;
}

}  // namespace soda
