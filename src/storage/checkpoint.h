/// \file checkpoint.h
/// Binary table checkpoints: a point-in-time columnar snapshot of the
/// whole catalog, written atomically (temp file + rename) so a crash at
/// any instant leaves either the old checkpoint or the new one — never a
/// torn hybrid. After a successful checkpoint the WAL is truncated; the
/// stored `last_lsn` lets recovery skip WAL records that predate the
/// snapshot (a crash between rename and truncation is therefore harmless).
///
/// File layout (storage/serde.h encoding, native byte order):
///   u32 magic ("SDCK") | u32 version | u64 last_lsn
///   u32 crc32(body) | u64 body_len | body
///   body  = u32 num_tables | num_tables × block
///   block = Str name | Schema | u32 payload_len | u32 crc32(payload)
///           | payload (serialized Table)
///
/// v3 wraps every table in its own CRC-framed block, with the name and
/// schema duplicated *outside* the frame. A corrupt payload therefore
/// degrades to a quarantined name+schema stub (reads fail with kDataLoss,
/// the rest of the catalog recovers normally) instead of poisoning
/// startup. Header/structural damage — bad magic, bad version, truncation
/// — is still fatal: there is nothing trustworthy left to recover.

#ifndef SODA_STORAGE_CHECKPOINT_H_
#define SODA_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace soda {

inline constexpr char kCheckpointFileName[] = "checkpoint.soda";
inline constexpr char kCheckpointTempFileName[] = "checkpoint.soda.tmp";
inline constexpr char kWalFileName[] = "wal.soda";

/// Atomically persists `tables` into `data_dir`. `last_lsn` is the LSN of
/// the newest WAL record reflected in the snapshot. Fault-injection sites:
/// "checkpoint.write" (before the temp file is written) and
/// "checkpoint.rename" (before the atomic publish). On failure the temp
/// file is removed and the previous checkpoint remains authoritative.
Status WriteCheckpoint(const std::vector<TablePtr>& tables, uint64_t last_lsn,
                       const std::string& data_dir);

/// Loads the checkpoint in `data_dir` into `tables`/`last_lsn`. Returns
/// false (leaving the outputs untouched) when no checkpoint file exists.
/// A structurally damaged file (bad magic/version, truncated) is a hard
/// error — unlike a torn WAL tail it cannot arise from a crash, only from
/// external damage. A table block whose payload fails its CRC loads as a
/// quarantined name+schema stub instead (degraded reads, DESIGN.md §10).
Result<bool> LoadCheckpoint(const std::string& data_dir,
                            std::vector<TablePtr>* tables,
                            uint64_t* last_lsn);

/// At-rest verification summary for the scrub pass (storage/scrub.h).
struct CheckpointScrubInfo {
  bool present = false;       ///< a checkpoint file exists
  bool structure_ok = false;  ///< magic/version/length framing parsed
  bool body_crc_ok = false;   ///< whole-body CRC matched
  uint32_t num_tables = 0;
  std::vector<std::string> corrupt_tables;  ///< per-block CRC failures
};

/// Re-reads and checksum-verifies the checkpoint file without
/// constructing any tables. Only I/O errors fail; corruption is reported
/// in the returned summary.
Result<CheckpointScrubInfo> VerifyCheckpoint(const std::string& data_dir);

}  // namespace soda

#endif  // SODA_STORAGE_CHECKPOINT_H_
