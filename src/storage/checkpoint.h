/// \file checkpoint.h
/// Binary table checkpoints: a point-in-time columnar snapshot of the
/// whole catalog, written atomically (temp file + rename) so a crash at
/// any instant leaves either the old checkpoint or the new one — never a
/// torn hybrid. After a successful checkpoint the WAL is truncated; the
/// stored `last_lsn` lets recovery skip WAL records that predate the
/// snapshot (a crash between rename and truncation is therefore harmless).
///
/// File layout (storage/serde.h encoding, native byte order):
///   u32 magic ("SDCK") | u32 version | u64 last_lsn
///   u32 crc32(body) | u64 body_len | body
///   body = u32 num_tables | num_tables × serialized Table

#ifndef SODA_STORAGE_CHECKPOINT_H_
#define SODA_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace soda {

inline constexpr char kCheckpointFileName[] = "checkpoint.soda";
inline constexpr char kCheckpointTempFileName[] = "checkpoint.soda.tmp";
inline constexpr char kWalFileName[] = "wal.soda";

/// Atomically persists `tables` into `data_dir`. `last_lsn` is the LSN of
/// the newest WAL record reflected in the snapshot. Fault-injection sites:
/// "checkpoint.write" (before the temp file is written) and
/// "checkpoint.rename" (before the atomic publish). On failure the temp
/// file is removed and the previous checkpoint remains authoritative.
Status WriteCheckpoint(const std::vector<TablePtr>& tables, uint64_t last_lsn,
                       const std::string& data_dir);

/// Loads the checkpoint in `data_dir` into `tables`/`last_lsn`. Returns
/// false (leaving the outputs untouched) when no checkpoint file exists;
/// a present-but-corrupt checkpoint is a hard error — unlike a torn WAL
/// tail it cannot arise from a crash, only from external damage.
Result<bool> LoadCheckpoint(const std::string& data_dir,
                            std::vector<TablePtr>* tables,
                            uint64_t* last_lsn);

}  // namespace soda

#endif  // SODA_STORAGE_CHECKPOINT_H_
