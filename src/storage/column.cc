#include "storage/column.h"

namespace soda {

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kVarchar:
      str_.reserve(n);
      break;
    case DataType::kDouble:
      f64_.reserve(n);
      break;
    default:
      i64_.reserve(n);
      break;
  }
}

void Column::Clear() {
  i64_.clear();
  f64_.clear();
  str_.clear();
  validity_.clear();
}

void Column::AppendNull() {
  if (validity_.empty()) validity_.assign(size(), 1);
  switch (type_) {
    case DataType::kVarchar:
      str_.emplace_back();
      break;
    case DataType::kDouble:
      f64_.push_back(0.0);
      break;
    default:
      i64_.push_back(0);
      break;
  }
  validity_.push_back(0);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
    case DataType::kBigInt:
      AppendBigInt(v.AsBigInt());
      break;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case DataType::kVarchar:
      AppendString(v.varchar_value());
      break;
    default:
      SODA_DCHECK(false && "append to invalid column");
  }
}

void Column::AppendFrom(const Column& other, size_t row) {
  SODA_DCHECK(other.type_ == type_);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kVarchar:
      AppendString(other.str_[row]);
      break;
    case DataType::kDouble:
      AppendDouble(other.f64_[row]);
      break;
    default:
      AppendBigInt(other.i64_[row]);
      break;
  }
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(i64_[i] != 0);
    case DataType::kBigInt:
      return Value::BigInt(i64_[i]);
    case DataType::kDouble:
      return Value::Double(f64_[i]);
    case DataType::kVarchar:
      return Value::Varchar(str_[i]);
    default:
      return Value::Null();
  }
}

bool Column::HasNulls() const {
  for (uint8_t v : validity_) {
    if (!v) return true;
  }
  return false;
}

void Column::AppendSlice(const Column& other, size_t offset, size_t count) {
  SODA_DCHECK(other.type_ == type_);
  SODA_DCHECK(offset + count <= other.size());
  bool other_has_validity = !other.validity_.empty();
  bool need_validity = other_has_validity || !validity_.empty();
  if (need_validity && validity_.empty()) validity_.assign(size(), 1);
  switch (type_) {
    case DataType::kVarchar:
      str_.insert(str_.end(), other.str_.begin() + offset,
                  other.str_.begin() + offset + count);
      break;
    case DataType::kDouble:
      f64_.insert(f64_.end(), other.f64_.begin() + offset,
                  other.f64_.begin() + offset + count);
      break;
    default:
      i64_.insert(i64_.end(), other.i64_.begin() + offset,
                  other.i64_.begin() + offset + count);
      break;
  }
  if (need_validity) {
    if (other_has_validity) {
      validity_.insert(validity_.end(), other.validity_.begin() + offset,
                       other.validity_.begin() + offset + count);
    } else {
      validity_.insert(validity_.end(), count, 1);
    }
  }
}

void Column::AppendGather(const Column& other, const uint32_t* rows,
                          size_t count) {
  SODA_DCHECK(other.type_ == type_);
  const bool other_has_validity = !other.validity_.empty();
  // Materialize our validity if the source has one (an empty destination
  // still needs the vector non-conceptually-empty, hence the flag).
  const bool need_validity = other_has_validity || !validity_.empty();
  if (need_validity && validity_.empty()) validity_.assign(size(), 1);
  const size_t old = size();
  switch (type_) {
    case DataType::kVarchar:
      str_.reserve(old + count);
      for (size_t i = 0; i < count; ++i) str_.push_back(other.str_[rows[i]]);
      break;
    case DataType::kDouble:
      f64_.reserve(old + count);
      for (size_t i = 0; i < count; ++i) f64_.push_back(other.f64_[rows[i]]);
      break;
    default:
      i64_.reserve(old + count);
      for (size_t i = 0; i < count; ++i) i64_.push_back(other.i64_[rows[i]]);
      break;
  }
  if (need_validity) {
    validity_.reserve(old + count);
    if (other_has_validity) {
      for (size_t i = 0; i < count; ++i) {
        validity_.push_back(other.validity_[rows[i]]);
      }
    } else {
      validity_.insert(validity_.end(), count, 1);
    }
  }
}

void Column::AppendRepeated(const Column& other, size_t row, size_t count) {
  SODA_DCHECK(other.type_ == type_);
  const bool null = other.IsNull(row);
  const bool need_validity = null || !validity_.empty();
  if (need_validity && validity_.empty()) validity_.assign(size(), 1);
  switch (type_) {
    case DataType::kVarchar:
      str_.insert(str_.end(), count, null ? std::string() : other.str_[row]);
      break;
    case DataType::kDouble:
      f64_.insert(f64_.end(), count, null ? 0.0 : other.f64_[row]);
      break;
    default:
      i64_.insert(i64_.end(), count, null ? 0 : other.i64_[row]);
      break;
  }
  if (need_validity) {
    validity_.insert(validity_.end(), count, null ? 0 : 1);
  }
}

Column Column::FromDoubles(std::vector<double> data) {
  Column c(DataType::kDouble);
  c.f64_ = std::move(data);
  return c;
}

Column Column::FromBigInts(std::vector<int64_t> data) {
  Column c(DataType::kBigInt);
  c.i64_ = std::move(data);
  return c;
}

Column Column::FromRawI64(DataType type, std::vector<int64_t> data) {
  SODA_DCHECK(type == DataType::kBigInt || type == DataType::kBool);
  Column c(type);
  c.i64_ = std::move(data);
  return c;
}

Column Column::FromStrings(std::vector<std::string> data) {
  Column c(DataType::kVarchar);
  c.str_ = std::move(data);
  return c;
}

void Column::SetValidity(std::vector<uint8_t> validity) {
  SODA_DCHECK(validity.empty() || validity.size() == size());
  validity_ = std::move(validity);
}

void Column::ResizeNumeric(size_t n) {
  SODA_DCHECK(type_ != DataType::kVarchar);
  if (type_ == DataType::kDouble) {
    f64_.resize(n, 0.0);
  } else {
    i64_.resize(n, 0);
  }
  if (!validity_.empty()) validity_.resize(n, 1);
}

size_t Column::MemoryUsage() const {
  size_t bytes = i64_.capacity() * sizeof(int64_t) +
                 f64_.capacity() * sizeof(double) +
                 validity_.capacity();
  for (const auto& s : str_) bytes += sizeof(std::string) + s.capacity();
  return bytes;
}

}  // namespace soda
