/// \file column.h
/// Typed columnar storage — the single vector format used both for base
/// table columns and for the chunks flowing between operators.
///
/// Payload layout (column-store, paper §3):
///   kBool / kBigInt -> contiguous int64_t
///   kDouble         -> contiguous double
///   kVarchar        -> std::vector<std::string>
/// NULLs are tracked by an optional validity byte-vector; an empty validity
/// vector means "all valid", so fully-dense numeric columns carry zero
/// overhead and their raw arrays can be handed straight to the analytics
/// operators' inner loops.

#ifndef SODA_STORAGE_COLUMN_H_
#define SODA_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"
#include "util/logging.h"

namespace soda {

/// A single typed column of values.
class Column {
 public:
  Column() : type_(DataType::kInvalid) {}
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const {
    switch (type_) {
      case DataType::kVarchar:
        return str_.size();
      case DataType::kDouble:
        return f64_.size();
      default:
        return i64_.size();
    }
  }

  void Reserve(size_t n);
  void Clear();

  // --- Appending ---------------------------------------------------------
  void AppendBigInt(int64_t v) {
    SODA_DCHECK(type_ == DataType::kBigInt || type_ == DataType::kBool);
    i64_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
  }
  void AppendBool(bool v) { AppendBigInt(v ? 1 : 0); }
  void AppendDouble(double v) {
    SODA_DCHECK(type_ == DataType::kDouble);
    f64_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
  }
  void AppendString(std::string v) {
    SODA_DCHECK(type_ == DataType::kVarchar);
    str_.push_back(std::move(v));
    if (!validity_.empty()) validity_.push_back(1);
  }
  /// Bulk append of `n` non-null numeric values (segment-decode and
  /// deserialization fast paths — one memcpy instead of n push_backs).
  void AppendBigInts(const int64_t* data, size_t n) {
    SODA_DCHECK(type_ == DataType::kBigInt || type_ == DataType::kBool);
    i64_.insert(i64_.end(), data, data + n);
    if (!validity_.empty()) validity_.insert(validity_.end(), n, 1);
  }
  void AppendDoubles(const double* data, size_t n) {
    SODA_DCHECK(type_ == DataType::kDouble);
    f64_.insert(f64_.end(), data, data + n);
    if (!validity_.empty()) validity_.insert(validity_.end(), n, 1);
  }
  /// Appends `n` copies of one non-null value (RLE run expansion).
  void AppendRunBigInt(int64_t v, size_t n) {
    SODA_DCHECK(type_ == DataType::kBigInt || type_ == DataType::kBool);
    i64_.insert(i64_.end(), n, v);
    if (!validity_.empty()) validity_.insert(validity_.end(), n, 1);
  }
  void AppendRunDouble(double v, size_t n) {
    SODA_DCHECK(type_ == DataType::kDouble);
    f64_.insert(f64_.end(), n, v);
    if (!validity_.empty()) validity_.insert(validity_.end(), n, 1);
  }
  /// Extends the int payload by `n` non-null slots and returns the write
  /// pointer for them (FOR bit-unpacking decodes straight into place).
  int64_t* ExtendI64(size_t n) {
    SODA_DCHECK(type_ == DataType::kBigInt || type_ == DataType::kBool);
    const size_t old = i64_.size();
    i64_.resize(old + n);
    if (!validity_.empty()) validity_.insert(validity_.end(), n, 1);
    return i64_.data() + old;
  }
  /// Appends a NULL (materializes the validity vector on first use).
  void AppendNull();
  /// Appends a boxed value; NULLs allowed; numeric payloads are coerced to
  /// the column type.
  void AppendValue(const Value& v);
  /// Appends `other[row]` (same type required).
  void AppendFrom(const Column& other, size_t row);

  // --- Element access -----------------------------------------------------
  bool IsNull(size_t i) const {
    return !validity_.empty() && validity_[i] == 0;
  }
  int64_t GetBigInt(size_t i) const { return i64_[i]; }
  bool GetBool(size_t i) const { return i64_[i] != 0; }
  double GetDouble(size_t i) const { return f64_[i]; }
  const std::string& GetString(size_t i) const { return str_[i]; }
  /// Numeric read regardless of int/double payload.
  double GetNumeric(size_t i) const {
    return type_ == DataType::kDouble ? f64_[i]
                                      : static_cast<double>(i64_[i]);
  }
  Value GetValue(size_t i) const;

  // --- Raw access for tight loops ----------------------------------------
  const int64_t* I64Data() const { return i64_.data(); }
  int64_t* MutableI64Data() { return i64_.data(); }
  const double* F64Data() const { return f64_.data(); }
  double* MutableF64Data() { return f64_.data(); }
  const std::vector<std::string>& Strings() const { return str_; }
  /// Empty means all-valid.
  const std::vector<uint8_t>& Validity() const { return validity_; }
  bool HasNulls() const;

  /// Appends rows [offset, offset+count) of `other` (same type).
  void AppendSlice(const Column& other, size_t offset, size_t count);

  /// Appends `other[rows[0]], ..., other[rows[count-1]]` (same type) with
  /// one type dispatch for the whole batch — the selection-vector
  /// materialization step of the vectorized join probe.
  void AppendGather(const Column& other, const uint32_t* rows, size_t count);

  /// Appends `count` copies of `other[row]` (same type); bulk form of the
  /// repeated AppendFrom loops in cross-join expansion.
  void AppendRepeated(const Column& other, size_t row, size_t count);

  /// Bulk-construction helpers for workload generators.
  static Column FromDoubles(std::vector<double> data);
  static Column FromBigInts(std::vector<int64_t> data);

  // --- Deserialization helpers (storage/serde) ---------------------------
  /// Adopts a raw int64 payload as a kBigInt or kBool column.
  static Column FromRawI64(DataType type, std::vector<int64_t> data);
  static Column FromStrings(std::vector<std::string> data);
  /// Installs a validity vector wholesale (size must match, or empty for
  /// all-valid).
  void SetValidity(std::vector<uint8_t> validity);

  /// Resizes a numeric column to `n` rows (zero-filled), used by operators
  /// that write results positionally.
  void ResizeNumeric(size_t n);

  /// Approximate heap footprint in bytes (used by the memory-accounting
  /// ablation, paper §5.1).
  size_t MemoryUsage() const;

 private:
  DataType type_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<uint8_t> validity_;  // empty == all valid
};

}  // namespace soda

#endif  // SODA_STORAGE_COLUMN_H_
