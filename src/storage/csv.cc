#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace soda {

namespace internal {

Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quote in CSV record: " +
                                   line);
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace internal

namespace {

bool LooksLikeBigInt(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  (void)std::strtoll(s.c_str(), &end, 10);
  return errno == 0 && end && *end == '\0';
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

/// Narrowest type covering all sampled values of a column; empty strings
/// count as NULLs and do not constrain the type.
DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t col) {
  bool all_int = true, all_double = true, any_value = false;
  // analyze:allow(guard-probe: rows is the bounded inference sample)
  for (const auto& row : rows) {
    if (col >= row.size() || row[col].empty()) continue;
    any_value = true;
    if (!LooksLikeBigInt(row[col])) all_int = false;
    if (!LooksLikeDouble(row[col])) all_double = false;
  }
  if (!any_value) return DataType::kVarchar;
  if (all_int) return DataType::kBigInt;
  if (all_double) return DataType::kDouble;
  return DataType::kVarchar;
}

Result<Value> ParseCell(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null(type);
  switch (type) {
    case DataType::kBigInt:
      if (!LooksLikeBigInt(text)) {
        return Status::TypeError("CSV value '" + text + "' is not an integer");
      }
      return Value::BigInt(std::strtoll(text.c_str(), nullptr, 10));
    case DataType::kDouble:
      if (!LooksLikeDouble(text)) {
        return Status::TypeError("CSV value '" + text + "' is not numeric");
      }
      return Value::Double(std::strtod(text.c_str(), nullptr));
    case DataType::kBool:
      if (EqualsIgnoreCase(text, "true") || text == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(text, "false") || text == "0") {
        return Value::Bool(false);
      }
      return Status::TypeError("CSV value '" + text + "' is not boolean");
    default:
      return Value::Varchar(text);
  }
}

std::string QuoteField(const std::string& s, char delimiter) {
  bool needs_quotes = s.find(delimiter) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<TablePtr> ImportCsv(Catalog* catalog, const std::string& table_name,
                           const std::string& path,
                           const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open CSV file: " + path);
  }

  std::string line;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;

  if (options.header) {
    if (!std::getline(file, line)) {
      return Status::InvalidArgument("empty CSV file: " + path);
    }
    SODA_ASSIGN_OR_RETURN(names,
                          internal::SplitCsvRecord(line, options.delimiter));
  }
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    SODA_ASSIGN_OR_RETURN(auto fields,
                          internal::SplitCsvRecord(line, options.delimiter));
    rows.push_back(std::move(fields));
  }
  if (rows.empty() && names.empty()) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }

  size_t num_cols = names.empty() ? rows[0].size() : names.size();
  if (names.empty()) {
    for (size_t c = 0; c < num_cols; ++c) {
      names.push_back("c" + std::to_string(c + 1));
    }
  }
  // analyze:allow(guard-probe: arity validation; every row then lands in AppendRow, which charges storage.append)
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_cols) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(r + 1) + " has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
  }

  // Type inference over a bounded sample.
  std::vector<std::vector<std::string>> sample(
      rows.begin(),
      rows.begin() + std::min(rows.size(), options.inference_rows));
  Schema schema;
  for (size_t c = 0; c < num_cols; ++c) {
    schema.AddField(Field(names[c], InferColumnType(sample, c)));
  }

  SODA_ASSIGN_OR_RETURN(TablePtr table,
                        catalog->CreateTable(table_name, schema));
  table->Reserve(rows.size());
  // analyze:allow(guard-probe: AppendRow charges the guard under storage.append per row)
  for (const auto& record : rows) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      auto v = ParseCell(record[c], schema.field(c).type);
      if (!v.ok()) {
        // analyze:allow(status: best-effort cleanup; the parse error is what matters)
        (void)catalog->DropTable(table_name);
        return v.status();
      }
      row.push_back(std::move(v.ValueOrDie()));
    }
    Status st = table->AppendRow(row);
    if (!st.ok()) {
      // analyze:allow(status: best-effort cleanup; the append error is what matters)
      (void)catalog->DropTable(table_name);
      return st;
    }
  }
  return table;
}

Status ExportCsv(const Table& table, const std::string& path,
                 const CsvOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open CSV file for writing: " +
                                   path);
  }
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c) file << options.delimiter;
    file << QuoteField(schema.field(c).name, options.delimiter);
  }
  file << '\n';
  // analyze:allow(guard-probe: export writes to a file; no query guard in scope)
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) file << options.delimiter;
      if (!table.column(c).IsNull(r)) {
        file << QuoteField(table.column(c).GetValue(r).ToString(),
                           options.delimiter);
      }
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::ExecutionError("I/O error writing CSV: " + path);
  }
  return Status::OK();
}

}  // namespace soda
