/// \file csv.h
/// CSV import/export for bulk data interchange.
///
/// The paper (§3) counts HyPer's "fast data loading" among the properties
/// that make an RDBMS attractive to data scientists; this is soda's
/// loading path for external files. Import infers a schema (BIGINT →
/// DOUBLE → VARCHAR, in that order of preference) from a sample unless an
/// explicit schema is given; export writes RFC-4180-style CSV (quotes
/// doubled, fields quoted when needed).

#ifndef SODA_STORAGE_CSV_H_
#define SODA_STORAGE_CSV_H_

#include <string>

#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace soda {

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names. If false, columns are named c1..cn.
  bool header = true;
  /// Rows sampled for type inference.
  size_t inference_rows = 1000;
};

/// Parses CSV text into a new table registered under `table_name`.
Result<TablePtr> ImportCsv(Catalog* catalog, const std::string& table_name,
                           const std::string& path,
                           const CsvOptions& options = {});

/// Writes `table` to `path` (with a header row).
Status ExportCsv(const Table& table, const std::string& path,
                 const CsvOptions& options = {});

namespace internal {
/// Splits one CSV record (quote-aware); exposed for tests.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char delimiter);
}  // namespace internal

}  // namespace soda

#endif  // SODA_STORAGE_CSV_H_
