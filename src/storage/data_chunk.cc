#include "storage/data_chunk.h"

namespace soda {

DataChunk::DataChunk(const Schema& schema) {
  columns_.reserve(schema.num_fields());
  for (const auto& f : schema.fields()) columns_.emplace_back(f.type);
}

void DataChunk::AppendRowFrom(const DataChunk& other, size_t row) {
  SODA_DCHECK(other.num_columns() == num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
}

void DataChunk::AppendRow(const std::vector<Value>& row) {
  SODA_DCHECK(row.size() == num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
}

std::vector<Value> DataChunk::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (const auto& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

size_t DataChunk::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

}  // namespace soda
