/// \file data_chunk.h
/// The batch format flowing between physical operators (vectorized
/// execution; our stand-in for HyPer's tuple-at-a-time compiled pipelines —
/// see DESIGN.md §3 on the codegen substitution).

#ifndef SODA_STORAGE_DATA_CHUNK_H_
#define SODA_STORAGE_DATA_CHUNK_H_

#include <vector>

#include "storage/column.h"
#include "types/schema.h"

namespace soda {

/// Rows per chunk; sized so a chunk of a few numeric columns fits in L2.
inline constexpr size_t kChunkCapacity = 2048;

/// A horizontal batch of rows in columnar layout. All columns have equal
/// length.
class DataChunk {
 public:
  DataChunk() = default;

  /// Creates empty columns matching `schema`.
  explicit DataChunk(const Schema& schema);
  explicit DataChunk(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  bool empty() const { return num_rows() == 0; }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }
  std::vector<Column>& columns() { return columns_; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Appends full row `row` of `other` (same column types).
  void AppendRowFrom(const DataChunk& other, size_t row);

  /// Appends a boxed row.
  void AppendRow(const std::vector<Value>& row);

  /// Row `row` as boxed values (tests / result rendering).
  std::vector<Value> GetRow(size_t row) const;

  void Clear() {
    for (auto& c : columns_) c.Clear();
  }

  size_t MemoryUsage() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace soda

#endif  // SODA_STORAGE_DATA_CHUNK_H_
