#include "storage/durability.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "storage/checkpoint.h"
#include "util/logging.h"
#include "util/query_guard.h"

namespace soda {

Status ApplyWalRecord(Catalog* catalog, const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      auto table = std::make_shared<Table>(record.table, record.schema);
      table->set_partition_spec(record.spec);
      if (catalog->HasTable(record.table)) {
        return catalog->ReplaceTable(record.table, std::move(table));
      }
      return catalog->RegisterTable(std::move(table));
    }
    case WalRecordType::kDropTable: {
      Status st = catalog->DropTable(record.table);
      // A drop of a missing table can only mean the log predates external
      // damage; recovery stays lenient here, matching torn-tail handling.
      if (!st.ok() && st.code() != StatusCode::kKeyError) return st;
      return Status::OK();
    }
    case WalRecordType::kAppendRows: {
      SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(record.table));
      if (table->quarantined()) {
        // The base payload is damaged; splicing new rows into placeholder
        // data would fabricate row positions. The appended rows stay in
        // the WAL (it is not truncated past them until the table heals),
        // and every read of the table already fails with kDataLoss —
        // recovery stays lenient so the rest of the catalog comes up.
        SODA_LOG(Warn) << "wal replay: skipping append to quarantined table "
                       << record.table;
        return Status::OK();
      }
      if (table->num_columns() != record.rows->num_columns()) {
        return Status::ExecutionError(
            "wal replay: append arity mismatch for table " + record.table);
      }
      // Recovery is single-threaded and the catalog is private to this
      // engine, so appending in place (no copy-on-write swap) is safe. A
      // sealed image (encoded checkpoint / kTableImage) is flattened
      // first; Open() re-seals once the whole tail is applied.
      SODA_RETURN_NOT_OK(table->EnsureFlat());
      for (size_t c = 0; c < table->num_columns(); ++c) {
        if (table->column(c).type() != record.rows->column(c).type()) {
          return Status::ExecutionError(
              "wal replay: append type mismatch for table " + record.table);
        }
      }
      for (size_t c = 0; c < table->num_columns(); ++c) {
        table->column(c).AppendSlice(record.rows->column(c), 0,
                                     record.rows->num_rows());
      }
      return Status::OK();
    }
    case WalRecordType::kTableImage: {
      if (catalog->HasTable(record.table)) {
        return catalog->ReplaceTable(record.table, record.rows);
      }
      return catalog->RegisterTable(record.rows);
    }
  }
  return Status::Internal("wal replay: unknown record type");
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& data_dir, Catalog* catalog, WalFsyncMode mode,
    size_t group_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (ec) {
    return Status::ExecutionError("durability: cannot create data_dir " +
                                  data_dir + ": " + ec.message());
  }
  if (!std::filesystem::is_directory(data_dir, ec)) {
    return Status::ExecutionError("durability: data_dir is not a directory: " +
                                  data_dir);
  }

  uint64_t checkpoint_lsn = 0;
  std::vector<TablePtr> tables;
  SODA_ASSIGN_OR_RETURN(bool has_checkpoint,
                        LoadCheckpoint(data_dir, &tables, &checkpoint_lsn));
  if (has_checkpoint) {
    for (auto& table : tables) {
      SODA_RETURN_NOT_OK(catalog->RegisterTable(std::move(table)));
    }
  }

  std::vector<WalRecord> records;
  SODA_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                        Wal::Open(data_dir + "/" + kWalFileName, &records));
  uint64_t last_lsn = checkpoint_lsn;
  std::vector<std::string> flattened;
  // analyze:allow(guard-probe: WAL replay during recovery; no query guard in scope)
  for (const WalRecord& record : records) {
    if (record.lsn <= checkpoint_lsn) continue;  // already in the snapshot
    if (record.type == WalRecordType::kAppendRows &&
        catalog->HasTable(record.table)) {
      SODA_ASSIGN_OR_RETURN(TablePtr t, catalog->GetTable(record.table));
      if (t->sealed()) flattened.push_back(record.table);
    }
    SODA_RETURN_NOT_OK(ApplyWalRecord(catalog, record));
    last_lsn = record.lsn;
  }
  wal->set_last_lsn(std::max(wal->last_lsn(), last_lsn));
  wal->SetFsyncMode(mode, group_bytes);

  // Replay flattens sealed tables it appends into; restore the encoded
  // representation so a recovered engine matches the pre-crash footprint.
  // Partitioned tables are re-sealed unconditionally — pruning relies on
  // the clustered layout. Tables checkpointed flat deliberately stay
  // flat (recovery reproduces the stored representation, bit for bit).
  for (const std::string& name : catalog->TableNames()) {
    SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
    const bool was_flattened =
        std::find(flattened.begin(), flattened.end(), name) !=
        flattened.end();
    if (!table->sealed() &&
        (table->partition_spec().partitioned() || was_flattened)) {
      SODA_RETURN_NOT_OK(table->Seal());
    }
  }
  return std::unique_ptr<DurabilityManager>(
      new DurabilityManager(data_dir, std::move(wal)));
}

Status DurabilityManager::Commit(const std::function<Status()>& log,
                                 const std::function<Status()>& publish) {
  // commit_mu_ → Wal::mu_ (inside log) → released; then commit_mu_ →
  // Catalog::mu_ (inside publish). See the lock-order comment in the
  // header.
  MutexLock lock(&commit_mu_);
  SODA_RETURN_NOT_OK(log());
  return publish();
}

Status DurabilityManager::Checkpoint(const Catalog& catalog) {
  // Holding commit_mu_ makes snapshot + last_lsn + truncate atomic with
  // respect to statement commits: every LSN at or below the recorded one
  // has its effect in the snapshot, and no commit can slip between the
  // snapshot and the truncate.
  MutexLock lock(&commit_mu_);
  std::vector<TablePtr> tables;
  for (const std::string& name : catalog.TableNames()) {
    SODA_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    // A table-level quarantined stub holds no rows, and WriteTable has no
    // way to persist whole-table quarantine (only the sealed per-group
    // bitmap). Snapshotting it would replace the damaged-but-recoverable
    // block with a valid empty table, rotate away the WAL records that
    // ApplyWalRecord deliberately keeps for the table, and make the next
    // restart load it as healthy-and-empty. Refuse — manual CHECKPOINT
    // and the auto-checkpoint both stop here until the operator DROPs or
    // restores the table. (Group-level quarantine is fine: it survives
    // serialization.)
    if (table->table_level_quarantined()) {
      return Status::DataLoss(
          "checkpoint: table '" + name +
          "' is quarantined at table level (corrupt checkpoint block); "
          "DROP or restore it before checkpointing — rewriting now would "
          "persist it as a valid empty table and discard the WAL tail");
    }
    tables.push_back(std::move(table));
  }
  // Everything up to the current LSN is reflected in the snapshot.
  const uint64_t lsn = wal_->last_lsn();
  SODA_RETURN_NOT_OK(WriteCheckpoint(tables, lsn, data_dir_));
  SODA_RETURN_NOT_OK(wal_->Rotate());
  last_checkpoint_lsn_.store(lsn);
  checkpoint_count_.fetch_add(1);
  return Status::OK();
}

Status DurabilityManager::VerifyAndHealCheckpoint(const Catalog& catalog,
                                                  ScrubReport* report) {
  SODA_ASSIGN_OR_RETURN(CheckpointScrubInfo info, VerifyCheckpoint(data_dir_));
  report->checkpoint_present = info.present;
  if (!info.present) return Status::OK();
  const bool corrupt =
      !info.structure_ok || !info.body_crc_ok || !info.corrupt_tables.empty();
  if (!corrupt) return Status::OK();
  report->checkpoint_ok = false;
  // A table-level quarantined stub holds no rows: rewriting the
  // checkpoint from it would replace the (recoverable-from-backup)
  // damaged block with a valid-but-empty table and silently drop the
  // quarantine marker across restart. Leave the file alone until the
  // operator DROPs or restores the table. Group-level quarantine is
  // fine to rewrite — serde v3 persists the per-group bitmap.
  for (const std::string& name : catalog.TableNames()) {
    Result<TablePtr> t = catalog.GetTable(name);
    if (t.ok() && t.ValueOrDie()->table_level_quarantined()) {
      SODA_LOG(Warn) << "scrub: checkpoint in " << data_dir_
                     << " is damaged but table '" << name
                     << "' is quarantined; skipping rewrite (DROP or "
                        "restore the table first)";
      return Status::OK();
    }
  }
  SODA_LOG(Warn) << "scrub: checkpoint in " << data_dir_
                 << " failed verification (" << info.corrupt_tables.size()
                 << " corrupt table blocks); rewriting from memory";
  // Memory is authoritative while the engine is up: a full checkpoint
  // replaces the damaged file atomically (temp + rename).
  SODA_RETURN_NOT_OK(Checkpoint(catalog));
  report->checkpoint_rewritten = true;
  return Status::OK();
}

DurabilityManager::~DurabilityManager() { StopMaintenance(); }

void DurabilityManager::StartMaintenance(const Catalog* catalog,
                                         MaintenanceOptions opts,
                                         std::function<Status()> scrub) {
  StopMaintenance();
  {
    MutexLock lock(&maint_mu_);
    maint_opts_ = opts;
    maint_stop_ = false;
  }
  maint_catalog_ = catalog;
  maint_scrub_ = std::move(scrub);
  maint_thread_ = std::thread([this] { MaintenanceLoop(); });
}

void DurabilityManager::StopMaintenance() {
  {
    MutexLock lock(&maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.NotifyAll();
  if (maint_thread_.joinable()) maint_thread_.join();
}

void DurabilityManager::ConfigureMaintenance(const MaintenanceOptions& opts) {
  {
    MutexLock lock(&maint_mu_);
    maint_opts_ = opts;
  }
  maint_cv_.NotifyAll();  // re-evaluate thresholds promptly
}

void DurabilityManager::MaintenanceLoop() {
  std::chrono::milliseconds since_scrub{0};
  std::string last_checkpoint_error;
  auto last_wake = std::chrono::steady_clock::now();
  for (;;) {
    MaintenanceOptions opts;
    {
      MutexLock lock(&maint_mu_);
      if (maint_stop_) return;
      maint_cv_.WaitFor(&maint_mu_, maint_opts_.poll_interval);
      if (maint_stop_) return;
      opts = maint_opts_;
    }
    // Act with no maintenance lock held: Checkpoint takes commit_mu_ and
    // the scrub closure takes the engine write lock — both are above
    // maint_mu_ in no ordering at all (maint_mu_ is a leaf).
    const bool checkpoint_due =
        (opts.wal_auto_checkpoint_bytes > 0 &&
         wal_->size_bytes() >= opts.wal_auto_checkpoint_bytes) ||
        (opts.wal_auto_checkpoint_records > 0 &&
         wal_->record_count() >= opts.wal_auto_checkpoint_records);
    if (checkpoint_due && maint_catalog_ != nullptr) {
      Status st = FaultInjector::Global().Probe("durability.auto_checkpoint");
      if (st.ok()) st = Checkpoint(*maint_catalog_);
      if (st.ok()) {
        auto_checkpoint_count_.fetch_add(1);
        last_checkpoint_error.clear();
      } else {
        // Next poll retries; the WAL keeps growing but stays correct. A
        // persistent failure (e.g. a quarantined table) would otherwise
        // repeat every poll — log only when the message changes.
        if (st.message() != last_checkpoint_error) {
          last_checkpoint_error = st.message();
          SODA_LOG(Warn) << "auto-checkpoint failed: " << st.message();
        }
      }
    }
    // Scrub cadence tracks wall time actually elapsed: WaitFor can return
    // well before poll_interval (ConfigureMaintenance notifies the CV on
    // every SET), so counting a full interval per wakeup would fire
    // scrubs early under frequent reconfiguration.
    const auto now = std::chrono::steady_clock::now();
    since_scrub += std::chrono::duration_cast<std::chrono::milliseconds>(
        now - last_wake);
    last_wake = now;
    if (opts.scrub_interval.count() > 0 && maint_scrub_ != nullptr &&
        since_scrub >= opts.scrub_interval) {
      since_scrub = std::chrono::milliseconds{0};
      Status st = maint_scrub_();
      if (st.ok()) {
        scrub_pass_count_.fetch_add(1);
      } else {
        SODA_LOG(Warn) << "background scrub failed: " << st.message();
      }
    }
  }
}

}  // namespace soda
