#include "storage/durability.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "storage/checkpoint.h"

namespace soda {

Status ApplyWalRecord(Catalog* catalog, const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      auto table = std::make_shared<Table>(record.table, record.schema);
      table->set_partition_spec(record.spec);
      if (catalog->HasTable(record.table)) {
        return catalog->ReplaceTable(record.table, std::move(table));
      }
      return catalog->RegisterTable(std::move(table));
    }
    case WalRecordType::kDropTable: {
      Status st = catalog->DropTable(record.table);
      // A drop of a missing table can only mean the log predates external
      // damage; recovery stays lenient here, matching torn-tail handling.
      if (!st.ok() && st.code() != StatusCode::kKeyError) return st;
      return Status::OK();
    }
    case WalRecordType::kAppendRows: {
      SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(record.table));
      if (table->num_columns() != record.rows->num_columns()) {
        return Status::ExecutionError(
            "wal replay: append arity mismatch for table " + record.table);
      }
      // Recovery is single-threaded and the catalog is private to this
      // engine, so appending in place (no copy-on-write swap) is safe. A
      // sealed image (encoded checkpoint / kTableImage) is flattened
      // first; Open() re-seals once the whole tail is applied.
      SODA_RETURN_NOT_OK(table->EnsureFlat());
      for (size_t c = 0; c < table->num_columns(); ++c) {
        if (table->column(c).type() != record.rows->column(c).type()) {
          return Status::ExecutionError(
              "wal replay: append type mismatch for table " + record.table);
        }
      }
      for (size_t c = 0; c < table->num_columns(); ++c) {
        table->column(c).AppendSlice(record.rows->column(c), 0,
                                     record.rows->num_rows());
      }
      return Status::OK();
    }
    case WalRecordType::kTableImage: {
      if (catalog->HasTable(record.table)) {
        return catalog->ReplaceTable(record.table, record.rows);
      }
      return catalog->RegisterTable(record.rows);
    }
  }
  return Status::Internal("wal replay: unknown record type");
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& data_dir, Catalog* catalog, WalFsyncMode mode,
    size_t group_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (ec) {
    return Status::ExecutionError("durability: cannot create data_dir " +
                                  data_dir + ": " + ec.message());
  }
  if (!std::filesystem::is_directory(data_dir, ec)) {
    return Status::ExecutionError("durability: data_dir is not a directory: " +
                                  data_dir);
  }

  uint64_t checkpoint_lsn = 0;
  std::vector<TablePtr> tables;
  SODA_ASSIGN_OR_RETURN(bool has_checkpoint,
                        LoadCheckpoint(data_dir, &tables, &checkpoint_lsn));
  if (has_checkpoint) {
    for (auto& table : tables) {
      SODA_RETURN_NOT_OK(catalog->RegisterTable(std::move(table)));
    }
  }

  std::vector<WalRecord> records;
  SODA_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                        Wal::Open(data_dir + "/" + kWalFileName, &records));
  uint64_t last_lsn = checkpoint_lsn;
  std::vector<std::string> flattened;
  for (const WalRecord& record : records) {
    if (record.lsn <= checkpoint_lsn) continue;  // already in the snapshot
    if (record.type == WalRecordType::kAppendRows &&
        catalog->HasTable(record.table)) {
      SODA_ASSIGN_OR_RETURN(TablePtr t, catalog->GetTable(record.table));
      if (t->sealed()) flattened.push_back(record.table);
    }
    SODA_RETURN_NOT_OK(ApplyWalRecord(catalog, record));
    last_lsn = record.lsn;
  }
  wal->set_last_lsn(std::max(wal->last_lsn(), last_lsn));
  wal->SetFsyncMode(mode, group_bytes);

  // Replay flattens sealed tables it appends into; restore the encoded
  // representation so a recovered engine matches the pre-crash footprint.
  // Partitioned tables are re-sealed unconditionally — pruning relies on
  // the clustered layout. Tables checkpointed flat deliberately stay
  // flat (recovery reproduces the stored representation, bit for bit).
  for (const std::string& name : catalog->TableNames()) {
    SODA_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(name));
    const bool was_flattened =
        std::find(flattened.begin(), flattened.end(), name) !=
        flattened.end();
    if (!table->sealed() &&
        (table->partition_spec().partitioned() || was_flattened)) {
      SODA_RETURN_NOT_OK(table->Seal());
    }
  }
  return std::unique_ptr<DurabilityManager>(
      new DurabilityManager(data_dir, std::move(wal)));
}

Status DurabilityManager::Commit(const std::function<Status()>& log,
                                 const std::function<Status()>& publish) {
  // commit_mu_ → Wal::mu_ (inside log) → released; then commit_mu_ →
  // Catalog::mu_ (inside publish). See the lock-order comment in the
  // header.
  MutexLock lock(&commit_mu_);
  SODA_RETURN_NOT_OK(log());
  return publish();
}

Status DurabilityManager::Checkpoint(const Catalog& catalog) {
  // Holding commit_mu_ makes snapshot + last_lsn + truncate atomic with
  // respect to statement commits: every LSN at or below the recorded one
  // has its effect in the snapshot, and no commit can slip between the
  // snapshot and the truncate.
  MutexLock lock(&commit_mu_);
  std::vector<TablePtr> tables;
  for (const std::string& name : catalog.TableNames()) {
    SODA_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(name));
    tables.push_back(std::move(table));
  }
  // Everything up to the current LSN is reflected in the snapshot.
  SODA_RETURN_NOT_OK(WriteCheckpoint(tables, wal_->last_lsn(), data_dir_));
  return wal_->Truncate();
}

}  // namespace soda
