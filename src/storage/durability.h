/// \file durability.h
/// The engine's durability manager: owns a data directory containing one
/// checkpoint (storage/checkpoint.h) and one write-ahead log
/// (storage/wal.h), performs recovery-on-open, and exposes the per-
/// statement logging calls the DML executors use.
///
/// Recovery protocol (Open):
///   1. create `data_dir` if missing;
///   2. load the checkpoint (if any) into the catalog, remembering its
///      `last_lsn`;
///   3. scan the WAL, truncating any torn tail, and replay every record
///      with lsn > checkpoint lsn (records at or below it are already in
///      the snapshot — this makes a crash between checkpoint-rename and
///      WAL-truncation harmless);
///   4. leave the log open for appending, numbering new records after the
///      highest recovered LSN.

#ifndef SODA_STORAGE_DURABILITY_H_
#define SODA_STORAGE_DURABILITY_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "storage/catalog.h"
#include "storage/scrub.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"

namespace soda {

/// Thresholds for the background maintenance thread. Zero disables the
/// corresponding trigger. SQL: `SET soda.wal_auto_checkpoint_mb`,
/// `SET soda.wal_auto_checkpoint_records`, `SET soda.scrub_interval_ms`.
struct MaintenanceOptions {
  size_t wal_auto_checkpoint_bytes = 0;    ///< checkpoint when WAL exceeds
  size_t wal_auto_checkpoint_records = 0;  ///< ... or holds this many records
  std::chrono::milliseconds scrub_interval{0};  ///< periodic scrub cadence
  std::chrono::milliseconds poll_interval{25};  ///< threshold check cadence
};

/// Lock order (enforced by the thread-safety annotations and documented
/// here because it crosses three structures):
///
///   DurabilityManager::commit_mu_  →  Wal::mu_
///   DurabilityManager::commit_mu_  →  Catalog::mu_
///
/// `commit_mu_` is the outermost lock: it serializes a statement's whole
/// log→publish window (WAL append, then catalog mutation) against
/// CHECKPOINT (catalog snapshot, checkpoint write, WAL truncate). The
/// Wal and Catalog mutexes are leaf locks — they are never held while
/// acquiring any other lock. Without `commit_mu_` there is a lost-commit
/// race: a statement appends its WAL record, a concurrent checkpoint
/// snapshots the catalog *before* the statement publishes, records the
/// statement's LSN as covered, and truncates the log — the commit is then
/// in neither the checkpoint nor the WAL.
class DurabilityManager {
 public:
  /// Opens `data_dir` (created if missing), recovers `catalog` from the
  /// latest checkpoint + WAL tail, and readies the log for appending.
  /// `catalog` must be empty and must outlive the manager.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const std::string& data_dir, Catalog* catalog, WalFsyncMode mode,
      size_t group_bytes);

  // --- Per-statement redo logging (called before the catalog mutation
  // --- is published; a failure means the statement must not commit). ----
  // --- Call through Commit()/CommitDurable so the log→publish pair is
  // --- atomic with respect to CHECKPOINT.
  Status LogCreateTable(const std::string& name, const Schema& schema,
                        const PartitionSpec& spec = {}) {
    return wal_->AppendCreateTable(name, schema, spec);
  }
  Status LogDropTable(const std::string& name) {
    return wal_->AppendDropTable(name);
  }
  Status LogAppendRows(const Table& staged_rows) {
    return wal_->AppendRows(staged_rows);
  }
  Status LogTableImage(const Table& image) {
    return wal_->AppendTableImage(image);
  }

  /// Runs one statement's commit unit under the commit lock: `log`
  /// appends the redo record (log-before-publish), `publish` mutates the
  /// catalog. A `log` failure skips `publish` — the statement fails with
  /// neither the log nor memory touched.
  Status Commit(const std::function<Status()>& log,
                const std::function<Status()>& publish)
      SODA_EXCLUDES(commit_mu_);

  /// CHECKPOINT: snapshots every catalog table atomically, then rotates
  /// the log (old records are archived to wal.soda.1 — see Wal::Rotate).
  /// On failure the previous checkpoint + log remain valid. Refuses with
  /// kDataLoss while any table is table_level_quarantined: its stub holds
  /// no rows and the quarantine marker does not serialize, so rewriting
  /// would persist a valid-but-empty table and rotate away the WAL
  /// records kept for it (DROP or restore the table first).
  Status Checkpoint(const Catalog& catalog) SODA_EXCLUDES(commit_mu_);

  /// At-rest half of the scrub pass: re-reads the checkpoint file and
  /// verifies its framing CRCs (storage/checkpoint.h, VerifyCheckpoint).
  /// A damaged checkpoint is self-healed by rewriting it from the
  /// in-memory catalog — the authoritative copy while the engine is up.
  /// Sets the checkpoint_* fields of `report`.
  Status VerifyAndHealCheckpoint(const Catalog& catalog, ScrubReport* report)
      SODA_EXCLUDES(commit_mu_);

  // --- Background maintenance (auto-checkpoint + periodic scrub) ----------

  /// Starts the maintenance thread. `catalog` must outlive the manager;
  /// `scrub` (may be null) runs one full scrub pass — the engine wires in
  /// the in-memory CRC sweep + quarantine publishing. Idempotent: an
  /// already-running thread is stopped first.
  void StartMaintenance(const Catalog* catalog, MaintenanceOptions opts,
                        std::function<Status()> scrub)
      SODA_EXCLUDES(maint_mu_);

  /// Stops and joins the maintenance thread (no-op when not running).
  /// Called from the destructor; the engine also calls it explicitly
  /// before tearing down structures the scrub closure touches.
  void StopMaintenance() SODA_EXCLUDES(maint_mu_);

  /// Updates thresholds at runtime (SET soda.wal_auto_checkpoint_*).
  void ConfigureMaintenance(const MaintenanceOptions& opts)
      SODA_EXCLUDES(maint_mu_);

  MaintenanceOptions maintenance_options() const SODA_EXCLUDES(maint_mu_) {
    MutexLock lock(&maint_mu_);
    return maint_opts_;
  }

  // --- Health counters (soda_status() table function) ----------------------

  uint64_t checkpoint_count() const { return checkpoint_count_.load(); }
  uint64_t auto_checkpoint_count() const {
    return auto_checkpoint_count_.load();
  }
  uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_.load(); }
  uint64_t scrub_pass_count() const { return scrub_pass_count_.load(); }
  /// Manual SCRUB statements count as passes too (the engine calls this).
  void NoteScrubPass() { scrub_pass_count_.fetch_add(1); }

  void SetFsyncMode(WalFsyncMode mode, size_t group_bytes) {
    wal_->SetFsyncMode(mode, group_bytes);
  }

  const std::string& data_dir() const { return data_dir_; }
  Wal* wal() { return wal_.get(); }

  ~DurabilityManager();

 private:
  DurabilityManager(std::string data_dir, std::unique_ptr<Wal> wal)
      : data_dir_(std::move(data_dir)), wal_(std::move(wal)) {}

  void MaintenanceLoop() SODA_EXCLUDES(maint_mu_, commit_mu_);

  std::string data_dir_;
  std::unique_ptr<Wal> wal_;
  /// Outermost lock of the durability layer; see the lock-order comment
  /// at the top of this file. Guards no data directly — it serializes the
  /// log→publish and snapshot→truncate critical sections.
  Mutex commit_mu_;

  std::atomic<uint64_t> checkpoint_count_{0};
  std::atomic<uint64_t> auto_checkpoint_count_{0};
  std::atomic<uint64_t> last_checkpoint_lsn_{0};
  std::atomic<uint64_t> scrub_pass_count_{0};

  // Maintenance thread state. maint_mu_ is a leaf lock (never held while
  // taking commit_mu_ — the loop copies the options out before acting).
  mutable Mutex maint_mu_;
  CondVar maint_cv_;
  MaintenanceOptions maint_opts_ SODA_GUARDED_BY(maint_mu_);
  bool maint_stop_ SODA_GUARDED_BY(maint_mu_) = false;
  const Catalog* maint_catalog_ = nullptr;   // set before the thread starts
  std::function<Status()> maint_scrub_;      // likewise
  std::thread maint_thread_;
};

/// Statement commit helper for engines that may be volatile: without a
/// DurabilityManager the publish step runs alone; with one, log+publish
/// run as a unit under the commit lock.
inline Status CommitDurable(DurabilityManager* dur,
                            const std::function<Status()>& log,
                            const std::function<Status()>& publish) {
  if (!dur) return publish();
  return dur->Commit(log, publish);
}

/// Applies one recovered WAL record to the catalog (exposed for tests).
Status ApplyWalRecord(Catalog* catalog, const WalRecord& record);

}  // namespace soda

#endif  // SODA_STORAGE_DURABILITY_H_
