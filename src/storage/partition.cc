#include "storage/partition.h"

#include <algorithm>

namespace soda {

std::string PartitionSpec::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "";
    case Kind::kHash:
      return "PARTITION BY HASH(" + column + ") PARTITIONS " +
             std::to_string(num_partitions);
    case Kind::kRange: {
      std::string out = "PARTITION BY RANGE(" + column + ") (";
      for (size_t i = 0; i < bounds.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(bounds[i]);
      }
      return out + ")";
    }
  }
  return "";
}

uint64_t PartitionHashI64(int64_t v) {
  // splitmix64 finalizer — fixed constants, stable across builds.
  uint64_t x = static_cast<uint64_t>(v);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t PartitionHashBytes(const void* data, size_t n) {
  // FNV-1a, then a splitmix finalize for avalanche.
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return PartitionHashI64(static_cast<int64_t>(h));
}

size_t PartitionOfRow(const PartitionSpec& spec, const Column& col,
                      size_t row) {
  if (!spec.partitioned() || spec.num_partitions == 0) return 0;
  if (col.IsNull(row)) return 0;
  if (spec.kind == PartitionSpec::Kind::kRange) {
    const int64_t v = col.GetBigInt(row);
    return std::upper_bound(spec.bounds.begin(), spec.bounds.end(), v) -
           spec.bounds.begin();
  }
  uint64_t h = 0;
  switch (col.type()) {
    case DataType::kVarchar: {
      const std::string& s = col.GetString(row);
      h = PartitionHashBytes(s.data(), s.size());
      break;
    }
    case DataType::kDouble: {
      const double d = col.GetDouble(row);
      h = PartitionHashBytes(&d, sizeof(d));
      break;
    }
    default:
      h = PartitionHashI64(col.GetBigInt(row));
      break;
  }
  return h % spec.num_partitions;
}

size_t PartitionOfValue(const PartitionSpec& spec, const Value& v) {
  if (!spec.partitioned() || spec.num_partitions == 0) return 0;
  if (v.is_null()) return 0;
  if (spec.kind == PartitionSpec::Kind::kRange) {
    const int64_t x = v.AsBigInt();
    return std::upper_bound(spec.bounds.begin(), spec.bounds.end(), x) -
           spec.bounds.begin();
  }
  uint64_t h = 0;
  switch (v.type()) {
    case DataType::kVarchar: {
      const std::string& s = v.varchar_value();
      h = PartitionHashBytes(s.data(), s.size());
      break;
    }
    case DataType::kDouble: {
      const double d = v.double_value();
      h = PartitionHashBytes(&d, sizeof(d));
      break;
    }
    default:
      h = PartitionHashI64(v.AsBigInt());
      break;
  }
  return h % spec.num_partitions;
}

}  // namespace soda
