/// \file partition.h
/// Table partitioning metadata (`CREATE TABLE ... PARTITION BY`).
///
/// A partitioned table physically clusters its rows by partition id when
/// it is sealed (storage/table.h): partition p occupies the contiguous row
/// range [partition_offsets[p], partition_offsets[p+1]), each made of
/// whole row groups. The optimizer prunes partitions against pushed-down
/// predicates (sql/optimizer.cc) and the scan skips the pruned row ranges
/// entirely.
///
/// The row→partition mapping must be stable across process restarts —
/// checkpoints persist partition offsets — so the hash below is a fixed
/// splitmix64/FNV mix, never std::hash.

#ifndef SODA_STORAGE_PARTITION_H_
#define SODA_STORAGE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "types/value.h"

namespace soda {

struct PartitionSpec {
  enum class Kind : uint8_t { kNone = 0, kHash = 1, kRange = 2 };

  Kind kind = Kind::kNone;
  /// Partition column (lower-case name + resolved schema index).
  std::string column;
  size_t column_index = 0;
  /// Hash: the declared partition count. Range: bounds.size() + 1.
  size_t num_partitions = 0;
  /// Range only: ascending upper-exclusive BIGINT bounds. Partition p
  /// holds rows with bounds[p-1] <= v < bounds[p]; NULLs go to partition 0
  /// (they never match a pruning predicate, so placement is free).
  std::vector<int64_t> bounds;

  bool partitioned() const { return kind != Kind::kNone; }

  /// "PARTITION BY HASH(col) PARTITIONS 8" — EXPLAIN / error rendering.
  std::string ToString() const;
};

/// Stable 64-bit mix used for hash partitioning (NOT the exec-layer hash:
/// storage cannot depend on exec, and this one is pinned forever because
/// checkpointed layouts depend on it).
uint64_t PartitionHashI64(int64_t v);
uint64_t PartitionHashBytes(const void* data, size_t n);

/// Partition id of `col[row]` under `spec` (col must be the partition
/// column). NULL rows map to partition 0.
size_t PartitionOfRow(const PartitionSpec& spec, const Column& col,
                      size_t row);

/// Partition id of a constant under `spec` — the planner-side twin of
/// PartitionOfRow, used to prune `col = literal` / range predicates. The
/// value's type must match the partition column's storage family (the
/// optimizer casts before calling); NULL maps to partition 0.
size_t PartitionOfValue(const PartitionSpec& spec, const Value& v);

}  // namespace soda

#endif  // SODA_STORAGE_PARTITION_H_
