#include "storage/scrub.h"

#include <sstream>

#include "storage/segment.h"
#include "util/query_guard.h"

namespace soda {

std::string ScrubReport::ToString() const {
  std::ostringstream os;
  os << "scrub: " << tables_checked << " tables, " << segments_checked
     << " segments checked, " << corrupt_segments << " corrupt, "
     << quarantined_groups << " row groups quarantined; checkpoint "
     << (!checkpoint_present ? "absent"
         : checkpoint_ok    ? "ok"
         : checkpoint_rewritten ? "rewritten" : "CORRUPT");
  return os.str();
}

Status ScrubTables(const std::vector<TablePtr>& tables,
                   const QuarantinePublisher& publish, ScrubReport* report) {
  for (const auto& table : tables) {
    SODA_RETURN_NOT_OK(GuardProbe(QueryGuard::Current(), "storage.scrub"));
    ++report->tables_checked;
    if (!table->sealed()) continue;
    std::vector<size_t> corrupt_groups;
    for (size_t g = 0; g < table->num_row_groups(); ++g) {
      if (table->group_quarantined(g)) continue;  // placeholder payload
      bool group_corrupt = false;
      for (size_t c = 0; c < table->num_columns(); ++c) {
        const SegmentPtr& seg = table->group_segment(g, c);
        if (seg == nullptr || seg->crc == 0) continue;  // CRC unknown
        ++report->segments_checked;
        if (ComputeSegmentCrc(*seg) != seg->crc) {
          ++report->corrupt_segments;
          group_corrupt = true;
        }
      }
      if (group_corrupt) corrupt_groups.push_back(g);
    }
    if (!corrupt_groups.empty() && publish != nullptr) {
      SODA_RETURN_NOT_OK(publish(table->name(), corrupt_groups));
      report->quarantined_groups += corrupt_groups.size();
    }
  }
  return Status::OK();
}

}  // namespace soda
