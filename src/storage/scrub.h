/// \file scrub.h
/// Background integrity verification for sealed tables and the checkpoint
/// file (DESIGN.md §10, "Self-healing & operations").
///
/// Every sealed segment carries the CRC32 of its serialized form
/// (Segment::crc, stamped at encode/load time). The scrub pass
/// re-serializes each segment and compares checksums — a mismatch means
/// the in-memory payload rotted (or was deliberately flipped by a test)
/// after sealing. Corrupt row groups are reported to a caller-supplied
/// publisher, which quarantines them under the engine's write lock; the
/// scrub itself takes no locks beyond the table snapshot it is handed.
///
/// The at-rest half re-reads the checkpoint file and verifies its framing
/// CRCs without deserializing any table (storage/checkpoint.h,
/// VerifyCheckpoint). The durability manager self-heals a damaged
/// checkpoint by rewriting it from healthy in-memory state.

#ifndef SODA_STORAGE_SCRUB_H_
#define SODA_STORAGE_SCRUB_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace soda {

/// Outcome of one scrub pass, surfaced through soda_status() and the
/// SCRUB statement's result table.
struct ScrubReport {
  size_t tables_checked = 0;
  size_t segments_checked = 0;
  size_t corrupt_segments = 0;    ///< CRC mismatches found this pass
  size_t quarantined_groups = 0;  ///< row groups newly quarantined
  bool checkpoint_present = false;
  bool checkpoint_ok = true;       ///< at-rest framing + CRCs verified
  bool checkpoint_rewritten = false;  ///< self-healed from memory

  std::string ToString() const;
};

/// Called once per table that has corrupt row groups. Runs with no scrub
/// locks held; the implementation republishes the table with those groups
/// quarantined (copy-on-write + Catalog::ReplaceTable under the engine
/// write lock). Returning an error aborts the pass.
using QuarantinePublisher = std::function<Status(
    const std::string& table_name, const std::vector<size_t>& groups)>;

/// Verifies every sealed segment of `tables` against its stored CRC.
/// Already-quarantined groups are skipped (their payload is a
/// placeholder). Fault site: "storage.scrub" (probed once per table).
/// `publish` may be null — corruption is then only counted, not
/// quarantined (dry-run).
Status ScrubTables(const std::vector<TablePtr>& tables,
                   const QuarantinePublisher& publish, ScrubReport* report);

}  // namespace soda

#endif  // SODA_STORAGE_SCRUB_H_
