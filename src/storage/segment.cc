#include "storage/segment.h"

#include <algorithm>
#include <unordered_map>

#include "storage/serde.h"
#include "util/crc32.h"
#include "util/query_guard.h"

namespace soda {

namespace {

/// Probe site charged with the encoded bytes of every segment built.
constexpr char kEncodeSite[] = "storage.segment_encode";

/// Dictionary encoding gives up past this many distinct strings per
/// segment — the dictionary itself would dominate the payload.
constexpr size_t kDictMaxEntries = 4096;

/// RLE pays off when the average run is at least this long.
constexpr size_t kRleMinAvgRun = 8;

/// FOR/bit-packing is chosen only when it saves at least a quarter of the
/// raw 64-bit payload.
constexpr uint8_t kForMaxBits = 48;

// --- bit packing ---------------------------------------------------------

size_t PackedWords(size_t count, uint8_t bits) {
  return (count * bits + 63) / 64;
}

void PackBit(std::vector<uint64_t>* words, size_t index, uint8_t bits,
             uint64_t value) {
  if (bits == 0) return;
  const size_t bit_pos = index * bits;
  const size_t word = bit_pos / 64;
  const size_t shift = bit_pos % 64;
  (*words)[word] |= value << shift;
  if (shift + bits > 64) {
    (*words)[word + 1] |= value >> (64 - shift);
  }
}

uint64_t UnpackBit(const std::vector<uint64_t>& words, size_t index,
                   uint8_t bits) {
  if (bits == 0) return 0;
  const size_t bit_pos = index * bits;
  const size_t word = bit_pos / 64;
  const size_t shift = bit_pos % 64;
  uint64_t v = words[word] >> shift;
  if (shift + bits > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  return v & mask;
}

uint8_t BitsFor(uint64_t range) {
  uint8_t bits = 0;
  while (range != 0) {
    ++bits;
    range >>= 1;
  }
  return bits;
}

// --- validity bitmap -----------------------------------------------------

bool ValidBit(const std::vector<uint64_t>& bitmap, size_t i) {
  return bitmap.empty() || ((bitmap[i / 64] >> (i % 64)) & 1) != 0;
}

/// Converts the flat column's byte-validity over [offset, offset+count)
/// into a word bitmap; returns an empty bitmap when all rows are valid.
std::vector<uint64_t> BuildValidity(const Column& src, size_t offset,
                                    size_t count, uint64_t* null_count) {
  *null_count = 0;
  const auto& bytes = src.Validity();
  if (bytes.empty()) return {};
  std::vector<uint64_t> bitmap((count + 63) / 64, 0);
  bool any_null = false;
  for (size_t i = 0; i < count; ++i) {
    if (bytes[offset + i] != 0) {
      bitmap[i / 64] |= uint64_t{1} << (i % 64);
    } else {
      any_null = true;
      ++*null_count;
    }
  }
  if (!any_null) return {};
  return bitmap;
}

// --- encoding ------------------------------------------------------------

void ComputeNumericStats(const Column& src, size_t offset, size_t count,
                         Segment* seg) {
  SegmentStats& st = seg->stats;
  for (size_t i = 0; i < count; ++i) {
    if (src.IsNull(offset + i)) continue;
    if (src.type() == DataType::kDouble) {
      double v = src.GetDouble(offset + i);
      if (!st.has_minmax) {
        st.min_f64 = st.max_f64 = v;
        st.has_minmax = true;
      } else {
        st.min_f64 = std::min(st.min_f64, v);
        st.max_f64 = std::max(st.max_f64, v);
      }
    } else {
      int64_t v = src.GetBigInt(offset + i);
      if (!st.has_minmax) {
        st.min_i64 = st.max_i64 = v;
        st.has_minmax = true;
      } else {
        st.min_i64 = std::min(st.min_i64, v);
        st.max_i64 = std::max(st.max_i64, v);
      }
    }
  }
}

/// Counts payload runs (null rows participate with their zero payload, so
/// a run may span the null/non-null boundary; validity disambiguates).
template <typename Get>
size_t CountRuns(size_t count, Get get) {
  if (count == 0) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < count; ++i) {
    if (get(i) != get(i - 1)) ++runs;
  }
  return runs;
}

void EncodeI64(const Column& src, size_t offset, size_t count, Segment* seg) {
  auto raw = [&](size_t i) {
    return src.IsNull(offset + i) ? int64_t{0} : src.GetBigInt(offset + i);
  };
  const size_t runs = CountRuns(count, raw);
  if (runs > 0 && count / runs >= kRleMinAvgRun) {
    seg->encoding = SegmentEncoding::kRle;
    seg->i64.reserve(runs);
    seg->run_ends.reserve(runs);
    for (size_t i = 0; i < count; ++i) {
      if (i == 0 || raw(i) != raw(i - 1)) {
        seg->i64.push_back(raw(i));
        seg->run_ends.push_back(static_cast<uint32_t>(i + 1));
      } else {
        seg->run_ends.back() = static_cast<uint32_t>(i + 1);
      }
    }
    return;
  }
  if (seg->stats.has_minmax) {
    // Null payloads are forced to 0 above, but 0 may lie outside
    // [min, max]; widen the frame so every stored delta is in range.
    int64_t lo = seg->stats.min_i64;
    if (seg->stats.null_count > 0) lo = std::min(lo, int64_t{0});
    int64_t hi = seg->stats.max_i64;
    if (seg->stats.null_count > 0) hi = std::max(hi, int64_t{0});
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    const uint8_t bits = BitsFor(range);
    if (bits <= kForMaxBits) {
      seg->encoding = SegmentEncoding::kFor;
      seg->frame = lo;
      seg->bit_width = bits;
      seg->packed.assign(PackedWords(count, bits), 0);
      for (size_t i = 0; i < count; ++i) {
        PackBit(&seg->packed, i, bits,
                static_cast<uint64_t>(raw(i)) - static_cast<uint64_t>(lo));
      }
      return;
    }
  }
  seg->encoding = SegmentEncoding::kPlain;
  seg->i64.reserve(count);
  for (size_t i = 0; i < count; ++i) seg->i64.push_back(raw(i));
}

void EncodeF64(const Column& src, size_t offset, size_t count, Segment* seg) {
  auto raw = [&](size_t i) {
    return src.IsNull(offset + i) ? 0.0 : src.GetDouble(offset + i);
  };
  const size_t runs = CountRuns(count, raw);
  if (runs > 0 && count / runs >= kRleMinAvgRun) {
    seg->encoding = SegmentEncoding::kRle;
    for (size_t i = 0; i < count; ++i) {
      if (i == 0 || raw(i) != raw(i - 1)) {
        seg->f64.push_back(raw(i));
        seg->run_ends.push_back(static_cast<uint32_t>(i + 1));
      } else {
        seg->run_ends.back() = static_cast<uint32_t>(i + 1);
      }
    }
    return;
  }
  seg->encoding = SegmentEncoding::kPlain;
  seg->f64.reserve(count);
  for (size_t i = 0; i < count; ++i) seg->f64.push_back(raw(i));
}

void EncodeVarchar(const Column& src, size_t offset, size_t count,
                   Segment* seg) {
  const auto& strings = src.Strings();
  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<uint32_t> codes;
  codes.reserve(count);
  bool dict_ok = true;
  for (size_t i = 0; i < count; ++i) {
    std::string_view s = src.IsNull(offset + i)
                             ? std::string_view{}
                             : std::string_view(strings[offset + i]);
    auto [it, inserted] =
        dict.try_emplace(s, static_cast<uint32_t>(dict.size()));
    if (inserted && dict.size() > kDictMaxEntries) {
      dict_ok = false;
      break;
    }
    codes.push_back(it->second);
  }
  if (dict_ok) {
    seg->encoding = SegmentEncoding::kDict;
    seg->strs.resize(dict.size());
    for (const auto& [s, code] : dict) seg->strs[code] = std::string(s);
    seg->stats.distinct = dict.size();
    const uint8_t bits =
        dict.size() <= 1 ? 0 : BitsFor(dict.size() - 1);
    seg->bit_width = bits;
    seg->packed.assign(PackedWords(count, bits), 0);
    for (size_t i = 0; i < count; ++i) {
      PackBit(&seg->packed, i, bits, codes[i]);
    }
    return;
  }
  seg->encoding = SegmentEncoding::kPlain;
  seg->strs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    seg->strs.push_back(src.IsNull(offset + i) ? std::string()
                                               : strings[offset + i]);
  }
}

}  // namespace

const char* SegmentEncodingToString(SegmentEncoding e) {
  switch (e) {
    case SegmentEncoding::kPlain:
      return "plain";
    case SegmentEncoding::kRle:
      return "rle";
    case SegmentEncoding::kFor:
      return "for";
    case SegmentEncoding::kDict:
      return "dict";
  }
  return "?";
}

size_t Segment::MemoryUsage() const {
  size_t bytes = sizeof(Segment);
  bytes += i64.capacity() * sizeof(int64_t);
  bytes += f64.capacity() * sizeof(double);
  bytes += run_ends.capacity() * sizeof(uint32_t);
  bytes += packed.capacity() * sizeof(uint64_t);
  bytes += validity.capacity() * sizeof(uint64_t);
  bytes += strs.capacity() * sizeof(std::string);
  for (const auto& s : strs) bytes += s.size();
  return bytes;
}

Result<SegmentPtr> EncodeSegment(const Column& src, size_t offset,
                                 size_t count) {
  auto seg = std::make_shared<Segment>();
  seg->type = src.type();
  seg->stats.row_count = count;
  seg->validity = BuildValidity(src, offset, count, &seg->stats.null_count);
  if (src.type() != DataType::kVarchar) {
    ComputeNumericStats(src, offset, count, seg.get());
  }
  switch (src.type()) {
    case DataType::kVarchar:
      EncodeVarchar(src, offset, count, seg.get());
      break;
    case DataType::kDouble:
      EncodeF64(src, offset, count, seg.get());
      break;
    default:
      EncodeI64(src, offset, count, seg.get());
      break;
  }
  SODA_RETURN_NOT_OK(
      GuardReserve(QueryGuard::Current(), seg->MemoryUsage(), kEncodeSite));
  seg->crc = ComputeSegmentCrc(*seg);
  return SegmentPtr(std::move(seg));
}

SegmentPtr MakePlaceholderSegment(DataType type, size_t rows) {
  auto seg = std::make_shared<Segment>();
  seg->type = type;
  seg->encoding = SegmentEncoding::kPlain;
  seg->stats.row_count = rows;
  seg->stats.null_count = rows;
  switch (type) {
    case DataType::kVarchar:
      seg->strs.assign(rows, std::string());
      break;
    case DataType::kDouble:
      seg->f64.assign(rows, 0.0);
      break;
    default:
      seg->i64.assign(rows, 0);
      break;
  }
  seg->validity.assign((rows + 63) / 64, 0);  // every row NULL
  seg->crc = ComputeSegmentCrc(*seg);
  return SegmentPtr(std::move(seg));
}

namespace {

/// Random access into an encoded segment's payload (validity handled by
/// the caller). RLE access is O(log runs); the sequential decoders below
/// never use it.
int64_t I64At(const Segment& seg, size_t i) {
  switch (seg.encoding) {
    case SegmentEncoding::kPlain:
      return seg.i64[i];
    case SegmentEncoding::kFor:
      return static_cast<int64_t>(static_cast<uint64_t>(seg.frame) +
                                  UnpackBit(seg.packed, i, seg.bit_width));
    case SegmentEncoding::kRle: {
      auto it = std::upper_bound(seg.run_ends.begin(), seg.run_ends.end(),
                                 static_cast<uint32_t>(i));
      return seg.i64[it - seg.run_ends.begin()];
    }
    default:
      return 0;
  }
}

double F64At(const Segment& seg, size_t i) {
  if (seg.encoding == SegmentEncoding::kRle) {
    auto it = std::upper_bound(seg.run_ends.begin(), seg.run_ends.end(),
                               static_cast<uint32_t>(i));
    return seg.f64[it - seg.run_ends.begin()];
  }
  return seg.f64[i];
}

const std::string& StrAt(const Segment& seg, size_t i) {
  if (seg.encoding == SegmentEncoding::kDict) {
    return seg.strs[UnpackBit(seg.packed, i, seg.bit_width)];
  }
  return seg.strs[i];
}

template <typename Emit>
void ForEachRow(const Segment& seg, size_t offset, size_t count, Emit emit) {
  const size_t end = offset + count;
  switch (seg.encoding) {
    case SegmentEncoding::kRle: {
      // Walk runs forward; find the run containing `offset` first.
      size_t run = std::upper_bound(seg.run_ends.begin(), seg.run_ends.end(),
                                    static_cast<uint32_t>(offset)) -
                   seg.run_ends.begin();
      for (size_t i = offset; i < end; ++i) {
        while (i >= seg.run_ends[run]) ++run;
        emit(i, run);
      }
      break;
    }
    default:
      for (size_t i = offset; i < end; ++i) emit(i, size_t{0});
      break;
  }
}

}  // namespace

namespace {

/// Run-wise expansion of an RLE payload: one bulk fill per run instead of
/// a binary search or run test per row.
template <typename AppendRun>
void ExpandRuns(const Segment& seg, size_t offset, size_t count,
                AppendRun append_run) {
  size_t run = std::upper_bound(seg.run_ends.begin(), seg.run_ends.end(),
                                static_cast<uint32_t>(offset)) -
               seg.run_ends.begin();
  size_t i = offset;
  const size_t end = offset + count;
  while (i < end) {
    const size_t run_end = std::min<size_t>(seg.run_ends[run], end);
    append_run(run, run_end - i);
    i = run_end;
    ++run;
  }
}

/// Dense (no-NULL) decode: bulk copies / fills / in-place unpacking —
/// the sealed-scan hot path must keep up with flat AppendSlice.
void DecodeSegmentDense(const Segment& seg, size_t offset, size_t count,
                        Column* out) {
  switch (seg.type) {
    case DataType::kVarchar:
      if (seg.encoding == SegmentEncoding::kDict) {
        for (size_t i = offset; i < offset + count; ++i) {
          out->AppendString(
              seg.strs[UnpackBit(seg.packed, i, seg.bit_width)]);
        }
      } else {
        for (size_t i = offset; i < offset + count; ++i) {
          out->AppendString(seg.strs[i]);
        }
      }
      return;
    case DataType::kDouble:
      if (seg.encoding == SegmentEncoding::kRle) {
        ExpandRuns(seg, offset, count, [&](size_t run, size_t n) {
          out->AppendRunDouble(seg.f64[run], n);
        });
      } else {
        out->AppendDoubles(seg.f64.data() + offset, count);
      }
      return;
    default:
      switch (seg.encoding) {
        case SegmentEncoding::kRle:
          ExpandRuns(seg, offset, count, [&](size_t run, size_t n) {
            out->AppendRunBigInt(seg.i64[run], n);
          });
          return;
        case SegmentEncoding::kFor: {
          // Incremental bit cursor: no per-index multiply/divide, and the
          // straddle test compiles to a predictable branch.
          int64_t* dst = out->ExtendI64(count);
          const uint64_t frame = static_cast<uint64_t>(seg.frame);
          const uint32_t bits = seg.bit_width;
          if (bits == 0) {  // constant segment: no packed words at all
            std::fill_n(dst, count, static_cast<int64_t>(frame));
            return;
          }
          const uint64_t mask =
              bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
          const uint64_t* words = seg.packed.data();
          size_t bit_pos = offset * bits;
          for (size_t k = 0; k < count; ++k, bit_pos += bits) {
            const size_t word = bit_pos >> 6;
            const uint32_t shift = bit_pos & 63;
            uint64_t v = words[word] >> shift;
            if (shift + bits > 64) v |= words[word + 1] << (64 - shift);
            dst[k] = static_cast<int64_t>(frame + (v & mask));
          }
          return;
        }
        default:
          out->AppendBigInts(seg.i64.data() + offset, count);
          return;
      }
  }
}

}  // namespace

void DecodeSegment(const Segment& seg, size_t offset, size_t count,
                   Column* out) {
  count = std::min(count, seg.row_count() - std::min(offset, seg.row_count()));
  const bool dense = seg.validity.empty();
  if (dense) {
    DecodeSegmentDense(seg, offset, count, out);
    return;
  }
  switch (seg.type) {
    case DataType::kVarchar:
      ForEachRow(seg, offset, count, [&](size_t i, size_t) {
        if (!dense && !ValidBit(seg.validity, i)) {
          out->AppendNull();
        } else {
          out->AppendString(StrAt(seg, i));
        }
      });
      break;
    case DataType::kDouble:
      ForEachRow(seg, offset, count, [&](size_t i, size_t run) {
        if (!dense && !ValidBit(seg.validity, i)) {
          out->AppendNull();
        } else if (seg.encoding == SegmentEncoding::kRle) {
          out->AppendDouble(seg.f64[run]);
        } else {
          out->AppendDouble(seg.f64[i]);
        }
      });
      break;
    default:
      ForEachRow(seg, offset, count, [&](size_t i, size_t run) {
        if (!dense && !ValidBit(seg.validity, i)) {
          out->AppendNull();
        } else if (seg.encoding == SegmentEncoding::kRle) {
          out->AppendBigInt(seg.i64[run]);
        } else {
          out->AppendBigInt(I64At(seg, i));
        }
      });
      break;
  }
}

void DecodeSegmentGather(const Segment& seg, const uint32_t* rows,
                         size_t count, Column* out) {
  for (size_t k = 0; k < count; ++k) {
    const size_t i = rows[k];
    if (!ValidBit(seg.validity, i)) {
      out->AppendNull();
      continue;
    }
    switch (seg.type) {
      case DataType::kVarchar:
        out->AppendString(StrAt(seg, i));
        break;
      case DataType::kDouble:
        out->AppendDouble(F64At(seg, i));
        break;
      default:
        out->AppendBigInt(I64At(seg, i));
        break;
    }
  }
}

// --- predicates ----------------------------------------------------------

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ScanPredicate::ToString(const std::string& column_name) const {
  return column_name + " " + CompareOpToString(op) + " " +
         constant.ToString();
}

namespace {

template <typename T>
bool Compare(CompareOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return true;
}

/// Can any value in [lo, hi] satisfy `v <op> c`?
template <typename T>
bool RangeMayMatch(CompareOp op, T lo, T hi, T c) {
  switch (op) {
    case CompareOp::kEq:
      return lo <= c && c <= hi;
    case CompareOp::kLt:
      return lo < c;
    case CompareOp::kLe:
      return lo <= c;
    case CompareOp::kGt:
      return hi > c;
    case CompareOp::kGe:
      return hi >= c;
  }
  return true;
}

}  // namespace

bool SegmentMayMatch(const Segment& seg, const ScanPredicate& pred) {
  if (pred.constant.is_null()) return true;  // not a pushable shape; keep
  if (seg.stats.null_count == seg.stats.row_count) {
    return false;  // comparisons never match NULL
  }
  if (seg.type == DataType::kDouble) {
    if (!seg.stats.has_minmax || pred.constant.type() != DataType::kDouble) {
      return true;
    }
    return RangeMayMatch(pred.op, seg.stats.min_f64, seg.stats.max_f64,
                         pred.constant.double_value());
  }
  if (seg.type == DataType::kBigInt || seg.type == DataType::kBool) {
    if (!seg.stats.has_minmax ||
        pred.constant.type() != DataType::kBigInt) {
      return true;
    }
    return RangeMayMatch(pred.op, seg.stats.min_i64, seg.stats.max_i64,
                         pred.constant.bigint_value());
  }
  return true;  // varchar: no ordering stats in the footer
}

void SegmentMatchRows(const Segment& seg, size_t offset, size_t count,
                      const ScanPredicate& pred, std::vector<uint32_t>* sel) {
  const bool dense = seg.validity.empty();
  auto valid = [&](size_t i) { return dense || ValidBit(seg.validity, i); };
  if (seg.type == DataType::kVarchar) {
    const std::string want = pred.constant.type() == DataType::kVarchar
                                 ? pred.constant.varchar_value()
                                 : std::string();
    if (seg.encoding == SegmentEncoding::kDict) {
      // One comparison per dictionary entry, then a code scan.
      std::vector<uint8_t> hit(seg.strs.size());
      for (size_t d = 0; d < seg.strs.size(); ++d) {
        hit[d] = Compare(pred.op, seg.strs[d], want) ? 1 : 0;
      }
      for (size_t i = offset; i < offset + count; ++i) {
        if (valid(i) && hit[UnpackBit(seg.packed, i, seg.bit_width)]) {
          sel->push_back(static_cast<uint32_t>(i));
        }
      }
      return;
    }
    for (size_t i = offset; i < offset + count; ++i) {
      if (valid(i) && Compare(pred.op, seg.strs[i], want)) {
        sel->push_back(static_cast<uint32_t>(i));
      }
    }
    return;
  }
  if (seg.type == DataType::kDouble) {
    const double c = pred.constant.AsDouble();
    ForEachRow(seg, offset, count, [&](size_t i, size_t run) {
      const double v =
          seg.encoding == SegmentEncoding::kRle ? seg.f64[run] : seg.f64[i];
      if (valid(i) && Compare(pred.op, v, c)) {
        sel->push_back(static_cast<uint32_t>(i));
      }
    });
    return;
  }
  const int64_t c = pred.constant.AsBigInt();
  ForEachRow(seg, offset, count, [&](size_t i, size_t run) {
    const int64_t v =
        seg.encoding == SegmentEncoding::kRle ? seg.i64[run] : I64At(seg, i);
    if (valid(i) && Compare(pred.op, v, c)) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  });
}

// --- serde ---------------------------------------------------------------

void WriteSegment(const Segment& seg, BinaryWriter* w) {
  w->U8(static_cast<uint8_t>(seg.type));
  w->U8(static_cast<uint8_t>(seg.encoding));
  w->U64(seg.stats.row_count);
  w->U64(seg.stats.null_count);
  w->U64(seg.stats.distinct);
  w->U8(seg.stats.has_minmax ? 1 : 0);
  w->I64(seg.stats.min_i64);
  w->I64(seg.stats.max_i64);
  w->Bytes(&seg.stats.min_f64, sizeof(double));
  w->Bytes(&seg.stats.max_f64, sizeof(double));
  w->I64(seg.frame);
  w->U8(seg.bit_width);
  w->U64(seg.i64.size());
  w->Bytes(seg.i64.data(), seg.i64.size() * sizeof(int64_t));
  w->U64(seg.f64.size());
  w->Bytes(seg.f64.data(), seg.f64.size() * sizeof(double));
  w->U64(seg.run_ends.size());
  w->Bytes(seg.run_ends.data(), seg.run_ends.size() * sizeof(uint32_t));
  w->U64(seg.packed.size());
  w->Bytes(seg.packed.data(), seg.packed.size() * sizeof(uint64_t));
  w->U64(seg.validity.size());
  w->Bytes(seg.validity.data(), seg.validity.size() * sizeof(uint64_t));
  w->U64(seg.strs.size());
  for (const auto& s : seg.strs) w->Str(s);
}

uint32_t ComputeSegmentCrc(const Segment& seg) {
  BinaryWriter w;
  WriteSegment(seg, &w);
  return Crc32(w.buffer().data(), w.buffer().size());
}

namespace {

template <typename T>
Status ReadPod(BinaryReader* r, std::vector<T>* out) {
  SODA_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  if (n > r->remaining() / sizeof(T)) {
    return Status::ExecutionError("serde: truncated segment payload");
  }
  out->resize(n);
  return r->Bytes(out->data(), n * sizeof(T));
}

}  // namespace

Result<SegmentPtr> ReadSegment(BinaryReader* r) {
  auto seg = std::make_shared<Segment>();
  SODA_ASSIGN_OR_RETURN(uint8_t type_byte, r->U8());
  if (type_byte == 0 || type_byte > static_cast<uint8_t>(DataType::kVarchar)) {
    return Status::ExecutionError("serde: invalid segment type");
  }
  seg->type = static_cast<DataType>(type_byte);
  SODA_ASSIGN_OR_RETURN(uint8_t enc, r->U8());
  if (enc > static_cast<uint8_t>(SegmentEncoding::kDict)) {
    return Status::ExecutionError("serde: invalid segment encoding");
  }
  seg->encoding = static_cast<SegmentEncoding>(enc);
  SODA_ASSIGN_OR_RETURN(seg->stats.row_count, r->U64());
  SODA_ASSIGN_OR_RETURN(seg->stats.null_count, r->U64());
  SODA_ASSIGN_OR_RETURN(seg->stats.distinct, r->U64());
  SODA_ASSIGN_OR_RETURN(uint8_t has_minmax, r->U8());
  seg->stats.has_minmax = has_minmax != 0;
  SODA_ASSIGN_OR_RETURN(seg->stats.min_i64, r->I64());
  SODA_ASSIGN_OR_RETURN(seg->stats.max_i64, r->I64());
  SODA_RETURN_NOT_OK(r->Bytes(&seg->stats.min_f64, sizeof(double)));
  SODA_RETURN_NOT_OK(r->Bytes(&seg->stats.max_f64, sizeof(double)));
  SODA_ASSIGN_OR_RETURN(seg->frame, r->I64());
  SODA_ASSIGN_OR_RETURN(seg->bit_width, r->U8());
  SODA_RETURN_NOT_OK(ReadPod(r, &seg->i64));
  SODA_RETURN_NOT_OK(ReadPod(r, &seg->f64));
  SODA_RETURN_NOT_OK(ReadPod(r, &seg->run_ends));
  SODA_RETURN_NOT_OK(ReadPod(r, &seg->packed));
  SODA_RETURN_NOT_OK(ReadPod(r, &seg->validity));
  SODA_ASSIGN_OR_RETURN(uint64_t num_strs, r->U64());
  seg->strs.reserve(std::min<uint64_t>(num_strs, r->remaining()));
  for (uint64_t i = 0; i < num_strs; ++i) {
    SODA_ASSIGN_OR_RETURN(std::string s, r->Str());
    seg->strs.push_back(std::move(s));
  }
  return SegmentPtr(std::move(seg));
}

}  // namespace soda
