/// \file segment.h
/// Immutable encoded column segments — the compressed at-rest format for
/// sealed base tables (DESIGN.md §9).
///
/// A sealed table stores each column as a sequence of row groups; inside a
/// row group every column holds one `Segment`. Segments are encoded once
/// (at Seal time) and never mutated; scans decode them lazily into
/// `DataChunk`s, and predicate evaluation happens on the encoded form
/// where the codec allows it (dictionary codes, RLE runs, FOR frames)
/// before any value is materialized.
///
/// Codecs:
///   kPlain  raw values, the uncompressed fallback (any type)
///   kRle    run-length: (value, run length) pairs (numeric)
///   kFor    frame-of-reference + bit-packing: v[i] = frame + packed[i]
///           (kBigInt / kBool)
///   kDict   dictionary + bit-packed codes (kVarchar)
/// Each segment carries a stats footer (row/null counts, min/max, distinct
/// dictionary size) used for zone-map skipping and partition pruning.

#ifndef SODA_STORAGE_SEGMENT_H_
#define SODA_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "types/value.h"
#include "util/status.h"

namespace soda {

/// Rows per row group (and therefore per segment). One group is a handful
/// of scan morsels; small enough that min/max stats discriminate, large
/// enough that per-segment overhead amortizes away.
inline constexpr size_t kSegmentRows = 16384;

enum class SegmentEncoding : uint8_t {
  kPlain = 0,
  kRle = 1,
  kFor = 2,
  kDict = 3,
};

const char* SegmentEncodingToString(SegmentEncoding e);

/// Per-segment footer, computed once at encode time.
struct SegmentStats {
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  /// Distinct non-null values for kDict segments; 0 (= unknown) otherwise.
  uint64_t distinct = 0;
  /// True when min/max below are valid (at least one non-null numeric row).
  bool has_minmax = false;
  int64_t min_i64 = 0, max_i64 = 0;  // kBigInt / kBool
  double min_f64 = 0, max_f64 = 0;   // kDouble
};

/// One immutable encoded run of rows of a single column. Which payload
/// members are populated depends on (type, encoding):
///   kPlain          i64 / f64 / strs hold raw values (nulls hold 0 / "")
///   kRle            i64 or f64 holds one value per run; run_ends[k] is the
///                   exclusive end row of run k (ascending)
///   kFor            frame = minimum; packed holds (v - frame) at bit_width
///                   bits per row, little-endian within each uint64 word
///   kDict           strs is the dictionary (first-occurrence order);
///                   packed holds bit-packed codes at bit_width bits
/// Validity is a 1-bit-per-row bitmap (LSB-first); empty means all valid.
struct Segment {
  DataType type = DataType::kInvalid;
  SegmentEncoding encoding = SegmentEncoding::kPlain;
  SegmentStats stats;

  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> strs;
  std::vector<uint32_t> run_ends;
  std::vector<uint64_t> packed;
  int64_t frame = 0;
  uint8_t bit_width = 0;
  std::vector<uint64_t> validity;

  /// CRC32 of the serialized payload, fixed at encode/load time. The scrub
  /// pass (storage/scrub.h) re-serializes and compares, so in-memory bit
  /// rot in a sealed segment is detectable long after sealing. 0 = unknown
  /// (synthetic segments that never went through EncodeSegment/serde).
  uint32_t crc = 0;

  size_t row_count() const { return stats.row_count; }
  /// Approximate heap footprint of the encoded form.
  size_t MemoryUsage() const;
};

using SegmentPtr = std::shared_ptr<const Segment>;

/// Encodes rows [offset, offset+count) of a flat column, picking the codec
/// by inspection (see DESIGN.md §9 for the heuristics). Never fails on
/// data — the plain fallback always applies — but is a fault-injection
/// point ("storage.segment_encode") and charges the encoded bytes to the
/// calling query's memory budget.
Result<SegmentPtr> EncodeSegment(const Column& src, size_t offset,
                                 size_t count);

/// Appends segment-relative rows [offset, offset+count) onto `out` (which
/// must be of the segment's type), decoding as it goes.
void DecodeSegment(const Segment& seg, size_t offset, size_t count,
                   Column* out);

/// Appends rows `rows[0..count)` (segment-relative, ascending) onto `out`.
void DecodeSegmentGather(const Segment& seg, const uint32_t* rows,
                         size_t count, Column* out);

// --- Predicates over encoded data ---------------------------------------

/// Comparison operators a storage-level scan predicate can carry. A
/// deliberately tiny mirror of the expression layer (storage must not
/// depend on expr/), covering exactly what zone maps can exploit.
enum class CompareOp : uint8_t { kEq = 0, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// `column <op> constant` with a non-null literal — the shape the
/// optimizer pushes below the scan. Anything fancier stays in the regular
/// Filter transform; pushed predicates are conservative hints, and the
/// full predicate is always re-evaluated downstream.
struct ScanPredicate {
  size_t column = 0;  // index into the table schema
  CompareOp op = CompareOp::kEq;
  Value constant;

  std::string ToString(const std::string& column_name) const;
};

/// Zone-map check: false only when the stats footer proves no row of the
/// segment can satisfy `pred` (so a false return licenses skipping the
/// whole segment).
bool SegmentMayMatch(const Segment& seg, const ScanPredicate& pred);

/// Evaluates `pred` against the encoded payload and appends the matching
/// segment-relative row numbers of [offset, offset+count) to `sel`
/// (ascending). Dictionary segments compare each dictionary entry once and
/// then test codes; RLE segments compare once per run; FOR/plain compare
/// per row without materializing a Column. Exact, not conservative.
void SegmentMatchRows(const Segment& seg, size_t offset, size_t count,
                      const ScanPredicate& pred, std::vector<uint32_t>* sel);

// --- Serde (storage/serde.cc framing) ------------------------------------

class BinaryWriter;
class BinaryReader;

void WriteSegment(const Segment& seg, BinaryWriter* w);
Result<SegmentPtr> ReadSegment(BinaryReader* r);

/// CRC32 of the segment's serialized payload (the exact bytes WriteSegment
/// emits). Deterministic for a given in-memory state, so recomputing it and
/// comparing against `seg.crc` detects in-memory corruption.
uint32_t ComputeSegmentCrc(const Segment& seg);

/// Builds a decode-safe stand-in for a quarantined segment: kPlain,
/// `rows` all-NULL values of `type`, correct stats. Scans that are allowed
/// to touch it (none, once the table is quarantined — but recovery and
/// checkpoint rewrite still serialize it) never crash on it.
SegmentPtr MakePlaceholderSegment(DataType type, size_t rows);

}  // namespace soda

#endif  // SODA_STORAGE_SEGMENT_H_
