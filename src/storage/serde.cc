#include "storage/serde.h"

#include <cstring>

namespace soda {

namespace {

Status Truncated(const char* what) {
  return Status::ExecutionError(std::string("serde: truncated ") + what);
}

}  // namespace

Result<uint8_t> BinaryReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::U32() {
  uint32_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::U64() {
  uint64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::I64() {
  int64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::Str() {
  SODA_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) return Truncated("string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Status BinaryReader::Bytes(void* out, size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

void WriteSchema(const Schema& schema, BinaryWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_fields()));
  for (const auto& f : schema.fields()) {
    w->Str(f.name);
    w->Str(f.qualifier);
    w->U8(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> ReadSchema(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
    SODA_ASSIGN_OR_RETURN(std::string qualifier, r->Str());
    SODA_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type == 0 || type > static_cast<uint8_t>(DataType::kVarchar)) {
      return Status::ExecutionError("serde: invalid field type");
    }
    schema.AddField(
        Field(std::move(name), static_cast<DataType>(type), qualifier));
  }
  return schema;
}

void WriteColumn(const Column& column, BinaryWriter* w) {
  const size_t n = column.size();
  w->U8(static_cast<uint8_t>(column.type()));
  w->U64(n);
  switch (column.type()) {
    case DataType::kDouble:
      w->Bytes(column.F64Data(), n * sizeof(double));
      break;
    case DataType::kVarchar:
      for (const auto& s : column.Strings()) w->Str(s);
      break;
    default:  // kBigInt / kBool share the int64 payload
      w->Bytes(column.I64Data(), n * sizeof(int64_t));
      break;
  }
  const auto& validity = column.Validity();
  w->U8(validity.empty() ? 0 : 1);
  if (!validity.empty()) w->Bytes(validity.data(), validity.size());
}

Result<Column> ReadColumn(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint8_t type_byte, r->U8());
  if (type_byte == 0 || type_byte > static_cast<uint8_t>(DataType::kVarchar)) {
    return Status::ExecutionError("serde: invalid column type");
  }
  DataType type = static_cast<DataType>(type_byte);
  SODA_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  Column column;
  switch (type) {
    case DataType::kDouble: {
      // Divide instead of multiplying: `n` comes from disk and a crafted
      // value must not overflow the bounds check.
      if (n > r->remaining() / sizeof(double)) {
        return Status::ExecutionError("serde: truncated double payload");
      }
      std::vector<double> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(double)));
      column = Column::FromDoubles(std::move(data));
      break;
    }
    case DataType::kVarchar: {
      std::vector<std::string> data;
      data.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        SODA_ASSIGN_OR_RETURN(std::string s, r->Str());
        data.push_back(std::move(s));
      }
      column = Column::FromStrings(std::move(data));
      break;
    }
    default: {
      if (n > r->remaining() / sizeof(int64_t)) {
        return Status::ExecutionError("serde: truncated int64 payload");
      }
      std::vector<int64_t> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(int64_t)));
      column = Column::FromRawI64(type, std::move(data));
      break;
    }
  }
  SODA_ASSIGN_OR_RETURN(uint8_t has_validity, r->U8());
  if (has_validity) {
    std::vector<uint8_t> validity(n);
    SODA_RETURN_NOT_OK(r->Bytes(validity.data(), n));
    column.SetValidity(std::move(validity));
  }
  return column;
}

namespace {

// Table payload flags (serde format v2): sealed tables persist their
// encoded row groups verbatim — checkpoints shrink with the data and
// recovery replays encoded, bit-identically.
constexpr uint8_t kTableFlagSealed = 0x1;
constexpr uint8_t kTableFlagPartitioned = 0x2;

}  // namespace

void WritePartitionSpec(const PartitionSpec& spec, BinaryWriter* w) {
  w->U8(static_cast<uint8_t>(spec.kind));
  w->Str(spec.column);
  w->U32(static_cast<uint32_t>(spec.column_index));
  w->U32(static_cast<uint32_t>(spec.num_partitions));
  w->U32(static_cast<uint32_t>(spec.bounds.size()));
  for (int64_t b : spec.bounds) w->I64(b);
}

Result<PartitionSpec> ReadPartitionSpec(BinaryReader* r) {
  PartitionSpec spec;
  SODA_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind > static_cast<uint8_t>(PartitionSpec::Kind::kRange)) {
    return Status::ExecutionError("serde: invalid partition kind");
  }
  spec.kind = static_cast<PartitionSpec::Kind>(kind);
  SODA_ASSIGN_OR_RETURN(spec.column, r->Str());
  SODA_ASSIGN_OR_RETURN(uint32_t col_idx, r->U32());
  spec.column_index = col_idx;
  SODA_ASSIGN_OR_RETURN(uint32_t num_parts, r->U32());
  spec.num_partitions = num_parts;
  SODA_ASSIGN_OR_RETURN(uint32_t num_bounds, r->U32());
  if (num_bounds > r->remaining() / sizeof(int64_t)) {
    return Status::ExecutionError("serde: truncated partition bounds");
  }
  spec.bounds.reserve(num_bounds);
  for (uint32_t i = 0; i < num_bounds; ++i) {
    SODA_ASSIGN_OR_RETURN(int64_t b, r->I64());
    spec.bounds.push_back(b);
  }
  return spec;
}

void WriteTable(const Table& table, BinaryWriter* w) {
  w->Str(table.name());
  WriteSchema(table.schema(), w);
  uint8_t flags = 0;
  if (table.sealed()) flags |= kTableFlagSealed;
  if (table.partition_spec().partitioned()) flags |= kTableFlagPartitioned;
  w->U8(flags);
  if (table.partition_spec().partitioned()) {
    WritePartitionSpec(table.partition_spec(), w);
  }
  if (table.sealed()) {
    w->U32(static_cast<uint32_t>(table.num_row_groups()));
    const auto& offsets = table.partition_offsets();
    w->U32(static_cast<uint32_t>(offsets.size()));
    for (size_t o : offsets) w->U64(o);
    for (size_t g = 0; g < table.num_row_groups(); ++g) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        WriteSegment(*table.group_segment(g, c), w);
      }
    }
    return;
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    WriteColumn(table.column(c), w);
  }
}

Result<TablePtr> ReadTable(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
  SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  auto table = std::make_shared<Table>(name, schema);
  SODA_ASSIGN_OR_RETURN(uint8_t flags, r->U8());
  if (flags & kTableFlagPartitioned) {
    SODA_ASSIGN_OR_RETURN(PartitionSpec spec, ReadPartitionSpec(r));
    table->set_partition_spec(std::move(spec));
  }
  if (flags & kTableFlagSealed) {
    SODA_ASSIGN_OR_RETURN(uint32_t num_groups, r->U32());
    SODA_ASSIGN_OR_RETURN(uint32_t num_offsets, r->U32());
    if (num_offsets > r->remaining() / sizeof(uint64_t)) {
      return Status::ExecutionError("serde: truncated partition offsets");
    }
    std::vector<size_t> offsets;
    offsets.reserve(num_offsets);
    for (uint32_t i = 0; i < num_offsets; ++i) {
      SODA_ASSIGN_OR_RETURN(uint64_t o, r->U64());
      offsets.push_back(o);
    }
    std::vector<std::vector<SegmentPtr>> groups;
    groups.reserve(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      std::vector<SegmentPtr> group;
      group.reserve(schema.num_fields());
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        SODA_ASSIGN_OR_RETURN(SegmentPtr seg, ReadSegment(r));
        group.push_back(std::move(seg));
      }
      groups.push_back(std::move(group));
    }
    SODA_RETURN_NOT_OK(
        table->AdoptSealed(std::move(groups), std::move(offsets)));
    return table;
  }
  size_t rows = 0;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    SODA_ASSIGN_OR_RETURN(Column column, ReadColumn(r));
    if (column.type() != schema.field(c).type) {
      return Status::ExecutionError("serde: column/schema type mismatch");
    }
    if (c == 0) {
      rows = column.size();
    } else if (column.size() != rows) {
      return Status::ExecutionError("serde: ragged table payload");
    }
    SODA_RETURN_NOT_OK(table->SetColumn(c, std::move(column)));
  }
  return table;
}

}  // namespace soda
