#include "storage/serde.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"

namespace soda {

namespace {

Status Truncated(const char* what) {
  return Status::ExecutionError(std::string("serde: truncated ") + what);
}

}  // namespace

Result<uint8_t> BinaryReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::U32() {
  uint32_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::U64() {
  uint64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::I64() {
  int64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::Str() {
  SODA_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) return Truncated("string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Status BinaryReader::Bytes(void* out, size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<std::string_view> BinaryReader::View(size_t n) {
  if (remaining() < n) return Truncated("view");
  std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

void WriteSchema(const Schema& schema, BinaryWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_fields()));
  for (const auto& f : schema.fields()) {
    w->Str(f.name);
    w->Str(f.qualifier);
    w->U8(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> ReadSchema(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
    SODA_ASSIGN_OR_RETURN(std::string qualifier, r->Str());
    SODA_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type == 0 || type > static_cast<uint8_t>(DataType::kVarchar)) {
      return Status::ExecutionError("serde: invalid field type");
    }
    schema.AddField(
        Field(std::move(name), static_cast<DataType>(type), qualifier));
  }
  return schema;
}

void WriteColumn(const Column& column, BinaryWriter* w) {
  const size_t n = column.size();
  w->U8(static_cast<uint8_t>(column.type()));
  w->U64(n);
  switch (column.type()) {
    case DataType::kDouble:
      w->Bytes(column.F64Data(), n * sizeof(double));
      break;
    case DataType::kVarchar:
      for (const auto& s : column.Strings()) w->Str(s);
      break;
    default:  // kBigInt / kBool share the int64 payload
      w->Bytes(column.I64Data(), n * sizeof(int64_t));
      break;
  }
  const auto& validity = column.Validity();
  w->U8(validity.empty() ? 0 : 1);
  if (!validity.empty()) w->Bytes(validity.data(), validity.size());
}

Result<Column> ReadColumn(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint8_t type_byte, r->U8());
  if (type_byte == 0 || type_byte > static_cast<uint8_t>(DataType::kVarchar)) {
    return Status::ExecutionError("serde: invalid column type");
  }
  DataType type = static_cast<DataType>(type_byte);
  SODA_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  Column column;
  switch (type) {
    case DataType::kDouble: {
      // Divide instead of multiplying: `n` comes from disk and a crafted
      // value must not overflow the bounds check.
      if (n > r->remaining() / sizeof(double)) {
        return Status::ExecutionError("serde: truncated double payload");
      }
      std::vector<double> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(double)));
      column = Column::FromDoubles(std::move(data));
      break;
    }
    case DataType::kVarchar: {
      std::vector<std::string> data;
      data.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        SODA_ASSIGN_OR_RETURN(std::string s, r->Str());
        data.push_back(std::move(s));
      }
      column = Column::FromStrings(std::move(data));
      break;
    }
    default: {
      if (n > r->remaining() / sizeof(int64_t)) {
        return Status::ExecutionError("serde: truncated int64 payload");
      }
      std::vector<int64_t> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(int64_t)));
      column = Column::FromRawI64(type, std::move(data));
      break;
    }
  }
  SODA_ASSIGN_OR_RETURN(uint8_t has_validity, r->U8());
  if (has_validity) {
    std::vector<uint8_t> validity(n);
    SODA_RETURN_NOT_OK(r->Bytes(validity.data(), n));
    column.SetValidity(std::move(validity));
  }
  return column;
}

namespace {

// Table payload flags (serde format v3): sealed tables persist their
// encoded row groups verbatim — checkpoints shrink with the data and
// recovery replays encoded, bit-identically. v3 additionally frames every
// segment as [u32 payload_len][u32 crc32][payload] with explicit group
// offsets and a quarantine bitmap, so one corrupt segment costs one row
// group (quarantined, degraded reads), not the whole table.
constexpr uint8_t kTableFlagSealed = 0x1;
constexpr uint8_t kTableFlagPartitioned = 0x2;

}  // namespace

void WritePartitionSpec(const PartitionSpec& spec, BinaryWriter* w) {
  w->U8(static_cast<uint8_t>(spec.kind));
  w->Str(spec.column);
  w->U32(static_cast<uint32_t>(spec.column_index));
  w->U32(static_cast<uint32_t>(spec.num_partitions));
  w->U32(static_cast<uint32_t>(spec.bounds.size()));
  for (int64_t b : spec.bounds) w->I64(b);
}

Result<PartitionSpec> ReadPartitionSpec(BinaryReader* r) {
  PartitionSpec spec;
  SODA_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind > static_cast<uint8_t>(PartitionSpec::Kind::kRange)) {
    return Status::ExecutionError("serde: invalid partition kind");
  }
  spec.kind = static_cast<PartitionSpec::Kind>(kind);
  SODA_ASSIGN_OR_RETURN(spec.column, r->Str());
  SODA_ASSIGN_OR_RETURN(uint32_t col_idx, r->U32());
  spec.column_index = col_idx;
  SODA_ASSIGN_OR_RETURN(uint32_t num_parts, r->U32());
  spec.num_partitions = num_parts;
  SODA_ASSIGN_OR_RETURN(uint32_t num_bounds, r->U32());
  if (num_bounds > r->remaining() / sizeof(int64_t)) {
    return Status::ExecutionError("serde: truncated partition bounds");
  }
  spec.bounds.reserve(num_bounds);
  for (uint32_t i = 0; i < num_bounds; ++i) {
    SODA_ASSIGN_OR_RETURN(int64_t b, r->I64());
    spec.bounds.push_back(b);
  }
  return spec;
}

void WriteTable(const Table& table, BinaryWriter* w) {
  w->Str(table.name());
  WriteSchema(table.schema(), w);
  uint8_t flags = 0;
  if (table.sealed()) flags |= kTableFlagSealed;
  if (table.partition_spec().partitioned()) flags |= kTableFlagPartitioned;
  w->U8(flags);
  if (table.partition_spec().partitioned()) {
    WritePartitionSpec(table.partition_spec(), w);
  }
  if (table.sealed()) {
    const size_t num_groups = table.num_row_groups();
    w->U32(static_cast<uint32_t>(num_groups));
    // Explicit group offsets: with them, a group whose segments are
    // corrupt still has a known row count, so its placeholder keeps the
    // table's row addressing intact.
    for (size_t g = 0; g <= num_groups; ++g) {
      w->U64(table.group_offset(g));  // group_offsets has num_groups+1 entries
    }
    const auto& offsets = table.partition_offsets();
    w->U32(static_cast<uint32_t>(offsets.size()));
    for (size_t o : offsets) w->U64(o);
    // Quarantine bitmap: quarantine survives checkpoint + restart.
    for (size_t g = 0; g < num_groups; ++g) {
      w->U8(table.group_quarantined(g) ? 1 : 0);
    }
    BinaryWriter sw;
    for (size_t g = 0; g < num_groups; ++g) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        sw = BinaryWriter();
        WriteSegment(*table.group_segment(g, c), &sw);
        w->U32(static_cast<uint32_t>(sw.buffer().size()));
        w->U32(Crc32(sw.buffer().data(), sw.buffer().size()));
        w->Bytes(sw.buffer().data(), sw.buffer().size());
      }
    }
    return;
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    WriteColumn(table.column(c), w);
  }
}

namespace {

/// Shared tail of ReadTable/ReadTableLegacyV2: an unsealed table is plain
/// columns in schema order, identical in every format version.
Status ReadUnsealedColumns(BinaryReader* r, const Schema& schema,
                           Table* table) {
  size_t rows = 0;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    SODA_ASSIGN_OR_RETURN(Column column, ReadColumn(r));
    if (column.type() != schema.field(c).type) {
      return Status::ExecutionError("serde: column/schema type mismatch");
    }
    if (c == 0) {
      rows = column.size();
    } else if (column.size() != rows) {
      return Status::ExecutionError("serde: ragged table payload");
    }
    SODA_RETURN_NOT_OK(table->SetColumn(c, std::move(column)));
  }
  return Status::OK();
}

}  // namespace

Result<TablePtr> ReadTable(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
  SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  auto table = std::make_shared<Table>(name, schema);
  SODA_ASSIGN_OR_RETURN(uint8_t flags, r->U8());
  if (flags & kTableFlagPartitioned) {
    SODA_ASSIGN_OR_RETURN(PartitionSpec spec, ReadPartitionSpec(r));
    table->set_partition_spec(std::move(spec));
  }
  if (flags & kTableFlagSealed) {
    SODA_ASSIGN_OR_RETURN(uint32_t num_groups, r->U32());
    if (uint64_t{num_groups} + 1 > r->remaining() / sizeof(uint64_t)) {
      return Status::ExecutionError("serde: truncated group offsets");
    }
    std::vector<size_t> group_offsets;
    group_offsets.reserve(num_groups + 1);
    for (uint32_t g = 0; g <= num_groups; ++g) {
      SODA_ASSIGN_OR_RETURN(uint64_t o, r->U64());
      group_offsets.push_back(o);
    }
    if (group_offsets.front() != 0 ||
        !std::is_sorted(group_offsets.begin(), group_offsets.end())) {
      return Status::ExecutionError("serde: bad group offsets");
    }
    SODA_ASSIGN_OR_RETURN(uint32_t num_offsets, r->U32());
    if (num_offsets > r->remaining() / sizeof(uint64_t)) {
      return Status::ExecutionError("serde: truncated partition offsets");
    }
    std::vector<size_t> offsets;
    offsets.reserve(num_offsets);
    for (uint32_t i = 0; i < num_offsets; ++i) {
      SODA_ASSIGN_OR_RETURN(uint64_t o, r->U64());
      offsets.push_back(o);
    }
    std::vector<uint8_t> quarantined(num_groups, 0);
    if (num_groups > 0) {
      SODA_RETURN_NOT_OK(r->Bytes(quarantined.data(), num_groups));
    }
    // Segments are length + CRC framed: a checksum failure costs exactly
    // one row group — the group gets decode-safe all-NULL placeholders
    // and a quarantine mark, and the read continues at the next frame.
    std::vector<std::vector<SegmentPtr>> groups;
    groups.reserve(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      const size_t group_rows = group_offsets[g + 1] - group_offsets[g];
      std::vector<SegmentPtr> group;
      group.reserve(schema.num_fields());
      bool group_corrupt = false;
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        SODA_ASSIGN_OR_RETURN(uint32_t payload_len, r->U32());
        SODA_ASSIGN_OR_RETURN(uint32_t crc, r->U32());
        SODA_ASSIGN_OR_RETURN(std::string_view payload, r->View(payload_len));
        SegmentPtr seg;
        if (Crc32(payload.data(), payload.size()) == crc) {
          BinaryReader sr(payload);
          auto parsed = ReadSegment(&sr);
          if (parsed.ok() && (*parsed)->type == schema.field(c).type &&
              (*parsed)->row_count() == group_rows) {
            seg = parsed.MoveValueOrDie();
            // Exclusively owned here (just parsed); stamp the verified
            // frame CRC so the scrub pass can re-check it later.
            const_cast<Segment*>(seg.get())->crc = crc;
          }
        }
        if (seg == nullptr) {
          group_corrupt = true;
          seg = MakePlaceholderSegment(schema.field(c).type, group_rows);
        }
        group.push_back(std::move(seg));
      }
      if (group_corrupt) quarantined[g] = 1;
      groups.push_back(std::move(group));
    }
    SODA_RETURN_NOT_OK(
        table->AdoptSealed(std::move(groups), std::move(offsets)));
    for (uint32_t g = 0; g < num_groups; ++g) {
      if (quarantined[g]) table->MarkGroupQuarantined(g);
    }
    return table;
  }
  SODA_RETURN_NOT_OK(ReadUnsealedColumns(r, schema, table.get()));
  return table;
}

Result<TablePtr> ReadTableLegacyV2(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
  SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  auto table = std::make_shared<Table>(name, schema);
  SODA_ASSIGN_OR_RETURN(uint8_t flags, r->U8());
  if (flags & kTableFlagPartitioned) {
    SODA_ASSIGN_OR_RETURN(PartitionSpec spec, ReadPartitionSpec(r));
    table->set_partition_spec(std::move(spec));
  }
  if (flags & kTableFlagSealed) {
    // v2 sealed layout: group count, partition offsets, then raw segments
    // back to back. The enclosing v2 checkpoint's body CRC is the only
    // integrity check, so any parse failure here is fatal to the load.
    SODA_ASSIGN_OR_RETURN(uint32_t num_groups, r->U32());
    SODA_ASSIGN_OR_RETURN(uint32_t num_offsets, r->U32());
    if (num_offsets > r->remaining() / sizeof(uint64_t)) {
      return Status::ExecutionError("serde: truncated partition offsets");
    }
    std::vector<size_t> offsets;
    offsets.reserve(num_offsets);
    for (uint32_t i = 0; i < num_offsets; ++i) {
      SODA_ASSIGN_OR_RETURN(uint64_t o, r->U64());
      offsets.push_back(o);
    }
    std::vector<std::vector<SegmentPtr>> groups;
    groups.reserve(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      std::vector<SegmentPtr> group;
      group.reserve(schema.num_fields());
      for (size_t c = 0; c < schema.num_fields(); ++c) {
        SODA_ASSIGN_OR_RETURN(SegmentPtr seg, ReadSegment(r));
        // v2 files predate frame CRCs; stamp the recomputed checksum so
        // the scrub pass covers these segments from now on.
        const_cast<Segment*>(seg.get())->crc = ComputeSegmentCrc(*seg);
        group.push_back(std::move(seg));
      }
      groups.push_back(std::move(group));
    }
    SODA_RETURN_NOT_OK(
        table->AdoptSealed(std::move(groups), std::move(offsets)));
    return table;
  }
  SODA_RETURN_NOT_OK(ReadUnsealedColumns(r, schema, table.get()));
  return table;
}

}  // namespace soda
