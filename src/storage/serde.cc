#include "storage/serde.h"

#include <cstring>

namespace soda {

namespace {

Status Truncated(const char* what) {
  return Status::ExecutionError(std::string("serde: truncated ") + what);
}

}  // namespace

Result<uint8_t> BinaryReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::U32() {
  uint32_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::U64() {
  uint64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::I64() {
  int64_t v;
  SODA_RETURN_NOT_OK(Bytes(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::Str() {
  SODA_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) return Truncated("string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Status BinaryReader::Bytes(void* out, size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

void WriteSchema(const Schema& schema, BinaryWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_fields()));
  for (const auto& f : schema.fields()) {
    w->Str(f.name);
    w->Str(f.qualifier);
    w->U8(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> ReadSchema(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
    SODA_ASSIGN_OR_RETURN(std::string qualifier, r->Str());
    SODA_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type == 0 || type > static_cast<uint8_t>(DataType::kVarchar)) {
      return Status::ExecutionError("serde: invalid field type");
    }
    schema.AddField(
        Field(std::move(name), static_cast<DataType>(type), qualifier));
  }
  return schema;
}

void WriteColumn(const Column& column, BinaryWriter* w) {
  const size_t n = column.size();
  w->U8(static_cast<uint8_t>(column.type()));
  w->U64(n);
  switch (column.type()) {
    case DataType::kDouble:
      w->Bytes(column.F64Data(), n * sizeof(double));
      break;
    case DataType::kVarchar:
      for (const auto& s : column.Strings()) w->Str(s);
      break;
    default:  // kBigInt / kBool share the int64 payload
      w->Bytes(column.I64Data(), n * sizeof(int64_t));
      break;
  }
  const auto& validity = column.Validity();
  w->U8(validity.empty() ? 0 : 1);
  if (!validity.empty()) w->Bytes(validity.data(), validity.size());
}

Result<Column> ReadColumn(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(uint8_t type_byte, r->U8());
  if (type_byte == 0 || type_byte > static_cast<uint8_t>(DataType::kVarchar)) {
    return Status::ExecutionError("serde: invalid column type");
  }
  DataType type = static_cast<DataType>(type_byte);
  SODA_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  Column column;
  switch (type) {
    case DataType::kDouble: {
      // Divide instead of multiplying: `n` comes from disk and a crafted
      // value must not overflow the bounds check.
      if (n > r->remaining() / sizeof(double)) {
        return Status::ExecutionError("serde: truncated double payload");
      }
      std::vector<double> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(double)));
      column = Column::FromDoubles(std::move(data));
      break;
    }
    case DataType::kVarchar: {
      std::vector<std::string> data;
      data.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        SODA_ASSIGN_OR_RETURN(std::string s, r->Str());
        data.push_back(std::move(s));
      }
      column = Column::FromStrings(std::move(data));
      break;
    }
    default: {
      if (n > r->remaining() / sizeof(int64_t)) {
        return Status::ExecutionError("serde: truncated int64 payload");
      }
      std::vector<int64_t> data(n);
      SODA_RETURN_NOT_OK(r->Bytes(data.data(), n * sizeof(int64_t)));
      column = Column::FromRawI64(type, std::move(data));
      break;
    }
  }
  SODA_ASSIGN_OR_RETURN(uint8_t has_validity, r->U8());
  if (has_validity) {
    std::vector<uint8_t> validity(n);
    SODA_RETURN_NOT_OK(r->Bytes(validity.data(), n));
    column.SetValidity(std::move(validity));
  }
  return column;
}

void WriteTable(const Table& table, BinaryWriter* w) {
  w->Str(table.name());
  WriteSchema(table.schema(), w);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    WriteColumn(table.column(c), w);
  }
}

Result<TablePtr> ReadTable(BinaryReader* r) {
  SODA_ASSIGN_OR_RETURN(std::string name, r->Str());
  SODA_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  auto table = std::make_shared<Table>(name, schema);
  size_t rows = 0;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    SODA_ASSIGN_OR_RETURN(Column column, ReadColumn(r));
    if (column.type() != schema.field(c).type) {
      return Status::ExecutionError("serde: column/schema type mismatch");
    }
    if (c == 0) {
      rows = column.size();
    } else if (column.size() != rows) {
      return Status::ExecutionError("serde: ragged table payload");
    }
    SODA_RETURN_NOT_OK(table->SetColumn(c, std::move(column)));
  }
  return table;
}

}  // namespace soda
