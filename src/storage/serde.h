/// \file serde.h
/// Binary (de)serialization of schemas, columns, and whole tables — the
/// payload format shared by the write-ahead log (storage/wal.h) and table
/// checkpoints (storage/checkpoint.h).
///
/// The format is columnar and byte-exact: numeric payloads are written as
/// their raw in-memory representation, so a serialize/deserialize
/// round-trip is bit-identical (doubles included — no text formatting).
/// Values use the native byte order; WAL and checkpoint files are
/// machine-local recovery artifacts, not interchange files.

#ifndef SODA_STORAGE_SERDE_H_
#define SODA_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/table.h"
#include "types/schema.h"
#include "util/status.h"

namespace soda {

/// Append-only little binary buffer.
class BinaryWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a serialized buffer. Every read fails with
/// kExecutionError instead of walking off the end, so a corrupt (but
/// CRC-colliding) record surfaces as a clean Status.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<std::string> Str();
  Status Bytes(void* out, size_t n);

  /// Returns a view of the next `n` bytes (no copy) and advances past
  /// them — the CRC-then-parse idiom: checksum the raw slice, then hand a
  /// sub-reader exactly that slice so a corrupt payload can be skipped by
  /// length without derailing the outer stream.
  Result<std::string_view> View(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void WriteSchema(const Schema& schema, BinaryWriter* w);
Result<Schema> ReadSchema(BinaryReader* r);

void WriteColumn(const Column& column, BinaryWriter* w);
Result<Column> ReadColumn(BinaryReader* r);

void WritePartitionSpec(const PartitionSpec& spec, BinaryWriter* w);
Result<PartitionSpec> ReadPartitionSpec(BinaryReader* r);

/// Name + schema + all columns.
void WriteTable(const Table& table, BinaryWriter* w);
Result<TablePtr> ReadTable(BinaryReader* r);

/// Reads a table serialized in the pre-v3 sealed layout (unframed
/// segments, no group offsets, no quarantine bitmap). Upgrade path only:
/// LoadCheckpoint uses it to open format-v2 data directories written by
/// the previous release; the next checkpoint rewrites them as v3.
Result<TablePtr> ReadTableLegacyV2(BinaryReader* r);

}  // namespace soda

#endif  // SODA_STORAGE_SERDE_H_
