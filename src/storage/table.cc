#include "storage/table.h"

#include <algorithm>

#include "util/query_guard.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// Probe site for storage-layer growth; every table append charges the
/// current query's memory budget under this name.
constexpr char kAppendSite[] = "storage.append";

size_t ValueBytes(const Value& v) {
  if (v.is_null()) return 1;
  if (v.type() == DataType::kVarchar) {
    return v.varchar_value().size() + sizeof(std::string);
  }
  return sizeof(int64_t);
}

size_t SliceBytes(const Column& col, size_t offset, size_t count) {
  if (col.type() != DataType::kVarchar) return count * sizeof(int64_t);
  size_t bytes = count * sizeof(std::string);
  const auto& strings = col.Strings();
  for (size_t i = offset; i < offset + count; ++i) {
    bytes += strings[i].size();
  }
  return bytes;
}

/// Charges the appended bytes to the calling thread's query guard, if one
/// is installed (see QueryGuard::MemoryScope). Called *before* mutating
/// the table, so a failed reservation leaves all columns aligned.
Status ChargeAppend(size_t bytes) {
  return GuardReserve(QueryGuard::Current(), bytes, kAppendSite);
}

}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(ToLower(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(columns_.size()) + ", got " +
                                   std::to_string(row.size()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Value& v = row[c];
    if (!v.is_null() && v.type() != columns_[c].type()) {
      // Allow numeric coercion; reject anything else.
      if (!(IsNumeric(v.type()) && IsNumeric(columns_[c].type()))) {
        return Status::TypeError("cannot insert " +
                                 std::string(DataTypeToString(v.type())) +
                                 " into column '" + schema_.field(c).name +
                                 "' of type " +
                                 DataTypeToString(columns_[c].type()));
      }
    }
  }
  size_t bytes = 0;
  for (const Value& v : row) bytes += ValueBytes(v);
  SODA_RETURN_NOT_OK(ChargeAppend(bytes));
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
  return Status::OK();
}

Status Table::AppendChunk(const DataChunk& chunk) {
  if (chunk.num_columns() != columns_.size()) {
    return Status::InvalidArgument("chunk arity mismatch");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (chunk.column(c).type() != columns_[c].type()) {
      return Status::TypeError("chunk column type mismatch at position " +
                               std::to_string(c));
    }
  }
  size_t bytes = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes += SliceBytes(chunk.column(c), 0, chunk.column(c).size());
  }
  SODA_RETURN_NOT_OK(ChargeAppend(bytes));
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendSlice(chunk.column(c), 0, chunk.column(c).size());
  }
  return Status::OK();
}

void Table::ScanSlice(size_t offset, size_t count, DataChunk* out) const {
  if (out->num_columns() == 0) {
    *out = DataChunk(schema_);
  } else {
    out->Clear();
  }
  if (offset >= num_rows()) return;  // empty slice
  count = std::min(count, num_rows() - offset);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out->column(c).AppendSlice(columns_[c], offset, count);
  }
}

Status Table::SetColumn(size_t i, Column column) {
  if (i >= columns_.size()) return Status::OutOfRange("column index");
  if (column.type() != columns_[i].type()) {
    return Status::TypeError("SetColumn type mismatch");
  }
  columns_[i] = std::move(column);
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const auto& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  size_t n = std::min(max_rows, num_rows());
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (const auto& c : columns_) row.push_back(c.GetValue(r).ToString());
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(header.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows()) + " rows total)\n";
  }
  return out;
}

}  // namespace soda
