#include "storage/table.h"

#include <algorithm>

#include "util/query_guard.h"
#include "util/retry.h"
#include "util/string_util.h"

namespace soda {

namespace {

/// Probe site for storage-layer growth; every table append charges the
/// current query's memory budget under this name.
constexpr char kAppendSite[] = "storage.append";

/// Probe site for lazy segment decode (flat-cache materialization and
/// EnsureFlat; the streaming scan path probes it per morsel in exec).
constexpr char kDecodeSite[] = "storage.segment_decode";

size_t ValueBytes(const Value& v) {
  if (v.is_null()) return 1;
  if (v.type() == DataType::kVarchar) {
    return v.varchar_value().size() + sizeof(std::string);
  }
  return sizeof(int64_t);
}

size_t SliceBytes(const Column& col, size_t offset, size_t count) {
  if (col.type() != DataType::kVarchar) return count * sizeof(int64_t);
  size_t bytes = count * sizeof(std::string);
  const auto& strings = col.Strings();
  for (size_t i = offset; i < offset + count; ++i) {
    bytes += strings[i].size();
  }
  return bytes;
}

/// Charges the appended bytes to the calling thread's query guard, if one
/// is installed (see QueryGuard::MemoryScope). Called *before* mutating
/// the table, so a failed reservation leaves all columns aligned.
Status ChargeAppend(size_t bytes) {
  return GuardReserve(QueryGuard::Current(), bytes, kAppendSite);
}

/// A pushed predicate is only evaluable on the encoded payload when the
/// literal's type matches the column's payload family exactly — no silent
/// coercion in the storage layer (the optimizer casts before pushing).
bool PredicateEvaluable(const Schema& schema, const ScanPredicate& pred) {
  if (pred.column >= schema.num_fields() || pred.constant.is_null()) {
    return false;
  }
  switch (schema.field(pred.column).type) {
    case DataType::kBigInt:
    case DataType::kBool:
      return pred.constant.type() == DataType::kBigInt;
    case DataType::kDouble:
      return pred.constant.type() == DataType::kDouble;
    case DataType::kVarchar:
      return pred.constant.type() == DataType::kVarchar;
    default:
      return false;
  }
}

}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(ToLower(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (sealed_) {
    return Status::ExecutionError("append to sealed table '" + name_ +
                                  "' (rebuild via stage-and-swap)");
  }
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(columns_.size()) + ", got " +
                                   std::to_string(row.size()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Value& v = row[c];
    if (!v.is_null() && v.type() != columns_[c].type()) {
      // Allow numeric coercion; reject anything else.
      if (!(IsNumeric(v.type()) && IsNumeric(columns_[c].type()))) {
        return Status::TypeError("cannot insert " +
                                 std::string(DataTypeToString(v.type())) +
                                 " into column '" + schema_.field(c).name +
                                 "' of type " +
                                 DataTypeToString(columns_[c].type()));
      }
    }
  }
  size_t bytes = 0;
  for (const Value& v : row) bytes += ValueBytes(v);
  SODA_RETURN_NOT_OK(ChargeAppend(bytes));
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValue(row[c]);
  }
  return Status::OK();
}

Status Table::AppendChunk(const DataChunk& chunk) {
  if (sealed_) {
    return Status::ExecutionError("append to sealed table '" + name_ + "'");
  }
  if (chunk.num_columns() != columns_.size()) {
    return Status::InvalidArgument("chunk arity mismatch");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (chunk.column(c).type() != columns_[c].type()) {
      return Status::TypeError("chunk column type mismatch at position " +
                               std::to_string(c));
    }
  }
  size_t bytes = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes += SliceBytes(chunk.column(c), 0, chunk.column(c).size());
  }
  SODA_RETURN_NOT_OK(ChargeAppend(bytes));
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendSlice(chunk.column(c), 0, chunk.column(c).size());
  }
  return Status::OK();
}

namespace {

/// Schema of a projected scan output: the selected fields in `cols` order.
Schema ProjectedSchema(const Schema& schema, const std::vector<size_t>& cols) {
  std::vector<Field> fields;
  fields.reserve(cols.size());
  for (size_t c : cols) fields.push_back(schema.field(c));
  return Schema(std::move(fields));
}

}  // namespace

void Table::ScanSlice(size_t offset, size_t count, DataChunk* out,
                      const std::vector<size_t>* cols) const {
  if (out->num_columns() == 0) {
    *out = DataChunk(cols ? ProjectedSchema(schema_, *cols) : schema_);
  } else {
    out->Clear();
  }
  const size_t out_cols = cols ? cols->size() : num_columns();
  if (offset >= num_rows()) return;  // empty slice
  count = std::min(count, num_rows() - offset);
  if (sealed_ && !flat_ready_.load(std::memory_order_acquire)) {
    // Decode the overlapping row groups straight into the chunk; the flat
    // cache is never built on the streaming path. Only the projected
    // columns are decoded — a fused projection skips whole segments.
    size_t g = std::upper_bound(group_offsets_.begin(), group_offsets_.end(),
                                offset) -
               group_offsets_.begin() - 1;
    size_t done = 0;
    while (done < count) {
      const size_t in_group = offset + done - group_offsets_[g];
      const size_t take = std::min(count - done, group_rows(g) - in_group);
      for (size_t c = 0; c < out_cols; ++c) {
        const size_t phys = cols ? (*cols)[c] : c;
        DecodeSegment(*groups_[g][phys], in_group, take, &out->column(c));
      }
      done += take;
      ++g;
    }
    return;
  }
  for (size_t c = 0; c < out_cols; ++c) {
    const size_t phys = cols ? (*cols)[c] : c;
    out->column(c).AppendSlice(columns_[phys], offset, count);
  }
}

bool Table::ScanSliceFiltered(size_t offset, size_t count,
                              const std::vector<ScanPredicate>& preds,
                              DataChunk* out,
                              const std::vector<size_t>* cols) const {
  if (!sealed_ || preds.empty()) return false;
  for (const auto& p : preds) {
    if (!PredicateEvaluable(schema_, p)) return false;
  }
  if (out->num_columns() == 0) {
    *out = DataChunk(cols ? ProjectedSchema(schema_, *cols) : schema_);
  } else {
    out->Clear();
  }
  const size_t out_cols = cols ? cols->size() : num_columns();
  if (offset >= num_rows()) return true;  // empty slice
  count = std::min(count, num_rows() - offset);
  size_t g = std::upper_bound(group_offsets_.begin(), group_offsets_.end(),
                              offset) -
             group_offsets_.begin() - 1;
  size_t done = 0;
  std::vector<uint32_t> sel, next, merged;
  while (done < count) {
    const size_t in_group = offset + done - group_offsets_[g];
    const size_t take = std::min(count - done, group_rows(g) - in_group);
    done += take;
    const size_t group = g++;
    // Zone maps first: skip the whole segment when a footer rules it out.
    bool may_match = true;
    for (const auto& p : preds) {
      if (!SegmentMayMatch(*groups_[group][p.column], p)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) continue;
    // Row selection on the encoded payloads, intersecting predicates.
    sel.clear();
    SegmentMatchRows(*groups_[group][preds[0].column], in_group, take,
                     preds[0], &sel);
    for (size_t k = 1; k < preds.size() && !sel.empty(); ++k) {
      next.clear();
      SegmentMatchRows(*groups_[group][preds[k].column], in_group, take,
                       preds[k], &next);
      merged.clear();
      std::set_intersection(sel.begin(), sel.end(), next.begin(), next.end(),
                            std::back_inserter(merged));
      sel.swap(merged);
    }
    if (sel.empty()) continue;
    if (sel.size() == take) {
      for (size_t c = 0; c < out_cols; ++c) {
        const size_t phys = cols ? (*cols)[c] : c;
        DecodeSegment(*groups_[group][phys], in_group, take,
                      &out->column(c));
      }
    } else {
      for (size_t c = 0; c < out_cols; ++c) {
        const size_t phys = cols ? (*cols)[c] : c;
        DecodeSegmentGather(*groups_[group][phys], sel.data(), sel.size(),
                            &out->column(c));
      }
    }
  }
  return true;
}

Status Table::SetColumn(size_t i, Column column) {
  if (sealed_) return Status::ExecutionError("SetColumn on sealed table");
  if (i >= columns_.size()) return Status::OutOfRange("column index");
  if (column.type() != columns_[i].type()) {
    return Status::TypeError("SetColumn type mismatch");
  }
  columns_[i] = std::move(column);
  return Status::OK();
}

void Table::Truncate() {
  for (auto& c : columns_) c.Clear();
  groups_.clear();
  group_offsets_.clear();
  partition_offsets_.clear();
  group_quarantined_.clear();
  table_quarantined_ = false;
  sealed_ = false;
  flat_ready_.store(false, std::memory_order_release);
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    out.push_back(column(c).GetValue(row));
  }
  return out;
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  if (sealed_) {
    for (const auto& group : groups_) {
      for (const auto& seg : group) bytes += seg->MemoryUsage();
    }
    if (!flat_ready_.load(std::memory_order_acquire)) return bytes;
  }
  for (const auto& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const auto& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  size_t n = std::min(max_rows, num_rows());
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < num_columns(); ++c) {
      row.push_back(column(c).GetValue(r).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(header.size(), 0);
  // analyze:allow(guard-probe: debug rendering of an already-capped preview)
  for (const auto& row : cells) {
    // analyze:allow(guard-probe: debug rendering of an already-capped preview)
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  // analyze:allow(guard-probe: debug rendering of an already-capped preview)
  for (size_t r = 0; r < cells.size(); ++r) {
    // analyze:allow(guard-probe: debug rendering of an already-capped preview)
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows()) + " rows total)\n";
  }
  return out;
}

// --- Sealed representation -----------------------------------------------

Status Table::Seal() {
  if (sealed_) return Status::OK();
  const size_t n = num_rows();
  if (n > UINT32_MAX) {
    return Status::ExecutionError("Seal: table too large to reorder");
  }

  // Partitioned tables cluster rows by partition id first (stable within a
  // partition, so unpartitioned DML ordering semantics are unchanged —
  // only PARTITION BY tables ever reorder).
  std::vector<Column> gathered;
  std::vector<const Column*> src(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) src[c] = &columns_[c];
  std::vector<size_t> part_offsets;
  if (spec_.partitioned() && spec_.num_partitions > 0) {
    if (spec_.column_index >= columns_.size()) {
      return Status::ExecutionError("Seal: partition column out of range");
    }
    const Column& pcol = columns_[spec_.column_index];
    const size_t P = spec_.num_partitions;
    std::vector<uint32_t> part(n);
    std::vector<size_t> counts(P, 0);
    for (size_t i = 0; i < n; ++i) {
      part[i] = static_cast<uint32_t>(PartitionOfRow(spec_, pcol, i));
      ++counts[part[i]];
    }
    part_offsets.assign(P + 1, 0);
    for (size_t p = 0; p < P; ++p) {
      part_offsets[p + 1] = part_offsets[p] + counts[p];
    }
    std::vector<size_t> cursor(part_offsets.begin(), part_offsets.end() - 1);
    std::vector<uint32_t> perm(n);
    for (size_t i = 0; i < n; ++i) {
      perm[cursor[part[i]]++] = static_cast<uint32_t>(i);
    }
    gathered.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      Column col(columns_[c].type());
      col.Reserve(n);
      col.AppendGather(columns_[c], perm.data(), n);
      gathered.push_back(std::move(col));
    }
    for (size_t c = 0; c < columns_.size(); ++c) src[c] = &gathered[c];
  } else {
    part_offsets = {0, n};
  }

  // Encode kSegmentRows-row groups, never crossing a partition boundary.
  std::vector<std::vector<SegmentPtr>> groups;
  std::vector<size_t> group_offsets{0};
  for (size_t p = 0; p + 1 < part_offsets.size(); ++p) {
    for (size_t off = part_offsets[p]; off < part_offsets[p + 1];
         off += kSegmentRows) {
      const size_t take = std::min(kSegmentRows, part_offsets[p + 1] - off);
      std::vector<SegmentPtr> group;
      group.reserve(src.size());
      for (const Column* col : src) {
        SODA_ASSIGN_OR_RETURN(SegmentPtr seg,
                              EncodeSegment(*col, off, take));
        group.push_back(std::move(seg));
      }
      groups.push_back(std::move(group));
      group_offsets.push_back(off + take);
    }
  }

  groups_ = std::move(groups);
  group_offsets_ = std::move(group_offsets);
  partition_offsets_ = std::move(part_offsets);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c] = Column(schema_.field(c).type);
  }
  sealed_ = true;
  flat_ready_.store(false, std::memory_order_release);
  return Status::OK();
}

Status Table::EnsureFlat() {
  if (!sealed_) return Status::OK();
  // Flattening a quarantined table would bake the all-NULL placeholders
  // into the flat payload as if they were real rows — refuse.
  SODA_RETURN_NOT_OK(CheckReadable(0, num_rows()));
  // Decode faults can be transient (injected kUnavailable) — retry with
  // backoff before surfacing; see util/retry.h.
  SODA_RETURN_NOT_OK(RetryTransient(DefaultIoRetryPolicy(), [] {
    return GuardProbe(QueryGuard::Current(), kDecodeSite);
  }));
  MaterializeFlat();
  groups_.clear();
  group_offsets_.clear();
  partition_offsets_.clear();
  sealed_ = false;
  flat_ready_.store(false, std::memory_order_release);
  return Status::OK();
}

Status Table::AdoptSealed(std::vector<std::vector<SegmentPtr>> groups,
                          std::vector<size_t> partition_offsets) {
  std::vector<size_t> offsets{0};
  for (const auto& group : groups) {
    if (group.size() != schema_.num_fields()) {
      return Status::ExecutionError("AdoptSealed: group arity mismatch");
    }
    size_t rows = 0;
    for (size_t c = 0; c < group.size(); ++c) {
      if (group[c] == nullptr ||
          group[c]->type != schema_.field(c).type) {
        return Status::ExecutionError("AdoptSealed: segment type mismatch");
      }
      if (c == 0) {
        rows = group[c]->row_count();
      } else if (group[c]->row_count() != rows) {
        return Status::ExecutionError("AdoptSealed: ragged row group");
      }
    }
    offsets.push_back(offsets.back() + rows);
  }
  if (partition_offsets.empty()) {
    partition_offsets = {0, offsets.back()};
  }
  if (partition_offsets.front() != 0 ||
      partition_offsets.back() != offsets.back() ||
      !std::is_sorted(partition_offsets.begin(), partition_offsets.end())) {
    return Status::ExecutionError("AdoptSealed: bad partition offsets");
  }
  for (size_t po : partition_offsets) {
    if (!std::binary_search(offsets.begin(), offsets.end(), po)) {
      return Status::ExecutionError(
          "AdoptSealed: partition offset not group-aligned");
    }
  }
  groups_ = std::move(groups);
  group_offsets_ = std::move(offsets);
  partition_offsets_ = std::move(partition_offsets);
  group_quarantined_.clear();
  table_quarantined_ = false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c] = Column(schema_.field(c).type);
  }
  sealed_ = true;
  flat_ready_.store(false, std::memory_order_release);
  return Status::OK();
}

// --- Quarantine ----------------------------------------------------------

void Table::MarkGroupQuarantined(size_t g) {
  if (g >= groups_.size()) return;
  if (group_quarantined_.size() != groups_.size()) {
    group_quarantined_.assign(groups_.size(), 0);
  }
  group_quarantined_[g] = 1;
}

bool Table::quarantined() const {
  if (table_quarantined_) return true;
  for (uint8_t q : group_quarantined_) {
    if (q) return true;
  }
  return false;
}

size_t Table::num_quarantined_groups() const {
  if (table_quarantined_) return groups_.empty() ? 1 : groups_.size();
  size_t n = 0;
  for (uint8_t q : group_quarantined_) n += q != 0;
  return n;
}

Status Table::CheckReadable(size_t offset, size_t count) const {
  if (table_quarantined_) {
    return Status::DataLoss("table '" + name_ +
                            "' is quarantined (corrupt checkpoint block); "
                            "restore from a backup or DROP it");
  }
  if (group_quarantined_.empty() || count == 0) return Status::OK();
  const size_t end = offset + count;
  size_t g = std::upper_bound(group_offsets_.begin(), group_offsets_.end(),
                              offset) -
             group_offsets_.begin() - 1;
  for (; g < groups_.size() && group_offsets_[g] < end; ++g) {
    if (group_quarantined_[g]) {
      return Status::DataLoss(
          "table '" + name_ + "' row group " + std::to_string(g) + " (rows [" +
          std::to_string(group_offsets_[g]) + ", " +
          std::to_string(group_offsets_[g + 1]) +
          ")) is quarantined after a checksum failure; scans of other "
          "partitions still work");
    }
  }
  return Status::OK();
}

void Table::MaterializeFlat() const {
  if (!sealed_ || flat_ready_.load(std::memory_order_acquire)) return;
  MutexLock lock(&seal_mu_);
  if (flat_ready_.load(std::memory_order_relaxed)) return;
  const size_t n = num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column col(schema_.field(c).type);
    col.Reserve(n);
    for (const auto& group : groups_) {
      DecodeSegment(*group[c], 0, group[c]->row_count(), &col);
    }
    columns_[c] = std::move(col);
  }
  flat_ready_.store(true, std::memory_order_release);
}

}  // namespace soda
