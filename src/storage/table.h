/// \file table.h
/// In-memory base tables and materialized relations.
///
/// A `Table` is a schema plus one full-length `Column` per field. Base
/// tables live in the catalog; intermediate relations (CTE results,
/// ITERATE state, analytics operator inputs) use the same representation so
/// layer-3 and layer-4 code paths share storage machinery — a prerequisite
/// for the paper's layer-vs-layer comparisons to be apples-to-apples.
///
/// Tables have two physical states (DESIGN.md §9):
///  - **flat**: one decoded `Column` per field — the mutable build format
///    every DML staging path and intermediate relation uses.
///  - **sealed**: rows live in immutable encoded row groups (one `Segment`
///    per column per group, storage/segment.h), optionally clustered into
///    partitions (storage/partition.h). Sealed tables decode lazily: scans
///    stream segments straight into DataChunks, and random access
///    materializes a flat cache on first touch (segments are kept — the
///    table stays sealed). Sealing is invisible to SQL semantics; it only
///    changes footprint and scan mechanics.

#ifndef SODA_STORAGE_TABLE_H_
#define SODA_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "storage/data_chunk.h"
#include "storage/partition.h"
#include "storage/segment.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/mutex.h"
#include "util/status.h"

namespace soda {

/// DML results below this row count stay flat — encoding tiny tables
/// costs more than it saves. Partitioned tables always seal regardless
/// (pruning needs the clustered layout). Engine + recovery share this
/// threshold.
inline constexpr size_t kSealMinRows = 4096;

/// A named, schema-full, columnar relation.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  // Movable (operators hand whole result tables around); the seal mutex
  // and flat-cache flag are per-object, so moves only transfer payload.
  // Moving is only legal on exclusively-owned tables — registered catalog
  // tables are shared and immutable.
  Table(Table&& other) noexcept { *this = std::move(other); }
  Table& operator=(Table&& other) noexcept {
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    spec_ = std::move(other.spec_);
    columns_ = std::move(other.columns_);
    sealed_ = other.sealed_;
    groups_ = std::move(other.groups_);
    group_offsets_ = std::move(other.group_offsets_);
    partition_offsets_ = std::move(other.partition_offsets_);
    group_quarantined_ = std::move(other.group_quarantined_);
    table_quarantined_ = other.table_quarantined_;
    version_ = other.version_;
    flat_ready_.store(other.flat_ready_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    if (sealed_) return group_offsets_.empty() ? 0 : group_offsets_.back();
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  /// Column access. On a sealed table this materializes the flat decode
  /// cache on first touch (thread-safe; segments are kept). Mutating
  /// through the non-const overload is only legal on flat tables.
  Column& column(size_t i) {
    MaterializeFlat();
    return columns_[i];
  }
  const Column& column(size_t i) const {
    MaterializeFlat();
    return columns_[i];
  }

  void Reserve(size_t n) {
    for (auto& c : columns_) c.Reserve(n);
  }

  /// Appends one boxed row (types must be appendable to each column).
  /// Charges the growth to the calling thread's QueryGuard (if a
  /// MemoryScope is active) under the "storage.append" probe site; fails
  /// with kResourceExhausted — before mutating any column — when the
  /// query's memory budget is exceeded. Fails on sealed tables (DML goes
  /// through stage-and-swap, never in-place appends).
  Status AppendRow(const std::vector<Value>& row);

  /// Appends all rows of a chunk (column types must match positionally).
  /// Memory-accounted like AppendRow; fails on sealed tables.
  Status AppendChunk(const DataChunk& chunk);

  /// Copies rows [offset, offset+count) into `out` (columns created to
  /// match the schema if `out` is empty). On a sealed table this decodes
  /// straight from the segments without materializing the flat cache.
  /// With `cols` set, only those physical columns are materialized, in the
  /// given order (`out` gets one column per entry) — on sealed tables the
  /// dropped columns are never decoded at all.
  void ScanSlice(size_t offset, size_t count, DataChunk* out,
                 const std::vector<size_t>* cols = nullptr) const;

  /// Predicate-aware sealed scan: copies the rows of [offset,
  /// offset+count) that satisfy every predicate in `preds`, evaluating on
  /// the encoded payloads (dictionary codes / RLE runs / FOR frames) and
  /// skipping whole segments the stats footers rule out. Returns false —
  /// without touching `out` — when the table is not sealed or a predicate
  /// is not evaluable here; the caller falls back to ScanSlice and the
  /// regular Filter transform. `cols` projects the output like ScanSlice's
  /// (predicates may reference columns outside the projection — they
  /// evaluate on the encoded payloads either way).
  bool ScanSliceFiltered(size_t offset, size_t count,
                         const std::vector<ScanPredicate>& preds,
                         DataChunk* out,
                         const std::vector<size_t>* cols = nullptr) const;

  /// Replaces the payload of column `i` wholesale (bulk loading; flat
  /// tables only).
  Status SetColumn(size_t i, Column column);

  /// Deletes all rows (and any sealed representation), keeping the schema
  /// and partition spec.
  void Truncate();

  std::vector<Value> GetRow(size_t row) const;

  size_t MemoryUsage() const;

  /// Renders up to `max_rows` as an aligned ASCII table (debugging /
  /// examples).
  std::string ToString(size_t max_rows = 20) const;

  // --- Sealed representation ---------------------------------------------

  bool sealed() const { return sealed_; }

  const PartitionSpec& partition_spec() const { return spec_; }
  /// Installs the partition clause (CREATE TABLE time, before any rows).
  void set_partition_spec(PartitionSpec spec) { spec_ = std::move(spec); }

  /// Encodes the flat columns into row groups of kSegmentRows rows,
  /// clustering rows by partition first when a partition spec is set, and
  /// drops the flat payload. No-op when already sealed. Fault site:
  /// "storage.segment_encode".
  Status Seal();

  /// Materializes the flat columns and drops the sealed representation —
  /// the table becomes flat and appendable again. Only legal on exclusively
  /// owned tables (WAL replay, recovery); shared snapshot readers use the
  /// keep-the-segments column() cache instead.
  Status EnsureFlat();

  /// Row ranges: partition p spans [partition_offsets()[p],
  /// partition_offsets()[p+1]). Sealed tables always expose offsets — an
  /// unpartitioned sealed table reports the single range [0, num_rows).
  const std::vector<size_t>& partition_offsets() const {
    return partition_offsets_;
  }

  size_t num_row_groups() const { return groups_.size(); }
  size_t group_offset(size_t g) const { return group_offsets_[g]; }
  size_t group_rows(size_t g) const {
    return group_offsets_[g + 1] - group_offsets_[g];
  }
  const SegmentPtr& group_segment(size_t g, size_t c) const {
    return groups_[g][c];
  }

  /// Installs an already-encoded representation wholesale (deserialization
  /// and the engine's partition-reusing rebuild). `groups` is outer=group,
  /// inner=column; `partition_offsets` must be group-aligned and span
  /// [0, total rows]. Replaces any existing payload (and clears any
  /// quarantine flags — callers re-mark after adopting).
  Status AdoptSealed(std::vector<std::vector<SegmentPtr>> groups,
                     std::vector<size_t> partition_offsets);

  // --- Quarantine (self-healing storage, DESIGN.md §10) --------------------
  //
  // A row group whose segment failed its CRC check is *quarantined*: its
  // payload was replaced by a decode-safe all-NULL placeholder and reads
  // that touch it must fail with kDataLoss instead of silently returning
  // the placeholder. Scans of unaffected row groups / partitions proceed
  // — degraded reads. A fully-quarantined table (its whole checkpoint
  // block was corrupt) rejects every read.

  /// Marks row group `g` of a sealed table as quarantined.
  void MarkGroupQuarantined(size_t g);

  /// Marks the entire table as quarantined (corrupt checkpoint block —
  /// only name + schema survived).
  void MarkTableQuarantined() { table_quarantined_ = true; }

  /// True when any row group (or the whole table) is quarantined.
  bool quarantined() const;

  /// True only for whole-table quarantine (corrupt checkpoint block);
  /// false when merely some row groups are quarantined. Whole-table
  /// quarantine does not survive a checkpoint rewrite (the stub has no
  /// rows), so heal paths must check this before rewriting.
  bool table_level_quarantined() const { return table_quarantined_; }

  /// Number of quarantined row groups (a fully-quarantined table counts
  /// every group, or 1 when it has none).
  size_t num_quarantined_groups() const;

  bool group_quarantined(size_t g) const {
    return table_quarantined_ ||
           (g < group_quarantined_.size() && group_quarantined_[g] != 0);
  }

  /// Gate for readers: kDataLoss naming the table and first quarantined
  /// row group when [offset, offset+count) touches quarantined data; OK
  /// otherwise. Exec scans call this per morsel (after partition pruning,
  /// so pruned queries keep working on the healthy partitions).
  Status CheckReadable(size_t offset, size_t count) const;

  // --- Versioning (plan cache / hash-table recycler, DESIGN.md §11) --------
  //
  // Every table published through the catalog carries a version drawn from
  // the catalog's global monotonic counter. DML/DDL goes through the
  // stage-and-swap ReplaceTable path, so any change to a base table's
  // contents installs a fresh Table object with a fresh version — cached
  // plans and recycled hash tables embed (name, version, schema) in their
  // fingerprints and go stale automatically.

  /// Version stamped by the catalog at publication; 0 = never published
  /// (intermediate relation).
  uint64_t version() const { return version_; }

  /// Catalog-only: stamps the publication version. Legal only before the
  /// table becomes shared (tables are immutable once registered).
  void set_version(uint64_t v) { version_ = v; }

 private:
  /// Decodes all columns into the flat cache (keeps the segments). Safe
  /// to race from many readers; first one in does the work.
  void MaterializeFlat() const;

  std::string name_;
  Schema schema_;
  PartitionSpec spec_;

  /// Flat payload; on a sealed table this is the lazily-built decode
  /// cache (empty until flat_ready_).
  mutable std::vector<Column> columns_;

  bool sealed_ = false;
  std::vector<std::vector<SegmentPtr>> groups_;  // [group][column]
  std::vector<size_t> group_offsets_;            // groups_.size() + 1
  std::vector<size_t> partition_offsets_;        // group-aligned

  /// Per-group quarantine flags (empty = none quarantined); see
  /// MarkGroupQuarantined. table_quarantined_ overrides per-group state.
  std::vector<uint8_t> group_quarantined_;
  bool table_quarantined_ = false;

  uint64_t version_ = 0;  ///< catalog publication version (see version())

  mutable Mutex seal_mu_;
  mutable std::atomic<bool> flat_ready_{false};
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace soda

#endif  // SODA_STORAGE_TABLE_H_
