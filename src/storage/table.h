/// \file table.h
/// In-memory base tables and materialized relations.
///
/// A `Table` is a schema plus one full-length `Column` per field. Base
/// tables live in the catalog; intermediate relations (CTE results,
/// ITERATE state, analytics operator inputs) use the same representation so
/// layer-3 and layer-4 code paths share storage machinery — a prerequisite
/// for the paper's layer-vs-layer comparisons to be apples-to-apples.

#ifndef SODA_STORAGE_TABLE_H_
#define SODA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/data_chunk.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace soda {

/// A named, schema-full, columnar relation.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  void Reserve(size_t n) {
    for (auto& c : columns_) c.Reserve(n);
  }

  /// Appends one boxed row (types must be appendable to each column).
  /// Charges the growth to the calling thread's QueryGuard (if a
  /// MemoryScope is active) under the "storage.append" probe site; fails
  /// with kResourceExhausted — before mutating any column — when the
  /// query's memory budget is exceeded.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends all rows of a chunk (column types must match positionally).
  /// Memory-accounted like AppendRow.
  Status AppendChunk(const DataChunk& chunk);

  /// Copies rows [offset, offset+count) into `out` (columns created to
  /// match the schema if `out` is empty).
  void ScanSlice(size_t offset, size_t count, DataChunk* out) const;

  /// Replaces the payload of column `i` wholesale (bulk loading).
  Status SetColumn(size_t i, Column column);

  /// Deletes all rows, keeping the schema.
  void Truncate() {
    for (auto& c : columns_) c.Clear();
  }

  std::vector<Value> GetRow(size_t row) const;

  size_t MemoryUsage() const;

  /// Renders up to `max_rows` as an aligned ASCII table (debugging /
  /// examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace soda

#endif  // SODA_STORAGE_TABLE_H_
